/**
 * @file
 * Tests of the post-run analysis subsystem: DistSummary order
 * statistics, per-phase/per-MTL attribution, worker accounting, the
 * queuing-decomposition fit, model validation on a real simulated
 * run, the policy decision audit log, report JSON round-tripping
 * through the bundled parser, diffReports regression gating, and the
 * time-series samplers of both runtimes.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/dynamic_policy.hh"
#include "cpu/machine_config.hh"
#include "obs/analyzer.hh"
#include "obs/timeseries.hh"
#include "runtime/runtime.hh"
#include "simrt/sim_runtime.hh"
#include "util/json.hh"
#include "workloads/phased.hh"
#include "workloads/synthetic.hh"

namespace {

using tt::core::DynamicThrottlePolicy;
using tt::core::MtlDecision;
using tt::obs::AnalyzeOptions;
using tt::obs::DiffResult;
using tt::obs::Report;
using tt::obs::TaskEvent;
using tt::obs::TraceData;

TaskEvent
makeEvent(int phase, bool is_memory, int worker, double start,
          double end, int mtl)
{
    TaskEvent e;
    e.phase = phase;
    e.is_memory = is_memory;
    e.worker = worker;
    e.start = start;
    e.end = end;
    e.mtl = mtl;
    return e;
}

TEST(DistSummary, ExactOrderStatistics)
{
    std::vector<double> samples;
    for (int i = 1; i <= 100; ++i)
        samples.push_back(static_cast<double>(i));
    const auto d = tt::obs::summarize(samples);
    EXPECT_EQ(d.count, 100u);
    EXPECT_DOUBLE_EQ(d.mean, 50.5);
    EXPECT_NEAR(d.p50, 50.5, 1e-9);
    EXPECT_NEAR(d.p95, 95.05, 1e-9);
    EXPECT_NEAR(d.p99, 99.01, 1e-9);
    EXPECT_DOUBLE_EQ(d.min, 1.0);
    EXPECT_DOUBLE_EQ(d.max, 100.0);
}

TEST(DistSummary, EmptyIsAllZero)
{
    const auto d = tt::obs::summarize({});
    EXPECT_EQ(d.count, 0u);
    EXPECT_EQ(d.mean, 0.0);
    EXPECT_EQ(d.p99, 0.0);
}

TEST(Analyzer, AttributesEventsToPhasesAndMtls)
{
    TraceData data;
    data.phase_names = {"alpha", "beta"};
    // Phase 0: two memory tasks under MTL 2, one compute task.
    data.events.push_back(makeEvent(0, true, 0, 0.0, 1.0, 2));
    data.events.push_back(makeEvent(0, true, 1, 0.0, 2.0, 2));
    data.events.push_back(makeEvent(0, false, 0, 1.0, 2.0, 2));
    // Phase 1: one memory task under MTL 1.
    data.events.push_back(makeEvent(1, true, 0, 2.0, 5.0, 1));
    data.mtl_trace = {{0.0, 2}, {2.0, 1}};

    AnalyzeOptions options;
    options.cores = 2;
    options.makespan = 5.0;
    const Report report = tt::obs::analyze(data, options);

    ASSERT_EQ(report.phases.size(), 2u);
    const auto &alpha = report.phases[0];
    EXPECT_EQ(alpha.name, "alpha");
    EXPECT_EQ(alpha.pairs, 2);
    EXPECT_DOUBLE_EQ(alpha.tm.mean, 1.5);
    EXPECT_DOUBLE_EQ(alpha.tc.mean, 1.0);
    ASSERT_EQ(alpha.by_mtl.size(), 1u);
    EXPECT_EQ(alpha.by_mtl[0].mtl, 2);
    EXPECT_EQ(alpha.by_mtl[0].pairs, 2);
    // Phase alpha spans [0, 2); MTL 2 was in force throughout.
    EXPECT_DOUBLE_EQ(alpha.by_mtl[0].wall_seconds, 2.0);

    const auto &beta = report.phases[1];
    EXPECT_EQ(beta.name, "beta");
    ASSERT_EQ(beta.by_mtl.size(), 1u);
    EXPECT_EQ(beta.by_mtl[0].mtl, 1);
    EXPECT_DOUBLE_EQ(beta.by_mtl[0].wall_seconds, 3.0);
    EXPECT_DOUBLE_EQ(report.makespan, 5.0);
}

TEST(Analyzer, WorkerAccountingPartitionsMakespan)
{
    TraceData data;
    data.phase_names = {"p"};
    // Worker 0: busy [0,1) and [2,3) -> busy 2, stall 1, idle 1.
    data.events.push_back(makeEvent(0, true, 0, 0.0, 1.0, 1));
    data.events.push_back(makeEvent(0, true, 0, 2.0, 3.0, 1));
    AnalyzeOptions options;
    options.cores = 1;
    options.makespan = 4.0;
    const Report report = tt::obs::analyze(data, options);
    ASSERT_EQ(report.workers.size(), 1u);
    const auto &w = report.workers[0];
    EXPECT_DOUBLE_EQ(w.busy, 2.0);
    EXPECT_DOUBLE_EQ(w.stall, 1.0);
    EXPECT_DOUBLE_EQ(w.idle, 1.0);
    EXPECT_EQ(w.events, 2u);
}

TEST(Analyzer, QueueFitRecoversLinearLatencyModel)
{
    // Construct memory events whose duration is exactly
    // T_ml + b * T_ql with T_ml = 1 and T_ql = 0.5: one solo event
    // (b=1, tm=1.5) and two overlapping ones (b counts in start
    // order: first sees b=1... so give the overlapping pair matching
    // durations from the sweep's perspective).
    TraceData data;
    data.phase_names = {"p"};
    // Solo: b=1 -> tm = 1.5.
    data.events.push_back(makeEvent(0, true, 0, 0.0, 1.5, 2));
    // Pair: first starts at 10 (b=1 -> 1.5), second at 10.1 while
    // the first is still running (b=2 -> 2.0).
    data.events.push_back(makeEvent(0, true, 0, 10.0, 11.5, 2));
    data.events.push_back(makeEvent(0, true, 1, 10.1, 12.1, 2));
    AnalyzeOptions options;
    options.cores = 2;
    const Report report = tt::obs::analyze(data, options);
    ASSERT_EQ(report.phases.size(), 1u);
    const auto &fit = report.phases[0].queue_fit;
    ASSERT_TRUE(fit.valid);
    EXPECT_NEAR(fit.tml, 1.0, 1e-9);
    EXPECT_NEAR(fit.tql, 0.5, 1e-9);
    EXPECT_EQ(fit.samples, 3u);
}

TEST(Analyzer, QueueFitDegenerateWithoutConcurrencyVariation)
{
    TraceData data;
    data.phase_names = {"p"};
    data.events.push_back(makeEvent(0, true, 0, 0.0, 1.0, 1));
    data.events.push_back(makeEvent(0, true, 0, 2.0, 3.0, 1));
    AnalyzeOptions options;
    options.cores = 1;
    const Report report = tt::obs::analyze(data, options);
    EXPECT_FALSE(report.phases[0].queue_fit.valid);
}

/** One seeded adaptive sim run shared by the end-to-end tests. */
struct PhasedRun
{
    tt::simrt::RunResult result;
    Report report;
    int cores = 0;
};

PhasedRun
runPhasedDynamic()
{
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    std::vector<tt::workloads::PhaseSpec> specs(2);
    specs[0].name = "low";
    specs[0].tm1_over_tc = 0.25;
    specs[0].pairs = 96;
    specs[1].name = "high";
    specs[1].tm1_over_tc = 1.5;
    specs[1].pairs = 96;
    const auto graph = tt::workloads::buildPhasedSim(machine, specs);
    DynamicThrottlePolicy policy(machine.contexts(), 8);
    PhasedRun run;
    run.cores = machine.contexts();
    run.result = tt::simrt::runOnce(machine, graph, policy);
    AnalyzeOptions options;
    options.policy = policy.name();
    options.cores = run.cores;
    options.makespan = run.result.seconds;
    options.policy_stats = run.result.policy_stats;
    run.report = tt::obs::analyze(
        tt::simrt::toTraceData(graph, run.result), options);
    return run;
}

TEST(Analyzer, ModelValidationOnSimulatedRun)
{
    const PhasedRun run = runPhasedDynamic();
    ASSERT_EQ(run.report.phases.size(), 2u);
    bool any_valid = false;
    for (const auto &phase : run.report.phases) {
        if (!phase.validation.valid)
            continue;
        any_valid = true;
        EXPECT_GE(phase.validation.mtl, 1);
        EXPECT_LE(phase.validation.mtl, run.cores);
        EXPECT_GT(phase.validation.predicted_speedup, 0.0);
        EXPECT_GT(phase.validation.measured_speedup, 0.0);
        // The model should land within a factor of two of reality on
        // this calibrated workload -- this is a sanity bound, not a
        // precision claim.
        EXPECT_LT(phase.validation.abs_error, 1.0);
    }
    EXPECT_TRUE(any_valid);
}

TEST(Analyzer, AuditLogCarriesSelectionInputs)
{
    const PhasedRun run = runPhasedDynamic();
    const auto &decisions = run.report.decisions;
    ASSERT_FALSE(decisions.empty());
    EXPECT_EQ(decisions.front().reason,
              tt::core::DecisionReason::Initial);
    bool any_select = false;
    for (const MtlDecision &d : decisions) {
        EXPECT_GE(d.to_mtl, 1);
        EXPECT_LE(d.to_mtl, run.cores);
        if (d.reason != tt::core::DecisionReason::Select)
            continue;
        any_select = true;
        // Every completed selection records the window that
        // triggered it, its IdleBound and the model's prediction.
        EXPECT_GT(d.window_tm, 0.0);
        EXPECT_GT(d.window_tc, 0.0);
        EXPECT_GE(d.idle_bound, 1);
        EXPECT_GE(d.mtl_no_idle, 1);
        EXPECT_GT(d.predicted_speedup, 0.0);
        EXPECT_GE(d.probes_used, 1);
        EXPECT_FALSE(d.probed_mtls.empty());
    }
    EXPECT_TRUE(any_select);
    // The audit log rides along in the trace stream too.
    EXPECT_EQ(run.result.decisions.size(), decisions.size());
}

TEST(Analyzer, ReportJsonRoundTripsThroughParser)
{
    const PhasedRun run = runPhasedDynamic();
    std::ostringstream os;
    tt::obs::writeReportJson(run.report, os);
    std::string error;
    const auto parsed = tt::json::parse(os.str(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ASSERT_TRUE(parsed->isObject());
    EXPECT_NEAR(parsed->numberAt("makespan"), run.report.makespan,
                1e-12);
    EXPECT_EQ(parsed->stringAt("policy"), run.report.policy);
    const auto *phases = parsed->find("phases");
    ASSERT_NE(phases, nullptr);
    ASSERT_TRUE(phases->isArray());
    ASSERT_EQ(phases->array.size(), run.report.phases.size());
    EXPECT_EQ(phases->array[0].stringAt("name"),
              run.report.phases[0].name);
    const auto *decisions = parsed->find("decisions");
    ASSERT_NE(decisions, nullptr);
    EXPECT_EQ(decisions->array.size(), run.report.decisions.size());
    // And the table renderer at least mentions every phase.
    const std::string table = tt::obs::reportTable(run.report);
    for (const auto &phase : run.report.phases)
        EXPECT_NE(table.find(phase.name), std::string::npos);
}

TEST(Analyzer, DiffReportsFlagsRegressionsOnly)
{
    const PhasedRun run = runPhasedDynamic();
    std::ostringstream os;
    tt::obs::writeReportJson(run.report, os);
    const auto baseline = tt::json::parse(os.str());
    ASSERT_TRUE(baseline.has_value());

    // Identical reports: clean.
    DiffResult same =
        tt::obs::diffReports(*baseline, *baseline, 0.05);
    EXPECT_FALSE(same.regressed());

    // Inflate the candidate's makespan past the threshold.
    Report slower = run.report;
    slower.makespan *= 1.25;
    std::ostringstream slow_os;
    tt::obs::writeReportJson(slower, slow_os);
    const auto candidate = tt::json::parse(slow_os.str());
    ASSERT_TRUE(candidate.has_value());
    DiffResult diff =
        tt::obs::diffReports(*baseline, *candidate, 0.05);
    ASSERT_FALSE(diff.regressions.empty());
    EXPECT_EQ(diff.regressions.front().metric, "makespan");
    // The improvement direction must NOT trip the gate.
    DiffResult reverse =
        tt::obs::diffReports(*candidate, *baseline, 0.05);
    for (const auto &finding : reverse.regressions)
        EXPECT_NE(finding.metric, "makespan");

    // A dropped phase is a structural mismatch.
    Report fewer = run.report;
    fewer.phases.pop_back();
    std::ostringstream few_os;
    tt::obs::writeReportJson(fewer, few_os);
    const auto partial = tt::json::parse(few_os.str());
    ASSERT_TRUE(partial.has_value());
    DiffResult missing =
        tt::obs::diffReports(*baseline, *partial, 0.05);
    EXPECT_FALSE(missing.notes.empty());
}

TEST(Timeseries, SimSamplerEmitsParsableRowsWithoutSkewingMakespan)
{
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    tt::workloads::SyntheticParams params;
    params.pairs = 64;
    const auto graph =
        tt::workloads::buildSyntheticSim(machine, params);

    DynamicThrottlePolicy bare_policy(machine.contexts(), 8);
    const double bare_seconds =
        tt::simrt::runOnce(machine, graph, bare_policy).seconds;

    DynamicThrottlePolicy policy(machine.contexts(), 8);
    tt::cpu::SimMachine sim_machine(machine);
    std::ostringstream rows;
    tt::exec::EngineOptions options;
    options.timeseries_out = &rows;
    options.timeseries_interval_seconds = 100e-6;
    tt::simrt::SimRuntime runtime(sim_machine, graph, policy, options);
    const auto result = runtime.run();

    // Sampling must not inflate the reported makespan.
    EXPECT_DOUBLE_EQ(result.seconds, bare_seconds);

    std::istringstream in(rows.str());
    std::string line;
    std::size_t count = 0;
    double last_t = -1.0;
    double last_tasks = 0.0;
    while (std::getline(in, line)) {
        const auto row = tt::json::parse(line);
        ASSERT_TRUE(row.has_value()) << line;
        EXPECT_GE(row->numberAt("t"), last_t);
        last_t = row->numberAt("t");
        last_tasks = row->numberAt("tasks_done");
        EXPECT_GE(row->numberAt("mtl"), 1.0);
        ++count;
    }
    EXPECT_GE(count, 2u);
    EXPECT_EQ(static_cast<int>(last_tasks), graph.taskCount());
}

TEST(Timeseries, HostSamplerEmitsAtLeastOneRow)
{
    tt::workloads::SyntheticParams params;
    params.pairs = 16;
    auto workload = tt::workloads::buildSyntheticHost(params, 2);
    DynamicThrottlePolicy policy(2, 4);
    tt::runtime::RuntimeOptions options;
    options.threads = 2;
    options.pin_affinity = false;
    std::ostringstream rows;
    options.timeseries_out = &rows;
    options.timeseries_interval_seconds = 1e-4;
    tt::runtime::Runtime runtime(workload.graph, policy, options);
    const auto result = runtime.run();
    ASSERT_FALSE(result.failed);

    std::istringstream in(rows.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(in, line)) {
        const auto row = tt::json::parse(line);
        ASSERT_TRUE(row.has_value()) << line;
        ++count;
    }
    EXPECT_GE(count, 1u);
}

} // namespace
