/**
 * @file
 * Tests of the real-thread runtime: completion, ordering, the
 * lock+counter MTL gate under concurrency, phase barriers, sample
 * reporting and policy integration.
 *
 * These tests assert scheduling *correctness*; performance claims
 * are evaluated on the simulator (this host may have any number of
 * CPUs).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "runtime/runtime.hh"
#include "stream/builder.hh"

namespace {

using tt::core::ConventionalPolicy;
using tt::core::StaticMtlPolicy;
using tt::runtime::Runtime;
using tt::runtime::RuntimeOptions;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;

RuntimeOptions
options(int threads)
{
    RuntimeOptions opts;
    opts.threads = threads;
    opts.pin_affinity = false; // not meaningful under test runners
    return opts;
}

TEST(HostRuntime, RunsEveryTaskExactlyOnce)
{
    std::atomic<int> mem_runs{0};
    std::atomic<int> cmp_runs{0};
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(32, [&](int) {
        PairSpec spec;
        spec.host_memory = [&] { ++mem_runs; };
        spec.host_compute = [&] { ++cmp_runs; };
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();

    ConventionalPolicy policy(4);
    Runtime runtime(graph, policy, options(4));
    const auto result = runtime.run();
    EXPECT_EQ(mem_runs.load(), 32);
    EXPECT_EQ(cmp_runs.load(), 32);
    EXPECT_EQ(result.samples.size(), 32u);
}

TEST(HostRuntime, ComputeSeesItsPairsGatheredData)
{
    // The dependency contract: each compute task observes exactly
    // what its memory task wrote.
    const int pairs = 16;
    std::vector<int> cells(static_cast<std::size_t>(pairs), 0);
    std::atomic<int> violations{0};
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(pairs, [&](int i) {
        PairSpec spec;
        spec.host_memory = [&cells, i] {
            cells[static_cast<std::size_t>(i)] = i + 1;
        };
        spec.host_compute = [&cells, &violations, i] {
            if (cells[static_cast<std::size_t>(i)] != i + 1)
                ++violations;
        };
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    ConventionalPolicy policy(3);
    Runtime runtime(graph, policy, options(3));
    runtime.run();
    EXPECT_EQ(violations.load(), 0);
}

/** The lock+counter gate: concurrent memory tasks never exceed MTL. */
class HostMtlGate : public ::testing::TestWithParam<int>
{
};

TEST_P(HostMtlGate, NeverExceedsLimit)
{
    const int mtl = GetParam();
    std::atomic<int> live{0};
    std::atomic<int> peak{0};
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(48, [&](int) {
        PairSpec spec;
        spec.host_memory = [&] {
            const int now = ++live;
            int expect = peak.load();
            while (now > expect &&
                   !peak.compare_exchange_weak(expect, now)) {
            }
            // A little real work so tasks overlap.
            volatile double acc = 0.0;
            for (int i = 0; i < 5000; ++i)
                acc = acc + static_cast<double>(i);
            --live;
        };
        spec.host_compute = [] {
            volatile double acc = 0.0;
            for (int i = 0; i < 2000; ++i)
                acc = acc + static_cast<double>(i);
        };
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();

    StaticMtlPolicy policy(mtl, 4);
    Runtime runtime(graph, policy, options(4));
    const auto result = runtime.run();
    EXPECT_LE(peak.load(), mtl);
    EXPECT_LE(result.peak_mem_in_flight, mtl);
}

INSTANTIATE_TEST_SUITE_P(Limits, HostMtlGate,
                         ::testing::Values(1, 2, 3, 4));

TEST(HostRuntime, PhaseBarrierOrdersPhases)
{
    std::atomic<int> phase0_done{0};
    std::atomic<int> barrier_violations{0};
    StreamProgramBuilder builder;
    builder.beginPhase("first");
    builder.addPairs(8, [&](int) {
        PairSpec spec;
        spec.host_memory = [] {};
        spec.host_compute = [&] { ++phase0_done; };
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    builder.beginPhase("second");
    builder.addPairs(8, [&](int) {
        PairSpec spec;
        spec.host_memory = [&] {
            if (phase0_done.load() != 8)
                ++barrier_violations;
        };
        spec.host_compute = [] {};
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    ConventionalPolicy policy(4);
    Runtime runtime(graph, policy, options(4));
    runtime.run();
    EXPECT_EQ(barrier_violations.load(), 0);
}

TEST(HostRuntime, SingleThreadStillCompletes)
{
    std::atomic<int> runs{0};
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(8, [&](int) {
        PairSpec spec;
        spec.host_memory = [&] { ++runs; };
        spec.host_compute = [&] { ++runs; };
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    StaticMtlPolicy policy(1, 1);
    Runtime runtime(graph, policy, options(1));
    const auto result = runtime.run();
    EXPECT_EQ(runs.load(), 16);
    EXPECT_LE(result.peak_mem_in_flight, 1);
}

TEST(HostRuntime, EmptyGraphReturnsImmediately)
{
    StreamProgramBuilder builder;
    const TaskGraph graph = std::move(builder).build();
    ConventionalPolicy policy(2);
    Runtime runtime(graph, policy, options(2));
    const auto result = runtime.run();
    EXPECT_TRUE(result.samples.empty());
}

TEST(HostRuntime, TasksWithoutClosuresAreLegal)
{
    // Sim-only graphs (no host closures) must still run: the tasks
    // just take ~zero time.
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(4, [&](int) {
        PairSpec spec;
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    ConventionalPolicy policy(2);
    Runtime runtime(graph, policy, options(2));
    const auto result = runtime.run();
    EXPECT_EQ(result.samples.size(), 4u);
}

TEST(HostRuntime, SamplesTagMtlAndTimes)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(8, [&](int) {
        PairSpec spec;
        spec.host_memory = [] {
            volatile int x = 0;
            for (int i = 0; i < 1000; ++i)
                x = x + i;
        };
        spec.host_compute = [] {};
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    StaticMtlPolicy policy(2, 2);
    Runtime runtime(graph, policy, options(2));
    const auto result = runtime.run();
    for (const auto &sample : result.samples) {
        EXPECT_EQ(sample.mtl, 2);
        EXPECT_GE(sample.tm, 0.0);
        EXPECT_GE(sample.end_time, 0.0);
    }
    EXPECT_EQ(result.policy_stats.pairs_observed, 8);
}

TEST(HostRuntime, DynamicPolicyRunsToCompletion)
{
    // Integration: the adaptive policy driving real threads.
    tt::core::DynamicThrottlePolicy policy(2, 4);
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(64, [&](int) {
        PairSpec spec;
        spec.host_memory = [] {
            volatile double acc = 0.0;
            for (int i = 0; i < 3000; ++i)
                acc = acc + static_cast<double>(i);
        };
        spec.host_compute = [] {
            volatile double acc = 0.0;
            for (int i = 0; i < 9000; ++i)
                acc = acc + static_cast<double>(i);
        };
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    Runtime runtime(graph, policy, options(2));
    const auto result = runtime.run();
    EXPECT_EQ(result.samples.size(), 64u);
    EXPECT_GE(result.policy_stats.selections, 1);
    const int final_mtl = result.mtl_trace.back().second;
    EXPECT_GE(final_mtl, 1);
    EXPECT_LE(final_mtl, 2);
}

TEST(HostRuntimeDeath, RunIsSingleShot)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(1, [&](int) {
        PairSpec spec;
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    ConventionalPolicy policy(1);
    Runtime runtime(graph, policy, options(1));
    runtime.run();
    EXPECT_DEATH(runtime.run(), "single-shot");
}

} // namespace
