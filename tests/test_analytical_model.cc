/**
 * @file
 * Unit and property tests of the Sec. IV-A analytical model: the
 * idle inequality (Eq. 1), IdleBound's closed form, the two
 * execution-time/speedup regimes, and the monotonicity lemmas the
 * MTL-selection pruning rests on (Sec. IV-C).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/analytical_model.hh"

namespace {

using tt::core::AnalyticalModel;
using tt::core::QueuingModel;

TEST(IdleTest, PaperQuadCoreExamples)
{
    // Fig. 8: on a quad-core, MTL=1 keeps all cores busy iff
    // T_m1 <= T_c/3; MTL=2 iff T_m2 <= T_c.
    EXPECT_FALSE(AnalyticalModel::someCoresIdle(1.0, 3.0, 1, 4));
    EXPECT_FALSE(AnalyticalModel::someCoresIdle(0.9, 3.0, 1, 4));
    EXPECT_TRUE(AnalyticalModel::someCoresIdle(1.1, 3.0, 1, 4));

    EXPECT_FALSE(AnalyticalModel::someCoresIdle(1.0, 1.0, 2, 4));
    EXPECT_TRUE(AnalyticalModel::someCoresIdle(1.01, 1.0, 2, 4));
}

TEST(IdleTest, MtlEqualCoresNeverIdles)
{
    for (int n = 1; n <= 8; ++n)
        EXPECT_FALSE(AnalyticalModel::someCoresIdle(100.0, 0.001, n, n));
}

TEST(IdleTest, PureMemoryPhaseIdlesBelowN)
{
    // tc == 0: any restriction k < n forces idleness.
    for (int k = 1; k < 4; ++k)
        EXPECT_TRUE(AnalyticalModel::someCoresIdle(1.0, 0.0, k, 4));
    EXPECT_FALSE(AnalyticalModel::someCoresIdle(1.0, 0.0, 4, 4));
}

TEST(IdleTest, PureComputePhaseNeverIdles)
{
    for (int k = 1; k <= 4; ++k)
        EXPECT_FALSE(AnalyticalModel::someCoresIdle(0.0, 1.0, k, 4));
}

TEST(IdleBound, MatchesDirectSearch)
{
    // IdleBound must be the smallest k whose idle test passes.
    const int n = 4;
    for (double tm = 0.0; tm <= 4.05; tm += 0.03) {
        const double tc = 1.0;
        const int bound = AnalyticalModel::idleBound(tm, tc, n);
        ASSERT_GE(bound, 1);
        ASSERT_LE(bound, n);
        EXPECT_FALSE(AnalyticalModel::someCoresIdle(tm, tc, bound, n))
            << "tm=" << tm << " bound=" << bound;
        if (bound > 1) {
            EXPECT_TRUE(
                AnalyticalModel::someCoresIdle(tm, tc, bound - 1, n))
                << "tm=" << tm << " bound=" << bound;
        }
    }
}

TEST(IdleBound, PaperExamples)
{
    // Sec. IV-B: T_m1/T_c = 0.1 -> all cores busy at MTL=1 on a
    // quad-core; 0.5 -> some cores idle at MTL=1.
    EXPECT_EQ(AnalyticalModel::idleBound(0.1, 1.0, 4), 1);
    EXPECT_GT(AnalyticalModel::idleBound(0.5, 1.0, 4), 1);
    // Region boundary: ratio exactly 1/3 keeps MTL=1 all-busy.
    EXPECT_EQ(AnalyticalModel::idleBound(1.0, 3.0, 4), 1);
}

TEST(IdleBound, DegenerateInputs)
{
    EXPECT_EQ(AnalyticalModel::idleBound(0.0, 0.0, 4), 1);
    EXPECT_EQ(AnalyticalModel::idleBound(0.0, 1.0, 4), 1);
    EXPECT_EQ(AnalyticalModel::idleBound(1.0, 0.0, 4), 4);
    EXPECT_EQ(AnalyticalModel::idleBound(5.0, 1.0, 1), 1);
}

TEST(ExecTime, TwoRegimes)
{
    // All busy: (tm + tc) * t / n.
    EXPECT_DOUBLE_EQ(AnalyticalModel::execTime(1.0, 3.0, 8, 1, 4),
                     (1.0 + 3.0) * 8 / 4.0);
    // Some idle: tm * t / k.
    EXPECT_DOUBLE_EQ(AnalyticalModel::execTime(2.0, 1.0, 8, 1, 4),
                     2.0 * 8 / 1.0);
}

TEST(Speedup, MatchesExecTimeRatio)
{
    // speedup(k) must equal execTime(n) / execTime(k) for matching
    // measurements.
    const int n = 4;
    const int t = 100;
    const double tc = 1.0;
    for (double tm1 = 0.05; tm1 <= 4.0; tm1 += 0.07) {
        // Queuing model gives consistent tm at every MTL.
        const QueuingModel qm{tm1 * 0.7, tm1 * 0.3};
        const double tm_n = qm.tmAt(n);
        for (int k = 1; k <= n; ++k) {
            const double tm_k = qm.tmAt(k);
            const double direct =
                AnalyticalModel::execTime(tm_n, tc, t, n, n) /
                AnalyticalModel::execTime(tm_k, tc, t, k, n);
            EXPECT_NEAR(
                AnalyticalModel::speedup(tm_k, tm_n, tc, k, n),
                direct, 1e-9);
        }
    }
}

TEST(Speedup, RankOrdersLikeSpeedup)
{
    // speedupRank must induce the same ordering as speedup: the
    // common (T_mn + T_c) factor cancels.
    const int n = 4;
    const double tc = 1.0;
    const QueuingModel qm{0.8, 0.25};
    const double tm_n = qm.tmAt(n);
    for (int a = 1; a <= n; ++a) {
        for (int b = 1; b <= n; ++b) {
            const double sa =
                AnalyticalModel::speedup(qm.tmAt(a), tm_n, tc, a, n);
            const double sb =
                AnalyticalModel::speedup(qm.tmAt(b), tm_n, tc, b, n);
            const double ra =
                AnalyticalModel::speedupRank(qm.tmAt(a), tc, a, n);
            const double rb =
                AnalyticalModel::speedupRank(qm.tmAt(b), tc, b, n);
            EXPECT_EQ(sa < sb, ra < rb) << "a=" << a << " b=" << b;
        }
    }
}

/**
 * Property sweep over queuing-model workloads: the two Sec. IV-C
 * monotonicity lemmas.
 */
class MonotonicityLemmas
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(MonotonicityLemmas, LowestBusyAndHighestIdleWin)
{
    const auto [tml, tql, tc] = GetParam();
    const int n = 4;
    const QueuingModel qm{tml, tql};
    const double tm_n = qm.tmAt(n);

    // Lemma 1: among MTLs where all cores are busy, the lowest wins.
    // Lemma 2: among MTLs where some cores idle, the highest wins.
    for (int k = 1; k < n; ++k) {
        const double s_k =
            AnalyticalModel::speedup(qm.tmAt(k), tm_n, tc, k, n);
        const double s_k1 =
            AnalyticalModel::speedup(qm.tmAt(k + 1), tm_n, tc, k + 1, n);
        const bool busy_k =
            AnalyticalModel::allCoresBusy(qm.tmAt(k), tc, k, n);
        const bool busy_k1 =
            AnalyticalModel::allCoresBusy(qm.tmAt(k + 1), tc, k + 1, n);
        if (busy_k && busy_k1) {
            EXPECT_GE(s_k, s_k1 - 1e-12)
                << "busy regime not monotone at k=" << k;
        }
        if (!busy_k && !busy_k1) {
            EXPECT_LE(s_k, s_k1 + 1e-12)
                << "idle regime not monotone at k=" << k;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    QueuingSweep, MonotonicityLemmas,
    ::testing::Combine(::testing::Values(0.2, 0.5, 1.0, 2.0),
                       ::testing::Values(0.01, 0.05, 0.2, 0.5),
                       ::testing::Values(0.5, 1.0, 3.0, 10.0)));

TEST(RegionBoundary, PeakLocations)
{
    EXPECT_NEAR(AnalyticalModel::regionBoundary(1, 4), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(AnalyticalModel::regionBoundary(2, 4), 1.0, 1e-12);
    EXPECT_NEAR(AnalyticalModel::regionBoundary(3, 4), 3.0, 1e-12);
    EXPECT_TRUE(std::isinf(AnalyticalModel::regionBoundary(4, 4)));
}

TEST(QueuingModelFit, RoundTrips)
{
    const QueuingModel truth{1.5, 0.4};
    const QueuingModel fitted =
        QueuingModel::fit(1, truth.tmAt(1), 3, truth.tmAt(3));
    EXPECT_NEAR(fitted.tml, truth.tml, 1e-12);
    EXPECT_NEAR(fitted.tql, truth.tql, 1e-12);
    EXPECT_NEAR(fitted.tmAt(7), truth.tmAt(7), 1e-12);
}

// ---------------------------------------------------------------------
// Degenerate measurement windows (fault tolerance): the run-time
// mechanism can hand the model corrupted averages -- zero, negative,
// NaN, infinite. Every formula must return an in-range, well-defined
// answer instead of dividing by zero or tripping an assertion.

TEST(DegenerateInputs, ZeroTimesNeverDivideByZero)
{
    // T_c == 0 and T_mk == 0 together: no information, no restriction.
    EXPECT_EQ(AnalyticalModel::idleBound(0.0, 0.0, 4), 1);
    EXPECT_FALSE(AnalyticalModel::someCoresIdle(0.0, 0.0, 2, 4));
    // T_c == 0 with real memory time: memory-bound, bound = n.
    EXPECT_EQ(AnalyticalModel::idleBound(1.0, 0.0, 4), 4);
    // T_mk == 0 with real compute time: compute-bound, bound = 1.
    EXPECT_EQ(AnalyticalModel::idleBound(0.0, 1.0, 4), 1);
}

TEST(DegenerateInputs, NegativeTimesAreClampedToZero)
{
    EXPECT_EQ(AnalyticalModel::idleBound(-3.0, 1.0, 4),
              AnalyticalModel::idleBound(0.0, 1.0, 4));
    EXPECT_EQ(AnalyticalModel::idleBound(1.0, -3.0, 4),
              AnalyticalModel::idleBound(1.0, 0.0, 4));
    EXPECT_FALSE(AnalyticalModel::someCoresIdle(-1.0, -1.0, 1, 4));
}

TEST(DegenerateInputs, NanTimesCarryNoInformation)
{
    const double nan = std::nan("");
    const int bound = AnalyticalModel::idleBound(nan, nan, 4);
    EXPECT_GE(bound, 1);
    EXPECT_LE(bound, 4);
    EXPECT_FALSE(AnalyticalModel::someCoresIdle(nan, 1.0, 2, 4));
    EXPECT_EQ(AnalyticalModel::idleBound(nan, 1.0, 4), 1);
}

TEST(DegenerateInputs, InfiniteTimesPickTheMeaningfulLimit)
{
    const double inf = std::numeric_limits<double>::infinity();
    // Infinitely slow memory: fully memory-bound.
    EXPECT_EQ(AnalyticalModel::idleBound(inf, 1.0, 4), 4);
    // Infinitely slow compute: throttling can never bind.
    EXPECT_EQ(AnalyticalModel::idleBound(1.0, inf, 4), 1);
    // Both infinite: no evidence either way, stay unrestricted-safe.
    const int bound = AnalyticalModel::idleBound(inf, inf, 4);
    EXPECT_GE(bound, 1);
    EXPECT_LE(bound, 4);
    EXPECT_TRUE(AnalyticalModel::someCoresIdle(inf, 1.0, 2, 4));
    EXPECT_FALSE(AnalyticalModel::someCoresIdle(inf, inf, 2, 4));
}

TEST(DegenerateInputs, IdleBoundAlwaysInRange)
{
    const double inputs[] = {0.0,
                             -1.0,
                             1e-300,
                             1e300,
                             std::nan(""),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()};
    for (int n : {1, 2, 4, 32}) {
        for (double tm : inputs) {
            for (double tc : inputs) {
                const int bound = AnalyticalModel::idleBound(tm, tc, n);
                EXPECT_GE(bound, 1) << "tm=" << tm << " tc=" << tc;
                EXPECT_LE(bound, n) << "tm=" << tm << " tc=" << tc;
            }
        }
    }
}

} // namespace
