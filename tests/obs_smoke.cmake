# End-to-end smoke of the observability tooling, run as a ctest via
# `cmake -P` (see tests/CMakeLists.txt): ttsim writes a time-series
# file, ttreport writes report JSON from two seeded runs, the --diff
# gate exits 0 on identical runs and non-zero on an injected
# regression, and the live-telemetry path (--live-metrics + ttstat)
# serves valid OpenMetrics on both backends. Expects -DTTSIM=,
# -DTTREPORT=, -DTTSTAT=, -DWORK_DIR=.

foreach(var TTSIM TTREPORT TTSTAT WORK_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "obs_smoke: missing -D${var}=")
    endif()
endforeach()
file(MAKE_DIRECTORY "${WORK_DIR}")

# 1. ttsim emits a non-empty JSONL time series.
execute_process(
    COMMAND "${TTSIM}" --workload synthetic --policy dynamic
            --pairs 64 --quiet
            --timeseries-out "${WORK_DIR}/ts.jsonl"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttsim --timeseries-out failed (rc=${rc})")
endif()
file(READ "${WORK_DIR}/ts.jsonl" ts_rows)
if(ts_rows STREQUAL "")
    message(FATAL_ERROR "time-series file is empty")
endif()

# 1b. The real-thread backend drives the same engine and tooling:
# a host run must also produce a non-empty time series.
execute_process(
    COMMAND "${TTSIM}" --host --workload synthetic --policy dynamic
            --pairs 32 --quiet
            --timeseries-out "${WORK_DIR}/ts_host.jsonl"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttsim --host failed (rc=${rc})")
endif()
file(READ "${WORK_DIR}/ts_host.jsonl" host_rows)
if(host_rows STREQUAL "")
    message(FATAL_ERROR "host time-series file is empty")
endif()

# 1c. Graceful perf degradation: --host --perf-counters must exit 0
# whether or not the kernel grants perf_event_open (CI containers
# usually refuse it -- that is exactly the NullCounterProvider path).
execute_process(
    COMMAND "${TTSIM}" --host --workload synthetic --policy dynamic
            --pairs 32 --quiet --perf-counters
            --metrics-out "${WORK_DIR}/perf_host.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "ttsim --host --perf-counters exited ${rc}, want 0 "
            "(degradation must not fail the run)")
endif()
file(READ "${WORK_DIR}/perf_host.json" perf_host)
if(NOT perf_host MATCHES "runtime\\.perf_unavailable")
    message(FATAL_ERROR
            "host metrics lack the runtime.perf_unavailable gauge")
endif()

# 1d. On the simulator the same flag must produce the full schema
# with nonzero aggregates (counters are synthesized, never absent).
execute_process(
    COMMAND "${TTSIM}" --workload synthetic --policy dynamic
            --pairs 64 --quiet --perf-counters
            --metrics-out "${WORK_DIR}/perf_sim.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttsim --perf-counters (sim) failed (rc=${rc})")
endif()
file(READ "${WORK_DIR}/perf_sim.json" perf_sim)
foreach(name llc_misses cycles stalled_cycles instructions)
    if(NOT perf_sim MATCHES "runtime\\.perf\\.${name}")
        message(FATAL_ERROR
                "sim metrics lack runtime.perf.${name}")
    endif()
endforeach()
if(perf_sim MATCHES "\"runtime\\.perf\\.llc_misses\": 0[,}]")
    message(FATAL_ERROR "sim run synthesized zero LLC misses")
endif()

# 1e. Open-loop overload on the simulator: a seeded 2x-overload run
# must complete (exit 0 -- no watchdog, shedding instead of collapse)
# and export the robustness counters in its metrics JSON.
execute_process(
    COMMAND "${TTSIM}" --workload synthetic --policy dynamic
            --pairs 64 --quiet
            --arrival-rate 20000 --arrival-process bursty
            --slo-us 2000 --queue-cap 8
            --service-us 140 --service-tql-us 40
            --metrics-out "${WORK_DIR}/openloop_sim.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttsim open-loop (sim) exited ${rc}, want 0")
endif()
file(READ "${WORK_DIR}/openloop_sim.json" openloop_sim)
foreach(name admitted shed deadline_missed)
    if(NOT openloop_sim MATCHES "runtime\\.jobs_${name}")
        message(FATAL_ERROR "sim metrics lack runtime.jobs_${name}")
    endif()
endforeach()
if(openloop_sim MATCHES "\"runtime\\.jobs_shed\": 0[,}]")
    message(FATAL_ERROR "2x overload run shed no jobs")
endif()

# 1f. The host backend replays the same plan through real threads and
# wall-clock timers; a generous SLO keeps the run green everywhere.
execute_process(
    COMMAND "${TTSIM}" --host --workload synthetic --policy dynamic
            --pairs 32 --quiet
            --arrival-rate 4000 --slo-us 30000000 --queue-cap 64
            --metrics-out "${WORK_DIR}/openloop_host.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttsim open-loop (host) exited ${rc}, want 0")
endif()
file(READ "${WORK_DIR}/openloop_host.json" openloop_host)
if(NOT openloop_host MATCHES "runtime\\.jobs_admitted")
    message(FATAL_ERROR "host metrics lack runtime.jobs_admitted")
endif()

# 1g. The ttreport SLO sweep emits the report's "slo" section with
# per-rate points and a knee.
execute_process(
    COMMAND "${TTREPORT}" --workload synthetic --policy dynamic
            --arrival-rate 5000 --slo-us 2000
            --service-us 140 --service-tql-us 40
            --out "${WORK_DIR}/slo.json"
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttreport SLO sweep failed (rc=${rc})")
endif()
file(READ "${WORK_DIR}/slo.json" slo_report)
foreach(key "\"slo\"" "\"knee_rate\"" "\"attainment\"")
    if(NOT slo_report MATCHES "${key}")
        message(FATAL_ERROR "SLO report lacks ${key}")
    endif()
endforeach()

# 1h. Live telemetry on the simulator: --live-metrics writes periodic
# OpenMetrics snapshots keyed to simulated time, and ttstat reads the
# file back verbatim.
execute_process(
    COMMAND "${TTSIM}" --workload synthetic --policy dynamic
            --pairs 64 --quiet
            --live-metrics "${WORK_DIR}/live_sim.om"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttsim --live-metrics (sim) failed (rc=${rc})")
endif()
if(NOT EXISTS "${WORK_DIR}/live_sim.om")
    message(FATAL_ERROR "sim run left no live-metrics snapshot file")
endif()
execute_process(
    COMMAND "${TTSTAT}" "${WORK_DIR}/live_sim.om"
    OUTPUT_VARIABLE live_sim
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttstat on the sim snapshot failed (rc=${rc})")
endif()
foreach(key "# EOF" "obs_spans_dropped_total"
        "obs_overhead_trace_record_ns_total" "runtime_makespan_seconds"
        "obs_snapshot_time_seconds")
    if(NOT live_sim MATCHES "${key}")
        message(FATAL_ERROR "sim OpenMetrics snapshot lacks '${key}'")
    endif()
endforeach()

# 1i. Live telemetry on the host: a background arrival-paced run
# serves OpenMetrics over a unix socket, and ttstat polls it while the
# run is still in flight (retrying until the listener is up).
find_program(SH_PROGRAM sh)
if(SH_PROGRAM)
    execute_process(
        COMMAND "${SH_PROGRAM}" -c
            "'${TTSIM}' --host --workload synthetic --policy dynamic \
                 --threads 2 --pairs 200 --count 32 --quiet \
                 --arrival-rate 2000 --slo-us 30000000 --queue-cap 64 \
                 --live-metrics '${WORK_DIR}/live.sock' & \
             pid=$!; ok=1; \
             for i in $(seq 1 100); do \
                 if '${TTSTAT}' '${WORK_DIR}/live.sock' \
                         > '${WORK_DIR}/live_host.om' 2>/dev/null; then \
                     ok=0; break; \
                 fi; \
                 sleep 0.01; \
             done; \
             wait $pid || ok=1; exit $ok"
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "mid-run ttstat poll of the host unix socket failed "
                "(rc=${rc})")
    endif()
    file(READ "${WORK_DIR}/live_host.om" live_host)
    if(NOT live_host MATCHES "# EOF")
        message(FATAL_ERROR
                "mid-run host snapshot is not terminated OpenMetrics")
    endif()
else()
    message(STATUS "obs_smoke: no sh on PATH, skipping host socket poll")
endif()

# 1j. Streaming health detectors under a deadline storm: a bursty
# overload with most SLOs slashed must fire the slo_burn alert during
# the bursts AND clear it in the recovery valleys (hysteresis edges,
# not a stuck alert). Both edge counters land in the metrics JSON.
# 800 jobs at 20k/s span two 20 ms burst periods, so the plan holds a
# full 15 ms valley for the burn EWMAs to decay and clear in.
execute_process(
    COMMAND "${TTSIM}" --workload synthetic --policy dynamic
            --pairs 800 --quiet --health
            --arrival-rate 20000 --arrival-process bursty
            --slo-us 2000 --queue-cap 8
            --service-us 140 --service-tql-us 40
            --inject-deadline-storm 0.9
            --metrics-out "${WORK_DIR}/health_storm.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttsim deadline-storm health run exited ${rc}")
endif()
file(READ "${WORK_DIR}/health_storm.json" health_storm)
if(NOT health_storm MATCHES "obs\\.alerts_fired\\.slo_burn")
    message(FATAL_ERROR "storm metrics lack obs.alerts_fired.slo_burn")
endif()
if(health_storm MATCHES "\"obs\\.alerts_fired\\.slo_burn\": 0[,}]")
    message(FATAL_ERROR
            "deadline storm fired no slo_burn alert")
endif()
if(health_storm MATCHES "\"obs\\.alerts_cleared\\.slo_burn\": 0[,}]")
    message(FATAL_ERROR
            "slo_burn alert never cleared after recovery")
endif()

# 1k. A healthy closed-loop run watched by the same detectors must
# stay quiet: every fired counter is zero and ttstat --alerts exits 0
# (exit 3 is reserved for an active critical alert).
execute_process(
    COMMAND "${TTSIM}" --workload synthetic --policy dynamic
            --pairs 64 --quiet --health
            --metrics-out "${WORK_DIR}/health_quiet.json"
            --live-metrics "${WORK_DIR}/health_quiet.om"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttsim healthy --health run exited ${rc}")
endif()
file(READ "${WORK_DIR}/health_quiet.json" health_quiet)
if(NOT health_quiet MATCHES "obs\\.alerts_fired\\.")
    message(FATAL_ERROR "healthy run exported no alert schema")
endif()
string(REGEX MATCH "\"obs\\.alerts_fired\\.[a-z_]+\": [1-9]"
       fired_nonzero "${health_quiet}")
if(fired_nonzero)
    message(FATAL_ERROR
            "healthy closed-loop run fired an alert: ${fired_nonzero}")
endif()
execute_process(
    COMMAND "${TTSTAT}" --alerts "${WORK_DIR}/health_quiet.om"
    OUTPUT_VARIABLE quiet_alerts
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "ttstat --alerts on a healthy run exited ${rc}, want 0")
endif()
if(NOT quiet_alerts MATCHES "slo_burn")
    message(FATAL_ERROR
            "ttstat --alerts did not render the detector table")
endif()

# 2. Two identical seeded runs produce identical reports: diff passes.
foreach(name a b)
    execute_process(
        COMMAND "${TTREPORT}" --workload phased --policy dynamic
                --out "${WORK_DIR}/${name}.json"
        OUTPUT_QUIET
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "ttreport run '${name}' failed (rc=${rc})")
    endif()
endforeach()
execute_process(
    COMMAND "${TTREPORT}" --diff "${WORK_DIR}/a.json"
            "${WORK_DIR}/b.json"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "diff of identical runs exited ${rc}, want 0")
endif()

# 2b. Report JSON carries the per-job critical-path decomposition
# (spans are always assembled), with every component present.
file(READ "${WORK_DIR}/a.json" report_a)
foreach(key "\"critical_path\"" "\"queue_wait\"" "\"mem_stall\""
        "\"retry_backoff\"")
    if(NOT report_a MATCHES "${key}")
        message(FATAL_ERROR "report JSON lacks ${key}")
    endif()
endforeach()

# 3. A shorter run of the same workload spends a larger share of its
# pairs probing and settles later, so its per-phase latencies regress
# against the baseline -- the gate must catch it.
execute_process(
    COMMAND "${TTREPORT}" --workload phased --policy dynamic
            --pairs 32 --out "${WORK_DIR}/c.json"
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ttreport regressed run failed (rc=${rc})")
endif()
execute_process(
    COMMAND "${TTREPORT}" --diff "${WORK_DIR}/a.json"
            "${WORK_DIR}/c.json"
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR "diff missed the injected regression")
endif()

# 4. Dispatch-throughput regression gate: fresh micro-runtime numbers
# against the committed baseline (excess per-benchmark loss fails).
# Five repetitions per benchmark so the script compares medians, not
# one noisy sample. Skipped under sanitizers (instrumented timings do
# not compare) and when no python3 was found; the script itself skips
# when the machine fingerprint differs from the baseline's.
if(TT_SANITIZE)
    message(STATUS "obs_smoke: TT_SANITIZE=${TT_SANITIZE}, "
                   "skipping bench regression gate")
elseif(NOT PYTHON3 OR NOT BENCH_MICRO)
    message(STATUS "obs_smoke: no python3/bench binary, "
                   "skipping bench regression gate")
else()
    execute_process(
        COMMAND "${BENCH_MICRO}"
                --benchmark_filter=HostDispatch|HostRuntimePairDispatch|MpmcQueue|ShardedGate|SimDispatch
                --benchmark_min_time=0.1
                --benchmark_repetitions=5
                --json-out "${WORK_DIR}/bench_micro.json"
        OUTPUT_QUIET ERROR_QUIET
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "bench_micro_runtime failed (rc=${rc})")
    endif()
    execute_process(
        COMMAND "${PYTHON3}" "${CHECK_REGRESSION}"
                --current "${WORK_DIR}/bench_micro.json"
                --baseline "${BENCH_BASELINE}"
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "dispatch-throughput regression gate failed (rc=${rc}); "
                "see bench/check_regression.py")
    endif()
endif()

message(STATUS "obs smoke passed")
