/**
 * @file
 * Tests of the runtime observability layer: the per-worker trace
 * rings and their merge, the log-bucket histogram, the thread-safe
 * metrics registry, the shared Chrome exporter, and the host
 * runtime's end-to-end trace/metrics production (including that
 * per-task MTL annotations agree with the policy's mtlTrace()).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "core/dynamic_policy.hh"
#include "obs/chrome_trace.hh"
#include "obs/trace.hh"
#include "runtime/runtime.hh"
#include "util/stats.hh"
#include "workloads/synthetic.hh"

namespace {

using tt::Histogram;
using tt::MetricsRegistry;
using tt::core::DynamicThrottlePolicy;
using tt::obs::TaskEvent;
using tt::obs::TraceData;
using tt::obs::Tracer;
using tt::obs::TraceRing;

TaskEvent
eventAt(double start, int task = 0, int worker = 0)
{
    TaskEvent event;
    event.task = task;
    event.worker = worker;
    event.start = start;
    event.end = start + 1.0;
    return event;
}

TEST(TraceRing, KeepsEventsInRecordOrder)
{
    TraceRing ring(8);
    for (int i = 0; i < 5; ++i)
        ring.record(eventAt(static_cast<double>(i), i));
    EXPECT_EQ(ring.size(), 5u);
    EXPECT_EQ(ring.recorded(), 5u);
    EXPECT_EQ(ring.dropped(), 0u);
    const auto events = ring.events();
    ASSERT_EQ(events.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(events[static_cast<std::size_t>(i)].task, i);
}

TEST(TraceRing, WrapsOverwritingOldestAndCountsDrops)
{
    TraceRing ring(4);
    for (int i = 0; i < 10; ++i)
        ring.record(eventAt(static_cast<double>(i), i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.recorded(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);
    const auto events = ring.events();
    ASSERT_EQ(events.size(), 4u);
    // The four newest survive, oldest first.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(events[static_cast<std::size_t>(i)].task, 6 + i);
}

TEST(Tracer, MergeSortsAcrossWorkerRings)
{
    Tracer tracer(3, 16);
    // Interleaved starts across workers, recorded out of global
    // order (each worker's own record order is chronological).
    tracer.ring(0).record(eventAt(0.0, 0, 0));
    tracer.ring(0).record(eventAt(3.0, 3, 0));
    tracer.ring(1).record(eventAt(1.0, 1, 1));
    tracer.ring(1).record(eventAt(4.0, 4, 1));
    tracer.ring(2).record(eventAt(2.0, 2, 2));

    const auto merged = tracer.merged();
    ASSERT_EQ(merged.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(merged[static_cast<std::size_t>(i)].task, i);
    EXPECT_EQ(tracer.recorded(), 5u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ConcurrentWorkersRecordWithoutInterference)
{
    // Each worker owns its ring: concurrent recording must need no
    // synchronisation and lose nothing. (This test is part of the
    // "concurrency" ctest label exercised under TSan.)
    const int workers = 4;
    const int per_worker = 5000;
    Tracer tracer(workers, per_worker);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int w = 0; w < workers; ++w) {
        threads.emplace_back([&tracer, w] {
            for (int i = 0; i < per_worker; ++i) {
                tracer.ring(w).record(
                    eventAt(static_cast<double>(i), i, w));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(tracer.recorded(),
              static_cast<std::uint64_t>(workers * per_worker));
    EXPECT_EQ(tracer.dropped(), 0u);
    const auto merged = tracer.merged();
    EXPECT_EQ(merged.size(),
              static_cast<std::size_t>(workers * per_worker));
}

TEST(HistogramTest, BucketBoundariesAreExact)
{
    Histogram hist(Histogram::Options{
        .min_value = 1.0, .growth = 2.0, .buckets = 4});
    // Slots: [underflow) [1,2) [2,4) [4,8) [8,16) [overflow).
    EXPECT_EQ(hist.bucketCount(), 6);
    EXPECT_EQ(hist.bucketIndex(0.5), 0);
    EXPECT_EQ(hist.bucketIndex(1.0), 1);
    EXPECT_EQ(hist.bucketIndex(1.999), 1);
    EXPECT_EQ(hist.bucketIndex(2.0), 2);
    EXPECT_EQ(hist.bucketIndex(7.999), 3);
    EXPECT_EQ(hist.bucketIndex(8.0), 4);
    EXPECT_EQ(hist.bucketIndex(16.0), 5);
    EXPECT_EQ(hist.bucketIndex(1e9), 5);

    EXPECT_DOUBLE_EQ(hist.bucketLowerBound(0), 0.0);
    EXPECT_DOUBLE_EQ(hist.bucketUpperBound(0), 1.0);
    EXPECT_DOUBLE_EQ(hist.bucketLowerBound(2), 2.0);
    EXPECT_DOUBLE_EQ(hist.bucketUpperBound(2), 4.0);
    EXPECT_TRUE(std::isinf(hist.bucketUpperBound(5)));
}

TEST(HistogramTest, CountsMomentsAndHits)
{
    Histogram hist(Histogram::Options{
        .min_value = 1.0, .growth = 2.0, .buckets = 4});
    for (double x : {0.5, 1.5, 1.5, 3.0, 20.0})
        hist.add(x);
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_EQ(hist.bucketHits(0), 1u);
    EXPECT_EQ(hist.bucketHits(1), 2u);
    EXPECT_EQ(hist.bucketHits(2), 1u);
    EXPECT_EQ(hist.bucketHits(5), 1u);
    EXPECT_DOUBLE_EQ(hist.min(), 0.5);
    EXPECT_DOUBLE_EQ(hist.max(), 20.0);
    EXPECT_NEAR(hist.mean(), (0.5 + 1.5 + 1.5 + 3.0 + 20.0) / 5.0,
                1e-12);
}

TEST(HistogramTest, QuantilesAreMonotoneAndClamped)
{
    Histogram hist;
    for (int i = 1; i <= 1000; ++i)
        hist.add(i * 1e-6); // 1..1000 us
    double prev = 0.0;
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        const double value = hist.quantile(q);
        EXPECT_GE(value, prev);
        EXPECT_GE(value, hist.min());
        EXPECT_LE(value, hist.max());
        prev = value;
    }
    // The median of 1..1000 us lands within its x2 bucket.
    EXPECT_GT(hist.quantile(0.5), 250e-6);
    EXPECT_LT(hist.quantile(0.5), 1024e-6);
    EXPECT_EQ(hist.quantile(0.0), hist.min());
    EXPECT_EQ(hist.quantile(1.0), hist.max());
}

TEST(HistogramTest, MergeAddsBucketsAndMoments)
{
    Histogram a;
    Histogram b;
    for (int i = 0; i < 100; ++i) {
        a.add(1e-6);
        b.add(1e-3);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), 200u);
    EXPECT_DOUBLE_EQ(a.min(), 1e-6);
    EXPECT_DOUBLE_EQ(a.max(), 1e-3);
    EXPECT_NEAR(a.mean(), (100 * 1e-6 + 100 * 1e-3) / 200.0, 1e-15);
    EXPECT_EQ(a.bucketHits(a.bucketIndex(1e-6)), 100u);
    EXPECT_EQ(a.bucketHits(a.bucketIndex(1e-3)), 100u);
}

TEST(MetricsRegistryTest, CountersGaugesHistograms)
{
    MetricsRegistry metrics;
    EXPECT_TRUE(metrics.empty());
    metrics.add("a.counter");
    metrics.add("a.counter", 9);
    metrics.set("a.gauge", 2.5);
    metrics.setMax("a.peak", 3.0);
    metrics.setMax("a.peak", 1.0); // lower: ignored
    metrics.observe("a.hist", 1e-6);
    metrics.observe("a.hist", 2e-6);

    EXPECT_EQ(metrics.counter("a.counter"), 10);
    EXPECT_EQ(metrics.counter("missing"), 0);
    EXPECT_DOUBLE_EQ(metrics.gauge("a.gauge"), 2.5);
    EXPECT_DOUBLE_EQ(metrics.gauge("a.peak"), 3.0);
    EXPECT_DOUBLE_EQ(metrics.gauge("missing", -1.0), -1.0);
    EXPECT_EQ(metrics.histogram("a.hist").count(), 2u);
    EXPECT_TRUE(metrics.hasCounter("a.counter"));
    EXPECT_FALSE(metrics.hasCounter("a.gauge"));
    EXPECT_FALSE(metrics.empty());

    metrics.clear();
    EXPECT_TRUE(metrics.empty());
}

TEST(MetricsRegistryTest, ConcurrentPublishersLoseNothing)
{
    // Part of the "concurrency" ctest label exercised under TSan.
    MetricsRegistry metrics;
    const int threads = 8;
    const int iterations = 10000;
    std::vector<std::thread> publishers;
    publishers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
        publishers.emplace_back([&metrics, t] {
            for (int i = 0; i < iterations; ++i) {
                metrics.add("shared.counter");
                metrics.observe("shared.hist",
                                static_cast<double>(i + 1) * 1e-6);
                metrics.setMax("shared.peak",
                               static_cast<double>(t * iterations + i));
            }
        });
    }
    for (auto &publisher : publishers)
        publisher.join();

    EXPECT_EQ(metrics.counter("shared.counter"),
              static_cast<std::int64_t>(threads) * iterations);
    EXPECT_EQ(metrics.histogram("shared.hist").count(),
              static_cast<std::size_t>(threads) * iterations);
    EXPECT_DOUBLE_EQ(metrics.gauge("shared.peak"),
                     static_cast<double>(threads * iterations - 1));
}

TEST(MetricsRegistryTest, JsonAndSummaryListEveryMetric)
{
    MetricsRegistry metrics;
    metrics.add("policy.probe_pairs", 7);
    metrics.set("runtime.makespan_seconds", 0.25);
    metrics.observe("runtime.tm_seconds.mtl=2", 1e-4);

    std::ostringstream os;
    metrics.writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"policy.probe_pairs\": 7"),
              std::string::npos);
    EXPECT_NE(json.find("runtime.makespan_seconds"),
              std::string::npos);
    EXPECT_NE(json.find("runtime.tm_seconds.mtl=2"),
              std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
    // Balanced braces/brackets (structural sanity).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(std::count(json.begin(), json.end(), '['),
              std::count(json.begin(), json.end(), ']'));

    const std::string table = metrics.summaryTable();
    EXPECT_NE(table.find("policy.probe_pairs"), std::string::npos);
    EXPECT_NE(table.find("runtime.makespan_seconds"),
              std::string::npos);
    EXPECT_NE(table.find("runtime.tm_seconds.mtl=2"),
              std::string::npos);
}

TEST(ChromeTrace, RendersEventsCounterTrackAndMetadata)
{
    TraceData data;
    TaskEvent memory = eventAt(0.0, 0, 0);
    memory.is_memory = true;
    memory.pair = 0;
    memory.phase = 0;
    memory.mtl = 2;
    TaskEvent compute = eventAt(1.0, 1, 1);
    compute.pair = 0;
    compute.phase = 0;
    compute.mtl = 2;
    data.events = {memory, compute};
    data.mtl_trace = {{0.0, 4}, {0.5, 2}};
    data.phase_names = {"alpha"};

    const std::string json = tt::obs::chromeTraceString(data);
    auto count = [&json](const std::string &needle) {
        std::size_t hits = 0;
        for (std::size_t pos = json.find(needle);
             pos != std::string::npos;
             pos = json.find(needle, pos + needle.size()))
            ++hits;
        return hits;
    };
    EXPECT_EQ(count("\"ph\":\"X\""), 2u);
    EXPECT_EQ(count("\"cat\":\"memory\""), 1u);
    EXPECT_EQ(count("\"cat\":\"compute\""), 1u);
    EXPECT_EQ(count("\"name\":\"MTL\""), 2u);
    EXPECT_EQ(count("thread_name"), 2u);
    EXPECT_EQ(count("\"phase\":\"alpha\""), 2u);
    EXPECT_EQ(count("{"), count("}"));
}

/** The policy's MTL in force at time t per its transition log. */
int
mtlAt(const std::vector<std::pair<double, int>> &mtl_trace, double t)
{
    int mtl = 0;
    for (const auto &[time, value] : mtl_trace) {
        if (time > t)
            break;
        mtl = value;
    }
    return mtl;
}

TEST(HostObservability, TraceCoversEveryTaskAndMatchesMtlTrace)
{
    // Single worker: dispatch order is deterministic, so every
    // recorded event's MTL annotation must equal the policy's
    // mtlTrace() step function evaluated at the event's start.
    tt::workloads::SyntheticParams params;
    params.pairs = 48;
    params.footprint_bytes = 16 * 1024;
    auto workload = tt::workloads::buildSyntheticHost(params, 2);

    DynamicThrottlePolicy policy(2, 4);
    tt::MetricsRegistry metrics;
    policy.bindMetrics(&metrics);
    tt::runtime::RuntimeOptions options;
    options.threads = 1;
    options.pin_affinity = false;
    options.metrics = &metrics;
    tt::runtime::Runtime runtime(workload.graph, policy, options);
    const auto result = runtime.run();

    ASSERT_EQ(result.trace.size(),
              static_cast<std::size_t>(workload.graph.taskCount()));
    EXPECT_EQ(result.trace_dropped, 0u);
    for (std::size_t i = 1; i < result.trace.size(); ++i)
        EXPECT_LE(result.trace[i - 1].start, result.trace[i].start);
    for (const auto &event : result.trace) {
        EXPECT_EQ(event.worker, 0);
        EXPECT_EQ(event.mtl, mtlAt(result.mtl_trace, event.start))
            << "task " << event.task << " at t=" << event.start;
    }

    // The metrics registry saw both the policy and runtime series.
    EXPECT_EQ(metrics.counter("runtime.tasks_done"),
              workload.graph.taskCount());
    EXPECT_GE(metrics.counter("policy.selections"), 1);
    EXPECT_TRUE(metrics.hasGauge("policy.mtl"));
    bool saw_tm_histogram = false;
    for (const auto &name : metrics.histogramNames())
        saw_tm_histogram |=
            name.rfind("runtime.tm_seconds.mtl=", 0) == 0;
    EXPECT_TRUE(saw_tm_histogram);

    // And the shared exporter renders the host trace.
    const auto data =
        tt::runtime::toTraceData(workload.graph, result);
    const std::string json = tt::obs::chromeTraceString(data);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"MTL\""), std::string::npos);
}

TEST(HostObservability, TraceCapacityCapDropsOldestNotNewest)
{
    tt::workloads::SyntheticParams params;
    params.pairs = 32;
    params.footprint_bytes = 16 * 1024;
    auto workload = tt::workloads::buildSyntheticHost(params, 1);

    tt::core::ConventionalPolicy policy(1);
    tt::runtime::RuntimeOptions options;
    options.threads = 1;
    options.pin_affinity = false;
    options.trace_capacity = 8;
    tt::runtime::Runtime runtime(workload.graph, policy, options);
    const auto result = runtime.run();

    EXPECT_EQ(result.trace.size(), 8u);
    EXPECT_EQ(result.trace_dropped,
              static_cast<std::uint64_t>(
                  workload.graph.taskCount() - 8));
    // The survivors are the chronologically latest events.
    double max_start = 0.0;
    for (const auto &event : result.trace)
        max_start = std::max(max_start, event.start);
    EXPECT_GT(max_start, 0.0);
}

} // namespace
