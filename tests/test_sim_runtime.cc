/**
 * @file
 * Tests of the simulated-time scheduler: MTL enforcement, phase
 * barriers, dependency honouring, agreement with the analytical
 * model in both regimes, and the offline-exhaustive harness.
 */

#include <gtest/gtest.h>

#include "core/analytical_model.hh"
#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "workloads/calibration.hh"
#include "workloads/synthetic.hh"

namespace {

using tt::core::AnalyticalModel;
using tt::core::ConventionalPolicy;
using tt::core::StaticMtlPolicy;
using tt::cpu::MachineConfig;
using tt::simrt::RunResult;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;

TaskGraph
uniformGraph(int pairs, std::uint64_t bytes, std::uint64_t cycles)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(pairs, [&](int) {
        PairSpec spec;
        spec.bytes = bytes;
        spec.compute_cycles = cycles;
        return spec;
    });
    return std::move(builder).build();
}

TEST(SimRuntime, RunsEveryTaskExactlyOnce)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    const auto graph = uniformGraph(16, 64 * 1024, 100000);
    ConventionalPolicy policy(cfg.contexts());
    const RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    EXPECT_EQ(result.samples.size(), 16u);
    EXPECT_GT(result.seconds, 0.0);
}

TEST(SimRuntime, EmptyGraphCompletesImmediately)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    const TaskGraph graph = std::move(builder).build();
    ConventionalPolicy policy(cfg.contexts());
    const RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    EXPECT_EQ(result.seconds, 0.0);
    EXPECT_TRUE(result.samples.empty());
}

/** MTL must cap concurrent memory tasks for every static setting. */
class MtlEnforcement : public ::testing::TestWithParam<int>
{
};

TEST_P(MtlEnforcement, PeakInFlightNeverExceedsMtl)
{
    const int mtl = GetParam();
    const auto cfg = MachineConfig::i7_860_1dimm();
    const auto graph = uniformGraph(32, 128 * 1024, 50000);
    StaticMtlPolicy policy(mtl, cfg.contexts());
    const RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    EXPECT_LE(result.peak_mem_in_flight, mtl);
    // And with enough work the cap is actually reached.
    EXPECT_EQ(result.peak_mem_in_flight, mtl);
}

INSTANTIATE_TEST_SUITE_P(AllMtls, MtlEnforcement,
                         ::testing::Values(1, 2, 3, 4));

TEST(SimRuntime, SamplesCarryTheMtlInForce)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    const auto graph = uniformGraph(12, 128 * 1024, 50000);
    StaticMtlPolicy policy(2, cfg.contexts());
    const RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    for (const auto &sample : result.samples) {
        EXPECT_EQ(sample.mtl, 2);
        EXPECT_GT(sample.tm, 0.0);
        EXPECT_GT(sample.tc, 0.0);
        EXPECT_LE(sample.end_time, result.seconds + 1e-12);
    }
}

TEST(SimRuntime, TmGrowsWithMtl)
{
    // The paper's premise observed end-to-end: average memory-task
    // time is non-decreasing in the MTL.
    const auto cfg = MachineConfig::i7_860_1dimm();
    const auto graph = uniformGraph(32, 512 * 1024, 500000);
    double prev = 0.0;
    for (int k = 1; k <= cfg.contexts(); ++k) {
        StaticMtlPolicy policy(k, cfg.contexts());
        const RunResult result = tt::simrt::runOnce(cfg, graph, policy);
        EXPECT_GE(result.avg_tm, prev * 0.98) << "k=" << k;
        prev = result.avg_tm;
    }
}

TEST(SimRuntime, AllBusyRegimeMatchesModelExecTime)
{
    // Compute-heavy workload at MTL=1: the model says time =
    // (T_m1 + T_c) * t / n in steady state.
    const auto cfg = MachineConfig::i7_860_1dimm();
    const int pairs = 64;
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = 0.15;
    params.footprint_bytes = 256 * 1024;
    params.pairs = pairs;
    const auto graph = tt::workloads::buildSyntheticSim(cfg, params);
    StaticMtlPolicy policy(1, cfg.contexts());
    const RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    const double predicted = AnalyticalModel::execTime(
        result.avg_tm, result.avg_tc, pairs, 1, cfg.contexts());
    EXPECT_NEAR(result.seconds / predicted, 1.0, 0.10);
}

TEST(SimRuntime, IdleRegimeMatchesModelExecTime)
{
    // Memory-heavy workload at MTL=1: time = T_m1 * t / 1.
    const auto cfg = MachineConfig::i7_860_1dimm();
    const int pairs = 48;
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = 3.0;
    params.footprint_bytes = 256 * 1024;
    params.pairs = pairs;
    const auto graph = tt::workloads::buildSyntheticSim(cfg, params);
    StaticMtlPolicy policy(1, cfg.contexts());
    const RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    const double predicted = AnalyticalModel::execTime(
        result.avg_tm, result.avg_tc, pairs, 1, cfg.contexts());
    EXPECT_NEAR(result.seconds / predicted, 1.0, 0.10);
}

TEST(SimRuntime, PhasesRunInOrderWithBarriers)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    for (int phase = 0; phase < 3; ++phase) {
        builder.beginPhase("phase" + std::to_string(phase));
        builder.addPairs(8, [&](int) {
            PairSpec spec;
            spec.bytes = 64 * 1024;
            spec.compute_cycles = 30000;
            return spec;
        });
    }
    const TaskGraph graph = std::move(builder).build();
    ConventionalPolicy policy(cfg.contexts());
    const RunResult result = tt::simrt::runOnce(cfg, graph, policy);

    ASSERT_EQ(result.phases.size(), 3u);
    for (std::size_t i = 1; i < result.phases.size(); ++i) {
        // Barrier: a phase starts only after the previous one ends.
        EXPECT_GE(result.phases[i].start, result.phases[i - 1].end);
    }
}

TEST(SimRuntime, CrossPairDependenciesHonoured)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("chain");
    PairSpec spec;
    spec.bytes = 64 * 1024;
    spec.compute_cycles = 30000;
    const auto a = builder.addPair(spec);
    const auto b = builder.addPair(spec);
    builder.dependPairs(a, b); // b's memory waits on a's compute
    const TaskGraph graph = std::move(builder).build();
    ConventionalPolicy policy(cfg.contexts());
    const RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    ASSERT_EQ(result.samples.size(), 2u);
    // Completion order must be a then b.
    EXPECT_LT(result.samples[0].end_time, result.samples[1].end_time);
    // Serial chain: total >= sum of both pairs' task times.
    EXPECT_GE(result.seconds + 1e-12,
              result.samples[0].tm + result.samples[0].tc +
                  result.samples[1].tm + result.samples[1].tc);
}

TEST(SimRuntime, DeterministicAcrossRuns)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    const auto graph = uniformGraph(24, 256 * 1024, 200000);
    tt::core::DynamicThrottlePolicy p1(cfg.contexts(), 4);
    tt::core::DynamicThrottlePolicy p2(cfg.contexts(), 4);
    const RunResult a = tt::simrt::runOnce(cfg, graph, p1);
    const RunResult b = tt::simrt::runOnce(cfg, graph, p2);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.samples[i].tm, b.samples[i].tm);
        EXPECT_DOUBLE_EQ(a.samples[i].end_time, b.samples[i].end_time);
    }
}

TEST(SimRuntime, OfflineExhaustiveFindsComputeBoundOptimum)
{
    // Ratio 0.15 -> all cores busy at MTL=1, so offline search must
    // pick MTL=1 (contention-free memory tasks, no idle cost).
    const auto cfg = MachineConfig::i7_860_1dimm();
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = 0.15;
    params.footprint_bytes = 256 * 1024;
    params.pairs = 48;
    const auto graph = tt::workloads::buildSyntheticSim(cfg, params);
    const auto search = tt::simrt::offlineExhaustiveSearch(cfg, graph);
    // MTL 1 and 2 are near-tied at this ratio (both keep every core
    // busy and k=2 barely contends); conventional MTL=4 must lose.
    EXPECT_LE(search.best_mtl, 2);
    ASSERT_EQ(search.seconds_per_mtl.size(), 4u);
    EXPECT_LT(search.best_seconds, search.seconds_per_mtl.back());
    EXPECT_LT(search.seconds_per_mtl[0], search.seconds_per_mtl[3]);
}

TEST(SimRuntime, LlcFootprintReleasedByRunEnd)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    const auto graph = uniformGraph(16, 512 * 1024, 100000);
    ConventionalPolicy policy(cfg.contexts());
    tt::cpu::SimMachine machine(cfg);
    tt::simrt::SimRuntime runtime(machine, graph, policy);
    const RunResult result = runtime.run();
    EXPECT_GT(result.peak_llc_occupancy,
              cfg.mem.llc_resident_bytes);
    EXPECT_EQ(machine.mem().llc().liveFootprint(), 0u);
}

TEST(SimRuntime, MonitorOverheadIsBounded)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = 0.5;
    params.footprint_bytes = 256 * 1024;
    params.pairs = 256;
    const auto graph = tt::workloads::buildSyntheticSim(cfg, params);
    tt::core::DynamicThrottlePolicy policy(cfg.contexts(), 8);
    const RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    // Stationary workload: one selection; probes are a small slice.
    EXPECT_GT(result.monitor_overhead, 0.0);
    EXPECT_LT(result.monitor_overhead, 0.25);
    EXPECT_EQ(result.policy_stats.selections, 1);
}

} // namespace
