/**
 * @file
 * Tests of the workload builders: calibration accuracy, graph
 * shapes, the paper-ratio tables, and host-mode end-to-end
 * correctness of dft / streamcluster / SIFT against direct kernel
 * evaluation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "runtime/runtime.hh"
#include "simrt/sim_runtime.hh"
#include "workloads/calibration.hh"
#include "workloads/dft.hh"
#include "workloads/kernels/kmedian.hh"
#include "workloads/sift.hh"
#include "workloads/streamcluster.hh"
#include "workloads/synthetic.hh"
#include "workloads/tables.hh"

namespace {

using tt::core::ConventionalPolicy;
using tt::core::StaticMtlPolicy;
using tt::cpu::MachineConfig;

tt::runtime::RuntimeOptions
hostOptions()
{
    tt::runtime::RuntimeOptions opts;
    opts.threads = 2;
    opts.pin_affinity = false;
    return opts;
}

TEST(Calibration, RatioIsHitAtMtl1)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    for (double target : {0.1, 0.5, 1.0, 3.0}) {
        tt::workloads::SyntheticParams params;
        params.tm1_over_tc = target;
        params.footprint_bytes = 256 * 1024;
        params.pairs = 24;
        const auto graph =
            tt::workloads::buildSyntheticSim(cfg, params);
        StaticMtlPolicy policy(1, cfg.contexts());
        const auto run = tt::simrt::runOnce(cfg, graph, policy);
        EXPECT_NEAR(run.avg_tm / run.avg_tc, target, 0.15 * target)
            << "target ratio " << target;
    }
}

TEST(Calibration, MemoisationIsStable)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    const double a =
        tt::workloads::memSecondsPerByte(cfg, 512 * 1024, 1.0);
    const double b =
        tt::workloads::memSecondsPerByte(cfg, 512 * 1024, 1.0);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 0.0);
    // Sanity: effective single-stream bandwidth in the GB/s range.
    const double bw = 1.0 / a;
    EXPECT_GT(bw, 1e9);
    EXPECT_LT(bw, 8.5e9);
}

TEST(Tables, StreamclusterLookup)
{
    EXPECT_DOUBLE_EQ(tt::workloads::tables::streamclusterRatio(128),
                     0.3714);
    EXPECT_DOUBLE_EQ(tt::workloads::tables::streamclusterRatio(20),
                     0.4958);
}

TEST(TablesDeath, UnknownDimensionIsFatal)
{
    EXPECT_DEATH(
        { tt::workloads::tables::streamclusterRatio(77); }, "Table II");
}

TEST(SimWorkloads, DftHas96Pairs)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    const auto graph = tt::workloads::dftSim(cfg);
    EXPECT_EQ(graph.pairCount(), 96);
    EXPECT_EQ(graph.phaseCount(), 1);
}

TEST(SimWorkloads, SiftHasFourteenPhases)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    const auto graph = tt::workloads::siftSim(cfg);
    EXPECT_EQ(graph.phaseCount(), 14);
    EXPECT_EQ(graph.phases().front().name, "COPYUP");
    EXPECT_EQ(graph.phases().back().name, "DOG");
}

TEST(SimWorkloads, StreamclusterRatioMeasuredAtMtl1)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    for (int dim : {128, 32}) {
        const auto graph = tt::workloads::streamclusterSim(cfg, dim);
        StaticMtlPolicy policy(1, cfg.contexts());
        const auto run = tt::simrt::runOnce(cfg, graph, policy);
        const double expect =
            tt::workloads::tables::streamclusterRatio(dim);
        EXPECT_NEAR(run.avg_tm / run.avg_tc, expect, 0.15 * expect)
            << "dim " << dim;
    }
}

TEST(HostWorkloads, DftMatchesNaiveDft)
{
    auto host = tt::workloads::buildDftHost(8, 2, 64);
    ConventionalPolicy policy(2);
    tt::runtime::Runtime runtime(host.graph, policy, hostOptions());
    runtime.run();

    // Spot-check rows against the O(n^2) reference.
    for (std::size_t row : {std::size_t{0}, std::size_t{7},
                            std::size_t{15}}) {
        std::vector<tt::workloads::Complex> input(
            host.input->begin() +
                static_cast<std::ptrdiff_t>(row * host.cols),
            host.input->begin() +
                static_cast<std::ptrdiff_t>((row + 1) * host.cols));
        const auto expected = tt::workloads::naiveDft(input);
        std::vector<tt::workloads::Complex> actual(
            host.output->begin() +
                static_cast<std::ptrdiff_t>(row * host.cols),
            host.output->begin() +
                static_cast<std::ptrdiff_t>((row + 1) * host.cols));
        EXPECT_LT(tt::workloads::maxAbsError(actual, expected), 0.05f)
            << "row " << row;
    }
}

TEST(HostWorkloads, StreamclusterAssignsEveryPointToNearest)
{
    auto host = tt::workloads::buildStreamclusterHost(16, 8, 32, 4);
    ConventionalPolicy policy(2);
    tt::runtime::Runtime runtime(host.graph, policy, hostOptions());
    runtime.run();

    // Every point's recorded assignment must be the true nearest
    // center, and the total cost must match direct evaluation.
    double expected_cost = 0.0;
    const std::size_t total = static_cast<std::size_t>(host.pairs) *
                              host.points_per_block;
    for (std::size_t p = 0; p < total; ++p) {
        float cost = 0.0f;
        const std::size_t best = tt::workloads::nearestCenter(
            host.points->data() + p * host.dim, host.centers->data(),
            host.centers_k, host.dim, cost);
        EXPECT_EQ((*host.assignment)[p], best) << "point " << p;
        expected_cost += cost;
    }
    EXPECT_NEAR(host.totalCost(), expected_cost,
                1e-6 * std::abs(expected_cost) + 1e-6);
}

TEST(HostWorkloads, SiftPipelineMatchesDirectEvaluation)
{
    auto host = tt::workloads::buildSiftHost(64, 64);
    ConventionalPolicy policy(2);
    tt::runtime::Runtime runtime(host.graph, policy, hostOptions());
    runtime.run();

    // Recompute the pipeline with the plain kernels and compare the
    // streamed results stage by stage.
    using tt::workloads::convolveSeparable;
    using tt::workloads::differenceOfGaussians;
    using tt::workloads::downsample2x;
    using tt::workloads::Image;
    using tt::workloads::upsample2x;

    auto expectClose = [](const Image &got, const Image &want,
                          const char *what) {
        ASSERT_EQ(got.width, want.width) << what;
        ASSERT_EQ(got.height, want.height) << what;
        float worst = 0.0f;
        for (std::size_t i = 0; i < got.pixels.size(); ++i)
            worst = std::max(worst,
                             std::abs(got.pixels[i] - want.pixels[i]));
        EXPECT_LT(worst, 1e-4f) << what;
    };

    const Image up = upsample2x(*host.base);
    expectClose(*host.up, up, "COPYUP");

    const Image g1 = convolveSeparable(up, host.taps);
    expectClose(*host.g1, g1, "ECONVOLVE");

    const Image g2 = convolveSeparable(downsample2x(g1), host.taps);
    expectClose(*host.g2, g2, "ECONVOLVE2");

    Image o3 = convolveSeparable(downsample2x(g2), host.taps);
    expectClose(*host.o3[0], o3, "ECONVOLVE3-0");
    for (int i = 1; i < 5; ++i) {
        o3 = convolveSeparable(o3, host.taps);
        expectClose(*host.o3[static_cast<std::size_t>(i)], o3,
                    "ECONVOLVE3-i");
    }

    Image o4 = convolveSeparable(downsample2x(o3), host.taps);
    expectClose(*host.o4[0], o4, "ECONVOLVE4-0");
    for (int i = 1; i < 5; ++i) {
        o4 = convolveSeparable(o4, host.taps);
        expectClose(*host.o4[static_cast<std::size_t>(i)], o4,
                    "ECONVOLVE4-i");
    }

    const Image dog = differenceOfGaussians(up, g1);
    expectClose(*host.dog, dog, "DOG");
}

TEST(HostWorkloads, SyntheticHostComputesTheKernel)
{
    tt::workloads::SyntheticParams params;
    params.footprint_bytes = 4096;
    params.pairs = 4;
    auto host = tt::workloads::buildSyntheticHost(params, 3);
    ConventionalPolicy policy(2);
    tt::runtime::Runtime runtime(host.graph, policy, hostOptions());
    runtime.run();
    // A[i] = 7 then += 0, += 1, += 2  ->  10 everywhere.
    for (std::uint64_t value : *host.storage)
        EXPECT_EQ(value, 10u);
}

TEST(SimWorkloads, SiftSimPhasesAreBarrierOrdered)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    const auto graph = tt::workloads::siftSim(cfg);
    ConventionalPolicy policy(cfg.contexts());
    const auto run = tt::simrt::runOnce(cfg, graph, policy);
    ASSERT_EQ(run.phases.size(), 14u);
    for (std::size_t i = 1; i < run.phases.size(); ++i)
        EXPECT_GE(run.phases[i].start, run.phases[i - 1].end);
}

} // namespace
