/**
 * @file
 * Unit tests of the open-loop load subsystem: seeded arrival-plan
 * generation (process shapes, determinism, fault perturbation) and
 * the deterministic admission controller (queue-cap boundary,
 * predicted-late shedding, hysteresis, priority shed ordering), plus
 * the SLO section's diff tolerance contract in the analyzer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "load/admission.hh"
#include "load/arrival.hh"
#include "obs/analyzer.hh"
#include "util/json.hh"

namespace {

using tt::load::AdmissionConfig;
using tt::load::AdmissionController;
using tt::load::AdmissionDecision;
using tt::load::AdmissionOutcome;
using tt::load::ArrivalConfig;
using tt::load::ArrivalPlan;
using tt::load::ArrivalProcess;
using tt::load::BackpressureState;
using tt::load::buildArrivalPlan;
using tt::load::JobSpec;
using tt::load::ShedReason;

// ---- arrival generation --------------------------------------------

TEST(Arrival, ProcessNamesRoundTrip)
{
    for (ArrivalProcess process :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty,
          ArrivalProcess::Diurnal}) {
        ArrivalProcess parsed = ArrivalProcess::Poisson;
        ASSERT_TRUE(tt::load::parseArrivalProcess(
            tt::load::arrivalProcessName(process), parsed));
        EXPECT_EQ(static_cast<int>(parsed),
                  static_cast<int>(process));
    }
    ArrivalProcess parsed = ArrivalProcess::Poisson;
    EXPECT_FALSE(tt::load::parseArrivalProcess("weibull", parsed));
}

TEST(Arrival, PoissonPlanIsSeededAndMatchesTheRate)
{
    ArrivalConfig config;
    config.seed = 42;
    config.rate = 10000.0;
    config.slo_seconds = 2e-3;
    const int jobs = 4000;
    const ArrivalPlan plan = buildArrivalPlan(config, jobs);
    ASSERT_EQ(plan.size(), static_cast<std::size_t>(jobs));

    // Job k drives pair k, arrivals ascend, SLO and priority ride
    // along unchanged.
    double prev = -1.0;
    for (int k = 0; k < jobs; ++k) {
        EXPECT_EQ(plan.jobs[k].pair, k);
        EXPECT_GT(plan.jobs[k].arrival_seconds, prev);
        prev = plan.jobs[k].arrival_seconds;
        EXPECT_DOUBLE_EQ(plan.jobs[k].slo_seconds, 2e-3);
        EXPECT_EQ(plan.jobs[k].priority, 0);
    }

    // Long-run mean inter-arrival ~ 1/rate (law of large numbers;
    // 4000 exponential draws keep the sample mean within ~5%).
    const double mean_gap =
        plan.jobs.back().arrival_seconds / (jobs - 1);
    EXPECT_NEAR(mean_gap, 1.0 / config.rate, 0.05 / config.rate);

    // Same seed, same plan; different seed, different plan.
    const ArrivalPlan again = buildArrivalPlan(config, jobs);
    EXPECT_DOUBLE_EQ(again.jobs.back().arrival_seconds,
                     plan.jobs.back().arrival_seconds);
    config.seed = 43;
    const ArrivalPlan other = buildArrivalPlan(config, jobs);
    EXPECT_NE(other.jobs.back().arrival_seconds,
              plan.jobs.back().arrival_seconds);
}

TEST(Arrival, BurstyPlanConcentratesArrivalsInTheOnWindow)
{
    ArrivalConfig config;
    config.seed = 7;
    config.process = ArrivalProcess::Bursty;
    config.rate = 20000.0;
    config.burst_period_seconds = 10e-3;
    config.burst_fraction = 0.25;
    config.burst_rate_factor = 3.0;
    const int jobs = 4000;
    const ArrivalPlan plan = buildArrivalPlan(config, jobs);

    long in_burst = 0;
    for (const JobSpec &job : plan.jobs) {
        const double phase = std::fmod(job.arrival_seconds,
                                       config.burst_period_seconds) /
                             config.burst_period_seconds;
        if (phase < config.burst_fraction)
            ++in_burst;
    }
    // The on window carries fraction*factor = 75% of the offered
    // load; allow generous sampling slack.
    const double share =
        static_cast<double>(in_burst) / static_cast<double>(jobs);
    EXPECT_GT(share, 0.65);
    EXPECT_LT(share, 0.85);
}

TEST(Arrival, DiurnalPlanFollowsTheProfile)
{
    ArrivalConfig config;
    config.seed = 3;
    config.process = ArrivalProcess::Diurnal;
    config.rate = 10000.0;
    config.diurnal_profile = {4.0, 0.5};
    config.diurnal_period_seconds = 10e-3;
    const int jobs = 3000;
    const ArrivalPlan plan = buildArrivalPlan(config, jobs);

    long first_half = 0;
    long second_half = 0;
    for (const JobSpec &job : plan.jobs) {
        const double phase = std::fmod(job.arrival_seconds,
                                       config.diurnal_period_seconds) /
                             config.diurnal_period_seconds;
        (phase < 0.5 ? first_half : second_half) += 1;
    }
    // 8:1 relative rate; require a clear majority, not exactness.
    EXPECT_GT(first_half, 4 * second_half);
}

TEST(Arrival, FaultPlanPerturbsArrivalsAndDeadlines)
{
    ArrivalConfig config;
    config.seed = 5;
    config.rate = 10000.0;
    config.slo_seconds = 4e-3;
    const int jobs = 512;
    const ArrivalPlan clean = buildArrivalPlan(config, jobs);

    tt::fault::FaultConfig fault_config;
    fault_config.seed = 11;
    fault_config.arrival_burst_p = 1.0;
    fault_config.burst_compression = 8.0;
    fault_config.deadline_storm_p = 1.0;
    fault_config.storm_slash = 0.25;
    const tt::fault::FaultPlan faults(fault_config);
    ASSERT_TRUE(fault_config.jobFaultsEnabled());

    const ArrivalPlan stormy =
        buildArrivalPlan(config, jobs, &faults);
    ASSERT_EQ(stormy.size(), clean.size());
    // Every gap compressed 8x => the whole plan lands 8x earlier.
    EXPECT_NEAR(stormy.jobs.back().arrival_seconds,
                clean.jobs.back().arrival_seconds / 8.0,
                clean.jobs.back().arrival_seconds * 1e-9);
    for (const JobSpec &job : stormy.jobs)
        EXPECT_DOUBLE_EQ(job.slo_seconds, 1e-3); // 4 ms slashed to 25%

    // Probability zero leaves the plan untouched.
    fault_config.arrival_burst_p = 0.0;
    fault_config.deadline_storm_p = 0.0;
    EXPECT_FALSE(fault_config.jobFaultsEnabled());
}

// ---- admission control ---------------------------------------------

/** One saturating second of service; nothing drains within the test
 *  arrivals unless the test spaces them out. */
AdmissionConfig
slowService()
{
    AdmissionConfig config;
    config.queue_cap = 2;
    config.delay_watermark = 2;
    config.accept_watermark = 1;
    config.hysteresis = 2;
    config.servers = 1;
    config.service_tml = 1.0;
    return config;
}

JobSpec
jobAt(double t, int priority = 0, double slo = 0.0)
{
    JobSpec job;
    job.arrival_seconds = t;
    job.priority = priority;
    job.slo_seconds = slo;
    return job;
}

TEST(Admission, QueueCapBoundaryShedsAndEntersShedState)
{
    AdmissionController controller(slowService(), 1);

    // Two fit (cap 2): first starts, second queues.
    AdmissionOutcome first = controller.onArrival(jobAt(0.0));
    EXPECT_EQ(first.decision, AdmissionDecision::Accept);
    EXPECT_EQ(first.backlog, 0);
    AdmissionOutcome second = controller.onArrival(jobAt(0.01));
    EXPECT_EQ(second.decision, AdmissionDecision::Accept);
    EXPECT_EQ(second.backlog, 1);
    EXPECT_EQ(controller.state(), BackpressureState::Accept);

    // The third finds the virtual backlog at cap: shed, SHED state.
    AdmissionOutcome third = controller.onArrival(jobAt(0.02));
    EXPECT_EQ(third.decision, AdmissionDecision::Shed);
    EXPECT_EQ(third.shed_reason, ShedReason::QueueFull);
    EXPECT_EQ(third.state, BackpressureState::Shed);
    EXPECT_EQ(controller.state(), BackpressureState::Shed);
}

TEST(Admission, HysteresisPreventsFlappingOutOfShed)
{
    AdmissionController controller(slowService(), 1);
    controller.onArrival(jobAt(0.0));  // finishes (virtually) at 1.0
    controller.onArrival(jobAt(0.01)); // finishes at 2.0
    controller.onArrival(jobAt(0.02)); // queue-full -> SHED
    ASSERT_EQ(controller.state(), BackpressureState::Shed);

    // First calm arrival (backlog 1 <= accept watermark): still SHED
    // -- one quiet gap must not end the episode -- and the job itself
    // is priority-shed while the state holds.
    AdmissionOutcome calm1 = controller.onArrival(jobAt(1.5));
    EXPECT_EQ(calm1.backlog, 1);
    EXPECT_EQ(calm1.decision, AdmissionDecision::Shed);
    EXPECT_EQ(calm1.shed_reason, ShedReason::LowPriority);
    EXPECT_EQ(controller.state(), BackpressureState::Shed);

    // Second consecutive calm arrival completes the hysteresis: the
    // controller recovers to ACCEPT and admits it.
    AdmissionOutcome calm2 = controller.onArrival(jobAt(2.5));
    EXPECT_EQ(calm2.backlog, 0);
    EXPECT_EQ(calm2.decision, AdmissionDecision::Accept);
    EXPECT_EQ(calm2.state, BackpressureState::Accept);
    EXPECT_EQ(controller.state(), BackpressureState::Accept);
}

TEST(Admission, CongestedArrivalResetsTheCalmStreak)
{
    AdmissionConfig config;
    config.queue_cap = 3;
    config.delay_watermark = 3;
    // accept_watermark defaults to cap/4 = 0: calm means empty.
    config.hysteresis = 3;
    config.servers = 1;
    config.service_tml = 1.0;
    AdmissionController controller(config, 1);
    controller.onArrival(jobAt(0.0));  // virtual finish 1.0
    controller.onArrival(jobAt(0.01)); // 2.0
    controller.onArrival(jobAt(0.02)); // 3.0
    controller.onArrival(jobAt(0.03)); // queue-full -> SHED
    ASSERT_EQ(controller.state(), BackpressureState::Shed);

    // Two calm arrivals (system drained by t=3.5) bring the streak to
    // 2 of 3; the second is high-priority and admitted, so the third
    // arrival sees a congested backlog and must reset the streak.
    controller.onArrival(jobAt(3.5));
    ASSERT_EQ(controller.state(), BackpressureState::Shed);
    EXPECT_EQ(controller.onArrival(jobAt(3.51, 1)).decision,
              AdmissionDecision::Accept); // at the floor: slips in
    ASSERT_EQ(controller.state(), BackpressureState::Shed);
    const AdmissionOutcome congested = controller.onArrival(jobAt(3.52));
    EXPECT_EQ(congested.backlog, 1); // the admitted job, in service
    ASSERT_EQ(controller.state(), BackpressureState::Shed);

    // Had the streak survived the congested arrival, the first calm
    // arrival below would already be the third; instead recovery
    // takes three fresh calm arrivals from here.
    controller.onArrival(jobAt(6.0));
    ASSERT_EQ(controller.state(), BackpressureState::Shed);
    controller.onArrival(jobAt(6.1));
    ASSERT_EQ(controller.state(), BackpressureState::Shed);
    const AdmissionOutcome recovered = controller.onArrival(jobAt(6.2));
    EXPECT_EQ(recovered.decision, AdmissionDecision::Accept);
    EXPECT_EQ(controller.state(), BackpressureState::Accept);
}

TEST(Admission, IsolatedPredictedLateShedsWithoutStateChange)
{
    AdmissionConfig config;
    config.queue_cap = 8;
    config.delay_watermark = 4;
    config.accept_watermark = 2;
    config.servers = 1;
    config.service_tml = 1.0;
    AdmissionController controller(config, 1);

    // Empty system, tight deadline: the job is shed early (predicted
    // 1 s response vs 0.5 s SLO) but the system state stays ACCEPT --
    // one hopeless job is not an overload.
    AdmissionOutcome out = controller.onArrival(jobAt(0.0, 0, 0.5));
    EXPECT_EQ(out.decision, AdmissionDecision::Shed);
    EXPECT_EQ(out.shed_reason, ShedReason::PredictedLate);
    EXPECT_GT(out.predicted_response, 0.5);
    EXPECT_EQ(out.state, BackpressureState::Accept);
    EXPECT_EQ(controller.state(), BackpressureState::Accept);

    // A feasible deadline on the same empty system is admitted.
    AdmissionOutcome ok = controller.onArrival(jobAt(0.01, 0, 2.0));
    EXPECT_EQ(ok.decision, AdmissionDecision::Accept);
}

TEST(Admission, ShedStateKeepsHighPriorityDropsLow)
{
    AdmissionConfig config = slowService();
    config.hysteresis = 99; // pin SHED for the whole test
    AdmissionController controller(config, 1);
    controller.onArrival(jobAt(0.0));
    controller.onArrival(jobAt(0.01));
    controller.onArrival(jobAt(0.02)); // -> SHED
    ASSERT_EQ(controller.state(), BackpressureState::Shed);

    // Backlog drained to 1 by t=1.5: low priority is still shed,
    // priority at the floor is admitted -- shed lowest first.
    AdmissionOutcome low = controller.onArrival(jobAt(1.5, 0));
    EXPECT_EQ(low.decision, AdmissionDecision::Shed);
    EXPECT_EQ(low.shed_reason, ShedReason::LowPriority);
    AdmissionOutcome high = controller.onArrival(jobAt(1.51, 1));
    EXPECT_EQ(high.decision, AdmissionDecision::Accept);
    EXPECT_EQ(controller.state(), BackpressureState::Shed);
}

TEST(Admission, DelayWatermarkMarksAdmitsWithoutShedding)
{
    AdmissionConfig config;
    config.queue_cap = 4;
    config.delay_watermark = 2;
    config.accept_watermark = 1;
    config.servers = 1;
    config.service_tml = 1.0;
    AdmissionController controller(config, 1);

    EXPECT_EQ(controller.onArrival(jobAt(0.0)).decision,
              AdmissionDecision::Accept);
    EXPECT_EQ(controller.onArrival(jobAt(0.01)).decision,
              AdmissionDecision::Accept);
    const AdmissionOutcome delayed = controller.onArrival(jobAt(0.02));
    EXPECT_EQ(delayed.decision, AdmissionDecision::Delay);
    EXPECT_EQ(delayed.state, BackpressureState::Delay);
    EXPECT_EQ(controller.state(), BackpressureState::Delay);
}

// ---- SLO section diff tolerance ------------------------------------

tt::obs::Report
reportWithSlo(double p99_at_2x, double knee)
{
    tt::obs::Report report;
    report.policy = "dynamic-throttle";
    report.cores = 4;
    report.makespan = 0.01;
    report.slo.valid = true;
    report.slo.slo_seconds = 2e-3;
    report.slo.knee_rate = knee;
    for (const double rate : {1000.0, 2000.0}) {
        tt::obs::SloPoint point;
        point.offered_rate = rate;
        point.offered = 128;
        point.admitted = 128;
        point.p50 = 4e-4;
        point.p95 = 8e-4;
        point.p99 = rate > 1500.0 ? p99_at_2x : 9e-4;
        point.attainment = 1.0;
        report.slo.points.push_back(point);
    }
    return report;
}

tt::json::Value
parseReport(const tt::obs::Report &report)
{
    std::ostringstream os;
    tt::obs::writeReportJson(report, os);
    std::string error;
    auto parsed = tt::json::parse(os.str(), &error);
    EXPECT_TRUE(parsed.has_value()) << error;
    return *parsed;
}

TEST(SloDiff, MissingSectionOnEitherSideIsTolerated)
{
    const auto with_slo = parseReport(reportWithSlo(1e-3, 0.0));
    tt::obs::Report closed_loop;
    closed_loop.makespan = 0.01;
    const auto without_slo = parseReport(closed_loop);

    // Old baseline vs new candidate, and the reverse: neither may
    // regress or even note a mismatch.
    EXPECT_FALSE(
        tt::obs::diffReports(without_slo, with_slo, 0.05).regressed());
    EXPECT_FALSE(
        tt::obs::diffReports(with_slo, without_slo, 0.05).regressed());
}

TEST(SloDiff, WorsePointAndShrunkKneeRegress)
{
    const auto baseline = parseReport(reportWithSlo(1e-3, 2000.0));
    const auto same = parseReport(reportWithSlo(1e-3, 2000.0));
    EXPECT_FALSE(tt::obs::diffReports(baseline, same, 0.05).regressed());

    // p99 at the 2000/s point doubles: flagged.
    const auto slower = parseReport(reportWithSlo(2e-3, 2000.0));
    const auto p99_diff = tt::obs::diffReports(baseline, slower, 0.05);
    ASSERT_TRUE(p99_diff.regressed());
    bool found_p99 = false;
    for (const auto &finding : p99_diff.regressions)
        found_p99 |= finding.metric.find("p99") != std::string::npos;
    EXPECT_TRUE(found_p99);

    // The knee moves to a lower rate (capacity loss): flagged.
    const auto smaller_knee = parseReport(reportWithSlo(1e-3, 1000.0));
    EXPECT_TRUE(
        tt::obs::diffReports(baseline, smaller_knee, 0.05).regressed());
    // A knee appearing where the baseline had none: flagged.
    const auto no_knee = parseReport(reportWithSlo(1e-3, 0.0));
    EXPECT_TRUE(
        tt::obs::diffReports(no_knee, baseline, 0.05).regressed());
    // A knee *disappearing* is an improvement, not a regression.
    EXPECT_FALSE(
        tt::obs::diffReports(baseline, no_knee, 0.05).regressed());
}

} // namespace
