/**
 * @file
 * Tests of the extra workloads (stencil, histogram): host-mode
 * numerical correctness against direct evaluation, sim-mode graph
 * shapes, and their scheduling behaviour under throttling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "runtime/runtime.hh"
#include "simrt/sim_runtime.hh"
#include "workloads/histogram.hh"
#include "workloads/stencil.hh"

namespace {

using tt::cpu::MachineConfig;

tt::runtime::RuntimeOptions
hostOptions(int threads = 2)
{
    tt::runtime::RuntimeOptions opts;
    opts.threads = threads;
    opts.pin_affinity = false;
    return opts;
}

TEST(Stencil, HostMatchesReferenceJacobi)
{
    tt::workloads::StencilParams params;
    params.width = 64;
    params.height = 64;
    params.sweeps = 3;
    params.blocks = 8;
    auto host = tt::workloads::buildStencilHost(params);
    const tt::workloads::Image initial = *host.front;

    tt::core::ConventionalPolicy policy(2);
    tt::runtime::Runtime runtime(host.graph, policy, hostOptions());
    runtime.run();

    const auto expected =
        tt::workloads::jacobiReference(initial, params.sweeps);
    const auto &got = *host.result();
    ASSERT_EQ(got.pixels.size(), expected.pixels.size());
    float worst = 0.0f;
    for (std::size_t i = 0; i < got.pixels.size(); ++i)
        worst = std::max(worst,
                         std::abs(got.pixels[i] - expected.pixels[i]));
    EXPECT_LT(worst, 1e-5f);
}

TEST(Stencil, ReferenceSmoothsTowardsMean)
{
    const auto img = tt::workloads::makeTestImage(32, 32);
    const auto out = tt::workloads::jacobiReference(img, 10);
    auto range = [](const tt::workloads::Image &image) {
        float lo = image.pixels[0];
        float hi = image.pixels[0];
        for (float p : image.pixels) {
            lo = std::min(lo, p);
            hi = std::max(hi, p);
        }
        return hi - lo;
    };
    EXPECT_LT(range(out), range(img));
}

TEST(Stencil, SimGraphHasOnePhasePerSweep)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    tt::workloads::StencilParams params;
    params.sweeps = 5;
    params.blocks = 16;
    const auto graph = tt::workloads::stencilSim(cfg, params);
    EXPECT_EQ(graph.phaseCount(), 5);
    EXPECT_EQ(graph.pairCount(), 5 * 16);

    tt::core::StaticMtlPolicy policy(2, cfg.contexts());
    const auto run = tt::simrt::runOnce(cfg, graph, policy);
    EXPECT_EQ(run.samples.size(), static_cast<std::size_t>(5 * 16));
    EXPECT_EQ(tt::simrt::validateSchedule(graph, run, cfg.contexts()),
              "");
}

TEST(Stencil, ThrottlingHelpsThisMemoryHeavyKernel)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    tt::workloads::StencilParams params;
    params.width = 1024;
    params.height = 256;
    params.sweeps = 2;
    params.blocks = 64;
    const auto graph = tt::workloads::stencilSim(cfg, params);
    const auto offline = tt::simrt::offlineExhaustiveSearch(cfg, graph);
    // Memory-heavy: the unthrottled schedule must not be optimal.
    EXPECT_LT(offline.best_mtl, cfg.contexts());
    EXPECT_LT(offline.best_seconds,
              offline.seconds_per_mtl.back() * 0.995);
}

TEST(Histogram, HostCountsEveryKeyExactlyOnce)
{
    tt::workloads::HistogramParams params;
    params.pairs = 8;
    params.keys_per_block = 4096;
    auto host = tt::workloads::buildHistogramHost(params);

    tt::core::StaticMtlPolicy policy(1, 2);
    tt::runtime::Runtime runtime(host.graph, policy, hostOptions());
    runtime.run();

    const auto totals = host.totals();
    std::uint64_t sum = 0;
    for (std::uint64_t bin : totals)
        sum += bin;
    EXPECT_EQ(sum, static_cast<std::uint64_t>(params.pairs) *
                       params.keys_per_block);

    // Cross-check against direct binning of the source keys.
    std::array<std::uint64_t, tt::workloads::kHistogramBins> direct{};
    for (std::uint32_t key : *host.keys)
        ++direct[key >> 24];
    for (std::size_t bin = 0; bin < direct.size(); ++bin)
        EXPECT_EQ(totals[bin], direct[bin]) << "bin " << bin;
}

TEST(Histogram, KeysAreRoughlyUniform)
{
    tt::workloads::HistogramParams params;
    params.pairs = 16;
    params.keys_per_block = 8192;
    auto host = tt::workloads::buildHistogramHost(params);
    tt::core::ConventionalPolicy policy(2);
    tt::runtime::Runtime runtime(host.graph, policy, hostOptions());
    runtime.run();
    const auto totals = host.totals();
    const double expected =
        static_cast<double>(params.pairs) * params.keys_per_block /
        tt::workloads::kHistogramBins;
    for (std::uint64_t bin : totals)
        EXPECT_NEAR(static_cast<double>(bin), expected, expected * 0.25);
}

TEST(Histogram, SimIsDeeplyMemoryBound)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    tt::workloads::HistogramParams params;
    params.pairs = 64;
    const auto graph = tt::workloads::histogramSim(cfg, params);
    tt::core::StaticMtlPolicy policy(1, cfg.contexts());
    const auto run = tt::simrt::runOnce(cfg, graph, policy);
    // ~2 cycles per 4-byte key is below the memory cost: the ratio
    // lands past the quad-core region-3 boundary of MTL=1 (1/3) and
    // even past MTL=2's boundary (1.0).
    EXPECT_GT(run.avg_tm / run.avg_tc, 1.0);
}

TEST(Histogram, DynamicPolicyHandlesTheBoundaryCase)
{
    // Deep memory-bound workloads sit in the regime where the model
    // says "some cores idle at every MTL < n"; the mechanism must
    // stay near the top MTL rather than strangling throughput.
    const auto cfg = MachineConfig::i7_860_1dimm();
    tt::workloads::HistogramParams params;
    params.pairs = 128;
    const auto graph = tt::workloads::histogramSim(cfg, params);

    tt::core::ConventionalPolicy conventional(cfg.contexts());
    const double base =
        tt::simrt::runOnce(cfg, graph, conventional).seconds;
    tt::core::DynamicThrottlePolicy dynamic(cfg.contexts(), 8);
    const auto run = tt::simrt::runOnce(cfg, graph, dynamic);
    // Within a few percent of conventional (probing cost only).
    EXPECT_LT(run.seconds, base * 1.08);
    ASSERT_FALSE(dynamic.selections().empty());
    EXPECT_GE(dynamic.selections().back().d_mtl, 2);
}

} // namespace
