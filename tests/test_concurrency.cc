/**
 * @file
 * Tests of the lock-free hot-path primitives (util/concurrency) and
 * of the bound they jointly enforce through the engine: the Vyukov
 * MPMC ring (full/empty/wrap, no lost or duplicated elements under
 * contention), the sharded admission gate (never exceeds the bound
 * under racing admitters), epoch-based reclamation (never frees a
 * segment a live guard can still reach), and the end-to-end
 * invariant that concurrent memory tasks never exceed the MTL while
 * `peak_mem_in_flight` reports the true maximum exactly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/policy.hh"
#include "runtime/runtime.hh"
#include "stream/builder.hh"
#include "util/concurrency/epoch.hh"
#include "util/concurrency/mpmc_queue.hh"
#include "util/concurrency/sharded_gate.hh"

namespace {

using tt::util::EpochReclaimer;
using tt::util::MpmcQueue;
using tt::util::ShardedGate;

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(MpmcQueue<int>(1).capacity(), 2u);
    EXPECT_EQ(MpmcQueue<int>(2).capacity(), 2u);
    EXPECT_EQ(MpmcQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(MpmcQueue<int>(64).capacity(), 64u);
    EXPECT_EQ(MpmcQueue<int>(65).capacity(), 128u);
}

TEST(MpmcQueue, EmptyPopFails)
{
    MpmcQueue<int> queue(4);
    int out = -1;
    EXPECT_FALSE(queue.tryPop(out));
    EXPECT_TRUE(queue.emptyApprox());
}

TEST(MpmcQueue, FullPushFailsAndFifoOrderHolds)
{
    MpmcQueue<int> queue(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(queue.tryPush(i));
    EXPECT_FALSE(queue.tryPush(99)); // full
    EXPECT_EQ(queue.sizeApprox(), 4u);
    for (int i = 0; i < 4; ++i) {
        int out = -1;
        ASSERT_TRUE(queue.tryPop(out));
        EXPECT_EQ(out, i); // single-threaded use is strict FIFO
    }
    int out = -1;
    EXPECT_FALSE(queue.tryPop(out));
}

TEST(MpmcQueue, WrapsManyLapsWithoutCorruption)
{
    // Push/pop far past capacity so every cell recycles its sequence
    // ticket several laps; values must come back intact and in order.
    MpmcQueue<int> queue(8);
    int next_in = 0;
    int next_out = 0;
    for (int lap = 0; lap < 100; ++lap) {
        for (int i = 0; i < 5; ++i)
            ASSERT_TRUE(queue.tryPush(next_in++));
        for (int i = 0; i < 5; ++i) {
            int out = -1;
            ASSERT_TRUE(queue.tryPop(out));
            ASSERT_EQ(out, next_out++);
        }
    }
    EXPECT_TRUE(queue.emptyApprox());
}

TEST(MpmcQueue, ConcurrentProducersConsumersLoseNothing)
{
    // N producers push disjoint value ranges while N consumers drain;
    // every value must arrive exactly once. The ring is smaller than
    // the total volume so full/empty transitions happen constantly.
    constexpr int kThreads = 4;
    constexpr int kPerProducer = 20000;
    constexpr int kTotal = kThreads * kPerProducer;
    MpmcQueue<int> queue(64);
    std::vector<std::atomic<int>> seen(kTotal);
    for (auto &s : seen)
        s.store(0, std::memory_order_relaxed);
    std::atomic<int> drained{0};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&queue, t] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int value = t * kPerProducer + i;
                while (!queue.tryPush(value))
                    std::this_thread::yield();
            }
        });
        threads.emplace_back([&queue, &seen, &drained] {
            while (drained.load(std::memory_order_relaxed) < kTotal) {
                int out = -1;
                if (!queue.tryPop(out)) {
                    std::this_thread::yield();
                    continue;
                }
                seen[static_cast<std::size_t>(out)].fetch_add(
                    1, std::memory_order_relaxed);
                drained.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(drained.load(), kTotal);
    for (int v = 0; v < kTotal; ++v)
        ASSERT_EQ(seen[static_cast<std::size_t>(v)].load(), 1)
            << "value " << v << " lost or duplicated";
    EXPECT_TRUE(queue.emptyApprox());
}

TEST(ShardedGate, SingleThreadBoundSemantics)
{
    ShardedGate gate(4);
    EXPECT_FALSE(gate.tryAcquire(0, 0)); // bound 0 always rejects
    EXPECT_FALSE(gate.tryAcquire(0, -1));
    EXPECT_TRUE(gate.tryAcquire(0, 2));
    EXPECT_TRUE(gate.tryAcquire(1, 2));
    EXPECT_FALSE(gate.tryAcquire(2, 2)); // at bound
    EXPECT_EQ(gate.current(), 2);
    gate.release(0);
    EXPECT_EQ(gate.current(), 1);
    EXPECT_TRUE(gate.tryAcquire(3, 2)); // slot reopened
    gate.release(1);
    gate.release(3);
    EXPECT_EQ(gate.current(), 0);
    EXPECT_EQ(gate.peak(), 2); // exact when serialized
}

TEST(ShardedGate, NeverExceedsBoundUnderContention)
{
    // T racing threads hammer acquire/release against a small bound;
    // an independent atomic census of holders must never exceed it.
    constexpr int kThreads = 8;
    constexpr long kBound = 3;
    constexpr int kIterations = 20000;
    ShardedGate gate(kThreads);
    std::atomic<long> in_use{0};
    std::atomic<long> observed_max{0};
    std::atomic<bool> violated{false};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIterations; ++i) {
                if (!gate.tryAcquire(static_cast<std::size_t>(t),
                                     kBound)) {
                    std::this_thread::yield();
                    continue;
                }
                const long now =
                    in_use.fetch_add(1, std::memory_order_seq_cst) + 1;
                if (now > kBound)
                    violated.store(true, std::memory_order_relaxed);
                long prev =
                    observed_max.load(std::memory_order_relaxed);
                while (prev < now &&
                       !observed_max.compare_exchange_weak(
                           prev, now, std::memory_order_relaxed)) {
                }
                in_use.fetch_sub(1, std::memory_order_seq_cst);
                gate.release(static_cast<std::size_t>(t));
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_FALSE(violated.load()) << "more than " << kBound
                                  << " holders observed at once";
    EXPECT_EQ(gate.current(), 0);
    EXPECT_LE(gate.peak(), kBound);
    EXPECT_GE(observed_max.load(), 1);
}

TEST(EpochReclaimer, RetireFreesOnlyAfterAdvances)
{
    EpochReclaimer epoch(4);
    bool freed = false;
    epoch.retire([&freed] { freed = true; });
    // Retired into the current epoch's bucket: it becomes free only
    // once the epoch has advanced twice past it.
    EXPECT_FALSE(freed);
    EXPECT_TRUE(epoch.tryAdvance());
    EXPECT_FALSE(freed);
    EXPECT_TRUE(epoch.tryAdvance());
    EXPECT_TRUE(freed);
}

TEST(EpochReclaimer, LiveGuardBlocksReclamation)
{
    EpochReclaimer epoch(4);
    bool freed = false;
    {
        EpochReclaimer::Guard guard(epoch, 0);
        epoch.retire([&freed] { freed = true; });
        // The guard entered before (or at) the retire epoch, so no
        // sequence of advance attempts may run the deleter while it
        // is live.
        for (int i = 0; i < 8; ++i) {
            epoch.tryAdvance();
            EXPECT_FALSE(freed);
        }
    }
    // Guard gone: two effective advances free the bucket.
    while (!freed)
        ASSERT_TRUE(epoch.tryAdvance());
    EXPECT_TRUE(freed);
}

TEST(EpochReclaimer, GuardedReadersNeverSeeFreedMemory)
{
    // Writer repeatedly swaps the published segment and retires the
    // old one; readers traverse only under a Guard. The deleter
    // poisons the segment, so any premature free shows up as a
    // poisoned read (and as a use-after-free under the sanitizer
    // presets, which run this suite through the concurrency label).
    struct Segment
    {
        std::atomic<int> payload{42};
    };
    EpochReclaimer epoch(8);
    std::atomic<Segment *> published{new Segment};
    std::atomic<bool> stop{false};
    std::atomic<bool> poisoned_read{false};

    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                EpochReclaimer::Guard guard(epoch);
                Segment *seg =
                    published.load(std::memory_order_acquire);
                if (seg->payload.load(std::memory_order_relaxed) != 42)
                    poisoned_read.store(true,
                                        std::memory_order_relaxed);
            }
        });
    }

    for (int i = 0; i < 2000; ++i) {
        Segment *fresh = new Segment;
        Segment *old =
            published.exchange(fresh, std::memory_order_acq_rel);
        epoch.retire([old] {
            old->payload.store(-1, std::memory_order_relaxed);
            delete old;
        });
        epoch.tryAdvance();
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto &reader : readers)
        reader.join();
    // Drain the remaining limbo (readers are gone, so the epoch can
    // always advance now); the final published segment is ours.
    for (int i = 0; i < 4; ++i)
        epoch.tryAdvance();
    delete published.load();

    EXPECT_FALSE(poisoned_read.load());
}

/**
 * End-to-end MTL bound through the engine's lock-free admission: an
 * independent census inside the memory bodies must never observe
 * more than MTL concurrent memory tasks, and peak_mem_in_flight
 * (CAS-max over the folded shard sum at each successful admit) must
 * bracket that census — at least the max body overlap (admission
 * strictly contains the body window), never above the MTL any policy
 * window (audit trace) reports.
 */
TEST(EngineAdmission, PeakNeverExceedsMtlAndIsExact)
{
    for (const int mtl : {1, 2, 4}) {
        std::atomic<int> mem_in_flight{0};
        std::atomic<int> observed_max{0};
        std::atomic<bool> violated{false};
        tt::stream::StreamProgramBuilder builder;
        builder.beginPhase("p");
        builder.addPairs(64, [&](int) {
            tt::stream::PairSpec spec;
            spec.bytes = 64;
            spec.compute_cycles = 1;
            spec.host_memory = [&] {
                const int now = mem_in_flight.fetch_add(
                                    1, std::memory_order_seq_cst) +
                                1;
                if (now > mtl)
                    violated.store(true, std::memory_order_relaxed);
                int prev =
                    observed_max.load(std::memory_order_relaxed);
                while (prev < now &&
                       !observed_max.compare_exchange_weak(
                           prev, now, std::memory_order_relaxed)) {
                }
                mem_in_flight.fetch_sub(1, std::memory_order_seq_cst);
            };
            return spec;
        });
        const tt::stream::TaskGraph graph = std::move(builder).build();

        tt::core::StaticMtlPolicy policy(mtl, 8);
        tt::runtime::RuntimeOptions opts;
        opts.threads = 8;
        opts.pin_affinity = false;
        tt::runtime::Runtime runtime(graph, policy, opts);
        const auto result = runtime.run();

        ASSERT_FALSE(result.failed);
        EXPECT_FALSE(violated.load())
            << "more than " << mtl
            << " concurrent memory tasks observed";
        // Every MTL window the audit trace reports bounds the peak.
        for (const auto &[when, window_mtl] : result.mtl_trace) {
            (void)when;
            EXPECT_LE(result.peak_mem_in_flight, window_mtl);
        }
        EXPECT_LE(result.peak_mem_in_flight, mtl);
        // Admission brackets the body: whenever N bodies overlapped,
        // N tasks were concurrently admitted, so the recorded peak
        // is at least the census max (and exact gate occupancy).
        EXPECT_GE(result.peak_mem_in_flight, observed_max.load());
        EXPECT_GE(result.peak_mem_in_flight, 1);
    }
}

} // namespace
