/**
 * @file
 * Unit tests for the util library: statistics accumulators, trimmed
 * mean (the paper's middle-10-of-20 estimator), deterministic RNG,
 * table formatting and env knobs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/env.hh"
#include "util/json.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace {

using tt::Rng;
using tt::RunningStat;
using tt::SlidingWindow;
using tt::TablePrinter;

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    EXPECT_TRUE(s.empty());
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat a;
    RunningStat b;
    RunningStat whole;
    for (int i = 0; i < 50; ++i) {
        const double x = 0.1 * i * i - 3.0 * i;
        (i % 2 ? a : b).add(x);
        whole.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_NEAR(a.min(), whole.min(), 1e-12);
    EXPECT_NEAR(a.max(), whole.max(), 1e-12);
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a;
    RunningStat empty;
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(TrimmedMean, MiddleTenOfTwenty)
{
    // The paper's estimator: 20 runs, average the middle 10.
    std::vector<double> xs;
    for (int i = 1; i <= 20; ++i)
        xs.push_back(static_cast<double>(i));
    // middle ten are 6..15 -> mean 10.5
    EXPECT_DOUBLE_EQ(tt::trimmedMean(xs, 5), 10.5);
}

TEST(TrimmedMean, RobustToOutliers)
{
    std::vector<double> xs{1.0, 1.0, 1.0, 1.0, 1000.0};
    EXPECT_DOUBLE_EQ(tt::trimmedMean(xs, 1), 1.0);
}

TEST(GeometricMean, KnownValues)
{
    EXPECT_DOUBLE_EQ(tt::geometricMean({4.0, 9.0}), 6.0);
    EXPECT_NEAR(tt::geometricMean({1.12, 1.12, 1.12}), 1.12, 1e-12);
    EXPECT_EQ(tt::geometricMean({}), 0.0);
}

TEST(Median, OddAndEven)
{
    EXPECT_DOUBLE_EQ(tt::median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(tt::median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(tt::median({}), 0.0);
}

TEST(SlidingWindow, WrapsAround)
{
    SlidingWindow w(3);
    w.add(1.0);
    w.add(2.0);
    EXPECT_FALSE(w.full());
    EXPECT_DOUBLE_EQ(w.mean(), 1.5);
    w.add(3.0);
    EXPECT_TRUE(w.full());
    w.add(10.0); // evicts 1.0
    EXPECT_DOUBLE_EQ(w.mean(), 5.0);
    w.reset();
    EXPECT_EQ(w.size(), 0u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += (a.next() == b.next());
    EXPECT_LT(equal, 4);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBounded(17), 17u);
        const auto v = rng.nextInt(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        const double d = rng.nextDouble(2.0, 3.0);
        EXPECT_GE(d, 2.0);
        EXPECT_LT(d, 3.0);
    }
}

TEST(Rng, UniformMeanIsCentred)
{
    Rng rng(99);
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        acc += rng.nextDouble();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    RunningStat s;
    for (int i = 0; i < 20000; ++i)
        s.add(rng.nextGaussian(3.0, 2.0));
    EXPECT_NEAR(s.mean(), 3.0, 0.05);
    EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Table, AlignsColumns)
{
    TablePrinter table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"longer-name", "2.50"});
    const std::string out = table.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(TablePrinter::num(1.2345, 2), "1.23");
    EXPECT_EQ(TablePrinter::num(1.0, 0), "1");
    EXPECT_EQ(TablePrinter::pct(0.1277), "12.77%");
}

TEST(Histogram, PercentileAccessorsMatchQuantile)
{
    tt::Histogram hist;
    for (int i = 1; i <= 1000; ++i)
        hist.add(static_cast<double>(i) * 1e-6);
    EXPECT_DOUBLE_EQ(hist.p50(), hist.quantile(0.50));
    EXPECT_DOUBLE_EQ(hist.p90(), hist.quantile(0.90));
    EXPECT_DOUBLE_EQ(hist.p95(), hist.quantile(0.95));
    EXPECT_DOUBLE_EQ(hist.p99(), hist.quantile(0.99));
    // Monotone and inside the observed range.
    EXPECT_LE(hist.p50(), hist.p90());
    EXPECT_LE(hist.p90(), hist.p95());
    EXPECT_LE(hist.p95(), hist.p99());
    EXPECT_GE(hist.p50(), hist.min());
    EXPECT_LE(hist.p99(), hist.max());
}

TEST(MetricsRegistry, SummaryTableAndJsonCarryPercentiles)
{
    tt::MetricsRegistry metrics;
    for (int i = 1; i <= 100; ++i)
        metrics.observe("latency", static_cast<double>(i) * 1e-6);
    const std::string table = metrics.summaryTable();
    EXPECT_NE(table.find("p90"), std::string::npos);
    EXPECT_NE(table.find("p95"), std::string::npos);
    std::ostringstream os;
    metrics.writeJson(os);
    EXPECT_NE(os.str().find("\"p95\""), std::string::npos);
}

TEST(Json, ParsesScalarsArraysAndObjects)
{
    std::string error;
    const auto doc = tt::json::parse(
        R"({"a": 1.5, "b": [1, 2, 3], "c": {"d": "x\ny"},)"
        R"( "t": true, "f": false, "n": null, "neg": -2e-3})",
        &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isObject());
    EXPECT_DOUBLE_EQ(doc->numberAt("a"), 1.5);
    const auto *b = doc->find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(b->isArray());
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_DOUBLE_EQ(b->array[2].number, 3.0);
    const auto *c = doc->find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->stringAt("d"), "x\ny");
    EXPECT_TRUE(doc->find("t")->boolean);
    EXPECT_FALSE(doc->find("f")->boolean);
    EXPECT_TRUE(doc->find("n")->isNull());
    EXPECT_DOUBLE_EQ(doc->numberAt("neg"), -2e-3);
}

TEST(Json, ParsesEscapesAndUnicode)
{
    const auto doc =
        tt::json::parse(R"("quote\" slash\\ tab\t uA")");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->string, "quote\" slash\\ tab\t uA");
}

TEST(Json, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(tt::json::parse("{", &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(tt::json::parse("[1, 2,]").has_value());
    EXPECT_FALSE(tt::json::parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(tt::json::parse("12x").has_value());
    EXPECT_FALSE(tt::json::parse("[1] trailing").has_value());
    EXPECT_FALSE(tt::json::parse("\"unterminated").has_value());
    EXPECT_FALSE(tt::json::parse("").has_value());
}

TEST(Json, FallbacksOnMissingOrMistypedMembers)
{
    const auto doc = tt::json::parse(R"({"s": "str", "x": 4})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->numberAt("missing", 7.0), 7.0);
    EXPECT_DOUBLE_EQ(doc->numberAt("s", 7.0), 7.0);
    EXPECT_EQ(doc->stringAt("x", "d"), "d");
    EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Env, ParsesWithFallbacks)
{
    ::setenv("TT_TEST_INT", "42", 1);
    ::setenv("TT_TEST_DOUBLE", "2.5", 1);
    ::setenv("TT_TEST_BAD", "xyz", 1);
    EXPECT_EQ(tt::envInt("TT_TEST_INT", 7), 42);
    EXPECT_EQ(tt::envInt("TT_TEST_MISSING", 7), 7);
    EXPECT_EQ(tt::envInt("TT_TEST_BAD", 7), 7);
    EXPECT_DOUBLE_EQ(tt::envDouble("TT_TEST_DOUBLE", 1.0), 2.5);
    EXPECT_DOUBLE_EQ(tt::envDouble("TT_TEST_MISSING", 1.0), 1.0);
    EXPECT_EQ(tt::envString("TT_TEST_BAD", "d"), "xyz");
    EXPECT_EQ(tt::envString("TT_TEST_MISSING", "d"), "d");
}

} // namespace
