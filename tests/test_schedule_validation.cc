/**
 * @file
 * Schedule-trace validation: structural invariants of the simulated
 * scheduler checked on crafted workloads and on randomly fuzzed task
 * graphs under every policy family.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/dynamic_policy.hh"
#include "core/online_exhaustive_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "util/random.hh"

namespace {

using tt::core::SchedulingPolicy;
using tt::cpu::MachineConfig;
using tt::simrt::RunResult;
using tt::simrt::validateSchedule;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;

TEST(ScheduleValidation, SimpleRunIsValid)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(16, [](int) {
        PairSpec spec;
        spec.bytes = 128 * 1024;
        spec.compute_cycles = 100000;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::StaticMtlPolicy policy(2, cfg.contexts());
    const RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    EXPECT_EQ(validateSchedule(graph, result, cfg.contexts()), "");
}

TEST(ScheduleValidation, DetectsForgedOverlap)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(4, [](int) {
        PairSpec spec;
        spec.bytes = 64 * 1024;
        spec.compute_cycles = 50000;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::ConventionalPolicy policy(cfg.contexts());
    RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    ASSERT_EQ(validateSchedule(graph, result, cfg.contexts()), "");

    // Forge the trace: move every task onto context 0 at time 0.
    RunResult forged = result;
    for (auto &entry : forged.trace) {
        entry.worker = 0;
        entry.start = 0.0;
    }
    EXPECT_NE(validateSchedule(graph, forged, cfg.contexts()), "");
}

TEST(ScheduleValidation, DetectsForgedMtlViolation)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(8, [](int) {
        PairSpec spec;
        spec.bytes = 256 * 1024;
        spec.compute_cycles = 100000;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::ConventionalPolicy policy(cfg.contexts());
    RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    ASSERT_EQ(validateSchedule(graph, result, cfg.contexts()), "");

    // Forge: claim the MTL was 1 at every dispatch.
    RunResult forged = result;
    for (auto &entry : forged.trace)
        entry.mtl = 1;
    EXPECT_NE(validateSchedule(graph, forged, cfg.contexts()), "");
}

TEST(ScheduleValidation, DetectsMissingTask)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(2, [](int) {
        PairSpec spec;
        spec.bytes = 64 * 1024;
        spec.compute_cycles = 1000;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::ConventionalPolicy policy(cfg.contexts());
    RunResult result = tt::simrt::runOnce(cfg, graph, policy);
    result.trace.pop_back();
    EXPECT_NE(validateSchedule(graph, result, cfg.contexts()), "");
}

/**
 * Fuzz: random multi-phase graphs (sizes, ratios, extra intra-phase
 * dependencies) under a randomly chosen policy; every schedule must
 * validate and every pair must be sampled.
 */
class ScheduleFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ScheduleFuzz, RandomGraphsProduceValidSchedules)
{
    tt::Rng rng(GetParam());
    const auto cfg = MachineConfig::i7_860_1dimm();
    const int n = cfg.contexts();

    StreamProgramBuilder builder(/*uniform_pairs=*/false);
    const int phases = static_cast<int>(rng.nextInt(1, 4));
    int total_pairs = 0;
    std::vector<std::pair<int, int>> phase_ranges;
    for (int p = 0; p < phases; ++p) {
        builder.beginPhase("fuzz" + std::to_string(p));
        const int pairs = static_cast<int>(rng.nextInt(2, 14));
        const int first = total_pairs;
        for (int i = 0; i < pairs; ++i) {
            PairSpec spec;
            spec.bytes = 64 * static_cast<std::uint64_t>(
                                  rng.nextInt(0, 2048));
            spec.compute_cycles =
                static_cast<std::uint64_t>(rng.nextInt(0, 300000));
            spec.write_fraction = rng.nextDouble();
            spec.footprint_bytes = spec.bytes;
            builder.addPair(std::move(spec));
        }
        total_pairs += pairs;
        phase_ranges.emplace_back(first, total_pairs);
        // Random forward dependencies within the phase.
        for (int e = 0; e < pairs / 3; ++e) {
            const int a = static_cast<int>(
                rng.nextInt(first, total_pairs - 2));
            const int b = static_cast<int>(
                rng.nextInt(a + 1, total_pairs - 1));
            builder.dependPairs(a, b);
        }
    }
    const TaskGraph graph = std::move(builder).build();

    std::unique_ptr<SchedulingPolicy> policy;
    switch (rng.nextInt(0, 3)) {
      case 0:
        policy = std::make_unique<tt::core::ConventionalPolicy>(n);
        break;
      case 1:
        policy = std::make_unique<tt::core::StaticMtlPolicy>(
            static_cast<int>(rng.nextInt(1, n)), n);
        break;
      case 2:
        policy = std::make_unique<tt::core::DynamicThrottlePolicy>(
            n, static_cast<int>(rng.nextInt(1, 8)));
        break;
      default:
        policy = std::make_unique<tt::core::OnlineExhaustivePolicy>(
            n, static_cast<int>(rng.nextInt(1, 8)));
        break;
    }

    const RunResult result = tt::simrt::runOnce(cfg, graph, *policy);
    EXPECT_EQ(validateSchedule(graph, result, n), "")
        << "seed " << GetParam();
    EXPECT_EQ(result.samples.size(),
              static_cast<std::size_t>(total_pairs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
