/**
 * @file
 * Tests of the scheduling policies as pure state machines, driven by
 * hand-crafted sample streams (no simulator): the trivial policies,
 * the dynamic throttling mechanism's monitor/select cycle, and the
 * online-exhaustive baseline's trigger and brute-force search.
 */

#include <gtest/gtest.h>

#include "core/dynamic_policy.hh"
#include "core/online_exhaustive_policy.hh"
#include "core/policy.hh"

namespace {

using tt::core::ConventionalPolicy;
using tt::core::DynamicThrottlePolicy;
using tt::core::OnlineExhaustivePolicy;
using tt::core::PairSample;
using tt::core::SchedulingPolicy;
using tt::core::StaticMtlPolicy;

/**
 * Feed a policy samples that mimic a stationary workload with the
 * queuing behaviour tm(k) = tml + k*tql, until `pairs` samples have
 * been delivered. Sample timestamps advance by (tm+tc) each.
 */
void
driveStationary(SchedulingPolicy &policy, double tml, double tql,
                double tc, int pairs, double *clock)
{
    for (int i = 0; i < pairs; ++i) {
        const int mtl = policy.currentMtl();
        PairSample s;
        s.tm = tml + mtl * tql;
        s.tc = tc;
        *clock += s.tm + s.tc;
        s.end_time = *clock;
        s.mtl = mtl;
        policy.onPairMeasured(s);
    }
}

TEST(TrivialPolicies, ConventionalPinsToCoreCount)
{
    ConventionalPolicy policy(4);
    EXPECT_EQ(policy.currentMtl(), 4);
    PairSample s;
    s.mtl = 4;
    for (int i = 0; i < 100; ++i)
        policy.onPairMeasured(s);
    EXPECT_EQ(policy.currentMtl(), 4);
    EXPECT_EQ(policy.stats().pairs_observed, 100);
    EXPECT_EQ(policy.stats().mtl_switches, 0);
}

TEST(TrivialPolicies, StaticHoldsItsValue)
{
    StaticMtlPolicy policy(2, 4);
    EXPECT_EQ(policy.currentMtl(), 2);
    EXPECT_EQ(policy.name(), "static-mtl-2");
}

TEST(TrivialPolicies, StaticRejectsOutOfRange)
{
    EXPECT_DEATH(StaticMtlPolicy(0, 4), "range");
    EXPECT_DEATH(StaticMtlPolicy(5, 4), "range");
}

TEST(DynamicPolicy, StartsUnthrottled)
{
    DynamicThrottlePolicy policy(4, 8);
    EXPECT_EQ(policy.currentMtl(), 4);
}

TEST(DynamicPolicy, ConvergesToOneOnComputeBoundPhase)
{
    // T_m1/T_c = 0.1: the dft case; the mechanism must settle on 1.
    DynamicThrottlePolicy policy(4, 4);
    double clock = 0.0;
    driveStationary(policy, 0.08, 0.005, 1.0, 200, &clock);
    EXPECT_EQ(policy.currentMtl(), 1);
    EXPECT_EQ(policy.stats().selections, 1);
    ASSERT_EQ(policy.selections().size(), 1u);
    EXPECT_EQ(policy.selections()[0].d_mtl, 1);
}

TEST(DynamicPolicy, StaysPutOnStationaryPhase)
{
    DynamicThrottlePolicy policy(4, 4);
    double clock = 0.0;
    driveStationary(policy, 0.08, 0.005, 1.0, 400, &clock);
    // Exactly one selection: the initial one. The stationary phase
    // must never retrigger (the whole point of IdleBound detection).
    EXPECT_EQ(policy.stats().selections, 1);
}

TEST(DynamicPolicy, AdaptsAcrossAPhaseChange)
{
    DynamicThrottlePolicy policy(4, 4);
    double clock = 0.0;
    // Phase 1: compute-bound -> D-MTL 1.
    driveStationary(policy, 0.08, 0.005, 1.0, 120, &clock);
    EXPECT_EQ(policy.currentMtl(), 1);
    // Phase 2: memory-heavy (ratio ~2) -> idle bound rises, a new
    // selection runs and lands on a higher MTL.
    driveStationary(policy, 1.6, 0.2, 1.0, 200, &clock);
    EXPECT_GT(policy.currentMtl(), 1);
    EXPECT_GE(policy.stats().selections, 2);
    EXPECT_GE(policy.stats().phase_changes, 2);
}

TEST(DynamicPolicy, IgnoresStaleSamplesWhileProbing)
{
    DynamicThrottlePolicy policy(4, 2);
    double clock = 0.0;
    // Fill the first detection window to enter selection.
    driveStationary(policy, 0.5, 0.1, 1.0, 2, &clock);
    const int probe_mtl = policy.currentMtl();
    // Deliver junk samples tagged with a different MTL: they must
    // not advance the probe.
    PairSample stale;
    stale.tm = 99.0;
    stale.tc = 99.0;
    stale.mtl = probe_mtl == 4 ? 1 : 4;
    stale.end_time = clock;
    for (int i = 0; i < 50; ++i)
        policy.onPairMeasured(stale);
    EXPECT_EQ(policy.currentMtl(), probe_mtl);
}

TEST(DynamicPolicy, StaleProbeSamplesAreNotCountedAsOverhead)
{
    // Regression: probe_pairs used to be incremented before the
    // staleness check, so pairs measured under the pre-probe MTL
    // inflated monitor_overhead. They must land in stale_pairs.
    DynamicThrottlePolicy policy(4, 2);
    double clock = 0.0;
    // Complete the first window to trigger the initial selection.
    driveStationary(policy, 0.5, 0.1, 1.0, 2, &clock);
    ASSERT_EQ(policy.stats().selections, 1);
    ASSERT_EQ(policy.stats().probe_pairs, 0);

    // Pairs dispatched before the probe's MTL switch arrive tagged
    // with a different MTL: rejected, and counted as stale only.
    PairSample stale;
    stale.tm = 0.5;
    stale.tc = 1.0;
    stale.mtl = policy.currentMtl() == 4 ? 1 : 4;
    stale.end_time = clock;
    for (int i = 0; i < 7; ++i)
        policy.onPairMeasured(stale);
    EXPECT_EQ(policy.stats().probe_pairs, 0);
    EXPECT_EQ(policy.stats().stale_pairs, 7);

    // Matching samples still advance the probe and are the only
    // ones counted toward overhead.
    driveStationary(policy, 0.5, 0.1, 1.0, 2, &clock);
    EXPECT_EQ(policy.stats().probe_pairs, 2);
    EXPECT_EQ(policy.stats().stale_pairs, 7);
}

TEST(DynamicPolicy, RatioTriggerSurvivesZeroRatioWindow)
{
    // Regression: in naive ratio mode a window with tm == 0 set
    // last_ratio_ = 0, after which the relative-change trigger was
    // permanently false -- later phases were never detected.
    DynamicThrottlePolicy policy(
        4, 2, -1, DynamicThrottlePolicy::TriggerMode::kRatioChange);
    double clock = 0.0;

    // Establish a normal phase (initial selection + monitoring).
    driveStationary(policy, 0.5, 0.1, 1.0, 40, &clock);
    ASSERT_GE(policy.stats().selections, 1);

    // A pure-compute phase: tm == 0 for many windows. The first
    // zero window is itself a (legitimate) ratio change; afterwards
    // the all-zero steady state must stay quiet.
    driveStationary(policy, 0.0, 0.0, 1.0, 40, &clock);
    const long selections_after_zero = policy.stats().selections;
    driveStationary(policy, 0.0, 0.0, 1.0, 20, &clock);
    EXPECT_EQ(policy.stats().selections, selections_after_zero);

    // A later memory-heavy phase must still trigger a re-selection
    // (the old code wedged here forever).
    driveStationary(policy, 1.5, 0.2, 1.0, 40, &clock);
    EXPECT_GT(policy.stats().selections, selections_after_zero);
}

TEST(DynamicPolicy, SingleCoreDegeneratesGracefully)
{
    DynamicThrottlePolicy policy(1, 2);
    double clock = 0.0;
    driveStationary(policy, 0.5, 0.1, 1.0, 50, &clock);
    EXPECT_EQ(policy.currentMtl(), 1);
}

TEST(DynamicPolicy, CountsProbePairs)
{
    DynamicThrottlePolicy policy(4, 4);
    double clock = 0.0;
    driveStationary(policy, 0.08, 0.005, 1.0, 200, &clock);
    const auto stats = policy.stats();
    EXPECT_GT(stats.probe_pairs, 0);
    EXPECT_LT(stats.probe_pairs, stats.pairs_observed);
}

TEST(DynamicPolicy, TraceRecordsSwitches)
{
    DynamicThrottlePolicy policy(4, 4);
    double clock = 0.0;
    driveStationary(policy, 0.08, 0.005, 1.0, 200, &clock);
    const auto &trace = policy.mtlTrace();
    ASSERT_GE(trace.size(), 2u);
    EXPECT_EQ(trace.front().second, 4); // initial, unthrottled
    EXPECT_EQ(trace.back().second, 1);  // converged
}

TEST(DynamicPolicy, HysteresisIgnoresSmallIdleBoundWobble)
{
    // With many contexts, a +-1 IdleBound wobble between windows
    // must not re-trigger selection when hysteresis is enabled.
    const int n = 32;
    DynamicThrottlePolicy paper(n, 4);
    DynamicThrottlePolicy damped(n, 4);
    damped.setIdleBoundHysteresis(1);

    auto drive = [&](SchedulingPolicy &policy) {
        double clock = 0.0;
        // Alternate between two ratios whose IdleBounds differ by
        // exactly one at n=32 (0.17 -> ceil(4.65) = 5, 0.20 ->
        // ceil(5.33) = 6).
        for (int window = 0; window < 60; ++window) {
            const double tm = (window % 2 == 0) ? 0.17 : 0.20;
            driveStationary(policy, tm, 0.0005, 1.0, 4, &clock);
        }
    };
    drive(paper);
    drive(damped);

    // The paper's exact-mismatch trigger thrashes; hysteresis keeps
    // the mechanism quiet after its initial selection.
    EXPECT_GT(paper.stats().selections, 3);
    EXPECT_LE(damped.stats().selections, 2);
    EXPECT_LT(damped.stats().probe_pairs, paper.stats().probe_pairs);
}

TEST(DynamicPolicy, HysteresisStillCatchesRealPhaseChanges)
{
    DynamicThrottlePolicy policy(4, 4);
    policy.setIdleBoundHysteresis(1);
    double clock = 0.0;
    driveStationary(policy, 0.08, 0.005, 1.0, 120, &clock);
    EXPECT_EQ(policy.currentMtl(), 1);
    // A large shift (IdleBound 1 -> 3) must still re-select.
    driveStationary(policy, 1.6, 0.2, 1.0, 200, &clock);
    EXPECT_GT(policy.currentMtl(), 1);
    EXPECT_GE(policy.stats().selections, 2);
}

TEST(OnlineExhaustive, FirstGroupTriggersFullSearch)
{
    OnlineExhaustivePolicy policy(4, 4);
    double clock = 0.0;
    driveStationary(policy, 0.08, 0.005, 1.0, 4, &clock);
    // After the baseline group the policy starts probing MTL=1.
    EXPECT_EQ(policy.currentMtl(), 1);
    EXPECT_EQ(policy.stats().selections, 1);
}

TEST(OnlineExhaustive, SearchVisitsEveryMtl)
{
    OnlineExhaustivePolicy policy(4, 4);
    double clock = 0.0;
    driveStationary(policy, 0.08, 0.005, 1.0, 4 + 4 * 4 + 4, &clock);
    // One group per MTL 1..4 was timed; afterwards the policy holds
    // a single selected value and monitoring resumed.
    const auto &trace = policy.mtlTrace();
    bool saw[5] = {false, false, false, false, false};
    for (const auto &[time, mtl] : trace)
        saw[mtl] = true;
    EXPECT_TRUE(saw[1] && saw[2] && saw[3] && saw[4]);
    EXPECT_GE(policy.stats().probe_pairs, 16);
}

TEST(OnlineExhaustive, StaleSearchSamplesAreNotCountedAsOverhead)
{
    OnlineExhaustivePolicy policy(4, 4);
    double clock = 0.0;
    // Baseline group completes -> search begins at MTL=1.
    driveStationary(policy, 0.08, 0.005, 1.0, 4, &clock);
    ASSERT_EQ(policy.currentMtl(), 1);
    const long probe_before = policy.stats().probe_pairs;

    PairSample stale;
    stale.tm = 0.1;
    stale.tc = 1.0;
    stale.mtl = 4; // measured under the pre-search MTL
    stale.end_time = clock;
    for (int i = 0; i < 5; ++i)
        policy.onPairMeasured(stale);
    EXPECT_EQ(policy.stats().probe_pairs, probe_before);
    EXPECT_EQ(policy.stats().stale_pairs, 5);
}

TEST(OnlineExhaustive, PicksFastestGroup)
{
    // Construct samples so MTL=2 gives the fastest W-group wall
    // time; the brute-force search must land there.
    OnlineExhaustivePolicy policy(4, 2);
    double clock = 0.0;
    auto feed = [&](int expect_mtl_irrelevant) {
        (void)expect_mtl_irrelevant;
        const int mtl = policy.currentMtl();
        PairSample s;
        // Group pace: fast iff mtl == 2.
        const double pace = (mtl == 2) ? 0.5 : 2.0;
        s.tm = pace * 0.4;
        s.tc = pace * 0.6;
        clock += pace;
        s.end_time = clock;
        s.mtl = mtl;
        policy.onPairMeasured(s);
    };
    // Baseline group (2 pairs) + 4 search groups (2 pairs each).
    for (int i = 0; i < 2 + 8; ++i)
        feed(0);
    EXPECT_EQ(policy.currentMtl(), 2);
}

TEST(OnlineExhaustive, SmallChangesDoNotRetrigger)
{
    OnlineExhaustivePolicy policy(4, 2, 0.10);
    double clock = 0.0;
    // Settle: baseline + search.
    for (int i = 0; i < 2 + 8 + 2; ++i) {
        const int mtl = policy.currentMtl();
        PairSample s;
        s.tm = 0.4;
        s.tc = 0.6;
        clock += 1.0;
        s.end_time = clock;
        s.mtl = mtl;
        policy.onPairMeasured(s);
    }
    const long selections = policy.stats().selections;
    // Groups with <10% pace variation must not re-search.
    for (int i = 0; i < 20; ++i) {
        const int mtl = policy.currentMtl();
        PairSample s;
        const double pace = 1.0 + 0.04 * ((i % 2) ? 1 : -1);
        s.tm = 0.4 * pace;
        s.tc = 0.6 * pace;
        clock += pace;
        s.end_time = clock;
        s.mtl = mtl;
        policy.onPairMeasured(s);
    }
    EXPECT_EQ(policy.stats().selections, selections);
}

} // namespace
