/**
 * @file
 * Tests of the hardware-counter profiling layer: CounterSet delta
 * arithmetic, the deterministic FakeCounterProvider, the sim
 * synthesis formulas, per-attempt attachment through the engine on
 * both backends (including the retries-are-never-merged contract),
 * host/sim metric-schema parity, the analyzer's per-(phase, MTL)
 * interference statistics, and ttreport's forward compatibility
 * with reports written before the counters section existed.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "cpu/sim_machine.hh"
#include "exec/engine.hh"
#include "fault/fault_plan.hh"
#include "mem/dram_config.hh"
#include "obs/analyzer.hh"
#include "obs/chrome_trace.hh"
#include "obs/perf/counters.hh"
#include "obs/perf/sim_counter_provider.hh"
#include "runtime/runtime.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "util/json.hh"
#include "util/stats.hh"

namespace {

using tt::core::StaticMtlPolicy;
using tt::exec::EngineOptions;
using tt::obs::perf::CounterSet;
using tt::obs::perf::FakeCounterProvider;
using tt::obs::perf::NullCounterProvider;
using tt::obs::perf::SimAttemptObservation;
using tt::obs::perf::SimCounterProvider;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;

/** A little real work so host task bodies take measurable time. */
void
spin()
{
    volatile double acc = 0.0;
    for (int i = 0; i < 20000; ++i)
        acc = acc + static_cast<double>(i);
}

constexpr std::uint64_t kPairBytes = 128 * 1024;

/** A graph both backends can execute. */
TaskGraph
dualGraph(int pairs)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(pairs, [](int) {
        PairSpec spec;
        spec.bytes = kPairBytes;
        spec.compute_cycles = 200000;
        spec.host_memory = [] { spin(); };
        spec.host_compute = [] { spin(); };
        return spec;
    });
    return std::move(builder).build();
}

tt::cpu::MachineConfig
simConfig(int contexts)
{
    auto config = tt::cpu::MachineConfig::i7_860_1dimm();
    config.cores = contexts;
    config.smt_ways = 1;
    return config;
}

CounterSet
makeSet(std::uint64_t misses, std::uint64_t cycles,
        std::uint64_t stalled, std::uint64_t instructions)
{
    CounterSet set;
    set.llc_misses = misses;
    set.cycles = cycles;
    set.stalled_cycles = stalled;
    set.instructions = instructions;
    return set;
}

TEST(CounterSet, DeltaClampsEachFieldIndependently)
{
    const CounterSet later = makeSet(100, 2000, 50, 900);
    const CounterSet earlier = makeSet(40, 2500, 50, 1000);
    const CounterSet delta = later - earlier;
    EXPECT_EQ(delta.llc_misses, 60u);   // normal forward delta
    EXPECT_EQ(delta.cycles, 0u);        // backwards: clamp, not wrap
    EXPECT_EQ(delta.stalled_cycles, 0u);
    EXPECT_EQ(delta.instructions, 0u);

    CounterSet sum = delta;
    sum += makeSet(1, 2, 3, 4);
    EXPECT_EQ(sum, makeSet(61, 2, 3, 4));
    EXPECT_EQ(sum.value(tt::obs::perf::kLlcMisses), 61u);
    EXPECT_EQ(sum.value(tt::obs::perf::kCycles), 2u);
    EXPECT_EQ(sum.value(tt::obs::perf::kStalledCycles), 3u);
    EXPECT_EQ(sum.value(tt::obs::perf::kInstructions), 4u);
}

TEST(CounterSet, SchemaNamesAreStable)
{
    const auto &names = tt::obs::perf::counterNames();
    ASSERT_EQ(names.size(),
              static_cast<std::size_t>(tt::obs::perf::kCounterCount));
    EXPECT_STREQ(names[tt::obs::perf::kLlcMisses], "llc_misses");
    EXPECT_STREQ(names[tt::obs::perf::kCycles], "cycles");
    EXPECT_STREQ(names[tt::obs::perf::kStalledCycles],
                 "stalled_cycles");
    EXPECT_STREQ(names[tt::obs::perf::kInstructions], "instructions");
}

TEST(FakeProvider, PerWorkerStreamsAreIsolatedAndCounted)
{
    FakeCounterProvider fake(makeSet(10, 100, 30, 200));
    fake.prepare(3);
    // Worker w advances by step * (w + 1) per read.
    EXPECT_EQ(fake.read(0), makeSet(10, 100, 30, 200));
    EXPECT_EQ(fake.read(2), makeSet(30, 300, 90, 600));
    EXPECT_EQ(fake.read(0), makeSet(20, 200, 60, 400));
    // Worker 1 never read yet: its totals must be untouched by the
    // other workers' reads. Its first read advances by step * 2.
    fake.advance(1, makeSet(5, 5, 5, 5));
    EXPECT_EQ(fake.read(1), makeSet(25, 205, 65, 405));
    EXPECT_EQ(fake.reads(0), 2);
    EXPECT_EQ(fake.reads(1), 1);
    EXPECT_EQ(fake.reads(2), 1);
}

TEST(NullProvider, ReportsUnavailableAndReadsZero)
{
    NullCounterProvider null;
    EXPECT_EQ(null.name(), "null");
    EXPECT_FALSE(null.available());
    null.prepare(4);
    EXPECT_EQ(null.read(3), CounterSet{});
}

TEST(SimSynthesis, MemoryTaskFormulas)
{
    SimAttemptObservation obs;
    obs.is_memory = true;
    obs.miss_lines = 2048; // 128 KiB / 64 B
    obs.compute_cycles = 0;
    obs.elapsed_seconds = 100e-6;
    obs.clock_hz = 2.8e9;
    const CounterSet set = tt::obs::perf::synthesizeCounters(obs);
    EXPECT_EQ(set.llc_misses, 2048u);
    EXPECT_EQ(set.cycles, 280000u); // 100us * 2.8GHz
    EXPECT_EQ(set.instructions, 2048u * 4);
    // stalled = cycles - 4 cycles issue work per line.
    EXPECT_EQ(set.stalled_cycles, 280000u - 2048u * 4);
}

TEST(SimSynthesis, ComputeTaskStallsClampAtZero)
{
    SimAttemptObservation obs;
    obs.is_memory = false;
    obs.miss_lines = 0;
    obs.compute_cycles = 500000; // more busy work than elapsed cycles
    obs.elapsed_seconds = 100e-6;
    obs.clock_hz = 2.8e9;
    const CounterSet set = tt::obs::perf::synthesizeCounters(obs);
    EXPECT_EQ(set.llc_misses, 0u);
    EXPECT_EQ(set.instructions, 500000u);
    EXPECT_EQ(set.stalled_cycles, 0u); // busy > cycles: clamp
}

/**
 * Tentpole contract on the host engine: every successful attempt is
 * bracketed by exactly two reads, the per-event delta is the
 * provider's per-attempt step, and run totals are the sum of the
 * event deltas.
 */
TEST(HostCounters, EveryEventCarriesItsOwnAttemptDelta)
{
    const TaskGraph graph = dualGraph(12);
    const CounterSet step = makeSet(100, 10000, 4000, 20000);
    FakeCounterProvider fake(step);

    tt::MetricsRegistry metrics;
    EngineOptions options;
    options.threads = 2;
    options.pin_affinity = false;
    options.metrics = &metrics;
    options.counters = &fake;
    StaticMtlPolicy policy(1, 2);
    tt::runtime::Runtime runtime(graph, policy, options);
    const auto result = runtime.run();

    ASSERT_FALSE(result.failed);
    ASSERT_EQ(result.trace.size(), 24u);
    CounterSet expected_total;
    for (const auto &event : result.trace) {
        ASSERT_TRUE(event.has_counters)
            << "task " << event.task << " lost its counters";
        CounterSet expected = step;
        const auto scale =
            static_cast<std::uint64_t>(event.worker + 1);
        expected.llc_misses *= scale;
        expected.cycles *= scale;
        expected.stalled_cycles *= scale;
        expected.instructions *= scale;
        EXPECT_EQ(event.counters, expected)
            << "task " << event.task << " on worker " << event.worker;
        expected_total += event.counters;
    }
    ASSERT_TRUE(result.has_counters);
    EXPECT_EQ(result.counters, expected_total);

    // Available provider: the degradation gauge must read 0, and the
    // aggregate counters must be published under their schema names.
    EXPECT_EQ(metrics.gauge("runtime.perf_unavailable", -1.0), 0.0);
    EXPECT_EQ(metrics.counter("runtime.perf.llc_misses"),
              static_cast<std::int64_t>(expected_total.llc_misses));
}

/**
 * Retried attempts are never merged: a task that failed once and
 * succeeded on retry records attempt > 0 and carries exactly ONE
 * attempt's delta (a merged recording would show a multiple).
 */
TEST(HostCounters, RetriesAreRecordedSeparatelyNeverMerged)
{
    const TaskGraph graph = dualGraph(48);
    tt::fault::FaultConfig config;
    config.seed = 7;
    config.fail_p = 0.08;
    const tt::fault::FaultPlan plan(config);

    const CounterSet step = makeSet(100, 10000, 4000, 20000);
    FakeCounterProvider fake(step);

    EngineOptions options;
    options.threads = 1;
    options.pin_affinity = false;
    options.fault_plan = &plan;
    options.max_task_retries = 3;
    options.retry_backoff_seconds = 20e-6;
    options.counters = &fake;
    StaticMtlPolicy policy(1, 1);
    tt::runtime::Runtime runtime(graph, policy, options);
    const auto result = runtime.run();

    ASSERT_FALSE(result.failed);
    ASSERT_GT(result.task_retries, 0);

    bool saw_retried_event = false;
    for (const auto &event : result.trace) {
        ASSERT_TRUE(event.has_counters);
        // One worker, so the per-attempt delta is exactly `step` --
        // for first-try tasks AND for tasks that needed retries.
        EXPECT_EQ(event.counters, step)
            << "task " << event.task << " attempt " << event.attempt;
        saw_retried_event |= event.attempt > 0;
    }
    EXPECT_TRUE(saw_retried_event);
}

/**
 * Tentpole contract on the simulator: the synthesized schema is
 * complete (nonzero LLC-miss and stall aggregates), and each memory
 * task's miss count is its stream length in cache lines.
 */
TEST(SimCounters, SynthesizedSchemaMatchesMemoryModel)
{
    const TaskGraph graph = dualGraph(16);
    SimCounterProvider sim_counters;
    tt::MetricsRegistry metrics;
    EngineOptions options;
    options.metrics = &metrics;
    options.counters = &sim_counters;

    tt::cpu::SimMachine machine(simConfig(2));
    StaticMtlPolicy policy(1, 2);
    tt::simrt::SimRuntime runtime(machine, graph, policy, options);
    const auto result = runtime.run();

    ASSERT_FALSE(result.failed);
    ASSERT_TRUE(result.has_counters);
    EXPECT_GT(result.counters.llc_misses, 0u);
    EXPECT_GT(result.counters.stalled_cycles, 0u);
    EXPECT_GT(result.counters.cycles, 0u);
    EXPECT_GT(result.counters.instructions, 0u);

    const std::uint64_t lines_per_pair =
        kPairBytes / tt::mem::kLineBytes;
    for (const auto &event : result.trace) {
        ASSERT_TRUE(event.has_counters);
        if (event.is_memory)
            EXPECT_EQ(event.counters.llc_misses, lines_per_pair)
                << "task " << event.task;
    }
    EXPECT_EQ(metrics.gauge("runtime.perf_unavailable", -1.0), 0.0);
}

/**
 * Schema parity: with a provider attached, host and sim publish the
 * identical "runtime.perf.*" metric names -- and under the null
 * provider the names still exist (zeros), so dashboards never see
 * the schema flap with perf availability.
 */
TEST(CrossBackendCounters, MetricNameSchemaIsIdentical)
{
    const TaskGraph graph = dualGraph(8);

    FakeCounterProvider fake(makeSet(1, 1, 1, 1));
    tt::MetricsRegistry host_metrics;
    EngineOptions host_options;
    host_options.threads = 2;
    host_options.pin_affinity = false;
    host_options.metrics = &host_metrics;
    host_options.counters = &fake;
    StaticMtlPolicy host_policy(1, 2);
    tt::runtime::Runtime host(graph, host_policy, host_options);
    host.run();

    SimCounterProvider sim_counters;
    tt::MetricsRegistry sim_metrics;
    EngineOptions sim_options;
    sim_options.metrics = &sim_metrics;
    sim_options.counters = &sim_counters;
    tt::cpu::SimMachine machine(simConfig(2));
    StaticMtlPolicy sim_policy(1, 2);
    tt::simrt::SimRuntime sim(machine, graph, sim_policy, sim_options);
    sim.run();

    NullCounterProvider null;
    tt::MetricsRegistry null_metrics;
    EngineOptions null_options;
    null_options.threads = 2;
    null_options.pin_affinity = false;
    null_options.metrics = &null_metrics;
    null_options.counters = &null;
    StaticMtlPolicy null_policy(1, 2);
    tt::runtime::Runtime degraded(graph, null_policy, null_options);
    const auto null_result = degraded.run();

    auto names = [](std::vector<std::string> v) {
        return std::set<std::string>(v.begin(), v.end());
    };
    EXPECT_EQ(names(host_metrics.counterNames()),
              names(sim_metrics.counterNames()));
    EXPECT_EQ(names(host_metrics.counterNames()),
              names(null_metrics.counterNames()));
    for (const char *name : tt::obs::perf::counterNames())
        EXPECT_TRUE(names(host_metrics.counterNames())
                        .count("runtime.perf." + std::string(name)))
            << name;

    // Null degradation: flagged, zeros, run unaffected.
    ASSERT_FALSE(null_result.failed);
    EXPECT_FALSE(null_result.has_counters);
    EXPECT_EQ(null_metrics.gauge("runtime.perf_unavailable", -1.0),
              1.0);
    EXPECT_TRUE(null_metrics.hasCounter("runtime.perf.llc_misses"));
    EXPECT_EQ(null_metrics.counter("runtime.perf.llc_misses"), 0);
}

/** A report built from one deterministic sim run with counters. */
tt::obs::Report
analyzedSimReport(tt::exec::RunResult *out_result = nullptr)
{
    const TaskGraph graph = dualGraph(16);
    SimCounterProvider sim_counters;
    EngineOptions options;
    options.counters = &sim_counters;
    tt::cpu::SimMachine machine(simConfig(2));
    StaticMtlPolicy policy(1, 2);
    tt::simrt::SimRuntime runtime(machine, graph, policy, options);
    const auto result = runtime.run();
    tt::obs::AnalyzeOptions analyze_options;
    analyze_options.policy = "static";
    analyze_options.cores = 2;
    analyze_options.makespan = result.seconds;
    if (out_result != nullptr)
        *out_result = result;
    return tt::obs::analyze(tt::simrt::toTraceData(graph, result),
                            analyze_options);
}

TEST(AnalyzerCounters, PerPhaseAndPerMtlStatsAreConsistent)
{
    tt::exec::RunResult result;
    const tt::obs::Report report = analyzedSimReport(&result);

    ASSERT_TRUE(report.has_counters);
    EXPECT_EQ(report.counters.llc_misses, result.counters.llc_misses);
    EXPECT_EQ(report.counters.stalled_cycles,
              result.counters.stalled_cycles);

    ASSERT_EQ(report.phases.size(), 1u);
    const auto &phase = report.phases[0];
    ASSERT_TRUE(phase.counters.present);
    EXPECT_EQ(phase.counters.llc_misses, report.counters.llc_misses);

    // Per-MTL buckets partition the phase totals.
    std::uint64_t mtl_misses = 0;
    std::uint64_t mtl_stalled = 0;
    for (const auto &attribution : phase.by_mtl) {
        ASSERT_TRUE(attribution.counters.present);
        mtl_misses += attribution.counters.llc_misses;
        mtl_stalled += attribution.counters.stalled_cycles;
    }
    EXPECT_EQ(mtl_misses, phase.counters.llc_misses);
    EXPECT_EQ(mtl_stalled, phase.counters.stalled_cycles);

    // Derived ratios match their definitions.
    const auto &c = phase.counters;
    EXPECT_NEAR(c.mpki,
                1e3 * static_cast<double>(c.llc_misses) /
                    static_cast<double>(c.instructions),
                1e-9);
    EXPECT_NEAR(c.stall_share,
                static_cast<double>(c.stalled_cycles) /
                    static_cast<double>(c.cycles),
                1e-9);
    EXPECT_NEAR(c.stalls_per_miss,
                static_cast<double>(c.stalled_cycles) /
                    static_cast<double>(c.llc_misses),
                1e-9);
    EXPECT_GT(c.achieved_mlp, 0.0);

    // The human-readable table surfaces the interference section.
    const std::string table = tt::obs::reportTable(report);
    EXPECT_NE(table.find("memory interference"), std::string::npos);
    EXPECT_NE(table.find("stalls/miss"), std::string::npos);
}

TEST(AnalyzerCounters, RunsWithoutCountersOmitTheSection)
{
    const TaskGraph graph = dualGraph(8);
    tt::cpu::SimMachine machine(simConfig(2));
    StaticMtlPolicy policy(1, 2);
    tt::simrt::SimRuntime runtime(machine, graph, policy);
    const auto result = runtime.run();
    tt::obs::AnalyzeOptions options;
    options.cores = 2;
    options.makespan = result.seconds;
    const auto report = tt::obs::analyze(
        tt::simrt::toTraceData(graph, result), options);

    EXPECT_FALSE(report.has_counters);
    std::ostringstream os;
    tt::obs::writeReportJson(report, os);
    EXPECT_EQ(os.str().find("\"counters\""), std::string::npos);
    const std::string table = tt::obs::reportTable(report);
    EXPECT_EQ(table.find("memory interference"), std::string::npos);
}

/**
 * Satellite: forward compatibility of ttreport --diff. A baseline
 * written before the counters section existed must diff cleanly
 * against a candidate that has it (and vice versa) -- missing
 * sections are skipped, never an error.
 */
TEST(DiffCounters, MissingCountersSectionIsToleratedEitherWay)
{
    tt::exec::RunResult result;
    const tt::obs::Report with = analyzedSimReport(&result);
    tt::obs::Report without = with;
    without.has_counters = false;
    without.counters = {};
    for (auto &phase : without.phases) {
        phase.counters = {};
        for (auto &attribution : phase.by_mtl)
            attribution.counters = {};
    }

    auto toJson = [](const tt::obs::Report &report) {
        std::ostringstream os;
        tt::obs::writeReportJson(report, os);
        const auto parsed = tt::json::parse(os.str());
        EXPECT_TRUE(parsed.has_value());
        return *parsed;
    };
    const auto old_format = toJson(without);
    const auto new_format = toJson(with);

    // Old baseline vs new candidate, and the downgrade direction.
    EXPECT_FALSE(tt::obs::diffReports(old_format, new_format, 0.05)
                     .regressed());
    EXPECT_FALSE(tt::obs::diffReports(new_format, old_format, 0.05)
                     .regressed());
    // Both sides carrying counters still gate on them: inflate the
    // candidate's stalls-per-miss past the threshold.
    tt::obs::Report worse = with;
    worse.counters.stalls_per_miss *= 1.5;
    const auto worse_json = toJson(worse);
    const auto diff =
        tt::obs::diffReports(new_format, worse_json, 0.05);
    ASSERT_FALSE(diff.regressions.empty());
    EXPECT_NE(diff.regressions.front().metric.find("stalls_per_miss"),
              std::string::npos);
}

TEST(ChromeTraceCounters, EventsAndCounterTrackAreEmitted)
{
    const TaskGraph graph = dualGraph(8);
    SimCounterProvider sim_counters;
    EngineOptions options;
    options.counters = &sim_counters;
    tt::cpu::SimMachine machine(simConfig(2));
    StaticMtlPolicy policy(1, 2);
    tt::simrt::SimRuntime runtime(machine, graph, policy, options);
    const auto result = runtime.run();

    const std::string json = tt::obs::chromeTraceString(
        tt::simrt::toTraceData(graph, result));
    EXPECT_NE(json.find("\"llc_misses\""), std::string::npos);
    EXPECT_NE(json.find("\"hw counters\""), std::string::npos);
    std::string error;
    EXPECT_TRUE(tt::json::parse(json, &error).has_value()) << error;
}

} // namespace
