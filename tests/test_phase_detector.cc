/**
 * @file
 * Unit tests of the IdleBound-based phase change detector
 * (Sec. IV-B): window accumulation, stale-sample rejection, the
 * first-window trigger and change detection semantics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/phase_detector.hh"

namespace {

using tt::core::PairSample;
using tt::core::PhaseDetector;

PairSample
sample(double tm, double tc, int mtl)
{
    PairSample s;
    s.tm = tm;
    s.tc = tc;
    s.mtl = mtl;
    return s;
}

TEST(PhaseDetector, EmitsSummaryExactlyEveryWPairs)
{
    PhaseDetector det(4, 4);
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 3; ++i)
            EXPECT_FALSE(det.addSample(sample(0.1, 1.0, 4), 4));
        EXPECT_TRUE(det.addSample(sample(0.1, 1.0, 4), 4));
    }
}

TEST(PhaseDetector, AveragesWindowMeasurements)
{
    PhaseDetector det(2, 4);
    det.addSample(sample(0.1, 1.0, 4), 4);
    const auto summary = det.addSample(sample(0.3, 3.0, 4), 4);
    ASSERT_TRUE(summary);
    EXPECT_DOUBLE_EQ(summary->tm, 0.2);
    EXPECT_DOUBLE_EQ(summary->tc, 2.0);
}

TEST(PhaseDetector, FirstWindowIsAPhaseChange)
{
    PhaseDetector det(2, 4);
    det.addSample(sample(0.1, 1.0, 4), 4);
    const auto summary = det.addSample(sample(0.1, 1.0, 4), 4);
    ASSERT_TRUE(summary);
    EXPECT_TRUE(summary->phase_change);
    EXPECT_EQ(summary->idle_bound, 1);
}

TEST(PhaseDetector, StableRatioDoesNotRetrigger)
{
    PhaseDetector det(2, 4);
    det.addSample(sample(0.1, 1.0, 4), 4);
    det.addSample(sample(0.1, 1.0, 4), 4);
    det.addSample(sample(0.12, 1.0, 4), 4);
    const auto summary = det.addSample(sample(0.11, 1.0, 4), 4);
    ASSERT_TRUE(summary);
    EXPECT_FALSE(summary->phase_change);
}

TEST(PhaseDetector, RatioChangeWithinSameIdleBoundIsNotAPhase)
{
    // Sec. IV-B: "not each distinctive memory-to-compute ratio maps
    // to different target MTLs". 0.05 -> 0.30 keeps IdleBound = 1 on
    // a quad-core.
    PhaseDetector det(1, 4);
    auto first = det.addSample(sample(0.05, 1.0, 4), 4);
    ASSERT_TRUE(first);
    auto second = det.addSample(sample(0.30, 1.0, 4), 4);
    ASSERT_TRUE(second);
    EXPECT_EQ(second->idle_bound, first->idle_bound);
    EXPECT_FALSE(second->phase_change);
}

TEST(PhaseDetector, IdleBoundFlipTriggersPhaseChange)
{
    // The paper's example: T_m1/T_c moving from 0.1 to 0.5 changes
    // the core idle behaviour at MTL=1 -> phase change.
    PhaseDetector det(1, 4);
    auto first = det.addSample(sample(0.1, 1.0, 4), 4);
    ASSERT_TRUE(first && first->idle_bound == 1);
    auto second = det.addSample(sample(0.5, 1.0, 4), 4);
    ASSERT_TRUE(second);
    EXPECT_GT(second->idle_bound, 1);
    EXPECT_TRUE(second->phase_change);
}

TEST(PhaseDetector, DiscardsStaleSamples)
{
    PhaseDetector det(2, 4);
    // Samples taken under MTL=4 while we now run MTL=2 are ignored.
    EXPECT_FALSE(det.addSample(sample(0.1, 1.0, 4), 2));
    EXPECT_FALSE(det.addSample(sample(0.1, 1.0, 4), 2));
    EXPECT_FALSE(det.addSample(sample(0.1, 1.0, 2), 2));
    EXPECT_TRUE(det.addSample(sample(0.1, 1.0, 2), 2));
}

TEST(PhaseDetector, PrimeSuppressesRetrigger)
{
    PhaseDetector det(1, 4);
    det.primeIdleBound(2);
    // A window agreeing with the primed bound is not a change.
    const auto summary = det.addSample(sample(0.5, 1.0, 4), 4);
    ASSERT_TRUE(summary);
    EXPECT_EQ(summary->idle_bound, 2);
    EXPECT_FALSE(summary->phase_change);
}

TEST(PhaseDetector, ResetForgetsHistory)
{
    PhaseDetector det(1, 4);
    det.addSample(sample(0.1, 1.0, 4), 4);
    det.reset();
    EXPECT_FALSE(det.lastIdleBound().has_value());
    const auto summary = det.addSample(sample(0.1, 1.0, 4), 4);
    ASSERT_TRUE(summary);
    EXPECT_TRUE(summary->phase_change);
}

TEST(PhaseDetector, ResetWindowKeepsIdleBound)
{
    PhaseDetector det(2, 4);
    det.addSample(sample(0.1, 1.0, 4), 4);
    det.addSample(sample(0.1, 1.0, 4), 4);
    det.addSample(sample(0.1, 1.0, 4), 4); // half-filled window
    det.resetWindow();
    ASSERT_TRUE(det.lastIdleBound().has_value());
    EXPECT_EQ(*det.lastIdleBound(), 1);
    // Window restarted: needs two fresh samples again.
    EXPECT_FALSE(det.addSample(sample(0.1, 1.0, 4), 4));
    EXPECT_TRUE(det.addSample(sample(0.1, 1.0, 4), 4));
}

// ---------------------------------------------------------------------
// Degenerate measurement samples (fault tolerance): corrupted
// durations must never enter a window, wedge it, or yield an
// out-of-range IdleBound.

TEST(PhaseDetectorDegenerate, NonFiniteSamplesNeverEnterTheWindow)
{
    PhaseDetector det(2, 4);
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    // A full window's worth of garbage produces no summary...
    EXPECT_FALSE(det.addSample(sample(nan, 1.0, 4), 4));
    EXPECT_FALSE(det.addSample(sample(1.0, nan, 4), 4));
    EXPECT_FALSE(det.addSample(sample(inf, 1.0, 4), 4));
    EXPECT_FALSE(det.addSample(sample(1.0, -inf, 4), 4));
    // ...and the window is not wedged: two clean samples complete it
    // with finite averages untouched by the rejected garbage.
    EXPECT_FALSE(det.addSample(sample(0.1, 1.0, 4), 4));
    const auto summary = det.addSample(sample(0.3, 1.0, 4), 4);
    ASSERT_TRUE(summary);
    EXPECT_DOUBLE_EQ(summary->tm, 0.2);
    EXPECT_DOUBLE_EQ(summary->tc, 1.0);
    EXPECT_EQ(summary->idle_bound, 1);
}

TEST(PhaseDetectorDegenerate, NegativeDurationsAreRejected)
{
    PhaseDetector det(1, 4);
    EXPECT_FALSE(det.addSample(sample(-0.1, 1.0, 4), 4));
    EXPECT_FALSE(det.addSample(sample(0.1, -1.0, 4), 4));
    // Still no summary: nothing entered the window.
    const auto summary = det.addSample(sample(0.1, 1.0, 4), 4);
    ASSERT_TRUE(summary);
    EXPECT_EQ(summary->idle_bound, 1);
}

TEST(PhaseDetectorDegenerate, ZeroTimedWindowStaysInRange)
{
    // T_c == 0 (pure-memory window): bound = n, no division by zero.
    PhaseDetector mem_bound(2, 4);
    mem_bound.addSample(sample(1.0, 0.0, 4), 4);
    const auto mem_summary = mem_bound.addSample(sample(1.0, 0.0, 4), 4);
    ASSERT_TRUE(mem_summary);
    EXPECT_EQ(mem_summary->idle_bound, 4);

    // Both zero: degenerate but defined, bound stays in [1, n].
    PhaseDetector zeros(2, 4);
    zeros.addSample(sample(0.0, 0.0, 4), 4);
    const auto zero_summary = zeros.addSample(sample(0.0, 0.0, 4), 4);
    ASSERT_TRUE(zero_summary);
    EXPECT_GE(zero_summary->idle_bound, 1);
    EXPECT_LE(zero_summary->idle_bound, 4);
}

} // namespace
