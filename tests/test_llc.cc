/**
 * @file
 * Tests of the shared-LLC occupancy model: install/release
 * accounting, the miss-fraction law, and peak tracking.
 */

#include <gtest/gtest.h>

#include "mem/llc.hh"

namespace {

using tt::mem::SharedLlc;

constexpr std::uint64_t kMb = 1024 * 1024;

TEST(SharedLlc, NoMissesWhileFitting)
{
    SharedLlc llc(8 * kMb);
    llc.install(2 * kMb);
    llc.install(2 * kMb);
    EXPECT_DOUBLE_EQ(llc.missFraction(), 0.0);
    EXPECT_EQ(llc.occupancy(), 4 * kMb);
}

TEST(SharedLlc, ExactCapacityStillFits)
{
    SharedLlc llc(8 * kMb);
    llc.install(8 * kMb);
    EXPECT_DOUBLE_EQ(llc.missFraction(), 0.0);
}

TEST(SharedLlc, OverflowSpillsProportionally)
{
    SharedLlc llc(8 * kMb);
    llc.install(16 * kMb);
    // Half the live working set cannot be resident.
    EXPECT_DOUBLE_EQ(llc.missFraction(), 0.5);
    llc.release(8 * kMb);
    EXPECT_DOUBLE_EQ(llc.missFraction(), 0.0);
}

TEST(SharedLlc, ResidentBytesCountAgainstCapacity)
{
    SharedLlc llc(8 * kMb, 2 * kMb);
    EXPECT_EQ(llc.occupancy(), 2 * kMb);
    llc.install(6 * kMb);
    EXPECT_DOUBLE_EQ(llc.missFraction(), 0.0);
    llc.install(2 * kMb);
    EXPECT_GT(llc.missFraction(), 0.0);
}

TEST(SharedLlc, TracksPeakOccupancy)
{
    SharedLlc llc(8 * kMb);
    llc.install(3 * kMb);
    llc.install(4 * kMb);
    llc.release(5 * kMb);
    llc.install(1 * kMb);
    EXPECT_EQ(llc.peakOccupancy(), 7 * kMb);
    EXPECT_EQ(llc.liveFootprint(), 3 * kMb);
}

TEST(SharedLlcDeath, OverReleasePanics)
{
    SharedLlc llc(8 * kMb);
    llc.install(kMb);
    EXPECT_DEATH(llc.release(2 * kMb), "more footprint");
}

TEST(SharedLlc, Fig13cRegime)
{
    // The Fig. 13(c) setting: 2 MB per pair, eight live pairs on the
    // 8 MB i7 LLC -> a substantial spill fraction.
    SharedLlc llc(8 * kMb, 256 * 1024);
    for (int pair = 0; pair < 8; ++pair)
        llc.install(2 * kMb);
    EXPECT_GT(llc.missFraction(), 0.4);
    // The 0.5 MB setting stays resident.
    SharedLlc small(8 * kMb, 256 * 1024);
    for (int pair = 0; pair < 8; ++pair)
        small.install(512 * 1024);
    EXPECT_DOUBLE_EQ(small.missFraction(), 0.0);
}

} // namespace
