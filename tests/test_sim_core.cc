/**
 * @file
 * Tests of the simulated core and machine: task latency composition,
 * MLP window behaviour, compute-cycle timing, SMT slowdown, demand
 * misses on LLC overflow, and context mapping.
 */

#include <gtest/gtest.h>

#include "cpu/machine_config.hh"
#include "cpu/sim_machine.hh"

namespace {

using tt::cpu::MachineConfig;
using tt::cpu::SimMachine;
using tt::stream::SimWork;
using tt::stream::Task;
using tt::stream::TaskKind;

Task
memoryTask(std::uint64_t bytes, int id = 0)
{
    Task task;
    task.id = id;
    task.kind = TaskKind::Memory;
    task.sim_work.bytes = bytes;
    task.sim_work.footprint_bytes = bytes;
    return task;
}

Task
computeTask(std::uint64_t cycles, std::uint64_t footprint = 0, int id = 1)
{
    Task task;
    task.id = id;
    task.kind = TaskKind::Compute;
    task.sim_work.compute_cycles = cycles;
    task.sim_work.footprint_bytes = footprint;
    return task;
}

double
runSingle(SimMachine &machine, const Task &task, double miss = 0.0,
          int context = 0)
{
    bool done = false;
    machine.run(context, task, miss, [&] { done = true; });
    machine.events().run();
    EXPECT_TRUE(done);
    return machine.nowSeconds();
}

TEST(SimCore, ComputeTaskTimeIsCyclesTimesPeriod)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    SimMachine machine(cfg);
    const std::uint64_t cycles = 280000; // 100 us at 2.8 GHz
    const double seconds = runSingle(machine, computeTask(cycles));
    EXPECT_NEAR(seconds, 1e-4, 1e-6);
}

TEST(SimCore, MemoryTaskStreamsNearSingleStreamBandwidth)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    SimMachine machine(cfg);
    const std::uint64_t bytes = 512 * 1024;
    const double seconds = runSingle(machine, memoryTask(bytes));
    const double bw = static_cast<double>(bytes) / seconds;
    // One stream with MLP=3 must land well below the 8.5 GB/s bus
    // peak but in the GB/s range (the calibration premise).
    EXPECT_GT(bw, 1.5e9);
    EXPECT_LT(bw, 6.0e9);
}

TEST(SimCore, MemoryTaskTimeScalesWithSize)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    SimMachine a(cfg);
    const double t1 = runSingle(a, memoryTask(256 * 1024, 3));
    SimMachine b(cfg);
    const double t2 = runSingle(b, memoryTask(512 * 1024, 3));
    EXPECT_NEAR(t2 / t1, 2.0, 0.2);
}

TEST(SimCore, ZeroByteMemoryTaskCompletes)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    SimMachine machine(cfg);
    const double seconds = runSingle(machine, memoryTask(0));
    EXPECT_DOUBLE_EQ(seconds, 0.0);
}

TEST(SimCore, ZeroCycleComputeTaskCompletes)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    SimMachine machine(cfg);
    const double seconds = runSingle(machine, computeTask(0));
    EXPECT_DOUBLE_EQ(seconds, 0.0);
}

TEST(SimCore, DemandMissesLengthenComputeTasks)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    SimMachine clean(cfg);
    const std::uint64_t cycles = 280000;
    const double without =
        runSingle(clean, computeTask(cycles, 512 * 1024));
    SimMachine dirty(cfg);
    const double with = runSingle(
        dirty, computeTask(cycles, 512 * 1024), /*miss=*/0.5);
    EXPECT_GT(with, without * 1.3);
}

TEST(SimCore, SmtSiblingSlowsComputeDown)
{
    const auto cfg = MachineConfig::i7_860_2dimm_smt();
    ASSERT_EQ(cfg.contexts(), 8);

    // Alone on the core.
    SimMachine alone(cfg);
    const double solo = runSingle(alone, computeTask(280000));

    // With the sibling context busy: contexts 0 and 4 share core 0
    // (core-major interleaving).
    SimMachine shared(cfg);
    bool first_done = false;
    shared.run(0, computeTask(10'000'000, 0, 7), 0.0,
               [&] { first_done = true; });
    double second_t = 0.0;
    bool second_done = false;
    shared.run(4, computeTask(280000, 0, 8), 0.0, [&] {
        second_done = true;
        second_t = shared.nowSeconds();
    });
    shared.events().run();
    EXPECT_TRUE(first_done && second_done);
    EXPECT_NEAR(second_t / solo, cfg.smt_compute_slowdown, 0.05);
}

TEST(SimCore, DistinctContextsOfOneCoreAreIndependentSlots)
{
    const auto cfg = MachineConfig::i7_860_2dimm_smt();
    SimMachine machine(cfg);
    EXPECT_FALSE(machine.busy(0));
    machine.run(0, computeTask(1000), 0.0, [] {});
    EXPECT_TRUE(machine.busy(0));
    EXPECT_FALSE(machine.busy(4)); // sibling slot still free
    EXPECT_FALSE(machine.busy(1)); // other core free
    machine.events().run();
    EXPECT_FALSE(machine.busy(0));
}

TEST(SimCoreDeath, DoubleDispatchPanics)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    SimMachine machine(cfg);
    machine.run(0, computeTask(1000), 0.0, [] {});
    EXPECT_DEATH(machine.run(0, computeTask(1000), 0.0, [] {}),
                 "already running");
}

TEST(MachineConfig, Presets)
{
    const auto one = MachineConfig::i7_860_1dimm();
    EXPECT_EQ(one.cores, 4);
    EXPECT_EQ(one.contexts(), 4);
    EXPECT_EQ(one.mem.channels, 1);

    const auto two = MachineConfig::i7_860_2dimm();
    EXPECT_EQ(two.mem.channels, 2);
    EXPECT_EQ(two.contexts(), 4);

    const auto smt = MachineConfig::i7_860_2dimm_smt();
    EXPECT_EQ(smt.contexts(), 8);
    EXPECT_LT(smt.mlp_per_context, two.mlp_per_context);
}

TEST(MachineConfig, Power7Preset)
{
    const auto p7 = MachineConfig::power7();
    EXPECT_EQ(p7.cores, 8);
    EXPECT_EQ(p7.smt_ways, 4);
    EXPECT_EQ(p7.contexts(), 32);
    EXPECT_EQ(p7.mem.channels, 2);
    EXPECT_GT(p7.mem.llc_bytes, 8ULL * 1024 * 1024);
    // DDR3-1333 channels are faster than the i7's DDR3-1066.
    EXPECT_LT(p7.mem.dram.t_burst,
              MachineConfig::i7_860_1dimm().mem.dram.t_burst);
}

TEST(MachineConfig, PeakBandwidthMatchesPaper)
{
    const auto one = MachineConfig::i7_860_1dimm();
    tt::sim::EventQueue q;
    tt::mem::MemorySystem mem1(q, one.mem);
    // Sec. V: 8.5 GB/s single channel, 17 GB/s for the 2-DIMM rig.
    EXPECT_NEAR(mem1.peakBandwidth(), 8.5e9, 0.2e9);
    tt::mem::MemorySystem mem2(q, MachineConfig::i7_860_2dimm().mem);
    EXPECT_NEAR(mem2.peakBandwidth(), 17.0e9, 0.4e9);
}

} // namespace
