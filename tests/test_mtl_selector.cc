/**
 * @file
 * Unit and property tests of the pruned MTL selection (Sec. IV-C,
 * Fig. 11): binary-search probe sequencing, candidate ranking, probe
 * count bounds and agreement with exhaustive model evaluation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/analytical_model.hh"
#include "core/mtl_selector.hh"

namespace {

using tt::core::AnalyticalModel;
using tt::core::MtlSelector;
using tt::core::QueuingModel;

/** Drive a selector to completion against a queuing-model oracle. */
MtlSelector::Result
runSelection(const QueuingModel &qm, double tc, int cores,
             int *probes_out = nullptr)
{
    MtlSelector selector(cores);
    int probes = 0;
    while (auto mtl = selector.nextProbe()) {
        selector.reportProbe(*mtl, qm.tmAt(*mtl), tc);
        ++probes;
    }
    EXPECT_TRUE(selector.done());
    if (probes_out)
        *probes_out = probes;
    return selector.result();
}

TEST(MtlSelector, ComputeBoundWorkloadPicksOne)
{
    // T_m1/T_c = 0.1: all cores busy at MTL>=1 -> D-MTL = 1 (the
    // paper's dft case).
    const QueuingModel qm{0.08, 0.02};
    const auto result = runSelection(qm, 1.0, 4);
    EXPECT_EQ(result.mtl_no_idle, 1);
    EXPECT_FALSE(result.mtl_idle.has_value());
    EXPECT_EQ(result.d_mtl, 1);
}

TEST(MtlSelector, MemoryBoundWorkloadKeepsHighMtl)
{
    // Extremely memory-heavy: some cores idle even at MTL=3, and the
    // idle candidate cannot beat the no-idle one when queuing is mild.
    const QueuingModel qm{4.0, 0.01};
    const auto result = runSelection(qm, 0.1, 4);
    EXPECT_EQ(result.mtl_no_idle, 4);
    ASSERT_TRUE(result.mtl_idle.has_value());
    EXPECT_EQ(*result.mtl_idle, 3);
}

TEST(MtlSelector, StreamclusterLikeCaseSelectsBetweenOneAndTwo)
{
    // Table II streamcluster d128: ratio 0.3714 > 1/3, so MTL=1
    // idles and the mechanism compares MTL 1 vs 2 (Sec. VI-B).
    const double tc = 1.0;
    const QueuingModel qm{0.30, 0.0714}; // tm1 = 0.3714
    const auto result = runSelection(qm, tc, 4);
    EXPECT_EQ(result.mtl_no_idle, 2);
    ASSERT_TRUE(result.mtl_idle.has_value());
    EXPECT_EQ(*result.mtl_idle, 1);
    EXPECT_TRUE(result.d_mtl == 1 || result.d_mtl == 2);
}

TEST(MtlSelector, ProbeCountIsLogarithmic)
{
    // Pruning must probe O(log n) + candidates, not all n (that is
    // its whole advantage over Online Exhaustive Search).
    for (int cores : {4, 8, 16, 64}) {
        const QueuingModel qm{0.5, 0.1};
        int probes = 0;
        runSelection(qm, 1.0, cores, &probes);
        const int bound =
            static_cast<int>(std::ceil(std::log2(cores))) + 2;
        EXPECT_LE(probes, bound) << "cores=" << cores;
    }
}

TEST(MtlSelector, SingleCoreNeedsOneProbe)
{
    MtlSelector selector(1);
    ASSERT_FALSE(selector.done());
    auto probe = selector.nextProbe();
    ASSERT_TRUE(probe);
    EXPECT_EQ(*probe, 1);
    selector.reportProbe(1, 0.5, 0.5);
    ASSERT_TRUE(selector.done());
    EXPECT_EQ(selector.result().d_mtl, 1);
}

TEST(MtlSelector, RepeatedReportsRefreshCache)
{
    MtlSelector selector(4);
    auto probe = selector.nextProbe();
    ASSERT_TRUE(probe);
    selector.reportProbe(*probe, 10.0, 1.0);
    // Re-reporting the same MTL must not corrupt the search.
    selector.reportProbe(*probe, 10.0, 1.0);
    while (auto next = selector.nextProbe())
        selector.reportProbe(*next, 10.0, 1.0);
    EXPECT_TRUE(selector.done());
}

/**
 * Property: against a consistent queuing-model oracle, the pruned
 * two-candidate selection finds the same optimum as exhaustively
 * ranking every MTL with the analytical model (the Sec. IV-C claim).
 */
class PrunedVsExhaustive
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(PrunedVsExhaustive, AgreeOnBestMtl)
{
    const auto [tml, tql, tc] = GetParam();
    const int n = 4;
    const QueuingModel qm{tml, tql};

    const auto result = runSelection(qm, tc, n);

    int best_k = 1;
    double best_rank = -1.0;
    for (int k = 1; k <= n; ++k) {
        const double rank =
            AnalyticalModel::speedupRank(qm.tmAt(k), tc, k, n);
        if (rank > best_rank) {
            best_rank = rank;
            best_k = k;
        }
    }
    const double chosen_rank = AnalyticalModel::speedupRank(
        qm.tmAt(result.d_mtl), tc, result.d_mtl, n);
    // The pruned choice must be within floating-point noise of the
    // exhaustive optimum (ties may resolve either way).
    EXPECT_NEAR(chosen_rank, best_rank, 1e-12 + 1e-9 * best_rank)
        << "pruned=" << result.d_mtl << " exhaustive=" << best_k;
}

INSTANTIATE_TEST_SUITE_P(
    QueuingSweep, PrunedVsExhaustive,
    ::testing::Combine(::testing::Values(0.05, 0.2, 0.5, 1.0, 2.0, 5.0),
                       ::testing::Values(0.0, 0.02, 0.1, 0.3, 1.0),
                       ::testing::Values(0.1, 0.5, 1.0, 3.0, 12.0)));

TEST(MtlSelector, ProbesStayInRange)
{
    for (int cores : {1, 2, 3, 4, 8}) {
        MtlSelector selector(cores);
        std::set<int> seen;
        const QueuingModel qm{1.0, 0.2};
        while (auto mtl = selector.nextProbe()) {
            EXPECT_GE(*mtl, 1);
            EXPECT_LE(*mtl, cores);
            seen.insert(*mtl);
            selector.reportProbe(*mtl, qm.tmAt(*mtl), 1.0);
        }
        // The search terminates and probes each point at most once
        // per request cycle.
        EXPECT_TRUE(selector.done());
        EXPECT_LE(static_cast<int>(seen.size()), cores);
    }
}

} // namespace
