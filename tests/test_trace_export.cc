/**
 * @file
 * Tests of the Chrome trace-event exporter: structural JSON sanity,
 * event counts, and content checks against the recorded schedule.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "obs/chrome_trace.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "util/json.hh"

namespace {

using tt::cpu::MachineConfig;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size())) {
        ++count;
    }
    return count;
}

TEST(TraceExport, EmitsOneEventPerTaskPlusCountersAndMetadata)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("alpha");
    builder.addPairs(6, [](int) {
        PairSpec spec;
        spec.bytes = 64 * 1024;
        spec.compute_cycles = 50000;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::StaticMtlPolicy policy(2, cfg.contexts());
    const auto result = tt::simrt::runOnce(cfg, graph, policy);

    const std::string json =
        tt::obs::chromeTraceString(
            tt::simrt::toTraceData(graph, result));

    // Valid-ish JSON array with balanced braces.
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(countOccurrences(json, "{"),
              countOccurrences(json, "}"));

    // 12 duration events (6 memory + 6 compute).
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), 12u);
    EXPECT_EQ(countOccurrences(json, "\"cat\":\"memory\""), 6u);
    EXPECT_EQ(countOccurrences(json, "\"cat\":\"compute\""), 6u);

    // One MTL counter sample (static policy: set once at t=0).
    EXPECT_EQ(countOccurrences(json, "\"name\":\"MTL\""), 1u);

    // Phase name propagated into args.
    EXPECT_GT(countOccurrences(json, "\"phase\":\"alpha\""), 0u);

    // Context metadata rows for every used context.
    EXPECT_GE(countOccurrences(json, "thread_name"), 1u);
}

TEST(TraceExport, DynamicPolicyProducesMtlCounterTrack)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(64, [](int) {
        PairSpec spec;
        spec.bytes = 128 * 1024;
        spec.compute_cycles = 400000;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::DynamicThrottlePolicy policy(cfg.contexts(), 8);
    const auto result = tt::simrt::runOnce(cfg, graph, policy);

    const std::string json =
        tt::obs::chromeTraceString(
            tt::simrt::toTraceData(graph, result));
    // The adaptive policy changes MTL at least once after t=0.
    EXPECT_GE(countOccurrences(json, "\"name\":\"MTL\""), 2u);
}

/**
 * Golden-structure check: parse the emitted document with the
 * bundled JSON parser and verify the trace-event schema field by
 * field, not by substring counting.
 */
TEST(TraceExport, GoldenStructureParsesAndMatchesSchema)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(48, [](int) {
        PairSpec spec;
        spec.bytes = 128 * 1024;
        spec.compute_cycles = 400000;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::DynamicThrottlePolicy policy(cfg.contexts(), 8);
    const auto result = tt::simrt::runOnce(cfg, graph, policy);
    const std::string json =
        tt::obs::chromeTraceString(
            tt::simrt::toTraceData(graph, result));

    std::string error;
    const auto doc = tt::json::parse(json, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isArray());

    std::size_t durations = 0;
    std::size_t counters = 0;
    std::size_t instants = 0;
    std::size_t metadata = 0;
    std::size_t flow_starts = 0;
    std::size_t flow_finishes = 0;
    for (const auto &event : doc->array) {
        ASSERT_TRUE(event.isObject());
        const std::string ph = event.stringAt("ph");
        const auto *args = event.find("args");
        if (ph == "X") {
            ++durations;
            EXPECT_GE(event.numberAt("ts", -1.0), 0.0);
            EXPECT_GE(event.numberAt("dur", -1.0), 0.0);
            ASSERT_NE(args, nullptr);
            EXPECT_GE(args->numberAt("mtl"), 1.0);
            EXPECT_EQ(args->stringAt("phase"), "p");
        } else if (ph == "C") {
            ++counters;
            ASSERT_NE(args, nullptr);
        } else if (ph == "i") {
            ++instants;
            // Policy decision instants carry the audit payload.
            EXPECT_EQ(event.stringAt("cat"), "policy");
            ASSERT_NE(args, nullptr);
            EXPECT_GE(args->numberAt("to_mtl"), 1.0);
            EXPECT_NE(args->find("predicted_speedup"), nullptr);
            EXPECT_NE(args->find("idle_bound"), nullptr);
        } else if (ph == "s") {
            // One span flow start per job, on the arrivals track.
            ++flow_starts;
            EXPECT_EQ(event.stringAt("cat"), "job");
            ASSERT_NE(args, nullptr);
            EXPECT_EQ(args->stringAt("outcome"), "completed");
            EXPECT_GE(args->numberAt("attempts"), 1.0);
        } else if (ph == "f") {
            ++flow_finishes;
            EXPECT_EQ(event.stringAt("cat"), "job");
            EXPECT_EQ(event.stringAt("bp"), "e");
        } else {
            EXPECT_EQ(ph, "M");
            ++metadata;
        }
    }
    EXPECT_EQ(durations, 96u); // 48 memory + 48 compute slices
    EXPECT_GE(counters, 1u);
    EXPECT_GE(metadata, 1u);
    // The adaptive run made decisions; each one became an instant.
    EXPECT_EQ(instants, result.decisions.size());
    EXPECT_GE(instants, 1u);
    // Every job's span became one arrival->completion flow arrow.
    EXPECT_EQ(flow_starts, 48u);
    EXPECT_EQ(flow_finishes, 48u);
}

/** A run with no events still round-trips as valid, empty JSON. */
TEST(TraceExport, EmptyRunRoundTripsThroughParser)
{
    const tt::obs::TraceData empty;
    const std::string json = tt::obs::chromeTraceString(empty);
    std::string error;
    const auto doc = tt::json::parse(json, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    ASSERT_TRUE(doc->isArray());
    for (const auto &event : doc->array)
        EXPECT_EQ(event.stringAt("ph"), "M"); // metadata only, if any
}

TEST(TraceExport, EscapesAwkwardPhaseNames)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("weird \"quoted\\name");
    builder.addPairs(1, [](int) {
        PairSpec spec;
        spec.bytes = 64;
        spec.compute_cycles = 10;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::ConventionalPolicy policy(cfg.contexts());
    const auto result = tt::simrt::runOnce(cfg, graph, policy);
    const std::string json =
        tt::obs::chromeTraceString(
            tt::simrt::toTraceData(graph, result));
    EXPECT_NE(json.find("weird \\\"quoted\\\\name"), std::string::npos);
}

} // namespace
