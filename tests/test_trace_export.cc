/**
 * @file
 * Tests of the Chrome trace-event exporter: structural JSON sanity,
 * event counts, and content checks against the recorded schedule.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "simrt/trace_export.hh"
#include "stream/builder.hh"

namespace {

using tt::cpu::MachineConfig;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle);
         pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size())) {
        ++count;
    }
    return count;
}

TEST(TraceExport, EmitsOneEventPerTaskPlusCountersAndMetadata)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("alpha");
    builder.addPairs(6, [](int) {
        PairSpec spec;
        spec.bytes = 64 * 1024;
        spec.compute_cycles = 50000;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::StaticMtlPolicy policy(2, cfg.contexts());
    const auto result = tt::simrt::runOnce(cfg, graph, policy);

    const std::string json =
        tt::simrt::chromeTraceString(graph, result);

    // Valid-ish JSON array with balanced braces.
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(countOccurrences(json, "{"),
              countOccurrences(json, "}"));

    // 12 duration events (6 memory + 6 compute).
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), 12u);
    EXPECT_EQ(countOccurrences(json, "\"cat\":\"memory\""), 6u);
    EXPECT_EQ(countOccurrences(json, "\"cat\":\"compute\""), 6u);

    // One MTL counter sample (static policy: set once at t=0).
    EXPECT_EQ(countOccurrences(json, "\"name\":\"MTL\""), 1u);

    // Phase name propagated into args.
    EXPECT_GT(countOccurrences(json, "\"phase\":\"alpha\""), 0u);

    // Context metadata rows for every used context.
    EXPECT_GE(countOccurrences(json, "thread_name"), 1u);
}

TEST(TraceExport, DynamicPolicyProducesMtlCounterTrack)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(64, [](int) {
        PairSpec spec;
        spec.bytes = 128 * 1024;
        spec.compute_cycles = 400000;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::DynamicThrottlePolicy policy(cfg.contexts(), 8);
    const auto result = tt::simrt::runOnce(cfg, graph, policy);

    const std::string json =
        tt::simrt::chromeTraceString(graph, result);
    // The adaptive policy changes MTL at least once after t=0.
    EXPECT_GE(countOccurrences(json, "\"name\":\"MTL\""), 2u);
}

TEST(TraceExport, EscapesAwkwardPhaseNames)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    StreamProgramBuilder builder;
    builder.beginPhase("weird \"quoted\\name");
    builder.addPairs(1, [](int) {
        PairSpec spec;
        spec.bytes = 64;
        spec.compute_cycles = 10;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    tt::core::ConventionalPolicy policy(cfg.contexts());
    const auto result = tt::simrt::runOnce(cfg, graph, policy);
    const std::string json =
        tt::simrt::chromeTraceString(graph, result);
    EXPECT_NE(json.find("weird \\\"quoted\\\\name"), std::string::npos);
}

} // namespace
