/**
 * @file
 * Fault-injection and fault-tolerance tests: determinism of the
 * seeded FaultPlan, host-runtime retries/clean failure/watchdog,
 * policy degradation to the safe static MTL and recovery, sim-side
 * chaos determinism, and a seeded multi-run chaos soak (run this
 * file under the tsan/asan presets via `ctest -L fault`).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "core/dynamic_policy.hh"
#include "core/online_exhaustive_policy.hh"
#include "core/policy.hh"
#include "core/sample_guard.hh"
#include "cpu/machine_config.hh"
#include "cpu/sim_machine.hh"
#include "fault/fault_plan.hh"
#include "runtime/runtime.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "workloads/synthetic.hh"

namespace {

using tt::core::ConventionalPolicy;
using tt::core::DynamicThrottlePolicy;
using tt::core::OnlineExhaustivePolicy;
using tt::core::PairSample;
using tt::core::SampleGuard;
using tt::core::SchedulingPolicy;
using tt::fault::FaultConfig;
using tt::fault::FaultPlan;
using tt::runtime::Runtime;
using tt::runtime::RuntimeOptions;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;

/** Host graph whose bodies count their own executions. */
struct CountedGraph
{
    TaskGraph graph;
    std::shared_ptr<std::atomic<int>> mem_runs =
        std::make_shared<std::atomic<int>>(0);
    std::shared_ptr<std::atomic<int>> cmp_runs =
        std::make_shared<std::atomic<int>>(0);
};

CountedGraph
countedGraph(int pairs)
{
    CountedGraph counted;
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    auto mem_runs = counted.mem_runs;
    auto cmp_runs = counted.cmp_runs;
    builder.addPairs(pairs, [&](int) {
        PairSpec spec;
        spec.host_memory = [mem_runs] { ++*mem_runs; };
        spec.host_compute = [cmp_runs] { ++*cmp_runs; };
        spec.bytes = 64;
        spec.compute_cycles = 1;
        return spec;
    });
    counted.graph = std::move(builder).build();
    return counted;
}

RuntimeOptions
hostOptions(int threads)
{
    RuntimeOptions opts;
    opts.threads = threads;
    opts.pin_affinity = false;
    return opts;
}

/** As test_policies' driveStationary: a clean stationary workload. */
void
driveValid(SchedulingPolicy &policy, double tml, double tql, double tc,
           int pairs, double *clock)
{
    for (int i = 0; i < pairs; ++i) {
        const int mtl = policy.currentMtl();
        PairSample s;
        s.tm = tml + mtl * tql;
        s.tc = tc;
        *clock += s.tm + s.tc;
        s.end_time = *clock;
        s.mtl = mtl;
        policy.onPairMeasured(s);
    }
}

/** Feed `pairs` corrupted (NaN) samples. */
void
driveGarbage(SchedulingPolicy &policy, int pairs, double *clock)
{
    for (int i = 0; i < pairs; ++i) {
        PairSample s;
        s.tm = std::nan("");
        s.tc = std::nan("");
        *clock += 0.1;
        s.end_time = *clock;
        s.mtl = policy.currentMtl();
        policy.onPairMeasured(s);
    }
}

// ---------------------------------------------------------------------
// FaultPlan: seeded, order-independent decisions.

TEST(FaultPlan, IdenticalConfigsInjectIdenticalFaults)
{
    FaultConfig config;
    config.seed = 42;
    config.fail_p = 0.1;
    config.straggler_p = 0.1;
    config.corrupt_p = 0.1;
    config.stall_p = 0.05;
    const FaultPlan a(config);
    const FaultPlan b(config);
    for (int task = 0; task < 200; ++task) {
        for (int attempt = 0; attempt < 3; ++attempt) {
            const auto fa = a.forTask(task, attempt);
            const auto fb = b.forTask(task, attempt);
            EXPECT_EQ(fa.fail, fb.fail);
            EXPECT_EQ(fa.stall, fb.stall);
            EXPECT_EQ(fa.corrupt_sample, fb.corrupt_sample);
            EXPECT_EQ(fa.latency_factor, fb.latency_factor);
        }
        // Bit-for-bit equality: NaN payloads must match too.
        const double va = a.corruptValue(task, 0);
        const double vb = b.corruptValue(task, 0);
        std::uint64_t ba = 0;
        std::uint64_t bb = 0;
        std::memcpy(&ba, &va, sizeof(ba));
        std::memcpy(&bb, &vb, sizeof(bb));
        EXPECT_EQ(ba, bb) << "task " << task;
    }
}

TEST(FaultPlan, DifferentSeedsDiffer)
{
    FaultConfig config;
    config.fail_p = 0.2;
    config.seed = 1;
    const FaultPlan a(config);
    config.seed = 2;
    const FaultPlan b(config);
    int differing = 0;
    for (int task = 0; task < 400; ++task)
        differing += a.forTask(task, 0).fail != b.forTask(task, 0).fail;
    EXPECT_GT(differing, 0);
}

TEST(FaultPlan, ProbabilityExtremes)
{
    FaultConfig off;
    off.seed = 9;
    EXPECT_FALSE(off.enabled());

    FaultConfig always;
    always.seed = 9;
    always.fail_p = 1.0;
    const FaultPlan plan(always);
    EXPECT_TRUE(plan.enabled());
    for (int task = 0; task < 100; ++task)
        EXPECT_TRUE(plan.forTask(task, 0).fail);
}

TEST(FaultPlan, CorruptionIgnoresTheAttempt)
{
    FaultConfig config;
    config.seed = 5;
    config.corrupt_p = 0.3;
    const FaultPlan plan(config);
    for (int task = 0; task < 200; ++task)
        EXPECT_EQ(plan.forTask(task, 0).corrupt_sample,
                  plan.forTask(task, 3).corrupt_sample);
}

TEST(FaultPlan, CorruptValuesAreDegenerate)
{
    FaultConfig config;
    config.seed = 3;
    config.corrupt_p = 1.0;
    const FaultPlan plan(config);
    bool saw_nan = false;
    bool saw_inf = false;
    bool saw_negative = false;
    bool saw_huge = false;
    for (int task = 0; task < 256; ++task) {
        for (int field = 0; field < 2; ++field) {
            const double v = plan.corruptValue(task, field);
            saw_nan = saw_nan || std::isnan(v);
            saw_inf = saw_inf || std::isinf(v);
            saw_negative = saw_negative || v < 0.0;
            saw_huge = saw_huge || (std::isfinite(v) && v > 1e12);
            EXPECT_FALSE(std::isfinite(v) && v >= 0.0 && v < 1e12)
                << "corrupt value " << v << " looks like a real time";
        }
    }
    EXPECT_TRUE(saw_nan);
    EXPECT_TRUE(saw_inf);
    EXPECT_TRUE(saw_negative);
    EXPECT_TRUE(saw_huge);
}

// ---------------------------------------------------------------------
// Host runtime under injected faults.

TEST(HostChaos, CompletesWithRetriesUnderSeededPlan)
{
    FaultConfig config;
    config.seed = 1234;
    config.fail_p = 0.08;
    const FaultPlan plan(config);

    const int pairs = 64;
    CountedGraph counted = countedGraph(pairs);
    ConventionalPolicy policy(4);
    RuntimeOptions opts = hostOptions(4);
    opts.fault_plan = &plan;
    opts.retry_backoff_seconds = 1e-6;
    Runtime runtime(counted.graph, policy, opts);
    const auto result = runtime.run();

    EXPECT_FALSE(result.failed) << result.failure_reason;
    EXPECT_GT(result.task_retries, 0)
        << "seed 1234 at fail_p=0.08 must inject at least one failure";
    EXPECT_EQ(result.task_failures, 0);
    // Every pair produced exactly one sample despite the retries...
    EXPECT_EQ(result.samples.size(), static_cast<std::size_t>(pairs));
    // ...and both bodies ran at least once per pair (retries re-run
    // bodies, so the counters exceed the pair count).
    EXPECT_GE(counted.mem_runs->load(), pairs);
    EXPECT_GE(counted.cmp_runs->load(), pairs);
    EXPECT_GT(counted.mem_runs->load() + counted.cmp_runs->load(),
              2 * pairs);
}

TEST(HostChaos, ExhaustedRetriesFailCleanly)
{
    FaultConfig config;
    config.seed = 1;
    config.fail_p = 1.0;
    const FaultPlan plan(config);

    CountedGraph counted = countedGraph(8);
    ConventionalPolicy policy(2);
    RuntimeOptions opts = hostOptions(2);
    opts.fault_plan = &plan;
    opts.max_task_retries = 2;
    opts.retry_backoff_seconds = 1e-6;
    Runtime runtime(counted.graph, policy, opts);
    const auto result = runtime.run();

    EXPECT_TRUE(result.failed);
    EXPECT_FALSE(result.failure_reason.empty());
    EXPECT_GE(result.task_failures, 1);
    // Exactly max_task_retries re-executions per failing task.
    EXPECT_GE(result.task_retries, 2);
}

TEST(HostChaos, StragglersAndStallsStillComplete)
{
    FaultConfig config;
    config.seed = 77;
    config.straggler_p = 0.1;
    config.straggler_factor = 3.0;
    config.stall_p = 0.05;
    config.stall_seconds = 2e-3;
    const FaultPlan plan(config);

    const int pairs = 32;
    CountedGraph counted = countedGraph(pairs);
    ConventionalPolicy policy(4);
    RuntimeOptions opts = hostOptions(4);
    opts.fault_plan = &plan;
    Runtime runtime(counted.graph, policy, opts);
    const auto result = runtime.run();

    EXPECT_FALSE(result.failed);
    EXPECT_EQ(result.task_retries, 0);
    EXPECT_EQ(counted.mem_runs->load(), pairs);
    EXPECT_EQ(counted.cmp_runs->load(), pairs);
    EXPECT_EQ(result.samples.size(), static_cast<std::size_t>(pairs));
}

TEST(HostChaos, CorruptedSamplesReachThePolicyMarked)
{
    FaultConfig config;
    config.seed = 11;
    config.corrupt_p = 0.5;
    const FaultPlan plan(config);

    const int pairs = 64;
    CountedGraph counted = countedGraph(pairs);
    // Guarded policy: rejects the garbage instead of wedging.
    DynamicThrottlePolicy policy(4, 8);
    RuntimeOptions opts = hostOptions(4);
    opts.fault_plan = &plan;
    Runtime runtime(counted.graph, policy, opts);
    const auto result = runtime.run();

    EXPECT_FALSE(result.failed);
    EXPECT_EQ(result.samples.size(), static_cast<std::size_t>(pairs));
    EXPECT_GT(result.policy_stats.samples_rejected, 0);
    int corrupted = 0;
    for (const auto &sample : result.samples)
        corrupted += !std::isfinite(sample.tm) || sample.tm < 0.0;
    EXPECT_GT(corrupted, 0);
    EXPECT_LT(corrupted, pairs);
    // The policy never published an out-of-range MTL.
    for (const auto &[when, mtl] : result.mtl_trace) {
        EXPECT_GE(mtl, 1);
        EXPECT_LE(mtl, 4);
    }
}

// A wedged worker (stall far beyond the deadline) must be converted
// into a clean diagnostic exit with the configured code.
TEST(HostWatchdogDeathTest, ConvertsWedgeIntoCleanExit)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            FaultConfig config;
            config.seed = 2;
            config.stall_p = 1.0;
            config.stall_seconds = 30.0;
            const FaultPlan plan(config);
            CountedGraph counted = countedGraph(8);
            ConventionalPolicy policy(2);
            RuntimeOptions opts = hostOptions(2);
            opts.fault_plan = &plan;
            opts.watchdog_seconds = 0.25;
            Runtime runtime(counted.graph, policy, opts);
            runtime.run();
        },
        ::testing::ExitedWithCode(3), "watchdog");
}

// ---------------------------------------------------------------------
// Policy graceful degradation.

TEST(PolicyDegradation, SampleGuardScreensGarbageAndOutliers)
{
    SampleGuard guard;
    PairSample good;
    good.tm = 0.5;
    good.tc = 1.0;
    good.end_time = 1.0;
    for (int i = 0; i < 32; ++i)
        EXPECT_TRUE(guard.accept(good));

    PairSample bad = good;
    bad.tm = std::nan("");
    EXPECT_FALSE(guard.accept(bad));
    bad = good;
    bad.tc = -1.0;
    EXPECT_FALSE(guard.accept(bad));
    bad = good;
    bad.tm = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(guard.accept(bad));
    bad = good;
    bad.tm = 1e9; // 1000x the running mean: a clock glitch, not a task
    EXPECT_FALSE(guard.accept(bad));
    EXPECT_EQ(guard.rejected(), 4);
    // A merely slow sample is not an outlier.
    PairSample slow = good;
    slow.tm = 5.0;
    EXPECT_TRUE(guard.accept(slow));
}

TEST(PolicyDegradation, DynamicFallsBackToStaticAndRecovers)
{
    const int cores = 4;
    DynamicThrottlePolicy policy(cores, 4);
    policy.setFaultTolerance(/*reject_limit=*/8, /*reenter_after=*/4);
    double clock = 0.0;

    // Healthy compute-bound phase: converges to MTL 1.
    driveValid(policy, 0.08, 0.005, 1.0, 120, &clock);
    ASSERT_EQ(policy.currentMtl(), 1);
    ASSERT_FALSE(policy.degraded());

    // Sustained garbage: after reject_limit consecutive rejections
    // the policy falls back to the safe static MTL (= n).
    driveGarbage(policy, 8, &clock);
    EXPECT_TRUE(policy.degraded());
    EXPECT_EQ(policy.currentMtl(), cores);
    EXPECT_EQ(policy.stats().fallbacks, 1);
    EXPECT_GE(policy.stats().samples_rejected, 8);

    // More garbage while degraded: stays put, no second fallback.
    driveGarbage(policy, 8, &clock);
    EXPECT_TRUE(policy.degraded());
    EXPECT_EQ(policy.stats().fallbacks, 1);

    // Valid samples return: re-enters dynamic selection and settles
    // back on the compute-bound answer.
    const long selections_before = policy.stats().selections;
    driveValid(policy, 0.08, 0.005, 1.0, 120, &clock);
    EXPECT_FALSE(policy.degraded());
    EXPECT_GT(policy.stats().selections, selections_before);
    EXPECT_EQ(policy.currentMtl(), 1);
}

TEST(PolicyDegradation, RejectionsMustBeConsecutiveToDegrade)
{
    DynamicThrottlePolicy policy(4, 4);
    policy.setFaultTolerance(/*reject_limit=*/6, /*reenter_after=*/4);
    double clock = 0.0;
    driveValid(policy, 0.08, 0.005, 1.0, 40, &clock);
    // Interleaved garbage never reaches 6 in a row.
    for (int i = 0; i < 10; ++i) {
        driveGarbage(policy, 5, &clock);
        driveValid(policy, 0.08, 0.005, 1.0, 2, &clock);
    }
    EXPECT_FALSE(policy.degraded());
    EXPECT_EQ(policy.stats().fallbacks, 0);
    EXPECT_GE(policy.stats().samples_rejected, 50);
}

TEST(PolicyDegradation, OnlineFallsBackToStaticAndRecovers)
{
    const int cores = 4;
    OnlineExhaustivePolicy policy(cores, 4);
    policy.setFaultTolerance(/*reject_limit=*/8, /*reenter_after=*/4);
    double clock = 0.0;

    // Healthy phase: the initial brute-force search completes.
    driveValid(policy, 0.08, 0.005, 1.0, 160, &clock);
    ASSERT_GE(policy.stats().selections, 1);
    ASSERT_FALSE(policy.degraded());

    driveGarbage(policy, 8, &clock);
    EXPECT_TRUE(policy.degraded());
    EXPECT_EQ(policy.currentMtl(), cores);
    EXPECT_EQ(policy.stats().fallbacks, 1);

    // Recovery re-runs the search from scratch.
    const long selections_before = policy.stats().selections;
    driveValid(policy, 0.08, 0.005, 1.0, 200, &clock);
    EXPECT_FALSE(policy.degraded());
    EXPECT_GT(policy.stats().selections, selections_before);
    EXPECT_GE(policy.currentMtl(), 1);
    EXPECT_LE(policy.currentMtl(), cores);
}

// ---------------------------------------------------------------------
// Simulated runtime under the same plans: deterministic chaos.

TEST(SimChaos, SeededRunsAreBitIdentical)
{
    const auto machine_config = tt::cpu::MachineConfig::i7_860_1dimm();
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = 1.0;
    params.pairs = 64;

    FaultConfig config;
    config.seed = 99;
    config.fail_p = 0.03;
    config.straggler_p = 0.05;
    config.straggler_factor = 2.0;
    config.corrupt_p = 0.05;
    const FaultPlan plan(config);

    auto once = [&] {
        tt::cpu::SimMachine machine(machine_config);
        const TaskGraph graph =
            tt::workloads::buildSyntheticSim(machine_config, params);
        DynamicThrottlePolicy policy(machine_config.contexts(), 8);
        tt::exec::EngineOptions options;
        options.fault_plan = &plan;
        options.max_task_retries = 3;
        options.retry_backoff_seconds = 1e-6;
        tt::simrt::SimRuntime runtime(machine, graph, policy, options);
        return runtime.run();
    };

    const auto a = once();
    const auto b = once();
    EXPECT_FALSE(a.failed);
    EXPECT_GT(a.task_retries, 0);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.task_retries, b.task_retries);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        // NaN-tolerant equality: corrupted fields corrupt identically.
        const bool tm_equal =
            a.samples[i].tm == b.samples[i].tm ||
            (std::isnan(a.samples[i].tm) && std::isnan(b.samples[i].tm));
        EXPECT_TRUE(tm_equal) << "sample " << i;
        EXPECT_EQ(a.samples[i].end_time, b.samples[i].end_time);
        EXPECT_EQ(a.samples[i].mtl, b.samples[i].mtl);
    }
}

TEST(SimChaos, RetryExhaustionFailsCleanly)
{
    const auto machine_config = tt::cpu::MachineConfig::i7_860_1dimm();
    tt::workloads::SyntheticParams params;
    params.pairs = 16;
    tt::cpu::SimMachine machine(machine_config);
    const TaskGraph graph =
        tt::workloads::buildSyntheticSim(machine_config, params);

    FaultConfig config;
    config.seed = 4;
    config.fail_p = 1.0;
    const FaultPlan plan(config);

    ConventionalPolicy policy(machine_config.contexts());
    tt::exec::EngineOptions options;
    options.fault_plan = &plan;
    options.max_task_retries = 1;
    options.retry_backoff_seconds = 1e-6;
    tt::simrt::SimRuntime runtime(machine, graph, policy, options);
    const auto result = runtime.run();
    EXPECT_TRUE(result.failed);
    EXPECT_FALSE(result.failure_reason.empty());
    EXPECT_GE(result.task_failures, 1);
}

// ---------------------------------------------------------------------
// Deterministic chaos soak: several seeds, full fault mix, real
// threads. Every run must either drain completely or fail cleanly --
// never hang, crash or mis-count (the sanitizer presets run this).

TEST(ChaosSoak, SeededHostRunsDrainOrFailCleanly)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        FaultConfig config;
        config.seed = seed;
        config.fail_p = 0.04;
        config.straggler_p = 0.04;
        config.straggler_factor = 2.0;
        config.corrupt_p = 0.08;
        config.stall_p = 0.02;
        config.stall_seconds = 1e-3;
        const FaultPlan plan(config);

        const int pairs = 32;
        CountedGraph counted = countedGraph(pairs);
        DynamicThrottlePolicy policy(4, 8);
        policy.setFaultTolerance(/*reject_limit=*/16,
                                 /*reenter_after=*/8);
        RuntimeOptions opts = hostOptions(4);
        opts.fault_plan = &plan;
        opts.retry_backoff_seconds = 1e-6;
        opts.watchdog_seconds = 60.0; // backstop only: must not fire
        Runtime runtime(counted.graph, policy, opts);
        const auto result = runtime.run();

        if (result.failed) {
            EXPECT_FALSE(result.failure_reason.empty())
                << "seed " << seed;
            continue;
        }
        EXPECT_EQ(result.samples.size(),
                  static_cast<std::size_t>(pairs))
            << "seed " << seed;
        EXPECT_GE(counted.mem_runs->load(), pairs) << "seed " << seed;
        EXPECT_GE(counted.cmp_runs->load(), pairs) << "seed " << seed;
        const int final_mtl = policy.currentMtl();
        EXPECT_GE(final_mtl, 1) << "seed " << seed;
        EXPECT_LE(final_mtl, 4) << "seed " << seed;
    }
}

} // namespace
