/**
 * @file
 * Streaming health engine: detector unit tests (hysteresis no-flap,
 * quiet-run silence, ring bounding), the cross-backend alert-parity
 * contract -- a seeded burst overload must produce the identical
 * ordered (rule, edge, window) sequence on real threads and on
 * simulated time -- and the detector overhead budget (obs.overhead.
 * health_ns under 3% of makespan with every detector enabled).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "cpu/sim_machine.hh"
#include "exec/engine.hh"
#include "fault/fault_plan.hh"
#include "load/arrival.hh"
#include "obs/health.hh"
#include "runtime/runtime.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "util/stats.hh"

namespace {

using tt::core::StaticMtlPolicy;
using tt::exec::EngineOptions;
using tt::obs::AlertEdge;
using tt::obs::AlertEvent;
using tt::obs::AlertSeverity;
using tt::obs::HealthConfig;
using tt::obs::HealthEngine;
using tt::obs::JobWindowSample;
using tt::obs::TickWindowSample;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;

JobWindowSample
jobWindow(std::uint64_t window, int offered, int shed, int late,
          long backlog)
{
    JobWindowSample sample;
    sample.window = window;
    sample.time = 1e-3 * static_cast<double>(window);
    sample.offered = offered;
    sample.shed = shed;
    sample.predicted_late = late;
    sample.backlog = backlog;
    return sample;
}

TEST(HealthEngine, QuietWindowsEmitNoAlerts)
{
    HealthConfig config;
    config.enabled = true;
    config.model_tml = 200e-6; // every detector armed
    config.model_tql = 50e-6;
    HealthEngine engine(config);

    for (std::uint64_t w = 0; w < 32; ++w) {
        engine.onJobWindow(jobWindow(w, 16, 0, 0, 0));
        TickWindowSample tick;
        tick.window = w;
        tick.gate_folds = 1000;
        tick.gate_failures = 0;
        tick.records = 1000;
        tick.ebr_pending = 0;
        tick.ebr_advances = 4;
        tick.pair_samples = 16;
        tick.sum_tm = 16 * 200e-6;
        tick.sum_bound = 16 * 250e-6;
        engine.onTickWindow(tick);
    }

    EXPECT_TRUE(engine.alerts().empty());
    EXPECT_EQ(engine.alertsDropped(), 0u);
    EXPECT_FALSE(engine.criticalActive());
    for (const auto &state : engine.ruleStates()) {
        EXPECT_FALSE(state.active) << state.rule;
        EXPECT_EQ(state.fired, 0u) << state.rule;
    }
}

TEST(HealthEngine, HysteresisPreventsFlapping)
{
    HealthConfig config;
    config.enabled = true;
    config.slo_burn_enabled = false; // isolate queue_growth
    config.queue_growth_floor = 4;
    ASSERT_EQ(config.fire_windows, 2);
    ASSERT_EQ(config.clear_windows, 2);
    HealthEngine engine(config);

    // Alternating growth: every breach streak is broken before it
    // reaches fire_windows, so the alert must never raise.
    const long flapping[] = {10, 12, 11, 13, 12, 14, 13};
    std::uint64_t w = 0;
    for (long backlog : flapping)
        engine.onJobWindow(jobWindow(w++, 16, 0, 0, backlog));
    EXPECT_TRUE(engine.alerts().empty());

    // Sustained growth fires exactly once...
    engine.onJobWindow(jobWindow(w++, 16, 0, 0, 15)); // streak 1
    engine.onJobWindow(jobWindow(w++, 16, 0, 0, 16)); // streak 2
    ASSERT_EQ(engine.alerts().size(), 1u);
    EXPECT_EQ(engine.alerts()[0].rule, "queue_growth");
    EXPECT_EQ(engine.alerts()[0].edge, AlertEdge::Fired);
    EXPECT_EQ(engine.alerts()[0].severity, AlertSeverity::Warning);
    EXPECT_EQ(engine.alerts()[0].window, 8u);

    // ...and sustained flatness clears exactly once.
    engine.onJobWindow(jobWindow(w++, 16, 0, 0, 16));
    engine.onJobWindow(jobWindow(w++, 16, 0, 0, 16));
    ASSERT_EQ(engine.alerts().size(), 2u);
    EXPECT_EQ(engine.alerts()[1].edge, AlertEdge::Cleared);
    EXPECT_EQ(engine.alerts()[1].window, 10u);
    EXPECT_FALSE(engine.criticalActive()); // warning severity only
}

TEST(HealthEngine, SloBurnFiresUnderMissesAndClearsOnRecovery)
{
    HealthConfig config;
    config.enabled = true;
    HealthEngine engine(config);

    // Two fully-missed windows: burn = 1.0 / 0.05 = 20x the budget
    // in both EWMA windows, completing the fire streak.
    engine.onJobWindow(jobWindow(0, 16, 16, 0, 0));
    engine.onJobWindow(jobWindow(1, 16, 12, 4, 0));
    {
        const std::vector<AlertEvent> &alerts = engine.alerts();
        ASSERT_EQ(alerts.size(), 1u);
        EXPECT_EQ(alerts[0].rule, "slo_burn");
        EXPECT_EQ(alerts[0].severity, AlertSeverity::Critical);
        EXPECT_EQ(alerts[0].edge, AlertEdge::Fired);
        EXPECT_EQ(alerts[0].window, 1u);
        EXPECT_GE(alerts[0].observed, alerts[0].threshold);
    }
    EXPECT_TRUE(engine.criticalActive());

    // Clean windows decay both EWMAs below their thresholds; the
    // clear streak then drops the alert exactly once.
    for (std::uint64_t w = 2; w < 14; ++w)
        engine.onJobWindow(jobWindow(w, 16, 0, 0, 0));
    ASSERT_EQ(engine.alerts().size(), 2u);
    EXPECT_EQ(engine.alerts()[1].rule, "slo_burn");
    EXPECT_EQ(engine.alerts()[1].edge, AlertEdge::Cleared);
    EXPECT_FALSE(engine.criticalActive());
}

TEST(HealthEngine, TickDetectorsFireOnSaturationAndModelBreach)
{
    HealthConfig config;
    config.enabled = true;
    config.model_tml = 200e-6;
    config.model_tql = 50e-6;
    HealthEngine engine(config);

    TickWindowSample tick;
    tick.gate_folds = 100;
    tick.gate_failures = 90; // ratio 0.9 >= 0.5
    tick.records = 100;
    tick.ebr_pending = 3;
    tick.ebr_advances = 0; // limbo stuck
    tick.pair_samples = 10;
    tick.sum_tm = 1.0;
    tick.sum_bound = 0.1; // limit 0.2 << measured 1.0
    tick.window = 0;
    engine.onTickWindow(tick);
    EXPECT_TRUE(engine.alerts().empty()) << "fired before streak";
    tick.window = 1;
    engine.onTickWindow(tick);

    bool gate_fired = false;
    bool ebr_fired = false;
    bool model_fired = false;
    for (const AlertEvent &alert : engine.alerts()) {
        EXPECT_EQ(alert.edge, AlertEdge::Fired);
        gate_fired |= alert.rule == "gate_saturation";
        ebr_fired |= alert.rule == "ebr_lag";
        model_fired |= alert.rule == "model_bound";
    }
    EXPECT_TRUE(gate_fired);
    EXPECT_TRUE(ebr_fired);
    EXPECT_TRUE(model_fired);
    EXPECT_TRUE(engine.criticalActive()); // model_bound is critical
}

TEST(HealthEngine, ModelBoundStaysDisarmedWithoutAFit)
{
    HealthConfig config;
    config.enabled = true; // model_tml left at 0: no fit, no rule
    HealthEngine engine(config);

    TickWindowSample tick;
    tick.pair_samples = 10;
    tick.sum_tm = 10.0;
    tick.sum_bound = 0.1;
    for (std::uint64_t w = 0; w < 4; ++w) {
        tick.window = w;
        engine.onTickWindow(tick);
    }
    EXPECT_TRUE(engine.alerts().empty());

    // The rule still appears (disabled) so the metric schema is
    // stable across configurations, in a fixed order.
    const auto states = engine.ruleStates();
    ASSERT_EQ(states.size(), 6u);
    EXPECT_STREQ(states[0].rule, "slo_burn");
    EXPECT_STREQ(states[5].rule, "model_bound");
    EXPECT_FALSE(states[5].enabled);
}

TEST(HealthEngine, AlertRingIsBoundedAndCountsEvictions)
{
    HealthConfig config;
    config.enabled = true;
    config.slo_burn_enabled = false;
    config.alert_capacity = 1;
    HealthEngine engine(config);

    // One fired + one cleared edge through a capacity-1 ring.
    std::uint64_t w = 0;
    for (long backlog : {10, 12, 14, 14, 14})
        engine.onJobWindow(jobWindow(w++, 16, 0, 0, backlog));
    ASSERT_EQ(engine.alerts().size(), 1u);
    EXPECT_EQ(engine.alerts()[0].edge, AlertEdge::Cleared);
    EXPECT_EQ(engine.alertsDropped(), 1u);
}

/** ~tens of microseconds of real work for host task bodies. */
void
spin()
{
    volatile double acc = 0.0;
    for (int i = 0; i < 20000; ++i)
        acc = acc + static_cast<double>(i);
}

/** One graph both backends can execute (see test_cross_backend.cc). */
TaskGraph
dualGraph(int pairs)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(pairs, [](int) {
        PairSpec spec;
        spec.bytes = 128 * 1024;
        spec.compute_cycles = 200000;
        spec.host_memory = [] { spin(); };
        spec.host_compute = [] { spin(); };
        return spec;
    });
    return std::move(builder).build();
}

tt::cpu::MachineConfig
simConfig(int contexts)
{
    auto config = tt::cpu::MachineConfig::i7_860_1dimm();
    config.cores = contexts;
    config.smt_ways = 1;
    return config;
}

/**
 * The tentpole acceptance contract: a seeded arrival-burst overload
 * produces the identical ordered alert sequence -- same rule, same
 * edge, same window index -- on real threads and on simulated time.
 * Only the job-window detectors run here: their inputs (sheds,
 * predicted-late admits, model backlog) are functions of the arrival
 * plan and the admission model alone, which existing cross-backend
 * tests prove identical. The tick-window detectors read live
 * hot-path counters and are explicitly excluded from the contract.
 */
TEST(CrossBackendHealth, SeededBurstOverloadAlertSequencesMatch)
{
    const TaskGraph graph = dualGraph(64);

    tt::fault::FaultConfig fault_config;
    fault_config.seed = 17;
    fault_config.arrival_burst_p = 0.5; // --inject-arrival-burst 0.5
    const tt::fault::FaultPlan fault_plan(fault_config);

    tt::load::ArrivalConfig arrivals;
    arrivals.seed = 13;
    arrivals.process = tt::load::ArrivalProcess::Bursty;
    arrivals.rate = 20000.0;
    arrivals.burst_period_seconds = 1e-3;
    arrivals.burst_fraction = 0.25;
    arrivals.burst_rate_factor = 3.0;
    arrivals.slo_seconds = 500e-6;
    const tt::load::ArrivalPlan plan = tt::load::buildArrivalPlan(
        arrivals, graph.pairCount(), &fault_plan);

    EngineOptions options;
    options.threads = 2;
    options.pin_affinity = false;
    options.arrival_plan = &plan;
    options.admission.queue_cap = 4;
    options.admission.service_tml = 200e-6;
    options.admission.service_tql = 50e-6;
    options.health.enabled = true;
    // Job-window detectors only (see the test comment).
    options.health.gate_saturation_enabled = false;
    options.health.drop_rate_enabled = false;
    options.health.ebr_lag_enabled = false;
    options.health.model_bound_enabled = false;

    tt::MetricsRegistry host_metrics;
    options.metrics = &host_metrics;
    StaticMtlPolicy host_policy(1, 2);
    tt::runtime::Runtime host(graph, host_policy, options);
    const auto host_result = host.run();

    tt::MetricsRegistry sim_metrics;
    options.metrics = &sim_metrics;
    tt::cpu::SimMachine machine(simConfig(2));
    StaticMtlPolicy sim_policy(1, 2);
    tt::simrt::SimRuntime sim(machine, graph, sim_policy, options);
    const auto sim_result = sim.run();

    ASSERT_FALSE(host_result.failed);
    ASSERT_FALSE(sim_result.failed);
    ASSERT_TRUE(host_result.health_enabled);
    ASSERT_TRUE(sim_result.health_enabled);

    // The overload must actually trip a detector, or the contract is
    // vacuous.
    ASSERT_FALSE(host_result.alerts.empty());

    ASSERT_EQ(host_result.alerts.size(), sim_result.alerts.size());
    for (std::size_t i = 0; i < host_result.alerts.size(); ++i) {
        const AlertEvent &h = host_result.alerts[i];
        const AlertEvent &s = sim_result.alerts[i];
        EXPECT_EQ(h.rule, s.rule) << "alert " << i;
        EXPECT_EQ(static_cast<int>(h.severity),
                  static_cast<int>(s.severity))
            << "alert " << i;
        EXPECT_EQ(static_cast<int>(h.edge), static_cast<int>(s.edge))
            << "alert " << i;
        EXPECT_EQ(h.window, s.window) << "alert " << i;
        // Same deterministic inputs, same detector arithmetic.
        EXPECT_DOUBLE_EQ(h.observed, s.observed) << "alert " << i;
        EXPECT_DOUBLE_EQ(h.threshold, s.threshold) << "alert " << i;
    }
    EXPECT_EQ(host_result.critical_alert_active,
              sim_result.critical_alert_active);

    // Both backends published identical edge counters too.
    EXPECT_EQ(host_metrics.counter("obs.alerts_fired.slo_burn"),
              sim_metrics.counter("obs.alerts_fired.slo_burn"));
    EXPECT_GT(host_metrics.counter("obs.alerts_fired.slo_burn"), 0);
}

/**
 * A healthy closed-loop run, watched by the full detector set, must
 * end with an empty alert stream on both backends.
 */
TEST(CrossBackendHealth, QuietRunsEmitNoAlertsOnEitherBackend)
{
    const TaskGraph graph = dualGraph(24);
    EngineOptions options;
    options.threads = 2;
    options.pin_affinity = false;
    options.health.enabled = true;

    StaticMtlPolicy host_policy(1, 2);
    tt::runtime::Runtime host(graph, host_policy, options);
    const auto host_result = host.run();

    tt::cpu::SimMachine machine(simConfig(2));
    StaticMtlPolicy sim_policy(1, 2);
    tt::simrt::SimRuntime sim(machine, graph, sim_policy, options);
    const auto sim_result = sim.run();

    for (const tt::exec::RunResult *result :
         {&host_result, &sim_result}) {
        ASSERT_FALSE(result->failed);
        EXPECT_TRUE(result->health_enabled);
        EXPECT_TRUE(result->alerts.empty());
        EXPECT_FALSE(result->critical_alert_active);
    }
}

/**
 * Acceptance: with every detector armed (model fit included), the
 * health engine's self-measured cost stays under 3% of the makespan.
 * Host backend, so both sides of the ratio are wall time.
 */
TEST(HealthOverhead, UnderThreePercentOfMakespanAllDetectorsOn)
{
    const TaskGraph graph = dualGraph(200);

    tt::load::ArrivalConfig arrivals;
    arrivals.seed = 3;
    arrivals.rate = 4000.0;
    arrivals.slo_seconds = 30.0; // generous: a *healthy* open loop
    const tt::load::ArrivalPlan plan =
        tt::load::buildArrivalPlan(arrivals, graph.pairCount());

    tt::MetricsRegistry metrics;
    EngineOptions options;
    options.threads = 2;
    options.pin_affinity = false;
    options.metrics = &metrics;
    options.arrival_plan = &plan;
    options.admission.queue_cap = 64;
    options.admission.service_tml = 200e-6;
    options.admission.service_tql = 50e-6;
    options.health.enabled = true;
    options.health.tick_seconds = 0.001; // 10x the default tick rate

    StaticMtlPolicy policy(1, 2);
    tt::runtime::Runtime runtime(graph, policy, options);
    const auto result = runtime.run();
    ASSERT_FALSE(result.failed);
    ASSERT_TRUE(result.health_enabled);

    const double health_ns = static_cast<double>(
        metrics.counter("obs.overhead.health_ns"));
    const double makespan_ns = result.seconds * 1e9;
    ASSERT_GT(makespan_ns, 0.0);
    // The budget only means something on uninstrumented builds: the
    // sanitizers slow the detector bookkeeping (mutexes, registry
    // strings) far more than the arithmetic task bodies, so the
    // ratio is not the one users pay. The sanitizer presets still
    // run everything above -- the race coverage is the point there.
#if !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
    EXPECT_LT(health_ns, 0.03 * makespan_ns)
        << "health engine cost " << health_ns << " ns of "
        << makespan_ns << " ns makespan";
#endif
    EXPECT_GT(health_ns, 0.0);

    // Satellite: the new hot-path substrate telemetry is published.
    for (const char *name :
         {"runtime.gate_admit_failures", "runtime.gate_folds",
          "runtime.worker_parks", "runtime.worker_wakes",
          "obs.ebr_epoch_advances", "obs.ebr_advance_stalls"}) {
        bool found = false;
        for (const std::string &counter : metrics.counterNames())
            found |= counter == name;
        EXPECT_TRUE(found) << name;
    }
    for (const char *name :
         {"runtime.ring_peak_memory", "runtime.ring_peak_compute",
          "obs.ebr_pending"}) {
        bool found = false;
        for (const std::string &gauge : metrics.gaugeNames())
            found |= gauge == name;
        EXPECT_TRUE(found) << name;
    }
}

} // namespace
