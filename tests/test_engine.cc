/**
 * @file
 * Unit tests of the backend-agnostic scheduling engine, driven by a
 * deterministic MockBackend on virtual time: dispatch discipline,
 * pair-granularity retries and exponential backoff, fault
 * realization, degraded policies, the in-band watchdog, time-series
 * sampling and trace bounds -- all without threads or the simulator,
 * so every assertion can be exact.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "exec/engine.hh"
#include "fault/fault_plan.hh"
#include "stream/builder.hh"
#include "util/stats.hh"
#include "util/json.hh"

namespace {

using tt::exec::AttemptOutcome;
using tt::exec::AttemptSpec;
using tt::exec::Engine;
using tt::exec::EngineOptions;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;
using tt::stream::TaskKind;

/**
 * Deterministic virtual-time backend. Attempts complete after fixed
 * per-kind durations on a single event loop; the engine's fault
 * decisions are honoured the way a real backend would (fail, stall,
 * straggle, re-run the pair's memory body before a compute retry).
 * The clock is exact, so tests can assert on the schedule down to
 * the backoff arithmetic.
 */
class MockBackend final : public tt::exec::ExecutionBackend
{
  public:
    MockBackend(const TaskGraph &graph, int contexts)
        : graph_(graph), contexts_(contexts)
    {
    }

    double mem_seconds = 1e-3;
    double comp_seconds = 2e-3;

    /** Extra failures beyond the engine's fault plan (per spec). */
    std::function<bool(const AttemptSpec &)> inject_fail;

    /** Every spec the engine handed us, in dispatch order. */
    std::vector<AttemptSpec> specs;

    int contexts() const override { return contexts_; }
    double now() const override { return now_; }

    void
    startAttempt(int context, const AttemptSpec &spec) override
    {
        specs.push_back(spec);
        const auto &task = graph_.task(spec.task);
        const double base = task.kind == TaskKind::Memory
                                ? mem_seconds
                                : comp_seconds;
        const double lead =
            spec.rerun_memory_first ? mem_seconds : 0.0;
        double duration = base;
        if (spec.faults.stall)
            duration += spec.stall_seconds;
        if (spec.faults.latency_factor > 1.0)
            duration *= spec.faults.latency_factor;

        AttemptOutcome out;
        out.start = now_ + lead;
        out.end = out.start + duration;
        if (spec.faults.fail ||
            (inject_fail && inject_fail(spec))) {
            out.failed = true;
            out.error =
                tt::fault::InjectedFault(spec.task, spec.attempt)
                    .what();
        }
        schedule(out.end - now_, [this, context, out] {
            engine_->onAttemptDone(context, out);
        });
    }

    TimerToken
    after(double seconds, std::function<void()> fn) override
    {
        return schedule(seconds, std::move(fn)) + 1;
    }

    void
    cancel(TimerToken token) override
    {
        if (token == 0)
            return;
        for (auto &event : events_)
            if (event.seq == token - 1)
                event.dead = true;
    }

    void
    drive(Engine &engine) override
    {
        (void)engine;
        for (;;) {
            std::size_t best = events_.size();
            for (std::size_t i = 0; i < events_.size(); ++i) {
                if (events_[i].dead)
                    continue;
                if (best == events_.size() ||
                    events_[i].at < events_[best].at ||
                    (events_[i].at == events_[best].at &&
                     events_[i].seq < events_[best].seq))
                    best = i;
            }
            if (best == events_.size())
                return;
            events_[best].dead = true;
            now_ = events_[best].at;
            auto fn = std::move(events_[best].fn);
            fn();
        }
    }

  private:
    struct Event
    {
        double at = 0.0;
        std::uint64_t seq = 0;
        std::function<void()> fn;
        bool dead = false;
    };

    std::uint64_t
    schedule(double seconds, std::function<void()> fn)
    {
        const std::uint64_t seq = next_seq_++;
        events_.push_back(Event{now_ + seconds, seq, std::move(fn),
                                false});
        return seq;
    }

    const TaskGraph &graph_;
    int contexts_ = 1;
    double now_ = 0.0;
    std::vector<Event> events_;
    std::uint64_t next_seq_ = 0;
};

TaskGraph
pairsGraph(int pairs, int phases = 1)
{
    StreamProgramBuilder builder;
    for (int p = 0; p < phases; ++p) {
        builder.beginPhase("phase" + std::to_string(p));
        builder.addPairs(pairs, [](int) {
            PairSpec spec;
            spec.bytes = 64 * 1024;
            spec.compute_cycles = 1000;
            return spec;
        });
    }
    return std::move(builder).build();
}

TEST(EngineMock, MtlGateHoldsAndScheduleValidates)
{
    const TaskGraph graph = pairsGraph(8);
    tt::core::StaticMtlPolicy policy(1, 3);
    EngineOptions options;
    MockBackend backend(graph, 3);
    Engine engine(graph, policy, options);
    const auto result = engine.run(backend);

    EXPECT_FALSE(result.failed);
    EXPECT_EQ(result.samples.size(), 8u);
    EXPECT_EQ(result.peak_mem_in_flight, 1);
    EXPECT_EQ(result.trace.size(), 16u);
    EXPECT_EQ(tt::exec::validateSchedule(graph, result, 3), "");
}

/**
 * Exact makespan of a tiny schedule: MTL=1 admits memory tasks one
 * at a time, compute dispatches as soon as its pair's data landed,
 * and an idle context prefers compute over admissible memory.
 *
 *   t=0   ctx0: mem0            (mem1 blocked by the gate)
 *   t=1ms ctx0: cmp0, ctx1: mem1
 *   t=2ms ctx1 idle -> cmp1
 *   t=4ms cmp1 ends: makespan
 */
TEST(EngineMock, ComputeFirstDispatchProducesExactMakespan)
{
    const TaskGraph graph = pairsGraph(2);
    tt::core::StaticMtlPolicy policy(1, 2);
    EngineOptions options;
    MockBackend backend(graph, 2);
    Engine engine(graph, policy, options);
    const auto result = engine.run(backend);

    EXPECT_FALSE(result.failed);
    EXPECT_NEAR(result.seconds, 4e-3, 1e-12);
    EXPECT_EQ(tt::exec::validateSchedule(graph, result, 2), "");
}

TEST(EngineMock, PhaseBarriersSeparatePhases)
{
    const TaskGraph graph = pairsGraph(4, /*phases=*/3);
    tt::core::ConventionalPolicy policy(2);
    EngineOptions options;
    MockBackend backend(graph, 2);
    Engine engine(graph, policy, options);
    const auto result = engine.run(backend);

    EXPECT_FALSE(result.failed);
    ASSERT_EQ(result.phases.size(), 3u);
    for (std::size_t i = 1; i < result.phases.size(); ++i)
        EXPECT_GE(result.phases[i].start, result.phases[i - 1].end);
    EXPECT_EQ(tt::exec::validateSchedule(graph, result, 2), "");
}

/**
 * A task failing every attempt exhausts its retries on the exact
 * exponential-backoff schedule:
 *
 *   [0,1ms] attempt 0 fails, backoff 1ms
 *   [2,3ms] attempt 1 fails, backoff 2ms
 *   [5,6ms] attempt 2 fails -> run failed at t=6ms
 */
TEST(EngineMock, RetryBackoffIsExponentialAndExhaustionFailsRun)
{
    const TaskGraph graph = pairsGraph(1);
    tt::core::StaticMtlPolicy policy(1, 1);
    tt::fault::FaultConfig config;
    config.seed = 11;
    config.fail_p = 1.0;
    const tt::fault::FaultPlan plan(config);

    EngineOptions options;
    options.fault_plan = &plan;
    options.max_task_retries = 2;
    options.retry_backoff_seconds = 1e-3;
    MockBackend backend(graph, 1);
    Engine engine(graph, policy, options);
    const auto result = engine.run(backend);

    EXPECT_TRUE(result.failed);
    EXPECT_FALSE(result.watchdog_fired);
    EXPECT_EQ(result.task_retries, 2);
    EXPECT_EQ(result.task_failures, 1);
    ASSERT_EQ(result.retries.size(), 2u);
    EXPECT_EQ(result.retries[0].attempt, 0);
    EXPECT_EQ(result.retries[1].attempt, 1);
    EXPECT_EQ(result.retries[0].task, result.retries[1].task);
    EXPECT_NE(result.failure_reason.find("failed after 2 retries"),
              std::string::npos);
    EXPECT_NE(result.failure_reason.find("injected fault"),
              std::string::npos);
    EXPECT_NEAR(result.seconds, 6e-3, 1e-12);
}

TEST(EngineMock, ComputeRetryRerunsThePairsMemoryBodyFirst)
{
    const TaskGraph graph = pairsGraph(4);
    tt::core::StaticMtlPolicy policy(2, 2);
    EngineOptions options;
    options.retry_backoff_seconds = 1e-4;
    MockBackend backend(graph, 2);
    // Fail the first attempt of every *compute* task.
    backend.inject_fail = [&graph](const AttemptSpec &spec) {
        return graph.task(spec.task).kind == TaskKind::Compute &&
               spec.attempt == 0;
    };
    Engine engine(graph, policy, options);
    const auto result = engine.run(backend);

    EXPECT_FALSE(result.failed);
    EXPECT_EQ(result.samples.size(), 4u);
    EXPECT_EQ(result.task_retries, 4);

    int rerun_retries = 0;
    for (const auto &spec : backend.specs) {
        if (spec.attempt == 0) {
            EXPECT_FALSE(spec.rerun_memory_first);
            continue;
        }
        EXPECT_EQ(graph.task(spec.task).kind, TaskKind::Compute);
        EXPECT_TRUE(spec.rerun_memory_first);
        ++rerun_retries;
    }
    EXPECT_EQ(rerun_retries, 4);
    EXPECT_EQ(tt::exec::validateSchedule(graph, result, 2), "");
}

TEST(EngineMock, WholesaleCorruptionDegradesThePolicy)
{
    const TaskGraph graph = pairsGraph(64);
    tt::core::DynamicThrottlePolicy policy(2, 8);
    tt::fault::FaultConfig config;
    config.seed = 5;
    config.corrupt_p = 1.0;
    const tt::fault::FaultPlan plan(config);

    EngineOptions options;
    options.fault_plan = &plan;
    MockBackend backend(graph, 2);
    Engine engine(graph, policy, options);
    const auto result = engine.run(backend);

    EXPECT_FALSE(result.failed);
    EXPECT_EQ(result.samples.size(), 64u);
    EXPECT_TRUE(policy.degraded());
    EXPECT_GT(result.policy_stats.samples_rejected, 0);
    const bool any_degraded_decision = std::any_of(
        result.decisions.begin(), result.decisions.end(),
        [](const tt::core::MtlDecision &d) { return d.degraded; });
    EXPECT_TRUE(any_degraded_decision);
}

TEST(EngineMock, WatchdogFailsTheRunInBandOnTheVirtualClock)
{
    const TaskGraph graph = pairsGraph(16);
    tt::core::StaticMtlPolicy policy(1, 1);
    tt::MetricsRegistry metrics;
    EngineOptions options;
    options.metrics = &metrics;
    options.watchdog_seconds = 5e-3;
    MockBackend backend(graph, 1);
    Engine engine(graph, policy, options);
    const auto result = engine.run(backend);

    EXPECT_TRUE(result.failed);
    EXPECT_TRUE(result.watchdog_fired);
    EXPECT_NE(result.failure_reason.find("watchdog"),
              std::string::npos);
    // The deadline fired mid-run: not every pair completed, and the
    // clock stopped at (or just past) the deadline.
    EXPECT_LT(result.samples.size(), 16u);
    EXPECT_GE(result.seconds, 5e-3);
    const auto counters = metrics.counterNames();
    EXPECT_NE(std::find(counters.begin(), counters.end(),
                        "runtime.watchdog_fired"),
              counters.end());
}

TEST(EngineMock, TimeseriesRowsCoverTheRunAndEndAtDrain)
{
    const TaskGraph graph = pairsGraph(8);
    tt::core::StaticMtlPolicy policy(1, 1);
    std::ostringstream rows;
    EngineOptions options;
    options.timeseries_out = &rows;
    options.timeseries_interval_seconds = 1e-3;
    MockBackend backend(graph, 1);
    Engine engine(graph, policy, options);
    const auto result = engine.run(backend);

    EXPECT_FALSE(result.failed);
    std::istringstream in(rows.str());
    std::string line;
    std::size_t count = 0;
    double last_t = -1.0;
    double last_tasks = -1.0;
    while (std::getline(in, line)) {
        const auto row = tt::json::parse(line);
        ASSERT_TRUE(row.has_value()) << line;
        EXPECT_GE(row->numberAt("t"), last_t);
        last_t = row->numberAt("t");
        last_tasks = row->numberAt("tasks_done");
        ++count;
    }
    EXPECT_GE(count, 5u);
    // The final row is emitted at drain and stamped with it.
    EXPECT_DOUBLE_EQ(last_t, result.seconds);
    EXPECT_EQ(static_cast<int>(last_tasks), graph.taskCount());
}

TEST(EngineMock, EmptyGraphDrainsImmediately)
{
    const TaskGraph graph;
    tt::core::StaticMtlPolicy policy(1, 1);
    EngineOptions options;
    MockBackend backend(graph, 1);
    Engine engine(graph, policy, options);
    const auto result = engine.run(backend);

    EXPECT_FALSE(result.failed);
    EXPECT_EQ(result.seconds, 0.0);
    EXPECT_TRUE(result.trace.empty());
    EXPECT_TRUE(result.samples.empty());
    // The policy's initial MTL is still reported.
    ASSERT_FALSE(result.mtl_trace.empty());
    EXPECT_EQ(result.mtl_trace.front().second, 1);
}

TEST(EngineMock, TraceCapacityBoundsMemoryAndCountsDrops)
{
    const TaskGraph graph = pairsGraph(16);
    tt::core::StaticMtlPolicy policy(2, 2);
    EngineOptions options;
    options.trace_capacity = 2;
    MockBackend backend(graph, 2);
    Engine engine(graph, policy, options);
    const auto result = engine.run(backend);

    EXPECT_FALSE(result.failed);
    EXPECT_EQ(result.samples.size(), 16u); // scheduling unaffected
    EXPECT_LE(result.trace.size(), 4u);    // 2 rings x capacity 2
    EXPECT_GT(result.trace_dropped, 0u);
}

} // namespace
