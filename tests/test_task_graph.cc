/**
 * @file
 * Tests of the stream task model: pair/phase structure, dependency
 * validation (cycles, cross-phase edges), and the builder's
 * equal-size enforcement.
 */

#include <gtest/gtest.h>

#include "stream/builder.hh"
#include "stream/task_graph.hh"

namespace {

using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::Task;
using tt::stream::TaskGraph;
using tt::stream::TaskKind;

PairSpec
simpleSpec(std::uint64_t bytes = 1024, std::uint64_t cycles = 100)
{
    PairSpec spec;
    spec.bytes = bytes;
    spec.compute_cycles = cycles;
    return spec;
}

TEST(TaskGraph, PairStructure)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p0");
    builder.addPair(simpleSpec());
    builder.addPair(simpleSpec());
    const TaskGraph graph = std::move(builder).build();

    EXPECT_EQ(graph.pairCount(), 2);
    EXPECT_EQ(graph.taskCount(), 4);
    EXPECT_EQ(graph.phaseCount(), 1);

    for (int p = 0; p < graph.pairCount(); ++p) {
        const Task &mem = graph.task(graph.memoryTaskOf(p));
        const Task &cmp = graph.task(graph.computeTaskOf(p));
        EXPECT_EQ(mem.kind, TaskKind::Memory);
        EXPECT_EQ(cmp.kind, TaskKind::Compute);
        EXPECT_EQ(mem.pair, p);
        EXPECT_EQ(cmp.pair, p);
        // The compute task depends on its memory partner.
        ASSERT_EQ(cmp.deps.size(), 1u);
        EXPECT_EQ(cmp.deps[0], mem.id);
        EXPECT_TRUE(mem.deps.empty());
    }
}

TEST(TaskGraph, PhaseBookkeeping)
{
    StreamProgramBuilder builder;
    builder.beginPhase("a");
    builder.addPair(simpleSpec());
    builder.beginPhase("b");
    builder.addPair(simpleSpec(2048, 5));
    builder.addPair(simpleSpec(2048, 5));
    const TaskGraph graph = std::move(builder).build();

    ASSERT_EQ(graph.phaseCount(), 2);
    EXPECT_EQ(graph.phase(0).name, "a");
    EXPECT_EQ(graph.phase(0).pair_count, 1);
    EXPECT_EQ(graph.phase(1).name, "b");
    EXPECT_EQ(graph.phase(1).first_pair, 1);
    EXPECT_EQ(graph.phase(1).pair_count, 2);
    EXPECT_EQ(graph.task(graph.memoryTaskOf(1)).phase, 1);
}

TEST(TaskGraph, FootprintDefaultsToBytes)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    PairSpec spec = simpleSpec(4096, 10);
    spec.footprint_bytes = 0; // ask for the default
    builder.addPair(std::move(spec));
    const TaskGraph graph = std::move(builder).build();
    EXPECT_EQ(graph.task(graph.memoryTaskOf(0)).sim_work.footprint_bytes,
              4096u);
}

TEST(TaskGraph, AddPairsFactoryIndices)
{
    StreamProgramBuilder builder(false);
    builder.beginPhase("p");
    builder.addPairs(5, [](int i) {
        PairSpec spec;
        spec.bytes = 64u * static_cast<std::uint64_t>(i + 1);
        spec.compute_cycles = 1;
        return spec;
    });
    const TaskGraph graph = std::move(builder).build();
    EXPECT_EQ(graph.pairCount(), 5);
    EXPECT_EQ(graph.task(graph.memoryTaskOf(4)).sim_work.bytes, 320u);
}

TEST(TaskGraph, DependPairsCreatesCrossPairEdge)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    const auto a = builder.addPair(simpleSpec());
    const auto b = builder.addPair(simpleSpec());
    builder.dependPairs(a, b);
    const TaskGraph graph = std::move(builder).build();

    const Task &mem_b = graph.task(graph.memoryTaskOf(b));
    ASSERT_EQ(mem_b.deps.size(), 1u);
    EXPECT_EQ(mem_b.deps[0], graph.computeTaskOf(a));
}

TEST(TaskGraphDeath, UniformBuilderRejectsUnevenPairs)
{
    StreamProgramBuilder builder; // uniform_pairs = true
    builder.beginPhase("p");
    builder.addPair(simpleSpec(1024, 100));
    EXPECT_DEATH(builder.addPair(simpleSpec(2048, 100)),
                 "equally sized");
}

TEST(TaskGraph, UniformityResetsPerPhase)
{
    StreamProgramBuilder builder;
    builder.beginPhase("small");
    builder.addPair(simpleSpec(1024, 100));
    builder.beginPhase("large");
    builder.addPair(simpleSpec(8192, 700)); // different shape is fine
    const TaskGraph graph = std::move(builder).build();
    EXPECT_EQ(graph.pairCount(), 2);
}

TEST(TaskGraphDeath, CycleIsRejected)
{
    TaskGraph graph;
    graph.beginPhase("p");
    Task mem;
    mem.kind = TaskKind::Memory;
    Task cmp;
    cmp.kind = TaskKind::Compute;
    graph.addPair(std::move(mem), std::move(cmp));
    // compute -> memory edge closes a cycle with the implicit
    // memory -> compute dependency.
    graph.addDependency(graph.computeTaskOf(0), graph.memoryTaskOf(0));
    EXPECT_DEATH(graph.validate(), "cycle");
}

TEST(TaskGraphDeath, CrossPhaseDependencyRejected)
{
    TaskGraph graph;
    graph.beginPhase("a");
    Task m1;
    m1.kind = TaskKind::Memory;
    Task c1;
    c1.kind = TaskKind::Compute;
    graph.addPair(std::move(m1), std::move(c1));
    graph.beginPhase("b");
    Task m2;
    m2.kind = TaskKind::Memory;
    Task c2;
    c2.kind = TaskKind::Compute;
    graph.addPair(std::move(m2), std::move(c2));
    EXPECT_DEATH(graph.addDependency(0, 2), "cross-phase");
}

TEST(TaskGraphDeath, PairBeforePhasePanics)
{
    TaskGraph graph;
    Task mem;
    mem.kind = TaskKind::Memory;
    Task cmp;
    cmp.kind = TaskKind::Compute;
    EXPECT_DEATH(graph.addPair(std::move(mem), std::move(cmp)),
                 "beginPhase");
}

TEST(TaskGraph, EmptyGraphIsValid)
{
    StreamProgramBuilder builder;
    const TaskGraph graph = std::move(builder).build();
    EXPECT_TRUE(graph.empty());
    EXPECT_EQ(graph.taskCount(), 0);
}

} // namespace
