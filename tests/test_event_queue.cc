/**
 * @file
 * Unit tests of the discrete-event kernel: ordering, FIFO tie
 * breaking, cancellation, re-entrant scheduling and the runaway
 * budget.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace {

using tt::sim::EventQueue;
using tt::sim::Tick;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, FifoAmongEqualTicks)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {
        q.scheduleIn(50, [&] { seen = q.now(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, DescheduleSkipsEvent)
{
    EventQueue q;
    bool ran = false;
    const auto id = q.schedule(10, [&] { ran = true; });
    q.deschedule(id);
    q.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.executed(), 0u);
}

TEST(EventQueue, DescheduleOneOfMany)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] { order.push_back(1); });
    const auto id = q.schedule(2, [&] { order.push_back(2); });
    q.schedule(3, [&] { order.push_back(3); });
    q.deschedule(id);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, ReentrantSchedulingAtSameTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(1);
        q.schedule(10, [&] { order.push_back(2); });
    });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.runOne());
    q.schedule(1, [] {});
    EXPECT_TRUE(q.runOne());
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.executed(), 10u);
}

TEST(EventQueueDeath, SchedulingIntoThePastPanics)
{
    EventQueue q;
    q.schedule(100, [&q] {
        EXPECT_DEATH(q.schedule(50, [] {}), "past");
    });
    q.run();
}

TEST(EventQueueDeath, RunawayBudgetPanics)
{
    EventQueue q;
    // A self-perpetuating event never drains; the budget must trip.
    std::function<void()> loop = [&] { q.scheduleIn(1, loop); };
    q.schedule(0, loop);
    EXPECT_DEATH(q.run(1000), "budget");
}

TEST(Ticks, Conversions)
{
    EXPECT_DOUBLE_EQ(tt::sim::toSeconds(tt::sim::kTicksPerSecond), 1.0);
    EXPECT_EQ(tt::sim::fromNs(1.0), 1000u);
    EXPECT_EQ(tt::sim::fromNs(7.5), 7500u);
    // 2.8 GHz -> 357 ps.
    EXPECT_EQ(tt::sim::cyclePeriod(2.8), 357u);
}

} // namespace
