/**
 * @file
 * Cross-backend contracts of the shared scheduling engine: the same
 * graph, policy and fault plan must produce the same policy-visible
 * behaviour whether executed by real threads (runtime::Runtime) or
 * on simulated time (simrt::SimRuntime), and both must publish the
 * same metric names and the same run-relative time base.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "cpu/sim_machine.hh"
#include "exec/engine.hh"
#include "fault/fault_plan.hh"
#include "load/admission.hh"
#include "load/arrival.hh"
#include "obs/analyzer.hh"
#include "runtime/runtime.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "util/stats.hh"

namespace {

using tt::core::StaticMtlPolicy;
using tt::exec::EngineOptions;
using tt::fault::FaultConfig;
using tt::fault::FaultPlan;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;

/** ~tens of microseconds of real work for host task bodies. */
void
spin()
{
    volatile double acc = 0.0;
    for (int i = 0; i < 20000; ++i)
        acc = acc + static_cast<double>(i);
}

/**
 * One graph both backends can execute: host closures for the thread
 * runtime, bytes/cycles for the simulator.
 */
TaskGraph
dualGraph(int pairs)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(pairs, [](int) {
        PairSpec spec;
        spec.bytes = 128 * 1024;
        spec.compute_cycles = 200000;
        spec.host_memory = [] { spin(); };
        spec.host_compute = [] { spin(); };
        return spec;
    });
    return std::move(builder).build();
}

tt::cpu::MachineConfig
simConfig(int contexts)
{
    auto config = tt::cpu::MachineConfig::i7_860_1dimm();
    config.cores = contexts;
    config.smt_ways = 1;
    return config;
}

/**
 * The acceptance contract of the unified engine: a seeded fault plan
 * drives the *same* retry/trace/sample sequence on one host worker
 * and on a one-context simulated machine, because fault decisions
 * hash (task, attempt) and the scheduling state machine is shared.
 */
TEST(CrossBackend, SeededFaultsProduceIdenticalSchedulingSequences)
{
    const TaskGraph graph = dualGraph(48);
    FaultConfig config;
    config.seed = 7;
    config.fail_p = 0.08;
    const FaultPlan plan(config);

    EngineOptions options;
    options.threads = 1;
    options.pin_affinity = false;
    options.fault_plan = &plan;
    options.max_task_retries = 3;
    options.retry_backoff_seconds = 20e-6;

    StaticMtlPolicy host_policy(1, 1);
    tt::runtime::Runtime host(graph, host_policy, options);
    const auto host_result = host.run();

    tt::cpu::SimMachine machine(simConfig(1));
    StaticMtlPolicy sim_policy(1, 1);
    tt::simrt::SimRuntime sim(machine, graph, sim_policy, options);
    const auto sim_result = sim.run();

    EXPECT_FALSE(host_result.failed);
    EXPECT_FALSE(sim_result.failed);
    EXPECT_GT(host_result.task_retries, 0);

    // Identical retry grants: same tasks, same attempts, same order.
    EXPECT_EQ(host_result.task_retries, sim_result.task_retries);
    ASSERT_EQ(host_result.retries.size(), sim_result.retries.size());
    for (std::size_t i = 0; i < host_result.retries.size(); ++i) {
        EXPECT_EQ(host_result.retries[i].task,
                  sim_result.retries[i].task)
            << "retry " << i;
        EXPECT_EQ(host_result.retries[i].attempt,
                  sim_result.retries[i].attempt)
            << "retry " << i;
    }

    // Identical dispatch sequence in the merged trace.
    ASSERT_EQ(host_result.trace.size(), sim_result.trace.size());
    for (std::size_t i = 0; i < host_result.trace.size(); ++i) {
        EXPECT_EQ(host_result.trace[i].task, sim_result.trace[i].task)
            << "event " << i;
        EXPECT_EQ(host_result.trace[i].is_memory,
                  sim_result.trace[i].is_memory)
            << "event " << i;
        EXPECT_EQ(host_result.trace[i].mtl, sim_result.trace[i].mtl)
            << "event " << i;
    }

    // Identical sample stream as far as the policy can see it.
    ASSERT_EQ(host_result.samples.size(), sim_result.samples.size());
    for (std::size_t i = 0; i < host_result.samples.size(); ++i)
        EXPECT_EQ(host_result.samples[i].mtl,
                  sim_result.samples[i].mtl);
}

/**
 * Live-telemetry parity: the per-job causal spans a run assembles are
 * part of the shared engine's deterministic surface. Under the seeded
 * fault plan of the test above, both backends must produce the same
 * span sequence -- same pairs in the same completion order, same
 * attempt/retry structure, same outcomes -- and every span's
 * critical-path components must sum to its measured response (the
 * decomposition is an accounting identity on both clocks).
 */
TEST(CrossBackend, SeededFaultsProduceIdenticalJobSpans)
{
    const TaskGraph graph = dualGraph(48);
    FaultConfig config;
    config.seed = 7;
    config.fail_p = 0.08;
    const FaultPlan plan(config);

    EngineOptions options;
    options.threads = 1;
    options.pin_affinity = false;
    options.fault_plan = &plan;
    options.max_task_retries = 3;
    options.retry_backoff_seconds = 20e-6;

    StaticMtlPolicy host_policy(1, 1);
    tt::runtime::Runtime host(graph, host_policy, options);
    const auto host_result = host.run();

    tt::cpu::SimMachine machine(simConfig(1));
    StaticMtlPolicy sim_policy(1, 1);
    tt::simrt::SimRuntime sim(machine, graph, sim_policy, options);
    const auto sim_result = sim.run();

    ASSERT_FALSE(host_result.failed);
    ASSERT_FALSE(sim_result.failed);
    EXPECT_EQ(host_result.spans_dropped, 0u);
    EXPECT_EQ(sim_result.spans_dropped, 0u);
    ASSERT_EQ(host_result.spans.size(), sim_result.spans.size());
    ASSERT_EQ(host_result.spans.size(), 48u); // one span per pair

    bool any_failed_attempt = false;
    for (std::size_t i = 0; i < host_result.spans.size(); ++i) {
        const tt::obs::JobSpan &h = host_result.spans[i];
        const tt::obs::JobSpan &s = sim_result.spans[i];
        EXPECT_EQ(h.pair, s.pair) << "span " << i;
        EXPECT_EQ(static_cast<int>(h.outcome),
                  static_cast<int>(s.outcome))
            << "span " << i;
        ASSERT_EQ(h.attempts.size(), s.attempts.size())
            << "span " << i;
        for (std::size_t a = 0; a < h.attempts.size(); ++a) {
            EXPECT_EQ(h.attempts[a].task, s.attempts[a].task)
                << "span " << i << " attempt " << a;
            EXPECT_EQ(h.attempts[a].is_memory,
                      s.attempts[a].is_memory)
                << "span " << i << " attempt " << a;
            EXPECT_EQ(h.attempts[a].attempt, s.attempts[a].attempt)
                << "span " << i << " attempt " << a;
            EXPECT_EQ(h.attempts[a].failed, s.attempts[a].failed)
                << "span " << i << " attempt " << a;
            any_failed_attempt |= h.attempts[a].failed;
        }
        // The decomposition sums to the measured response on both
        // backends (within 1% -- in practice exact by construction).
        for (const tt::obs::JobSpan *span : {&h, &s}) {
            const tt::obs::CriticalPath &cp = span->critical_path;
            EXPECT_NEAR(cp.sum(), cp.response,
                        std::max(1e-12, cp.response * 0.01))
                << "span " << i;
            EXPECT_DOUBLE_EQ(cp.response, span->end - span->arrival)
                << "span " << i;
        }
    }
    EXPECT_TRUE(any_failed_attempt)
        << "fault plan injected no failures; retry path untested";
}

/**
 * With every sample corrupted, the policy's inputs are fully
 * deterministic (corruption values hash the pair, not the clock), so
 * an adaptive policy must make the identical decision sequence --
 * including entering its degraded state -- on both backends, even
 * with two real threads racing.
 */
TEST(CrossBackend, CorruptedRunsMakeIdenticalPolicyDecisions)
{
    const TaskGraph graph = dualGraph(64);
    FaultConfig config;
    config.seed = 21;
    config.corrupt_p = 1.0;
    const FaultPlan plan(config);

    EngineOptions options;
    options.threads = 2;
    options.pin_affinity = false;
    options.fault_plan = &plan;

    tt::core::DynamicThrottlePolicy host_policy(2, 8);
    tt::runtime::Runtime host(graph, host_policy, options);
    const auto host_result = host.run();

    tt::cpu::SimMachine machine(simConfig(2));
    tt::core::DynamicThrottlePolicy sim_policy(2, 8);
    tt::simrt::SimRuntime sim(machine, graph, sim_policy, options);
    const auto sim_result = sim.run();

    EXPECT_FALSE(host_result.failed);
    EXPECT_FALSE(sim_result.failed);
    EXPECT_TRUE(host_policy.degraded());
    EXPECT_TRUE(sim_policy.degraded());

    ASSERT_EQ(host_result.decisions.size(),
              sim_result.decisions.size());
    for (std::size_t i = 0; i < host_result.decisions.size(); ++i) {
        const auto &h = host_result.decisions[i];
        const auto &s = sim_result.decisions[i];
        EXPECT_EQ(h.from_mtl, s.from_mtl) << "decision " << i;
        EXPECT_EQ(h.to_mtl, s.to_mtl) << "decision " << i;
        EXPECT_EQ(static_cast<int>(h.reason),
                  static_cast<int>(s.reason))
            << "decision " << i;
        EXPECT_EQ(h.degraded, s.degraded) << "decision " << i;
    }

    // Same MTL transition values (times are backend clocks).
    ASSERT_EQ(host_result.mtl_trace.size(),
              sim_result.mtl_trace.size());
    for (std::size_t i = 0; i < host_result.mtl_trace.size(); ++i)
        EXPECT_EQ(host_result.mtl_trace[i].second,
                  sim_result.mtl_trace[i].second)
            << "transition " << i;
}

/**
 * Satellite: both backends publish the identical "runtime.*" metric
 * name sets; the simulator adds exactly its three documented
 * machine gauges on top.
 */
TEST(CrossBackend, MetricNamesMatchModuloSimMachineGauges)
{
    const TaskGraph graph = dualGraph(24);

    tt::MetricsRegistry host_metrics;
    EngineOptions host_options;
    host_options.threads = 2;
    host_options.pin_affinity = false;
    host_options.metrics = &host_metrics;
    StaticMtlPolicy host_policy(1, 2);
    tt::runtime::Runtime host(graph, host_policy, host_options);
    host.run();

    tt::MetricsRegistry sim_metrics;
    EngineOptions sim_options;
    sim_options.metrics = &sim_metrics;
    tt::cpu::SimMachine machine(simConfig(2));
    StaticMtlPolicy sim_policy(1, 2);
    tt::simrt::SimRuntime sim(machine, graph, sim_policy,
                              sim_options);
    sim.run();

    auto names = [](std::vector<std::string> v) {
        return std::set<std::string>(v.begin(), v.end());
    };
    EXPECT_EQ(names(host_metrics.counterNames()),
              names(sim_metrics.counterNames()));
    EXPECT_EQ(names(host_metrics.histogramNames()),
              names(sim_metrics.histogramNames()));

    const auto host_gauges = names(host_metrics.gaugeNames());
    const auto sim_gauges = names(sim_metrics.gaugeNames());
    std::set<std::string> host_only;
    std::set_difference(host_gauges.begin(), host_gauges.end(),
                        sim_gauges.begin(), sim_gauges.end(),
                        std::inserter(host_only, host_only.end()));
    std::set<std::string> sim_only;
    std::set_difference(sim_gauges.begin(), sim_gauges.end(),
                        host_gauges.begin(), host_gauges.end(),
                        std::inserter(sim_only, sim_only.end()));
    EXPECT_TRUE(host_only.empty());
    EXPECT_EQ(sim_only,
              (std::set<std::string>{"sim.bus_utilisation",
                                     "sim.dram_accesses",
                                     "sim.peak_llc_occupancy_bytes"}));
}

/**
 * Satellite: one time base. Every timestamp a run reports -- trace
 * events, MTL transitions, samples -- counts engine-clock seconds
 * from *run start* on both backends, even when the simulated
 * machine's clock is already deep into a previous run.
 */
TEST(CrossBackend, TimesAreRunRelativeOnBothBackendsAndOnReuse)
{
    const TaskGraph graph = dualGraph(24);

    auto checkTimeBase = [](const tt::exec::RunResult &result) {
        ASSERT_FALSE(result.trace.empty());
        const double eps = 1e-9;
        for (const auto &event : result.trace) {
            EXPECT_GE(event.start, 0.0);
            EXPECT_LE(event.end, result.seconds + eps);
        }
        for (const auto &entry : result.mtl_trace) {
            EXPECT_GE(entry.first, 0.0);
            EXPECT_LE(entry.first, result.seconds + eps);
        }
        for (const auto &sample : result.samples) {
            EXPECT_GE(sample.end_time, 0.0);
            EXPECT_LE(sample.end_time, result.seconds + eps);
        }
    };

    EngineOptions host_options;
    host_options.threads = 2;
    host_options.pin_affinity = false;
    StaticMtlPolicy host_policy(2, 2);
    tt::runtime::Runtime host(graph, host_policy, host_options);
    const auto host_result = host.run();
    checkTimeBase(host_result);

    // Two consecutive runs on ONE simulated machine: the second run
    // starts with the machine clock well past zero, but its reported
    // times must still be run-relative.
    tt::cpu::SimMachine machine(simConfig(2));
    StaticMtlPolicy first_policy(2, 2);
    tt::simrt::SimRuntime first(machine, graph, first_policy);
    const auto first_result = first.run();
    checkTimeBase(first_result);

    StaticMtlPolicy second_policy(2, 2);
    tt::simrt::SimRuntime second(machine, graph, second_policy);
    const auto second_result = second.run();
    checkTimeBase(second_result);
    EXPECT_NEAR(second_result.seconds, first_result.seconds,
                first_result.seconds * 0.01);

    // And the analyzer, fed either backend's trace, attributes the
    // whole phase to the static MTL -- wall-time shares agree.
    auto mtlShare = [&graph](const tt::exec::RunResult &result) {
        tt::obs::AnalyzeOptions options;
        options.cores = 2;
        options.makespan = result.seconds;
        const auto report = tt::obs::analyze(
            tt::exec::toTraceData(graph, result), options);
        EXPECT_EQ(report.phases.size(), 1u);
        double at_mtl2 = 0.0;
        double total = 0.0;
        for (const auto &attribution : report.phases[0].by_mtl) {
            total += attribution.wall_seconds;
            if (attribution.mtl == 2)
                at_mtl2 += attribution.wall_seconds;
        }
        return total > 0.0 ? at_mtl2 / total : -1.0;
    };
    const double host_share = mtlShare(host_result);
    const double sim_share = mtlShare(second_result);
    EXPECT_NEAR(host_share, 1.0, 1e-9);
    EXPECT_NEAR(sim_share, 1.0, 1e-9);
}

/**
 * Overload robustness: a seeded ~2x-overload arrival plan through
 * bounded admission sheds the *identical* jobs on both backends --
 * admission decides against the plan's virtual clock, never against
 * live completions, so wall-clock jitter cannot change which jobs
 * run. Deadlines are generous, so neither backend misses any; the
 * difference between the backends stays confined to the clocks.
 */
TEST(CrossBackend, SeededOverloadShedsIdenticalJobsOnBothBackends)
{
    const TaskGraph graph = dualGraph(48);

    tt::load::ArrivalConfig arrivals;
    arrivals.seed = 9;
    arrivals.rate = 1e6; // far past capacity; queue fills immediately
    arrivals.slo_seconds = 30.0;
    const tt::load::ArrivalPlan plan =
        tt::load::buildArrivalPlan(arrivals, graph.pairCount());

    EngineOptions options;
    options.threads = 2;
    options.pin_affinity = false;
    options.arrival_plan = &plan;
    options.admission.queue_cap = 4;
    options.admission.service_tml = 200e-6;
    options.admission.service_tql = 50e-6;

    tt::MetricsRegistry host_metrics;
    options.metrics = &host_metrics;
    StaticMtlPolicy host_policy(1, 2);
    tt::runtime::Runtime host(graph, host_policy, options);
    const auto host_result = host.run();

    tt::MetricsRegistry sim_metrics;
    options.metrics = &sim_metrics;
    tt::cpu::SimMachine machine(simConfig(2));
    StaticMtlPolicy sim_policy(1, 2);
    tt::simrt::SimRuntime sim(machine, graph, sim_policy, options);
    const auto sim_result = sim.run();

    EXPECT_FALSE(host_result.failed);
    EXPECT_FALSE(sim_result.failed);

    // The overload actually shed work, and the counts agree.
    EXPECT_GT(host_result.jobs_shed, 0);
    EXPECT_EQ(host_result.jobs_offered, sim_result.jobs_offered);
    EXPECT_EQ(host_result.jobs_admitted, sim_result.jobs_admitted);
    EXPECT_EQ(host_result.jobs_delayed, sim_result.jobs_delayed);
    EXPECT_EQ(host_result.jobs_shed, sim_result.jobs_shed);
    EXPECT_EQ(host_result.jobs_deadline_missed, 0);
    EXPECT_EQ(sim_result.jobs_deadline_missed, 0);

    // Identical per-job verdicts: decision, reason, state, backlog.
    ASSERT_EQ(host_result.jobs.size(), sim_result.jobs.size());
    ASSERT_EQ(host_result.jobs.size(), plan.size());
    for (std::size_t i = 0; i < host_result.jobs.size(); ++i) {
        const auto &h = host_result.jobs[i];
        const auto &s = sim_result.jobs[i];
        EXPECT_EQ(h.pair, s.pair) << "job " << i;
        EXPECT_EQ(static_cast<int>(h.decision),
                  static_cast<int>(s.decision))
            << "job " << i;
        EXPECT_EQ(static_cast<int>(h.shed_reason),
                  static_cast<int>(s.shed_reason))
            << "job " << i;
        EXPECT_EQ(static_cast<int>(h.state),
                  static_cast<int>(s.state))
            << "job " << i;
        EXPECT_EQ(h.backlog, s.backlog) << "job " << i;
    }

    // Both backends published the same admission counters.
    EXPECT_EQ(host_metrics.counter("runtime.jobs_shed"),
              sim_metrics.counter("runtime.jobs_shed"));
    EXPECT_GT(host_metrics.counter("runtime.jobs_shed"), 0);
}

/**
 * SLO-aware dynamic policy under a bursty overload: the backpressure
 * transitions the engine feeds the policy are plan-driven, so the
 * audited decision sequence -- including the overload pin and the
 * post-recovery reenter -- must be value-identical host vs sim (the
 * timestamps are backend clocks and are not compared).
 */
TEST(CrossBackend, OverloadAuditDecisionsMatchAcrossBackends)
{
    const TaskGraph graph = dualGraph(64);

    tt::load::ArrivalConfig arrivals;
    arrivals.seed = 13;
    arrivals.process = tt::load::ArrivalProcess::Bursty;
    arrivals.rate = 20000.0;
    arrivals.burst_period_seconds = 1e-3;
    arrivals.burst_fraction = 0.25;
    arrivals.burst_rate_factor = 3.0;
    arrivals.slo_seconds = 30.0;
    const tt::load::ArrivalPlan plan =
        tt::load::buildArrivalPlan(arrivals, graph.pairCount());

    EngineOptions options;
    options.threads = 2;
    options.pin_affinity = false;
    options.arrival_plan = &plan;
    options.admission.queue_cap = 4;
    options.admission.hysteresis = 2;
    options.admission.service_tml = 200e-6;
    options.admission.service_tql = 50e-6;

    // Window past the pair count: no phase-change selection can
    // complete, so every decision in the log is overload-driven.
    tt::core::DynamicThrottlePolicy host_policy(2, 128);
    host_policy.setSloAware();
    tt::runtime::Runtime host(graph, host_policy, options);
    const auto host_result = host.run();

    tt::cpu::SimMachine machine(simConfig(2));
    tt::core::DynamicThrottlePolicy sim_policy(2, 128);
    sim_policy.setSloAware();
    tt::simrt::SimRuntime sim(machine, graph, sim_policy, options);
    const auto sim_result = sim.run();

    EXPECT_FALSE(host_result.failed);
    EXPECT_FALSE(sim_result.failed);
    EXPECT_GT(host_result.jobs_shed, 0);
    EXPECT_EQ(host_result.jobs_shed, sim_result.jobs_shed);

    long host_overloads = 0;
    for (const auto &d : host_result.decisions)
        if (d.reason == tt::core::DecisionReason::Overload)
            ++host_overloads;
    EXPECT_GE(host_overloads, 1) << "burst never tripped SHED";

    ASSERT_EQ(host_result.decisions.size(),
              sim_result.decisions.size());
    for (std::size_t i = 0; i < host_result.decisions.size(); ++i) {
        const auto &h = host_result.decisions[i];
        const auto &s = sim_result.decisions[i];
        EXPECT_EQ(static_cast<int>(h.reason),
                  static_cast<int>(s.reason))
            << "decision " << i;
        EXPECT_EQ(h.from_mtl, s.from_mtl) << "decision " << i;
        EXPECT_EQ(h.to_mtl, s.to_mtl) << "decision " << i;
    }
}

} // namespace
