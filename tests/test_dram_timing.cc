/**
 * @file
 * Tests of the second-order DDR3 constraints: activation pacing
 * (tRRD / tFAW), bus turnaround (tRTRS / tWTR), periodic refresh
 * (tREFI / tRFC) and the address-mapping policies.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/dram_channel.hh"
#include "sim/event_queue.hh"

namespace {

using tt::mem::AddressMapping;
using tt::mem::DramChannel;
using tt::mem::DramConfig;
using tt::mem::DramRequest;
using tt::sim::EventQueue;
using tt::sim::Tick;

/** Drain `lines` one-per-bank reads and return total ticks. */
Tick
drainOnePerBank(const DramConfig &cfg, int accesses)
{
    EventQueue q;
    DramChannel channel(q, cfg);
    for (int i = 0; i < accesses; ++i) {
        DramRequest req;
        // One access per bank: page-interleaved rows advance banks.
        req.line_addr = static_cast<std::uint64_t>(i) *
                        cfg.linesPerRow();
        channel.submit(std::move(req));
    }
    q.run();
    return q.now();
}

TEST(DramTiming, FawThrottlesActivationBursts)
{
    // Eight activations to eight banks of one rank: with a generous
    // tFAW they pipeline on the bus; with a harsh tFAW the window
    // gates them.
    DramConfig loose;
    loose.disable_refresh = true;
    loose.t_faw = 0;
    loose.t_rrd = 0;
    const Tick fast = drainOnePerBank(loose, 8);

    DramConfig tight = loose;
    tight.t_faw = tt::sim::fromNs(200.0);
    const Tick slow = drainOnePerBank(tight, 8);
    EXPECT_GT(slow, fast);
    // Two full windows of four activations must span >= 1 tFAW.
    EXPECT_GE(slow, tight.t_faw);
}

TEST(DramTiming, RrdSpacesBackToBackActivates)
{
    DramConfig loose;
    loose.disable_refresh = true;
    loose.t_faw = 0;
    loose.t_rrd = 0;
    const Tick fast = drainOnePerBank(loose, 4);

    DramConfig tight = loose;
    tight.t_rrd = tt::sim::fromNs(50.0);
    const Tick slow = drainOnePerBank(tight, 4);
    // Three inter-ACT gaps of 50 ns, minus the overlap the loose
    // pipeline already hides behind data transfers.
    EXPECT_GE(slow - fast, tt::sim::fromNs(80.0));
}

TEST(DramTiming, RankSwitchPaysRtrs)
{
    DramConfig cfg;
    cfg.disable_refresh = true;
    EventQueue q;
    DramChannel channel(q, cfg);
    // Alternating ranks with a fresh row per access: FR-FCFS finds
    // no hits, services FCFS, and pays a rank switch every time.
    const auto total_banks = static_cast<std::uint64_t>(
        cfg.totalBanks());
    int done = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
        const std::uint64_t rank_bank =
            (i % 2 == 0) ? 0 : static_cast<std::uint64_t>(
                                   cfg.banks_per_rank);
        const std::uint64_t row_index = (i / 2) * total_banks +
                                        rank_bank;
        DramRequest req;
        req.line_addr = row_index * cfg.linesPerRow();
        req.on_complete = [&done] { ++done; };
        channel.submit(std::move(req));
    }
    q.run();
    EXPECT_EQ(done, 8);
    EXPECT_GE(channel.stats().rank_switches, 6u);
}

TEST(DramTiming, WriteReadTurnaroundCounted)
{
    DramConfig cfg;
    cfg.disable_refresh = true;
    EventQueue q;
    DramChannel channel(q, cfg);
    for (int i = 0; i < 8; ++i) {
        DramRequest req;
        req.line_addr = static_cast<std::uint64_t>(i);
        req.is_write = (i % 2 == 0);
        channel.submit(std::move(req));
    }
    q.run();
    EXPECT_GE(channel.stats().write_read_turnarounds, 3u);
}

TEST(DramTiming, RefreshStallsLongRuns)
{
    // A stream long enough to cross several tREFI intervals must
    // observe refresh stalls; with refresh disabled it must not.
    auto run_stream = [](bool disable) {
        DramConfig cfg;
        cfg.disable_refresh = disable;
        EventQueue q;
        DramChannel channel(q, cfg);
        // ~3000 row hits at 7.5 ns/line ~ 22 us >> tREFI (7.8 us).
        struct Pump
        {
            DramChannel &ch;
            std::uint64_t next = 0;
            std::uint64_t total;
            void
            issue()
            {
                if (next >= total)
                    return;
                DramRequest req;
                req.line_addr = next++;
                req.on_complete = [this] { issue(); };
                ch.submit(std::move(req));
            }
        } pump{channel, 0, 3000};
        for (int i = 0; i < 4; ++i)
            pump.issue();
        q.run();
        return std::pair(q.now(), channel.stats().refresh_stalls);
    };
    const auto [with_time, with_stalls] = run_stream(false);
    const auto [without_time, without_stalls] = run_stream(true);
    EXPECT_GT(with_stalls, 0u);
    EXPECT_EQ(without_stalls, 0u);
    EXPECT_GT(with_time, without_time);
}

TEST(DramTiming, RefreshClosesOpenRows)
{
    DramConfig cfg;
    EventQueue q;
    DramChannel channel(q, cfg);
    // Open a row in bank 0 (rank 0).
    Tick ignored = 0;
    DramRequest first;
    first.line_addr = 0;
    first.on_complete = [&] { ignored = q.now(); };
    channel.submit(std::move(first));
    q.run();

    // Jump past the rank's first refresh, then re-access the same
    // row: it must be a row miss again (refresh precharged it).
    q.schedule(cfg.t_refi * 2, [] {});
    q.run();
    DramRequest second;
    second.line_addr = 1;
    channel.submit(std::move(second));
    q.run();
    EXPECT_EQ(channel.stats().row_misses, 2u);
    EXPECT_EQ(channel.stats().row_hits, 0u);
}

TEST(DramTiming, MappingPoliciesDiffer)
{
    DramConfig page;
    page.mapping = AddressMapping::kPageInterleave;
    DramConfig line;
    line.mapping = AddressMapping::kLineInterleave;
    EventQueue q;
    DramChannel page_ch(q, page);
    DramChannel line_ch(q, line);

    int bank_page = 0;
    int bank_line = 0;
    std::uint64_t row = 0;
    // Consecutive lines: page-interleave keeps the bank, line-
    // interleave advances it.
    page_ch.mapAddress(0, bank_page, row);
    int bank_page2 = 0;
    page_ch.mapAddress(1, bank_page2, row);
    EXPECT_EQ(bank_page, bank_page2);

    line_ch.mapAddress(0, bank_line, row);
    int bank_line2 = 0;
    line_ch.mapAddress(1, bank_line2, row);
    EXPECT_NE(bank_line, bank_line2);
}

TEST(DramTiming, LineInterleaveRaisesSoloBankParallelism)
{
    // A solo stream drains faster under line interleaving (bank
    // parallelism hides activates) once row locality is irrelevant
    // (single access per row stripe).
    auto drain = [](AddressMapping mapping) {
        DramConfig cfg;
        cfg.disable_refresh = true;
        cfg.mapping = mapping;
        EventQueue q;
        DramChannel channel(q, cfg);
        struct Pump
        {
            DramChannel &ch;
            std::uint64_t next = 0;
            std::uint64_t total;
            void
            issue()
            {
                if (next >= total)
                    return;
                // Stride of one row per access: no row reuse.
                DramRequest req;
                req.line_addr = (next++) * ch.config().linesPerRow();
                req.on_complete = [this] { issue(); };
                ch.submit(std::move(req));
            }
        } pump{channel, 0, 64};
        for (int i = 0; i < 6; ++i)
            pump.issue();
        q.run();
        return q.now();
    };
    // Page-interleave maps row-strided accesses to consecutive
    // banks too, so the two policies bound each other loosely; this
    // guards against mapping regressions rather than ranking them.
    const Tick page = drain(AddressMapping::kPageInterleave);
    const Tick line = drain(AddressMapping::kLineInterleave);
    EXPECT_GT(page, 0u);
    EXPECT_GT(line, 0u);
}

TEST(DramTiming, ClosedPageNeverHitsAndNeverConflicts)
{
    DramConfig cfg;
    cfg.disable_refresh = true;
    cfg.page_policy = tt::mem::PagePolicy::kClosed;
    EventQueue q;
    DramChannel channel(q, cfg);
    for (std::uint64_t line = 0; line < 64; ++line) {
        DramRequest req;
        req.line_addr = line;
        channel.submit(std::move(req));
    }
    q.run();
    EXPECT_EQ(channel.stats().row_hits, 0u);
    EXPECT_EQ(channel.stats().row_conflicts, 0u);
    EXPECT_EQ(channel.stats().row_misses, 64u);
}

TEST(DramTiming, ClosedPageSlowerForSequentialFasterAtomically)
{
    // Sequential streams love open-page (row hits); closed-page pays
    // tRCD every access. For row-strided traffic the policies tie
    // within the precharge/activate trade-off.
    auto drain = [](tt::mem::PagePolicy policy, std::uint64_t stride) {
        DramConfig cfg;
        cfg.disable_refresh = true;
        cfg.page_policy = policy;
        EventQueue q;
        DramChannel channel(q, cfg);
        struct Pump
        {
            DramChannel &ch;
            std::uint64_t next = 0;
            std::uint64_t total;
            std::uint64_t stride;
            void
            issue()
            {
                if (next >= total)
                    return;
                DramRequest req;
                req.line_addr = (next++) * stride;
                req.on_complete = [this] { issue(); };
                ch.submit(std::move(req));
            }
        } pump{channel, 0, 128, stride};
        for (int i = 0; i < 4; ++i)
            pump.issue();
        q.run();
        return q.now();
    };
    EXPECT_LT(drain(tt::mem::PagePolicy::kOpen, 1),
              drain(tt::mem::PagePolicy::kClosed, 1));
}

TEST(DramTiming, RowHitRateHighForSequentialStream)
{
    DramConfig cfg;
    cfg.disable_refresh = true;
    EventQueue q;
    DramChannel channel(q, cfg);
    for (std::uint64_t line = 0; line < 512; ++line) {
        DramRequest req;
        req.line_addr = line;
        channel.submit(std::move(req));
    }
    q.run();
    EXPECT_GT(channel.rowHitRate(), 0.95);
}

TEST(DramTiming, Ddr31333PresetIsFaster)
{
    const DramConfig slow = DramConfig::ddr3_1066();
    const DramConfig fast = DramConfig::ddr3_1333();
    EXPECT_GT(fast.peakBandwidth(), slow.peakBandwidth());
    EXPECT_LT(fast.t_burst, slow.t_burst);
}

} // namespace
