/**
 * @file
 * Numerical correctness of the workload kernels: FFT against the
 * O(n^2) DFT, convolution/upsampling/DoG identities, and the
 * k-median primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"
#include "workloads/kernels/fft.hh"
#include "workloads/kernels/image.hh"
#include "workloads/kernels/kmedian.hh"

namespace {

using tt::Rng;
using tt::workloads::Complex;
using tt::workloads::Image;

std::vector<Complex>
randomSignal(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> signal(n);
    for (auto &sample : signal)
        sample = Complex(static_cast<float>(rng.nextDouble(-1, 1)),
                         static_cast<float>(rng.nextDouble(-1, 1)));
    return signal;
}

TEST(Fft, IsPowerOfTwo)
{
    EXPECT_TRUE(tt::workloads::isPowerOfTwo(1));
    EXPECT_TRUE(tt::workloads::isPowerOfTwo(1024));
    EXPECT_FALSE(tt::workloads::isPowerOfTwo(0));
    EXPECT_FALSE(tt::workloads::isPowerOfTwo(12));
}

/** FFT must agree with the naive DFT across sizes. */
class FftVsNaive : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FftVsNaive, Agree)
{
    const std::size_t n = GetParam();
    auto signal = randomSignal(n, 1000 + n);
    const auto expected = tt::workloads::naiveDft(signal);
    tt::workloads::fftInPlace(signal.data(), n);
    EXPECT_LT(tt::workloads::maxAbsError(signal, expected),
              1e-3f * static_cast<float>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsNaive,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 512));

TEST(Fft, InverseRoundTrips)
{
    auto signal = randomSignal(256, 7);
    const auto original = signal;
    tt::workloads::fftInPlace(signal.data(), 256, false);
    tt::workloads::fftInPlace(signal.data(), 256, true);
    EXPECT_LT(tt::workloads::maxAbsError(signal, original), 1e-4f);
}

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    std::vector<Complex> signal(64, Complex(0, 0));
    signal[0] = Complex(1, 0);
    tt::workloads::fftInPlace(signal.data(), 64);
    for (const auto &bin : signal) {
        EXPECT_NEAR(bin.real(), 1.0f, 1e-5f);
        EXPECT_NEAR(bin.imag(), 0.0f, 1e-5f);
    }
}

TEST(Fft, LinearityHolds)
{
    auto a = randomSignal(128, 21);
    auto b = randomSignal(128, 22);
    std::vector<Complex> sum(128);
    for (std::size_t i = 0; i < 128; ++i)
        sum[i] = a[i] + b[i];
    tt::workloads::fftInPlace(a.data(), 128);
    tt::workloads::fftInPlace(b.data(), 128);
    tt::workloads::fftInPlace(sum.data(), 128);
    for (std::size_t i = 0; i < 128; ++i)
        EXPECT_LT(std::abs(sum[i] - (a[i] + b[i])), 1e-3f);
}

TEST(FftDeath, NonPowerOfTwoPanics)
{
    std::vector<Complex> signal(12);
    EXPECT_DEATH(tt::workloads::fftInPlace(signal.data(), 12),
                 "power of two");
}

TEST(Gaussian, KernelIsNormalisedAndSymmetric)
{
    const auto taps = tt::workloads::gaussianKernel(1.6, 4);
    ASSERT_EQ(taps.size(), 9u);
    float sum = 0.0f;
    for (float tap : taps)
        sum += tap;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    for (std::size_t i = 0; i < taps.size() / 2; ++i)
        EXPECT_FLOAT_EQ(taps[i], taps[taps.size() - 1 - i]);
    // Centre is the maximum.
    EXPECT_GT(taps[4], taps[3]);
}

TEST(Convolution, IdentityKernelIsANoOp)
{
    const Image src = tt::workloads::makeTestImage(32, 24);
    const std::vector<float> identity{0.0f, 1.0f, 0.0f};
    const Image out = tt::workloads::convolveSeparable(src, identity);
    for (std::size_t i = 0; i < src.pixels.size(); ++i)
        EXPECT_NEAR(out.pixels[i], src.pixels[i], 1e-6f);
}

TEST(Convolution, PreservesConstantImages)
{
    Image src(16, 16);
    for (auto &pixel : src.pixels)
        pixel = 3.5f;
    const auto taps = tt::workloads::gaussianKernel(2.0, 3);
    const Image out = tt::workloads::convolveSeparable(src, taps);
    for (float pixel : out.pixels)
        EXPECT_NEAR(pixel, 3.5f, 1e-5f);
}

TEST(Convolution, SmoothsVariance)
{
    const Image src = tt::workloads::makeTestImage(64, 64);
    const auto taps = tt::workloads::gaussianKernel(1.6, 3);
    const Image out = tt::workloads::convolveSeparable(src, taps);
    auto variance = [](const Image &img) {
        double mean = 0.0;
        for (float p : img.pixels)
            mean += p;
        mean /= static_cast<double>(img.pixels.size());
        double var = 0.0;
        for (float p : img.pixels)
            var += (p - mean) * (p - mean);
        return var / static_cast<double>(img.pixels.size());
    };
    EXPECT_LT(variance(out), variance(src));
}

TEST(Convolution, RangeVersionMatchesFull)
{
    const Image src = tt::workloads::makeTestImage(40, 30);
    const auto taps = tt::workloads::gaussianKernel(1.2, 2);
    Image by_rows(40, 30);
    // Convolve in two row chunks; must equal the one-shot result.
    tt::workloads::convolveRowsRange(src, by_rows, taps, 0, 11);
    tt::workloads::convolveRowsRange(src, by_rows, taps, 11, 30);
    Image full(40, 30);
    tt::workloads::convolveRowsRange(src, full, taps, 0, 30);
    for (std::size_t i = 0; i < full.pixels.size(); ++i)
        EXPECT_FLOAT_EQ(by_rows.pixels[i], full.pixels[i]);
}

TEST(Upsample, DoublesDimensionsAndInterpolates)
{
    Image src(4, 4);
    for (std::size_t y = 0; y < 4; ++y)
        for (std::size_t x = 0; x < 4; ++x)
            src.at(x, y) = static_cast<float>(x);
    const Image up = tt::workloads::upsample2x(src);
    EXPECT_EQ(up.width, 8u);
    EXPECT_EQ(up.height, 8u);
    // Even columns hit source samples; odd columns are midpoints.
    EXPECT_FLOAT_EQ(up.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(up.at(2, 0), 1.0f);
    EXPECT_FLOAT_EQ(up.at(1, 0), 0.5f);
    EXPECT_FLOAT_EQ(up.at(3, 0), 1.5f);
}

TEST(Downsample, TakesEverySecondSample)
{
    const Image src = tt::workloads::makeTestImage(16, 12);
    const Image down = tt::workloads::downsample2x(src);
    EXPECT_EQ(down.width, 8u);
    EXPECT_EQ(down.height, 6u);
    for (std::size_t y = 0; y < down.height; ++y)
        for (std::size_t x = 0; x < down.width; ++x)
            EXPECT_FLOAT_EQ(down.at(x, y), src.at(2 * x, 2 * y));
}

TEST(Dog, SubtractsPixelwise)
{
    Image a(8, 8);
    Image b(8, 8);
    for (std::size_t i = 0; i < a.pixels.size(); ++i) {
        a.pixels[i] = static_cast<float>(i);
        b.pixels[i] = static_cast<float>(2 * i);
    }
    const Image dog = tt::workloads::differenceOfGaussians(a, b);
    for (std::size_t i = 0; i < dog.pixels.size(); ++i)
        EXPECT_FLOAT_EQ(dog.pixels[i], static_cast<float>(i));
}

TEST(Kmedian, SquaredDistanceBasics)
{
    const float a[3] = {0, 0, 0};
    const float b[3] = {1, 2, 2};
    EXPECT_FLOAT_EQ(tt::workloads::squaredDistance(a, b, 3), 9.0f);
    EXPECT_FLOAT_EQ(tt::workloads::squaredDistance(a, a, 3), 0.0f);
}

TEST(Kmedian, NearestCenterFindsIt)
{
    const float centers[4] = {0.0f, 0.0f, 10.0f, 10.0f}; // 2 x dim2
    const float point[2] = {9.0f, 9.5f};
    float cost = 0.0f;
    const std::size_t c =
        tt::workloads::nearestCenter(point, centers, 2, 2, cost);
    EXPECT_EQ(c, 1u);
    EXPECT_NEAR(cost, 1.25f, 1e-5f);
}

TEST(Kmedian, AssignBlockSumsCosts)
{
    const auto points =
        tt::workloads::makeClusteredPoints(60, 3, 8, 99);
    std::vector<float> centers(points.begin(), points.begin() + 3 * 8);
    std::vector<std::uint32_t> assignment(60);
    const double cost = tt::workloads::assignBlock(
        points.data(), 60, centers.data(), 3, 8, assignment.data());
    EXPECT_GT(cost, 0.0);
    for (auto a : assignment)
        EXPECT_LT(a, 3u);
}

TEST(Kmedian, RefinementNeverIncreasesCost)
{
    const std::size_t n = 240;
    const std::size_t k = 4;
    const std::size_t dim = 16;
    const auto points = tt::workloads::makeClusteredPoints(n, k, dim, 5);
    std::vector<float> centers(points.begin(),
                               points.begin() +
                                   static_cast<std::ptrdiff_t>(k * dim));
    std::vector<std::uint32_t> assignment(n);
    double cost = tt::workloads::assignBlock(
        points.data(), n, centers.data(), k, dim, assignment.data());
    for (int iter = 0; iter < 5; ++iter) {
        centers = tt::workloads::refineCenters(
            points.data(), n, assignment.data(), centers.data(), k, dim);
        const double next = tt::workloads::assignBlock(
            points.data(), n, centers.data(), k, dim, assignment.data());
        EXPECT_LE(next, cost + 1e-6);
        cost = next;
    }
}

} // namespace
