/**
 * @file
 * Tests of the DDR3 channel model: timing legality, row-buffer
 * accounting, FR-FCFS behaviour, bandwidth limits, and -- the
 * property the whole paper rests on -- per-stream latency that
 * grows with the number of interleaved streams.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/dram_channel.hh"
#include "mem/mem_system.hh"
#include "sim/event_queue.hh"

namespace {

using tt::mem::DramChannel;
using tt::mem::DramConfig;
using tt::mem::DramRequest;
using tt::mem::MemorySystem;
using tt::mem::MemSystemConfig;
using tt::sim::EventQueue;
using tt::sim::Tick;

/** Issue one read and return its completion tick. */
Tick
singleRead(EventQueue &q, DramChannel &channel, std::uint64_t line)
{
    Tick done = 0;
    DramRequest req;
    req.line_addr = line;
    req.on_complete = [&] { done = q.now(); };
    channel.submit(std::move(req));
    q.run();
    return done;
}

TEST(DramChannel, ColdReadPaysActivatePlusCasPlusBurst)
{
    EventQueue q;
    const DramConfig cfg;
    DramChannel channel(q, cfg);
    const Tick done = singleRead(q, channel, 0);
    EXPECT_EQ(done, cfg.t_rcd + cfg.t_burst + cfg.t_cl);
    EXPECT_EQ(channel.stats().row_misses, 1u);
}

TEST(DramChannel, RowHitSkipsActivate)
{
    EventQueue q;
    const DramConfig cfg;
    DramChannel channel(q, cfg);
    singleRead(q, channel, 0);
    const Tick start = q.now();
    const Tick done = singleRead(q, channel, 1); // same row
    EXPECT_EQ(done - start, cfg.t_burst + cfg.t_cl);
    EXPECT_EQ(channel.stats().row_hits, 1u);
}

TEST(DramChannel, RowConflictPaysPrechargeToo)
{
    EventQueue q;
    const DramConfig cfg;
    DramChannel channel(q, cfg);
    singleRead(q, channel, 0);
    // Same bank, different row: banks are page-interleaved, so the
    // same bank repeats every totalBanks rows.
    const std::uint64_t conflict_line =
        cfg.linesPerRow() * static_cast<std::uint64_t>(cfg.totalBanks());
    const Tick start = q.now();
    const Tick done = singleRead(q, channel, conflict_line);
    EXPECT_EQ(done - start,
              cfg.t_rp + cfg.t_rcd + cfg.t_burst + cfg.t_cl);
    EXPECT_EQ(channel.stats().row_conflicts, 1u);
}

TEST(DramChannel, StreamingHitsRunAtBusBandwidth)
{
    // Back-to-back row hits must pipeline: total time for N lines
    // approaches N * tBURST, i.e. the 8.5 GB/s bus limit.
    EventQueue q;
    const DramConfig cfg;
    DramChannel channel(q, cfg);
    const int lines = 64;
    int completed = 0;
    for (int i = 0; i < lines; ++i) {
        DramRequest req;
        req.line_addr = static_cast<std::uint64_t>(i);
        req.on_complete = [&] { ++completed; };
        channel.submit(std::move(req));
    }
    q.run();
    EXPECT_EQ(completed, lines);
    const Tick ideal = static_cast<Tick>(lines) * cfg.t_burst;
    EXPECT_LT(q.now(), ideal + cfg.t_rcd + cfg.t_cl + cfg.t_burst);
    EXPECT_GE(q.now(), ideal);
}

TEST(DramChannel, WritesMirrorReadLatency)
{
    // Ordinary cached stores read-for-ownership, so a store line's
    // visible cost equals a read's (see dram_channel.cc).
    EventQueue q;
    const DramConfig cfg;
    DramChannel channel(q, cfg);
    Tick done = 0;
    DramRequest req;
    req.line_addr = 0;
    req.is_write = true;
    req.on_complete = [&] { done = q.now(); };
    channel.submit(std::move(req));
    q.run();
    EXPECT_EQ(done, cfg.t_rcd + cfg.t_burst + cfg.t_cl);
    EXPECT_EQ(channel.stats().writes, 1u);
}

TEST(DramChannel, WriteRecoveryGatesOnlyRowChanges)
{
    EventQueue q;
    const DramConfig cfg;
    DramChannel channel(q, cfg);

    // Write, then a row hit (same row): no tWR on the hit. The
    // write-to-read bus turnaround is hidden here because the read
    // arrives after the write drained (tCL > tWTR).
    Tick done = 0;
    DramRequest w;
    w.line_addr = 0;
    w.is_write = true;
    w.on_complete = [&] { done = q.now(); };
    channel.submit(std::move(w));
    q.run();
    Tick start = q.now();
    const Tick hit_done = singleRead(q, channel, 1);
    EXPECT_EQ(hit_done - start, cfg.t_burst + cfg.t_cl);

    // Write, then a conflict (row change in the same bank): tWR due.
    DramRequest w2;
    w2.line_addr = 2;
    w2.is_write = true;
    channel.submit(std::move(w2));
    q.run();
    start = q.now();
    const std::uint64_t conflict_line =
        cfg.linesPerRow() * static_cast<std::uint64_t>(cfg.totalBanks());
    const Tick conflict_done = singleRead(q, channel, conflict_line);
    EXPECT_EQ(conflict_done - start, cfg.t_wr + cfg.t_rp + cfg.t_rcd +
                                         cfg.t_burst + cfg.t_cl);
}

TEST(DramChannel, InFlightCountsAcceptedRequests)
{
    EventQueue q;
    DramChannel channel(q, DramConfig{});
    for (int i = 0; i < 5; ++i) {
        DramRequest req;
        req.line_addr = static_cast<std::uint64_t>(i);
        channel.submit(std::move(req));
    }
    EXPECT_EQ(channel.inFlight(), 5);
    q.run();
    EXPECT_EQ(channel.inFlight(), 0);
}

TEST(DramChannel, FrFcfsPrefersRowHitOverOlderConflict)
{
    EventQueue q;
    const DramConfig cfg;
    DramChannel channel(q, cfg);
    // Open row 0 of bank 0.
    singleRead(q, channel, 0);

    // Enqueue (older) conflict to bank 0 and (younger) hit to bank 0.
    std::vector<int> order;
    DramRequest conflict;
    conflict.line_addr = cfg.linesPerRow() *
                         static_cast<std::uint64_t>(cfg.totalBanks());
    conflict.on_complete = [&] { order.push_back(0); };
    DramRequest hit;
    hit.line_addr = 1;
    hit.on_complete = [&] { order.push_back(1); };
    channel.submit(std::move(conflict));
    channel.submit(std::move(hit));
    q.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1); // the hit jumped the queue
}

TEST(DramChannel, HitStreakCapPreventsStarvation)
{
    EventQueue q;
    DramConfig cfg;
    cfg.max_row_hit_streak = 4;
    DramChannel channel(q, cfg);
    singleRead(q, channel, 0);

    // One conflict request racing a long run of row hits: with the
    // streak cap it must complete before all the hits do.
    int conflict_pos = -1;
    int completed = 0;
    DramRequest conflict;
    conflict.line_addr = cfg.linesPerRow() *
                         static_cast<std::uint64_t>(cfg.totalBanks());
    conflict.on_complete = [&] { conflict_pos = completed++; };
    channel.submit(std::move(conflict));
    for (int i = 0; i < 32; ++i) {
        DramRequest hit;
        hit.line_addr = 2 + static_cast<std::uint64_t>(i);
        hit.on_complete = [&] { ++completed; };
        channel.submit(std::move(hit));
    }
    q.run();
    EXPECT_GE(conflict_pos, 0);
    EXPECT_LT(conflict_pos, 8); // not starved to the end
}

/**
 * The paper's central premise: the average per-stream service time
 * of interleaved streams grows with the number of streams (T_mk
 * increases with k).
 */
class StreamInterference : public ::testing::TestWithParam<int>
{
};

TEST_P(StreamInterference, PerStreamTimeGrowsWithStreamCount)
{
    const int lines_per_stream = 512;

    auto measure = [&](int streams) {
        EventQueue q;
        MemSystemConfig cfg;
        MemorySystem mem(q, cfg);
        // Each stream walks its own region with a bounded window of
        // 6 outstanding lines (the machine's calibrated MLP), so one
        // stream drives ~45% of the bus and three streams are past
        // saturation.
        struct Stream
        {
            std::uint64_t base;
            int issued = 0;
            int done = 0;
        };
        std::vector<Stream> state;
        for (int s = 0; s < streams; ++s)
            state.push_back(
                {static_cast<std::uint64_t>(s) * 100000 + 17, 0, 0});

        std::function<void(int)> pump = [&](int s) {
            Stream &st = state[static_cast<std::size_t>(s)];
            while (st.issued < lines_per_stream &&
                   st.issued - st.done < 6) {
                const std::uint64_t addr =
                    st.base + static_cast<std::uint64_t>(st.issued);
                ++st.issued;
                mem.access(addr, false, [&, s] {
                    ++state[static_cast<std::size_t>(s)].done;
                    pump(s);
                });
            }
        };
        for (int s = 0; s < streams; ++s)
            pump(s);
        q.run();
        return tt::sim::toSeconds(q.now());
    };

    const int k = GetParam();
    const double t1 = measure(1);
    const double tk = measure(k);
    if (k == 1) {
        EXPECT_DOUBLE_EQ(t1, tk);
    } else if (k == 2) {
        // Two MLP-bounded streams do not saturate the bus yet; the
        // model may even overlap their activates. Interference must
        // simply not be *negative* beyond noise.
        EXPECT_GT(tk, t1 * 0.95);
    } else {
        // From three streams on, aggregate demand exceeds the
        // channel and queuing delay must show up.
        EXPECT_GT(tk, t1 * 1.05)
            << "no interference detected at k=" << k;
        // Sub-linear growth: interleaving k streams is cheaper than
        // serialising them (bank/bus parallelism survives).
        EXPECT_LT(tk, t1 * k);
    }
}

INSTANTIATE_TEST_SUITE_P(Streams, StreamInterference,
                         ::testing::Values(1, 2, 3, 4));

TEST(MemorySystem, RoutesAcrossChannels)
{
    EventQueue q;
    MemSystemConfig cfg;
    cfg.channels = 2;
    MemorySystem mem(q, cfg);
    for (std::uint64_t line = 0; line < 64; ++line)
        mem.access(line, false, nullptr);
    q.run();
    // Line interleaving splits the stream evenly.
    EXPECT_EQ(mem.channel(0).stats().reads, 32u);
    EXPECT_EQ(mem.channel(1).stats().reads, 32u);
    EXPECT_EQ(mem.totalAccesses(), 64u);
}

TEST(MemorySystem, FrontendLatencyAppliedOnce)
{
    EventQueue q;
    MemSystemConfig cfg;
    MemorySystem mem(q, cfg);
    Tick done = 0;
    mem.access(0, false, [&] { done = q.now(); });
    q.run();
    EXPECT_EQ(done, cfg.dram.t_rcd + cfg.dram.t_burst + cfg.dram.t_cl +
                        cfg.frontend_latency);
}

TEST(MemorySystem, TwoChannelsDoubleThroughput)
{
    auto drain = [](int channels) {
        EventQueue q;
        MemSystemConfig cfg;
        cfg.channels = channels;
        cfg.frontend_latency = 0;
        MemorySystem mem(q, cfg);
        for (std::uint64_t line = 0; line < 1024; ++line)
            mem.access(line, false, nullptr);
        q.run();
        return q.now();
    };
    const Tick one = drain(1);
    const Tick two = drain(2);
    EXPECT_LT(two, one * 6 / 10); // near-halved drain time
}

} // namespace
