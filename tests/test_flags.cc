/**
 * @file
 * Unit tests of the command-line flag parser used by ttsim and the
 * examples.
 */

#include <gtest/gtest.h>

#include "util/flags.hh"

namespace {

using tt::Flags;

Flags
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    Flags flags;
    EXPECT_TRUE(flags.parse(static_cast<int>(argv.size()), argv.data()));
    return flags;
}

TEST(Flags, SpaceSeparatedValues)
{
    const Flags flags = parse({"--workload", "sift", "--pairs", "64"});
    EXPECT_TRUE(flags.has("workload"));
    EXPECT_EQ(flags.getString("workload", ""), "sift");
    EXPECT_EQ(flags.getInt("pairs", 0), 64);
}

TEST(Flags, EqualsSeparatedValues)
{
    const Flags flags = parse({"--ratio=0.25", "--policy=dynamic"});
    EXPECT_DOUBLE_EQ(flags.getDouble("ratio", 0.0), 0.25);
    EXPECT_EQ(flags.getString("policy", ""), "dynamic");
}

TEST(Flags, BooleanSwitches)
{
    const Flags flags = parse({"--trace", "--verbose=false"});
    EXPECT_TRUE(flags.getBool("trace"));
    EXPECT_FALSE(flags.getBool("verbose", true));
    EXPECT_FALSE(flags.getBool("absent", false));
    EXPECT_TRUE(flags.getBool("absent", true));
}

TEST(Flags, SwitchFollowedByFlag)
{
    // --trace must not consume --quiet as its value.
    const Flags flags = parse({"--trace", "--quiet"});
    EXPECT_TRUE(flags.getBool("trace"));
    EXPECT_TRUE(flags.getBool("quiet"));
}

TEST(Flags, Positional)
{
    const Flags flags = parse({"input.txt", "--mtl", "2", "more"});
    ASSERT_EQ(flags.positional().size(), 2u);
    EXPECT_EQ(flags.positional()[0], "input.txt");
    EXPECT_EQ(flags.positional()[1], "more");
}

TEST(Flags, FallbacksWhenAbsent)
{
    const Flags flags = parse({});
    EXPECT_EQ(flags.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(flags.getDouble("missing", 1.5), 1.5);
    EXPECT_EQ(flags.getString("missing", "d"), "d");
}

TEST(Flags, BadNumberSetsError)
{
    const Flags flags = parse({"--mtl", "abc"});
    EXPECT_EQ(flags.getInt("mtl", 3), 3);
    EXPECT_FALSE(flags.error().empty());
}

TEST(Flags, BadDoubleSetsError)
{
    const Flags flags = parse({"--ratio", "x"});
    EXPECT_DOUBLE_EQ(flags.getDouble("ratio", 2.0), 2.0);
    EXPECT_FALSE(flags.error().empty());
}

TEST(Flags, BadBoolSetsError)
{
    const Flags flags = parse({"--trace", "maybe"});
    EXPECT_FALSE(flags.getBool("trace", false));
    EXPECT_FALSE(flags.error().empty());
}

TEST(Flags, NegativeNumbersParse)
{
    const Flags flags = parse({"--offset", "-12"});
    EXPECT_EQ(flags.getInt("offset", 0), -12);
}

} // namespace
