/**
 * @file
 * Live-telemetry contracts: per-job causal spans (assembly under
 * retries, shedding and deadline misses; the additive critical-path
 * decomposition), the bounded SpanBuffer, the OpenMetrics exposition
 * format, the critical-path report section's diff contract, and the
 * self-observability budget (obs.overhead.* under 3% of makespan on
 * the host backend).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "cpu/sim_machine.hh"
#include "exec/engine.hh"
#include "fault/fault_plan.hh"
#include "load/arrival.hh"
#include "obs/analyzer.hh"
#include "obs/live.hh"
#include "obs/perf/sim_counter_provider.hh"
#include "obs/span.hh"
#include "runtime/runtime.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "util/json.hh"
#include "util/stats.hh"

namespace {

using tt::core::StaticMtlPolicy;
using tt::exec::EngineOptions;
using tt::obs::CriticalPath;
using tt::obs::JobSpan;
using tt::obs::SpanBuffer;
using tt::obs::SpanOutcome;
using tt::stream::PairSpec;
using tt::stream::StreamProgramBuilder;
using tt::stream::TaskGraph;

/** Simulator-only graph: bytes/cycles descriptors, no host bodies. */
TaskGraph
simGraph(int pairs)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(pairs, [](int) {
        PairSpec spec;
        spec.bytes = 128 * 1024;
        spec.compute_cycles = 200000;
        return spec;
    });
    return std::move(builder).build();
}

/** ~tens of microseconds of real work for host task bodies. */
void
spin()
{
    volatile double acc = 0.0;
    for (int i = 0; i < 20000; ++i)
        acc = acc + static_cast<double>(i);
}

TaskGraph
hostGraph(int pairs)
{
    StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(pairs, [](int) {
        PairSpec spec;
        spec.bytes = 128 * 1024;
        spec.compute_cycles = 200000;
        spec.host_memory = [] { spin(); };
        spec.host_compute = [] { spin(); };
        return spec;
    });
    return std::move(builder).build();
}

tt::cpu::MachineConfig
simConfig(int contexts)
{
    auto config = tt::cpu::MachineConfig::i7_860_1dimm();
    config.cores = contexts;
    config.smt_ways = 1;
    return config;
}

tt::exec::RunResult
runSim(const TaskGraph &graph, const EngineOptions &options,
       int contexts = 2)
{
    tt::cpu::SimMachine machine(simConfig(contexts));
    StaticMtlPolicy policy(1, contexts);
    tt::simrt::SimRuntime sim(machine, graph, policy, options);
    return sim.run();
}

/** Assert the additive identity: components sum to the response. */
void
expectDecomposes(const JobSpan &span)
{
    const CriticalPath &cp = span.critical_path;
    EXPECT_GE(cp.admission, 0.0);
    EXPECT_GE(cp.queue_wait, 0.0);
    EXPECT_GE(cp.compute, 0.0);
    EXPECT_GE(cp.mem_stall, 0.0);
    EXPECT_GE(cp.retry_backoff, 0.0);
    EXPECT_NEAR(cp.sum(), cp.response,
                std::max(1e-12, cp.response * 0.01))
        << "pair " << span.pair;
    EXPECT_DOUBLE_EQ(cp.response, span.end - span.arrival);
}

TEST(SpanBuffer, OverwritesOldestAndCountsDrops)
{
    SpanBuffer buffer(4);
    EXPECT_EQ(buffer.capacity(), 4u);
    for (int i = 0; i < 10; ++i) {
        JobSpan span;
        span.pair = i;
        buffer.record(std::move(span));
    }
    EXPECT_EQ(buffer.size(), 4u);
    EXPECT_EQ(buffer.recorded(), 10u);
    EXPECT_EQ(buffer.dropped(), 6u);
    const std::vector<JobSpan> spans = buffer.spans();
    ASSERT_EQ(spans.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(spans[static_cast<std::size_t>(i)].pair, 6 + i)
            << "oldest-first order after wrap";
}

TEST(SpanBuffer, HoldsEverythingUnderCapacity)
{
    SpanBuffer buffer(16);
    for (int i = 0; i < 5; ++i) {
        JobSpan span;
        span.pair = i;
        buffer.record(std::move(span));
    }
    EXPECT_EQ(buffer.size(), 5u);
    EXPECT_EQ(buffer.dropped(), 0u);
    const std::vector<JobSpan> spans = buffer.spans();
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(spans[static_cast<std::size_t>(i)].pair, i);
}

TEST(Span, OutcomeNamesAreStable)
{
    EXPECT_STREQ(spanOutcomeName(SpanOutcome::Completed), "completed");
    EXPECT_STREQ(spanOutcomeName(SpanOutcome::DeadlineMiss),
                 "deadline_miss");
    EXPECT_STREQ(spanOutcomeName(SpanOutcome::Shed), "shed");
    EXPECT_STREQ(spanOutcomeName(SpanOutcome::Failed), "failed");
}

/**
 * Closed-loop runs get spans too: arrival is the instant the pair's
 * memory task became ready, every pair completes, and the critical
 * path decomposes exactly -- with the synthesized counters attached,
 * part of the executing time lands in mem_stall.
 */
TEST(Span, ClosedLoopSimSpansDecomposeExactly)
{
    const TaskGraph graph = simGraph(32);
    tt::obs::perf::SimCounterProvider counters;
    EngineOptions options;
    options.counters = &counters;
    const auto result = runSim(graph, options);
    ASSERT_FALSE(result.failed);
    EXPECT_EQ(result.spans_dropped, 0u);
    ASSERT_EQ(result.spans.size(), 32u);

    bool any_stall = false;
    for (const JobSpan &span : result.spans) {
        EXPECT_EQ(span.outcome, SpanOutcome::Completed);
        EXPECT_FALSE(span.open_loop);
        ASSERT_GE(span.attempts.size(), 2u); // memory + compute
        EXPECT_TRUE(span.attempts.front().is_memory);
        EXPECT_FALSE(span.attempts.back().is_memory);
        for (const auto &attempt : span.attempts) {
            EXPECT_FALSE(attempt.failed);
            EXPECT_GE(attempt.start, span.arrival);
            EXPECT_LE(attempt.end, span.end + 1e-12);
        }
        expectDecomposes(span);
        EXPECT_GT(span.critical_path.compute +
                      span.critical_path.mem_stall,
                  0.0);
        any_stall |= span.critical_path.mem_stall > 0.0;
    }
    EXPECT_TRUE(any_stall)
        << "synthesized counters never attributed a memory stall";
}

/**
 * Failed attempts stay on the span: the retry sequence is visible as
 * failed SpanAttempts with their granted backoff, the lost time lands
 * in retry_backoff, and the identity still holds.
 */
TEST(Span, RetriedJobsCarryFailedAttemptsAndBackoff)
{
    const TaskGraph graph = simGraph(48);
    tt::fault::FaultConfig config;
    config.seed = 7;
    config.fail_p = 0.12;
    const tt::fault::FaultPlan plan(config);

    EngineOptions options;
    options.fault_plan = &plan;
    options.max_task_retries = 4;
    options.retry_backoff_seconds = 20e-6;
    const auto result = runSim(graph, options, 1);
    ASSERT_FALSE(result.failed);
    ASSERT_GT(result.task_retries, 0);

    long failed_attempts = 0;
    for (const JobSpan &span : result.spans) {
        EXPECT_EQ(span.outcome, SpanOutcome::Completed);
        bool saw_failure = false;
        for (const auto &attempt : span.attempts) {
            if (!attempt.failed) {
                EXPECT_EQ(attempt.backoff_seconds, 0.0);
                continue;
            }
            ++failed_attempts;
            saw_failure = true;
            EXPECT_GT(attempt.backoff_seconds, 0.0)
                << "granted retries record their backoff";
        }
        if (saw_failure)
            EXPECT_GT(span.critical_path.retry_backoff, 0.0);
        else
            EXPECT_EQ(span.critical_path.retry_backoff, 0.0);
        expectDecomposes(span);
    }
    EXPECT_EQ(failed_attempts, result.task_retries);
}

/**
 * Shed jobs produce spans too -- no attempts, the shed reason, a
 * zero-length response -- and the shed/completed split matches the
 * run's admission counters.
 */
TEST(Span, OpenLoopShedJobsProduceShedSpans)
{
    const TaskGraph graph = simGraph(48);
    tt::load::ArrivalConfig arrivals;
    arrivals.seed = 9;
    arrivals.rate = 1e6; // far past capacity
    arrivals.slo_seconds = 30.0;
    const tt::load::ArrivalPlan plan =
        tt::load::buildArrivalPlan(arrivals, graph.pairCount());

    EngineOptions options;
    options.arrival_plan = &plan;
    options.admission.queue_cap = 4;
    options.admission.service_tml = 200e-6;
    options.admission.service_tql = 50e-6;
    const auto result = runSim(graph, options);
    ASSERT_FALSE(result.failed);
    ASSERT_GT(result.jobs_shed, 0);

    long shed = 0;
    long completed = 0;
    for (const JobSpan &span : result.spans) {
        EXPECT_TRUE(span.open_loop);
        if (span.outcome == SpanOutcome::Shed) {
            ++shed;
            EXPECT_TRUE(span.attempts.empty());
            EXPECT_EQ(span.decision,
                      tt::load::AdmissionDecision::Shed);
            EXPECT_NE(span.shed_reason, tt::load::ShedReason::None);
            EXPECT_DOUBLE_EQ(span.end, span.arrival);
            EXPECT_DOUBLE_EQ(span.critical_path.response, 0.0);
        } else {
            ++completed;
            EXPECT_FALSE(span.attempts.empty());
            expectDecomposes(span);
        }
    }
    EXPECT_EQ(shed, result.jobs_shed);
    EXPECT_EQ(completed, result.jobs_admitted);
    EXPECT_EQ(shed + completed,
              static_cast<long>(result.spans.size()));
}

/** Jobs finishing past their relative SLO close as DeadlineMiss. */
TEST(Span, DeadlineMissesCloseSpansAsDeadlineMiss)
{
    const TaskGraph graph = simGraph(32);
    tt::load::ArrivalConfig arrivals;
    arrivals.seed = 3;
    arrivals.rate = 1000.0;      // comfortably under capacity
    arrivals.slo_seconds = 1e-6; // nothing can finish this fast
    const tt::load::ArrivalPlan plan =
        tt::load::buildArrivalPlan(arrivals, graph.pairCount());

    EngineOptions options;
    options.arrival_plan = &plan;
    const auto result = runSim(graph, options);
    ASSERT_FALSE(result.failed);
    ASSERT_GT(result.jobs_deadline_missed, 0);

    long missed = 0;
    for (const JobSpan &span : result.spans) {
        if (span.outcome != SpanOutcome::DeadlineMiss)
            continue;
        ++missed;
        EXPECT_FALSE(span.attempts.empty());
        expectDecomposes(span);
    }
    EXPECT_EQ(missed, result.jobs_deadline_missed);
}

TEST(OpenMetrics, NameSanitization)
{
    EXPECT_EQ(tt::obs::openMetricsName("obs.spans_dropped"),
              "obs_spans_dropped");
    EXPECT_EQ(tt::obs::openMetricsName("runtime.tm-seconds"),
              "runtime_tm_seconds");
    EXPECT_EQ(tt::obs::openMetricsName("9lives"), "_9lives");
    EXPECT_EQ(tt::obs::openMetricsName(""), "_");
    EXPECT_EQ(tt::obs::openMetricsName("a:b_C2"), "a:b_C2");
}

/**
 * Golden-text round trip of the exposition format: counters become
 * `_total` samples, gauges stay plain, histograms render as summaries
 * with the four quantiles, and the stream terminates with `# EOF`.
 */
TEST(OpenMetrics, RendersRegistrySnapshot)
{
    tt::MetricsRegistry metrics;
    metrics.add("obs.spans_dropped", 3);
    metrics.set("9weird.gauge", 1.5);
    for (int i = 1; i <= 100; ++i)
        metrics.observe("runtime.tm_seconds", 1e-6 * i);

    const std::string text = tt::obs::openMetricsText(metrics, 1.25);

    EXPECT_NE(text.find("# TYPE obs_spans_dropped counter\n"
                        "obs_spans_dropped_total 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE _9weird_gauge gauge\n"
                        "_9weird_gauge 1.5\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE runtime_tm_seconds summary\n"),
              std::string::npos);
    for (const char *q : {"0.5", "0.9", "0.95", "0.99"})
        EXPECT_NE(text.find("runtime_tm_seconds{quantile=\"" +
                            std::string(q) + "\"} "),
                  std::string::npos);
    EXPECT_NE(text.find("runtime_tm_seconds_count 100\n"),
              std::string::npos);
    EXPECT_NE(text.find("runtime_tm_seconds_sum "), std::string::npos);
    EXPECT_NE(text.find("obs_snapshot_time_seconds 1.25\n"),
              std::string::npos);
    const std::string eof = "# EOF\n";
    ASSERT_GE(text.size(), eof.size());
    EXPECT_EQ(text.substr(text.size() - eof.size()), eof);

    // Without a snapshot time the clock gauge is omitted entirely.
    const std::string bare = tt::obs::openMetricsText(metrics);
    EXPECT_EQ(bare.find("obs_snapshot_time_seconds"),
              std::string::npos);
}

/**
 * The report's critical_path section exists only when the trace
 * carried spans, aggregates per priority class with means that keep
 * the additive identity, and -- the diff contract -- a report without
 * the section diffs cleanly against one with it, in both directions.
 */
TEST(Analyzer, CriticalPathSectionAndDiffContract)
{
    const TaskGraph graph = simGraph(32);
    const auto result = runSim(graph, EngineOptions{});
    ASSERT_FALSE(result.failed);

    tt::obs::AnalyzeOptions options;
    options.cores = 2;
    options.makespan = result.seconds;
    tt::obs::TraceData data = tt::exec::toTraceData(graph, result);
    ASSERT_FALSE(data.spans.empty());

    const tt::obs::Report with = tt::obs::analyze(data, options);
    ASSERT_TRUE(with.critical_path.valid);
    EXPECT_EQ(with.critical_path.jobs, 32);
    EXPECT_EQ(with.critical_path.shed, 0);
    ASSERT_EQ(with.critical_path.classes.size(), 1u);
    const tt::obs::CriticalPathClass &cls =
        with.critical_path.classes.front();
    EXPECT_EQ(cls.priority, 0);
    EXPECT_EQ(cls.jobs, 32);
    // Means of per-job identities sum to the mean response.
    EXPECT_NEAR(cls.admission + cls.queue_wait + cls.compute +
                    cls.mem_stall + cls.retry_backoff,
                cls.response.mean, cls.response.mean * 0.01);

    data.spans.clear();
    const tt::obs::Report without = tt::obs::analyze(data, options);
    EXPECT_FALSE(without.critical_path.valid);

    auto toJson = [](const tt::obs::Report &report) {
        std::ostringstream os;
        tt::obs::writeReportJson(report, os);
        return os.str();
    };
    const std::string with_text = toJson(with);
    const std::string without_text = toJson(without);
    EXPECT_NE(with_text.find("\"critical_path\""), std::string::npos);
    EXPECT_EQ(without_text.find("\"critical_path\""),
              std::string::npos);

    std::string error;
    const auto with_json = tt::json::parse(with_text, &error);
    ASSERT_TRUE(with_json) << error;
    const auto without_json = tt::json::parse(without_text, &error);
    ASSERT_TRUE(without_json) << error;

    // Section present on one side only: skipped, never an error.
    EXPECT_FALSE(
        tt::obs::diffReports(*with_json, *without_json, 0.05)
            .regressed());
    EXPECT_FALSE(
        tt::obs::diffReports(*without_json, *with_json, 0.05)
            .regressed());
    EXPECT_FALSE(tt::obs::diffReports(*with_json, *with_json, 0.05)
                     .regressed());

    // And a genuine tail-latency regression in the section is caught.
    tt::obs::Report worse = with;
    worse.critical_path.classes.front().response.p99 *= 2.0;
    const auto worse_json = tt::json::parse(toJson(worse), &error);
    ASSERT_TRUE(worse_json) << error;
    const auto diff =
        tt::obs::diffReports(*with_json, *worse_json, 0.05);
    ASSERT_TRUE(diff.regressed());
    EXPECT_NE(diff.regressions.front().metric.find("critical_path"),
              std::string::npos);
}

/**
 * Acceptance budget: total self-observability cost -- span assembly,
 * trace recording, counter reads, sampling, live export -- stays
 * under 3% of makespan on a real-thread run that exercises all of it.
 */
TEST(Span, HostObservabilityOverheadUnderThreePercent)
{
    const TaskGraph graph = hostGraph(64);
    tt::MetricsRegistry metrics;
    EngineOptions options;
    options.threads = 2;
    options.pin_affinity = false;
    options.metrics = &metrics;

    StaticMtlPolicy policy(1, 2);
    tt::runtime::Runtime runtime(graph, policy, options);

    tt::obs::LiveMetricsServer server("/tmp/tt_span_test.sock",
                                      metrics);
    const bool serving = server.start();
    const auto result = runtime.run();
    server.stop();
    ASSERT_FALSE(result.failed);
    EXPECT_TRUE(serving);

    const double overhead_seconds =
        1e-9 *
        static_cast<double>(
            metrics.counter("obs.overhead.trace_record_ns") +
            metrics.counter("obs.overhead.counter_read_ns") +
            metrics.counter("obs.overhead.sampler_ns") +
            metrics.counter("obs.overhead.live_export_ns"));
    ASSERT_GT(result.seconds, 0.0);
    EXPECT_LT(overhead_seconds / result.seconds, 0.03)
        << "observability cost " << overhead_seconds * 1e3
        << " ms of " << result.seconds * 1e3 << " ms makespan";
    EXPECT_GT(metrics.counter("obs.overhead.trace_record_ns"), 0);
}

} // namespace
