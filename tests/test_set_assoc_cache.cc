/**
 * @file
 * Tests of the tag-accurate set-associative cache, including the
 * cross-validation of the SharedLlc proportional-spill approximation
 * that the experiment pipeline relies on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mem/llc.hh"
#include "mem/set_assoc_cache.hh"

namespace {

using tt::mem::Replacement;
using tt::mem::SetAssocCache;
using tt::mem::SharedLlc;

TEST(SetAssocCache, Geometry)
{
    SetAssocCache cache(8 * 1024, 4, 64);
    EXPECT_EQ(cache.sets(), 32u);
    EXPECT_EQ(cache.ways(), 4);
    EXPECT_EQ(cache.capacity(), 8u * 1024);
}

TEST(SetAssocCacheDeath, RejectsUnevenCapacity)
{
    EXPECT_DEATH(SetAssocCache(1000, 4, 64), "multiple");
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache cache(4 * 1024, 2, 64);
    EXPECT_FALSE(cache.access(0));
    EXPECT_TRUE(cache.access(0));
    EXPECT_TRUE(cache.access(63));  // same line
    EXPECT_FALSE(cache.access(64)); // next line
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(SetAssocCache, LruEvictsOldest)
{
    // 2-way, 1 set: capacity = 2 lines.
    SetAssocCache cache(128, 2, 64);
    cache.access(0);   // A
    cache.access(64);  // B
    cache.access(0);   // touch A (B is now LRU)
    cache.access(128); // C evicts B
    EXPECT_TRUE(cache.access(0));    // A still resident
    EXPECT_FALSE(cache.access(64));  // B was evicted
    EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(SetAssocCache, WorkingSetWithinCapacityAlwaysHitsOnRewalk)
{
    SetAssocCache cache(64 * 1024, 8, 64);
    cache.accessRange(0, 32 * 1024); // cold fill
    cache.resetStats();
    const std::uint64_t hits = cache.accessRange(0, 32 * 1024);
    EXPECT_EQ(hits, 32u * 1024 / 64); // every line hits
}

TEST(SetAssocCache, LruThrashesOnCyclicSweepBeyondCapacity)
{
    // The textbook LRU pathology: cyclically sweeping a working set
    // just larger than capacity yields ~zero hits.
    SetAssocCache cache(64 * 1024, 8, 64, Replacement::kLru);
    const std::uint64_t ws = 96 * 1024;
    cache.accessRange(0, ws);
    cache.resetStats();
    cache.accessRange(0, ws);
    EXPECT_LT(cache.stats().hitRate(), 0.05);
}

TEST(SetAssocCache, RandomReplacementDegradesGracefully)
{
    // Random replacement keeps a proportional slice of an
    // oversubscribed working set resident -- the behaviour SharedLlc
    // approximates with its proportional spill fraction.
    const std::uint64_t capacity = 64 * 1024;
    const std::uint64_t ws = 128 * 1024; // 2x capacity
    SetAssocCache cache(capacity, 8, 64, Replacement::kRandom, 7);
    // Warm up with a few sweeps to reach steady state.
    for (int sweep = 0; sweep < 4; ++sweep)
        cache.accessRange(0, ws);
    cache.resetStats();
    cache.accessRange(0, ws);

    SharedLlc model(capacity);
    model.install(ws);
    const double predicted_hit = 1.0 - model.missFraction(); // 0.5

    // Random replacement survives cyclic sweeps (unlike LRU) but
    // sits below the proportional-residency bound: a line must
    // survive ~N(1-h) random evictions between uses, which decays
    // exponentially with reuse distance. The occupancy model is a
    // first-order *upper* bound on the hit rate.
    EXPECT_GT(cache.stats().hitRate(), 0.1);
    EXPECT_LE(cache.stats().hitRate(), predicted_hit + 0.05);
}

/**
 * Steady-state hit rate of cyclic sweeps under random replacement:
 * the fixed point of h = exp(-r * (1 - h)), where r is the
 * working-set / capacity ratio (each line must survive N*(1-h)
 * uniform evictions between its uses).
 */
double
randomReplacementTheory(double oversubscription)
{
    double h = 0.5;
    for (int i = 0; i < 200; ++i)
        h = std::exp(-oversubscription * (1.0 - h));
    return h;
}

TEST(SetAssocCache, OccupancyTracksFills)
{
    SetAssocCache cache(16 * 1024, 4, 64);
    EXPECT_EQ(cache.occupancyBytes(), 0u);
    cache.accessRange(0, 8 * 1024);
    EXPECT_EQ(cache.occupancyBytes(), 8u * 1024);
    cache.accessRange(0, 64 * 1024);
    EXPECT_EQ(cache.occupancyBytes(), 16u * 1024); // full
    cache.flush();
    EXPECT_EQ(cache.occupancyBytes(), 0u);
}

/** Sweep: the proportional-spill model vs random replacement. */
class SpillValidation : public ::testing::TestWithParam<double>
{
};

TEST_P(SpillValidation, RandomReplacementMatchesOccupancyModel)
{
    const double oversubscription = GetParam();
    const std::uint64_t capacity = 64 * 1024;
    const auto ws = static_cast<std::uint64_t>(
        static_cast<double>(capacity) * oversubscription / 64) * 64;

    SetAssocCache cache(capacity, 16, 64, Replacement::kRandom, 11);
    for (int sweep = 0; sweep < 6; ++sweep)
        cache.accessRange(0, ws);
    cache.resetStats();
    cache.accessRange(0, ws);

    SharedLlc model(capacity);
    model.install(ws);
    const double upper_bound = 1.0 - model.missFraction();
    // The occupancy model upper-bounds the measured rate; the exact
    // steady state follows the random-replacement fixed point.
    EXPECT_LE(cache.stats().hitRate(), upper_bound + 0.05)
        << "oversubscription " << oversubscription;
    EXPECT_NEAR(cache.stats().hitRate(),
                randomReplacementTheory(oversubscription), 0.08)
        << "oversubscription " << oversubscription;
}

INSTANTIATE_TEST_SUITE_P(Oversubscription, SpillValidation,
                         ::testing::Values(1.25, 1.5, 2.0, 3.0, 4.0));

} // namespace
