/**
 * @file
 * End-to-end integration properties of the whole stack: on
 * stationary workloads the dynamic mechanism must converge to (one
 * of) the offline-best MTLs and recover most of the offline speedup;
 * on phased workloads it must adapt; the conventional schedule must
 * never beat the offline optimum.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dynamic_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "workloads/phased.hh"
#include "workloads/sift.hh"
#include "workloads/streamcluster.hh"
#include "workloads/synthetic.hh"

namespace {

using tt::cpu::MachineConfig;

/** Stationary synthetic workloads across the ratio range. */
class DynamicConvergence : public ::testing::TestWithParam<double>
{
};

TEST_P(DynamicConvergence, TracksOfflineOptimum)
{
    const double ratio = GetParam();
    const auto cfg = MachineConfig::i7_860_1dimm();
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = ratio;
    params.footprint_bytes = 256 * 1024;
    params.pairs = 192;
    const auto graph = tt::workloads::buildSyntheticSim(cfg, params);

    const auto offline = tt::simrt::offlineExhaustiveSearch(cfg, graph);

    tt::core::DynamicThrottlePolicy dynamic(cfg.contexts(), 8);
    const auto run = tt::simrt::runOnce(cfg, graph, dynamic);

    // Dynamic (including all probing costs) must recover most of the
    // offline-best speedup...
    const double conventional =
        offline.seconds_per_mtl.back(); // MTL = n
    const double offline_speedup =
        conventional / offline.best_seconds;
    const double dynamic_speedup = conventional / run.seconds;
    EXPECT_GT(dynamic_speedup, 0.92 * offline_speedup)
        << "ratio " << ratio;

    // ...and every *completed* selection must land on an MTL whose
    // static makespan is close to the best (near-ties between
    // adjacent MTLs are legitimate picks; the trace's literal last
    // value may be a probe point if the run ends mid-selection).
    ASSERT_FALSE(dynamic.selections().empty());
    const int d_mtl = dynamic.selections().back().d_mtl;
    const double chosen_static =
        offline.seconds_per_mtl[static_cast<std::size_t>(d_mtl - 1)];
    EXPECT_LT(chosen_static, offline.best_seconds * 1.10)
        << "ratio " << ratio << " picked MTL " << d_mtl
        << " but offline best is MTL " << offline.best_mtl;
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, DynamicConvergence,
    ::testing::Values(0.05, 0.15, 0.30, 0.50, 0.80, 1.20, 2.00, 3.50));

TEST(Integration, OfflineNeverLosesToConventional)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    for (double ratio : {0.1, 0.5, 1.5}) {
        tt::workloads::SyntheticParams params;
        params.tm1_over_tc = ratio;
        params.footprint_bytes = 256 * 1024;
        params.pairs = 64;
        const auto graph =
            tt::workloads::buildSyntheticSim(cfg, params);
        const auto offline =
            tt::simrt::offlineExhaustiveSearch(cfg, graph);
        // The search includes MTL = n itself, so best <= conventional.
        EXPECT_LE(offline.best_seconds,
                  offline.seconds_per_mtl.back() + 1e-12)
            << "ratio " << ratio;
    }
}

TEST(Integration, DynamicAdaptsAcrossSiftPhases)
{
    const auto cfg = MachineConfig::i7_860_1dimm();
    const auto graph = tt::workloads::siftSim(cfg);
    tt::core::DynamicThrottlePolicy dynamic(cfg.contexts(), 16);
    const auto run = tt::simrt::runOnce(cfg, graph, dynamic);

    // SIFT's ratio alternates across the 33% boundary, so the trace
    // must contain both MTL 1 and MTL 2 periods and more than one
    // selection.
    bool saw1 = false;
    bool saw2 = false;
    for (const auto &[time, mtl] : run.mtl_trace) {
        saw1 |= (mtl == 1);
        saw2 |= (mtl == 2);
    }
    EXPECT_TRUE(saw1);
    EXPECT_TRUE(saw2);
    EXPECT_GE(run.policy_stats.selections, 2);

    // And it must beat the conventional schedule end to end.
    tt::core::ConventionalPolicy conventional(cfg.contexts());
    const double base =
        tt::simrt::runOnce(cfg, graph, conventional).seconds;
    EXPECT_LT(run.seconds, base);
}

TEST(Integration, InputSetsSplitAtTheBoundary)
{
    // Fig. 17's headline: d32 (24.6% <= 33%) settles at MTL 1, d36
    // (54.1% > 33%) at MTL 2.
    const auto cfg = MachineConfig::i7_860_1dimm();
    auto final_mtl = [&](int dim) {
        const auto graph = tt::workloads::streamclusterSim(cfg, dim);
        tt::core::DynamicThrottlePolicy dynamic(cfg.contexts(), 16);
        const auto run = tt::simrt::runOnce(cfg, graph, dynamic);
        return run.mtl_trace.back().second;
    };
    EXPECT_EQ(final_mtl(32), 1);
    EXPECT_EQ(final_mtl(36), 2);
}

TEST(Integration, TmGrowsAndTcStaysFlatAcrossMtls)
{
    // The two modelling assumptions of Sec. IV-A, observed end to
    // end: T_m monotone in MTL, T_c (LLC-resident) MTL-invariant.
    const auto cfg = MachineConfig::i7_860_1dimm();
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = 0.6;
    params.footprint_bytes = 256 * 1024;
    params.pairs = 96;
    const auto graph = tt::workloads::buildSyntheticSim(cfg, params);

    double prev_tm = 0.0;
    double tc_ref = 0.0;
    for (int k = 1; k <= cfg.contexts(); ++k) {
        tt::core::StaticMtlPolicy policy(k, cfg.contexts());
        const auto run = tt::simrt::runOnce(cfg, graph, policy);
        EXPECT_GE(run.avg_tm, prev_tm * 0.98) << "k=" << k;
        prev_tm = run.avg_tm;
        if (k == 1)
            tc_ref = run.avg_tc;
        else
            EXPECT_NEAR(run.avg_tc, tc_ref, 1e-9) << "k=" << k;
    }
}

TEST(Integration, CapacityOverflowBreaksTcInvariance)
{
    // The Fig. 13(c) regime: with 2 MB footprints the live working
    // sets overflow the 8 MB LLC at high MTL and compute tasks slow
    // down -- T_c stops being constant (the model's stated limit).
    const auto cfg = MachineConfig::i7_860_1dimm();
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = 1.0;
    params.footprint_bytes = 2048 * 1024;
    params.pairs = 32;
    const auto graph = tt::workloads::buildSyntheticSim(cfg, params);

    tt::core::StaticMtlPolicy one(1, cfg.contexts());
    const auto at1 = tt::simrt::runOnce(cfg, graph, one);
    tt::core::StaticMtlPolicy four(4, cfg.contexts());
    const auto at4 = tt::simrt::runOnce(cfg, graph, four);
    EXPECT_GT(at4.avg_tc, at1.avg_tc * 1.02);
    EXPECT_GT(at4.peak_llc_occupancy, cfg.mem.llc_bytes);
}

TEST(Integration, TwoChannelsShrinkTheGains)
{
    // Fig. 18's left half: doubling the memory channels absorbs
    // interference, so throttling gains shrink.
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = 0.5;
    params.footprint_bytes = 256 * 1024;
    params.pairs = 96;

    auto best_speedup = [&](const MachineConfig &cfg) {
        const auto graph =
            tt::workloads::buildSyntheticSim(cfg, params);
        const auto offline =
            tt::simrt::offlineExhaustiveSearch(cfg, graph);
        return offline.seconds_per_mtl.back() / offline.best_seconds;
    };
    const double one_dimm =
        best_speedup(MachineConfig::i7_860_1dimm());
    const double two_dimm =
        best_speedup(MachineConfig::i7_860_2dimm());
    EXPECT_LT(two_dimm, one_dimm);
}

} // namespace
