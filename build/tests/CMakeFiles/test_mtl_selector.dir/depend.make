# Empty dependencies file for test_mtl_selector.
# This may be replaced when dependencies are built.
