file(REMOVE_RECURSE
  "CMakeFiles/test_mtl_selector.dir/test_mtl_selector.cc.o"
  "CMakeFiles/test_mtl_selector.dir/test_mtl_selector.cc.o.d"
  "test_mtl_selector"
  "test_mtl_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mtl_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
