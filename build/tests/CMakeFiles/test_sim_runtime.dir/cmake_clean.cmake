file(REMOVE_RECURSE
  "CMakeFiles/test_sim_runtime.dir/test_sim_runtime.cc.o"
  "CMakeFiles/test_sim_runtime.dir/test_sim_runtime.cc.o.d"
  "test_sim_runtime"
  "test_sim_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
