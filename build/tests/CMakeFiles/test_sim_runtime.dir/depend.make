# Empty dependencies file for test_sim_runtime.
# This may be replaced when dependencies are built.
