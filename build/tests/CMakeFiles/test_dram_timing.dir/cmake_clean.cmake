file(REMOVE_RECURSE
  "CMakeFiles/test_dram_timing.dir/test_dram_timing.cc.o"
  "CMakeFiles/test_dram_timing.dir/test_dram_timing.cc.o.d"
  "test_dram_timing"
  "test_dram_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
