# Empty dependencies file for test_phase_detector.
# This may be replaced when dependencies are built.
