file(REMOVE_RECURSE
  "CMakeFiles/test_phase_detector.dir/test_phase_detector.cc.o"
  "CMakeFiles/test_phase_detector.dir/test_phase_detector.cc.o.d"
  "test_phase_detector"
  "test_phase_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
