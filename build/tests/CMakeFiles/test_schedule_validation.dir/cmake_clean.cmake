file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_validation.dir/test_schedule_validation.cc.o"
  "CMakeFiles/test_schedule_validation.dir/test_schedule_validation.cc.o.d"
  "test_schedule_validation"
  "test_schedule_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
