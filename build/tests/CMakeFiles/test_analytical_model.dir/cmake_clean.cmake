file(REMOVE_RECURSE
  "CMakeFiles/test_analytical_model.dir/test_analytical_model.cc.o"
  "CMakeFiles/test_analytical_model.dir/test_analytical_model.cc.o.d"
  "test_analytical_model"
  "test_analytical_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytical_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
