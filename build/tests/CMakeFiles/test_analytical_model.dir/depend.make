# Empty dependencies file for test_analytical_model.
# This may be replaced when dependencies are built.
