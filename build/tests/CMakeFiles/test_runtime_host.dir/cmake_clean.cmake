file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_host.dir/test_runtime_host.cc.o"
  "CMakeFiles/test_runtime_host.dir/test_runtime_host.cc.o.d"
  "test_runtime_host"
  "test_runtime_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
