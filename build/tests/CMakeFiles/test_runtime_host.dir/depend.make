# Empty dependencies file for test_runtime_host.
# This may be replaced when dependencies are built.
