# Empty compiler generated dependencies file for tt_sim.
# This may be replaced when dependencies are built.
