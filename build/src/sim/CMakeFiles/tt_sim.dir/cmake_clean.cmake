file(REMOVE_RECURSE
  "CMakeFiles/tt_sim.dir/event_queue.cc.o"
  "CMakeFiles/tt_sim.dir/event_queue.cc.o.d"
  "libtt_sim.a"
  "libtt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
