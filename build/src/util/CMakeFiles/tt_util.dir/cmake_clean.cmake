file(REMOVE_RECURSE
  "CMakeFiles/tt_util.dir/env.cc.o"
  "CMakeFiles/tt_util.dir/env.cc.o.d"
  "CMakeFiles/tt_util.dir/flags.cc.o"
  "CMakeFiles/tt_util.dir/flags.cc.o.d"
  "CMakeFiles/tt_util.dir/logging.cc.o"
  "CMakeFiles/tt_util.dir/logging.cc.o.d"
  "CMakeFiles/tt_util.dir/random.cc.o"
  "CMakeFiles/tt_util.dir/random.cc.o.d"
  "CMakeFiles/tt_util.dir/stats.cc.o"
  "CMakeFiles/tt_util.dir/stats.cc.o.d"
  "CMakeFiles/tt_util.dir/table.cc.o"
  "CMakeFiles/tt_util.dir/table.cc.o.d"
  "libtt_util.a"
  "libtt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
