file(REMOVE_RECURSE
  "libtt_runtime.a"
)
