# Empty dependencies file for tt_runtime.
# This may be replaced when dependencies are built.
