file(REMOVE_RECURSE
  "CMakeFiles/tt_runtime.dir/runtime.cc.o"
  "CMakeFiles/tt_runtime.dir/runtime.cc.o.d"
  "libtt_runtime.a"
  "libtt_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
