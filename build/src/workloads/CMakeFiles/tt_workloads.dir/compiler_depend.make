# Empty compiler generated dependencies file for tt_workloads.
# This may be replaced when dependencies are built.
