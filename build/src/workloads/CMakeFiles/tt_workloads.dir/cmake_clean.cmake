file(REMOVE_RECURSE
  "CMakeFiles/tt_workloads.dir/calibration.cc.o"
  "CMakeFiles/tt_workloads.dir/calibration.cc.o.d"
  "CMakeFiles/tt_workloads.dir/dft.cc.o"
  "CMakeFiles/tt_workloads.dir/dft.cc.o.d"
  "CMakeFiles/tt_workloads.dir/histogram.cc.o"
  "CMakeFiles/tt_workloads.dir/histogram.cc.o.d"
  "CMakeFiles/tt_workloads.dir/kernels/fft.cc.o"
  "CMakeFiles/tt_workloads.dir/kernels/fft.cc.o.d"
  "CMakeFiles/tt_workloads.dir/kernels/image.cc.o"
  "CMakeFiles/tt_workloads.dir/kernels/image.cc.o.d"
  "CMakeFiles/tt_workloads.dir/kernels/kmedian.cc.o"
  "CMakeFiles/tt_workloads.dir/kernels/kmedian.cc.o.d"
  "CMakeFiles/tt_workloads.dir/phased.cc.o"
  "CMakeFiles/tt_workloads.dir/phased.cc.o.d"
  "CMakeFiles/tt_workloads.dir/sift.cc.o"
  "CMakeFiles/tt_workloads.dir/sift.cc.o.d"
  "CMakeFiles/tt_workloads.dir/stencil.cc.o"
  "CMakeFiles/tt_workloads.dir/stencil.cc.o.d"
  "CMakeFiles/tt_workloads.dir/streamcluster.cc.o"
  "CMakeFiles/tt_workloads.dir/streamcluster.cc.o.d"
  "CMakeFiles/tt_workloads.dir/synthetic.cc.o"
  "CMakeFiles/tt_workloads.dir/synthetic.cc.o.d"
  "CMakeFiles/tt_workloads.dir/tables.cc.o"
  "CMakeFiles/tt_workloads.dir/tables.cc.o.d"
  "libtt_workloads.a"
  "libtt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
