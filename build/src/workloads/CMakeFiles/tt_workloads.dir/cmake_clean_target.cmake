file(REMOVE_RECURSE
  "libtt_workloads.a"
)
