
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/calibration.cc" "src/workloads/CMakeFiles/tt_workloads.dir/calibration.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/calibration.cc.o.d"
  "/root/repo/src/workloads/dft.cc" "src/workloads/CMakeFiles/tt_workloads.dir/dft.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/dft.cc.o.d"
  "/root/repo/src/workloads/histogram.cc" "src/workloads/CMakeFiles/tt_workloads.dir/histogram.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/histogram.cc.o.d"
  "/root/repo/src/workloads/kernels/fft.cc" "src/workloads/CMakeFiles/tt_workloads.dir/kernels/fft.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/kernels/fft.cc.o.d"
  "/root/repo/src/workloads/kernels/image.cc" "src/workloads/CMakeFiles/tt_workloads.dir/kernels/image.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/kernels/image.cc.o.d"
  "/root/repo/src/workloads/kernels/kmedian.cc" "src/workloads/CMakeFiles/tt_workloads.dir/kernels/kmedian.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/kernels/kmedian.cc.o.d"
  "/root/repo/src/workloads/phased.cc" "src/workloads/CMakeFiles/tt_workloads.dir/phased.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/phased.cc.o.d"
  "/root/repo/src/workloads/sift.cc" "src/workloads/CMakeFiles/tt_workloads.dir/sift.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/sift.cc.o.d"
  "/root/repo/src/workloads/stencil.cc" "src/workloads/CMakeFiles/tt_workloads.dir/stencil.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/stencil.cc.o.d"
  "/root/repo/src/workloads/streamcluster.cc" "src/workloads/CMakeFiles/tt_workloads.dir/streamcluster.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/streamcluster.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/workloads/CMakeFiles/tt_workloads.dir/synthetic.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/synthetic.cc.o.d"
  "/root/repo/src/workloads/tables.cc" "src/workloads/CMakeFiles/tt_workloads.dir/tables.cc.o" "gcc" "src/workloads/CMakeFiles/tt_workloads.dir/tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simrt/CMakeFiles/tt_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/tt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/tt_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
