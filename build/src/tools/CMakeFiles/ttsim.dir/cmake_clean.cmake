file(REMOVE_RECURSE
  "CMakeFiles/ttsim.dir/ttsim.cc.o"
  "CMakeFiles/ttsim.dir/ttsim.cc.o.d"
  "ttsim"
  "ttsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
