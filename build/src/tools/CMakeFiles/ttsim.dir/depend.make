# Empty dependencies file for ttsim.
# This may be replaced when dependencies are built.
