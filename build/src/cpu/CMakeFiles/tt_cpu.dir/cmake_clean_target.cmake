file(REMOVE_RECURSE
  "libtt_cpu.a"
)
