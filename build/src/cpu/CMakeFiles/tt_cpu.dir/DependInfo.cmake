
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/machine_config.cc" "src/cpu/CMakeFiles/tt_cpu.dir/machine_config.cc.o" "gcc" "src/cpu/CMakeFiles/tt_cpu.dir/machine_config.cc.o.d"
  "/root/repo/src/cpu/sim_core.cc" "src/cpu/CMakeFiles/tt_cpu.dir/sim_core.cc.o" "gcc" "src/cpu/CMakeFiles/tt_cpu.dir/sim_core.cc.o.d"
  "/root/repo/src/cpu/sim_machine.cc" "src/cpu/CMakeFiles/tt_cpu.dir/sim_machine.cc.o" "gcc" "src/cpu/CMakeFiles/tt_cpu.dir/sim_machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/tt_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
