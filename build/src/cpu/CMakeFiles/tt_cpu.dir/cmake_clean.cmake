file(REMOVE_RECURSE
  "CMakeFiles/tt_cpu.dir/machine_config.cc.o"
  "CMakeFiles/tt_cpu.dir/machine_config.cc.o.d"
  "CMakeFiles/tt_cpu.dir/sim_core.cc.o"
  "CMakeFiles/tt_cpu.dir/sim_core.cc.o.d"
  "CMakeFiles/tt_cpu.dir/sim_machine.cc.o"
  "CMakeFiles/tt_cpu.dir/sim_machine.cc.o.d"
  "libtt_cpu.a"
  "libtt_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
