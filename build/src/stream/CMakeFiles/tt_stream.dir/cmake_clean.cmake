file(REMOVE_RECURSE
  "CMakeFiles/tt_stream.dir/builder.cc.o"
  "CMakeFiles/tt_stream.dir/builder.cc.o.d"
  "CMakeFiles/tt_stream.dir/task_graph.cc.o"
  "CMakeFiles/tt_stream.dir/task_graph.cc.o.d"
  "libtt_stream.a"
  "libtt_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
