# Empty compiler generated dependencies file for tt_stream.
# This may be replaced when dependencies are built.
