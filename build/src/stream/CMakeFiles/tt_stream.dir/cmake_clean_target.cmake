file(REMOVE_RECURSE
  "libtt_stream.a"
)
