file(REMOVE_RECURSE
  "CMakeFiles/tt_core.dir/analytical_model.cc.o"
  "CMakeFiles/tt_core.dir/analytical_model.cc.o.d"
  "CMakeFiles/tt_core.dir/dynamic_policy.cc.o"
  "CMakeFiles/tt_core.dir/dynamic_policy.cc.o.d"
  "CMakeFiles/tt_core.dir/mtl_selector.cc.o"
  "CMakeFiles/tt_core.dir/mtl_selector.cc.o.d"
  "CMakeFiles/tt_core.dir/online_exhaustive_policy.cc.o"
  "CMakeFiles/tt_core.dir/online_exhaustive_policy.cc.o.d"
  "CMakeFiles/tt_core.dir/phase_detector.cc.o"
  "CMakeFiles/tt_core.dir/phase_detector.cc.o.d"
  "CMakeFiles/tt_core.dir/policy.cc.o"
  "CMakeFiles/tt_core.dir/policy.cc.o.d"
  "libtt_core.a"
  "libtt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
