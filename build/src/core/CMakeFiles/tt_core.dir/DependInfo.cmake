
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytical_model.cc" "src/core/CMakeFiles/tt_core.dir/analytical_model.cc.o" "gcc" "src/core/CMakeFiles/tt_core.dir/analytical_model.cc.o.d"
  "/root/repo/src/core/dynamic_policy.cc" "src/core/CMakeFiles/tt_core.dir/dynamic_policy.cc.o" "gcc" "src/core/CMakeFiles/tt_core.dir/dynamic_policy.cc.o.d"
  "/root/repo/src/core/mtl_selector.cc" "src/core/CMakeFiles/tt_core.dir/mtl_selector.cc.o" "gcc" "src/core/CMakeFiles/tt_core.dir/mtl_selector.cc.o.d"
  "/root/repo/src/core/online_exhaustive_policy.cc" "src/core/CMakeFiles/tt_core.dir/online_exhaustive_policy.cc.o" "gcc" "src/core/CMakeFiles/tt_core.dir/online_exhaustive_policy.cc.o.d"
  "/root/repo/src/core/phase_detector.cc" "src/core/CMakeFiles/tt_core.dir/phase_detector.cc.o" "gcc" "src/core/CMakeFiles/tt_core.dir/phase_detector.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/tt_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/tt_core.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
