file(REMOVE_RECURSE
  "libtt_mem.a"
)
