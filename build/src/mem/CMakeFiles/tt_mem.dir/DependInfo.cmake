
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/dram_channel.cc" "src/mem/CMakeFiles/tt_mem.dir/dram_channel.cc.o" "gcc" "src/mem/CMakeFiles/tt_mem.dir/dram_channel.cc.o.d"
  "/root/repo/src/mem/dram_config.cc" "src/mem/CMakeFiles/tt_mem.dir/dram_config.cc.o" "gcc" "src/mem/CMakeFiles/tt_mem.dir/dram_config.cc.o.d"
  "/root/repo/src/mem/llc.cc" "src/mem/CMakeFiles/tt_mem.dir/llc.cc.o" "gcc" "src/mem/CMakeFiles/tt_mem.dir/llc.cc.o.d"
  "/root/repo/src/mem/mem_system.cc" "src/mem/CMakeFiles/tt_mem.dir/mem_system.cc.o" "gcc" "src/mem/CMakeFiles/tt_mem.dir/mem_system.cc.o.d"
  "/root/repo/src/mem/set_assoc_cache.cc" "src/mem/CMakeFiles/tt_mem.dir/set_assoc_cache.cc.o" "gcc" "src/mem/CMakeFiles/tt_mem.dir/set_assoc_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
