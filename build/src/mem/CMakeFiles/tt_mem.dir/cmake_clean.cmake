file(REMOVE_RECURSE
  "CMakeFiles/tt_mem.dir/dram_channel.cc.o"
  "CMakeFiles/tt_mem.dir/dram_channel.cc.o.d"
  "CMakeFiles/tt_mem.dir/dram_config.cc.o"
  "CMakeFiles/tt_mem.dir/dram_config.cc.o.d"
  "CMakeFiles/tt_mem.dir/llc.cc.o"
  "CMakeFiles/tt_mem.dir/llc.cc.o.d"
  "CMakeFiles/tt_mem.dir/mem_system.cc.o"
  "CMakeFiles/tt_mem.dir/mem_system.cc.o.d"
  "CMakeFiles/tt_mem.dir/set_assoc_cache.cc.o"
  "CMakeFiles/tt_mem.dir/set_assoc_cache.cc.o.d"
  "libtt_mem.a"
  "libtt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
