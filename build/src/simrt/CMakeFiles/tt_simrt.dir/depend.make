# Empty dependencies file for tt_simrt.
# This may be replaced when dependencies are built.
