file(REMOVE_RECURSE
  "CMakeFiles/tt_simrt.dir/sim_runtime.cc.o"
  "CMakeFiles/tt_simrt.dir/sim_runtime.cc.o.d"
  "CMakeFiles/tt_simrt.dir/trace_export.cc.o"
  "CMakeFiles/tt_simrt.dir/trace_export.cc.o.d"
  "libtt_simrt.a"
  "libtt_simrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_simrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
