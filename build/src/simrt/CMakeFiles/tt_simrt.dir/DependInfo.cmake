
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simrt/sim_runtime.cc" "src/simrt/CMakeFiles/tt_simrt.dir/sim_runtime.cc.o" "gcc" "src/simrt/CMakeFiles/tt_simrt.dir/sim_runtime.cc.o.d"
  "/root/repo/src/simrt/trace_export.cc" "src/simrt/CMakeFiles/tt_simrt.dir/trace_export.cc.o" "gcc" "src/simrt/CMakeFiles/tt_simrt.dir/trace_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/tt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/tt_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
