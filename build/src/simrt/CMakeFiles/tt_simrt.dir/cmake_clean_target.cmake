file(REMOVE_RECURSE
  "libtt_simrt.a"
)
