file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_ratios.dir/bench_table2_ratios.cc.o"
  "CMakeFiles/bench_table2_ratios.dir/bench_table2_ratios.cc.o.d"
  "bench_table2_ratios"
  "bench_table2_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
