# Empty compiler generated dependencies file for bench_ext_power7.
# This may be replaced when dependencies are built.
