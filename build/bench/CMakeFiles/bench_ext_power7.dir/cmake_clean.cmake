file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_power7.dir/bench_ext_power7.cc.o"
  "CMakeFiles/bench_ext_power7.dir/bench_ext_power7.cc.o.d"
  "bench_ext_power7"
  "bench_ext_power7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_power7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
