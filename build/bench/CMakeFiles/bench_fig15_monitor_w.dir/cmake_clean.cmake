file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_monitor_w.dir/bench_fig15_monitor_w.cc.o"
  "CMakeFiles/bench_fig15_monitor_w.dir/bench_fig15_monitor_w.cc.o.d"
  "bench_fig15_monitor_w"
  "bench_fig15_monitor_w.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_monitor_w.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
