# Empty compiler generated dependencies file for bench_fig15_monitor_w.
# This may be replaced when dependencies are built.
