file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_realistic.dir/bench_fig14_realistic.cc.o"
  "CMakeFiles/bench_fig14_realistic.dir/bench_fig14_realistic.cc.o.d"
  "bench_fig14_realistic"
  "bench_fig14_realistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_realistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
