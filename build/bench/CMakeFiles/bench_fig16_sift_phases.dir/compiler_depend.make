# Empty compiler generated dependencies file for bench_fig16_sift_phases.
# This may be replaced when dependencies are built.
