# Empty compiler generated dependencies file for bench_table3_sift_ratios.
# This may be replaced when dependencies are built.
