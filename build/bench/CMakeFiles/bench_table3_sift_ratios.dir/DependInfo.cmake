
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_sift_ratios.cc" "bench/CMakeFiles/bench_table3_sift_ratios.dir/bench_table3_sift_ratios.cc.o" "gcc" "bench/CMakeFiles/bench_table3_sift_ratios.dir/bench_table3_sift_ratios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/tt_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tt_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/tt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/tt_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
