# Empty compiler generated dependencies file for host_threads.
# This may be replaced when dependencies are built.
