file(REMOVE_RECURSE
  "CMakeFiles/host_threads.dir/host_threads.cpp.o"
  "CMakeFiles/host_threads.dir/host_threads.cpp.o.d"
  "host_threads"
  "host_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
