file(REMOVE_RECURSE
  "CMakeFiles/sift_phases.dir/sift_phases.cpp.o"
  "CMakeFiles/sift_phases.dir/sift_phases.cpp.o.d"
  "sift_phases"
  "sift_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sift_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
