# Empty dependencies file for sift_phases.
# This may be replaced when dependencies are built.
