file(REMOVE_RECURSE
  "CMakeFiles/streamcluster_inputs.dir/streamcluster_inputs.cpp.o"
  "CMakeFiles/streamcluster_inputs.dir/streamcluster_inputs.cpp.o.d"
  "streamcluster_inputs"
  "streamcluster_inputs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamcluster_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
