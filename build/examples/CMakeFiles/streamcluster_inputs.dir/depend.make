# Empty dependencies file for streamcluster_inputs.
# This may be replaced when dependencies are built.
