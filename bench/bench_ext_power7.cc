/**
 * @file
 * Extension bench: the paper's future work (Sec. VIII) -- the
 * scalability study on an IBM POWER7-class machine with
 * "substantially more hardware threads than the Intel i7-based
 * systems" (32 contexts here, versus at most 8 in Fig. 18).
 *
 * Two experiments:
 *  1. the static-MTL makespan sweep of a synthetic workload, showing
 *     where the best constraint lands when n = 32 (far below n, and
 *     moving with the memory-to-compute ratio);
 *  2. the realistic workloads under the four schedulers, showing the
 *     dynamic mechanism still finds the right constraint with a much
 *     larger search space (log2(32) = 5 probe points).
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "util/table.hh"
#include "workloads/phased.hh"
#include "workloads/sift.hh"
#include "workloads/streamcluster.hh"
#include "workloads/synthetic.hh"

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("ext_power7");
    if (!bench_json.parseArgs(argc, argv))
        return 2;
    const auto machine = tt::cpu::MachineConfig::power7();
    const int n = machine.contexts();
    bench_json.config("machine", "power7");
    bench_json.config("contexts", n);

    std::printf("=== Extension: POWER7-class scalability (%d cores x "
                "%d-way SMT = %d contexts, %d DDR3-1333 channels) "
                "===\n\n",
                machine.cores, machine.smt_ways, n,
                machine.mem.channels);

    // --- Experiment 1: static MTL sweep.
    std::printf("--- static-MTL sweep, synthetic workload ---\n");
    tt::TablePrinter sweep({"Tm1/Tc", "best MTL", "speedup vs MTL=32"});
    for (double ratio : {0.1, 0.5, 1.0, 2.0}) {
        tt::workloads::SyntheticParams params;
        params.tm1_over_tc = ratio;
        params.footprint_bytes = 512 * 1024;
        params.pairs = 512;
        const auto graph =
            tt::workloads::buildSyntheticSim(machine, params);
        tt::core::ConventionalPolicy conventional(n);
        const double base =
            tt::simrt::runOnce(machine, graph, conventional).seconds;
        double best = base;
        int best_mtl = n;
        // Sweep 1..8 densely, then powers of two up to n.
        for (int k = 1; k < n; k = (k < 8 ? k + 1 : k * 2)) {
            tt::core::StaticMtlPolicy policy(k, n);
            const double seconds =
                tt::simrt::runOnce(machine, graph, policy).seconds;
            if (seconds < best) {
                best = seconds;
                best_mtl = k;
            }
        }
        sweep.addRow({tt::TablePrinter::num(ratio, 2),
                      std::to_string(best_mtl),
                      tt::TablePrinter::num(base / best, 3)});
        bench_json.beginRow();
        bench_json.value("experiment", "static_sweep");
        bench_json.value("ratio", ratio);
        bench_json.value("best_mtl", best_mtl);
        bench_json.value("speedup", base / best);
    }
    sweep.print(std::cout);

    // --- Experiment 2: the IdleBound trigger at 32 contexts.
    //
    // With n=32 the closed-form IdleBound is fine-grained, so the
    // paper's exact-mismatch trigger re-selects on every window of
    // measurement noise; one step of hysteresis restores the coarse
    // behaviour the mechanism was designed around.
    std::printf("\n--- IdleBound trigger at n=32: paper mechanism vs "
                "hysteresis extension ---\n");
    {
        // A long streamcluster-like run (Table II ratio, bigger
        // pair count so probing cost is attributable, not dominant).
        tt::workloads::PhaseSpec phase;
        phase.name = "SC_d128-long";
        phase.tm1_over_tc = 0.3714;
        phase.footprint_bytes = 256 * 1024;
        phase.write_fraction = 0.1;
        phase.pairs = 1024;
        const auto graph =
            tt::workloads::buildPhasedSim(machine, {phase});

        tt::core::ConventionalPolicy conventional(n);
        const double base =
            tt::simrt::runOnce(machine, graph, conventional).seconds;

        tt::TablePrinter table({"policy", "speedup", "selections",
                                "probe fraction", "final MTL"});
        for (int hysteresis : {0, 1, 2}) {
            tt::core::DynamicThrottlePolicy dynamic(n, 8);
            dynamic.setIdleBoundHysteresis(hysteresis);
            const auto run = tt::simrt::runOnce(machine, graph, dynamic);
            const int mtl = run.mtl_trace.empty()
                                ? n
                                : run.mtl_trace.back().second;
            const std::string name =
                hysteresis == 0 ? "paper trigger (hysteresis 0)"
                                : "hysteresis " + std::to_string(
                                                      hysteresis);
            table.addRow({name,
                          tt::TablePrinter::num(base / run.seconds, 3),
                          std::to_string(run.policy_stats.selections),
                          tt::TablePrinter::pct(run.monitor_overhead),
                          std::to_string(mtl)});
            bench_json.beginRow();
            bench_json.value("experiment", "idle_bound_trigger");
            bench_json.value("hysteresis", hysteresis);
            bench_json.value("speedup", base / run.seconds);
            bench_json.value("selections",
                             run.policy_stats.selections);
            bench_json.value("probe_fraction", run.monitor_overhead);
            bench_json.value("final_mtl", mtl);
        }
        tt::core::OnlineExhaustivePolicy online(n, 8);
        const auto online_run =
            tt::simrt::runOnce(machine, graph, online);
        table.addRow(
            {"online exhaustive (times all 32 MTLs)",
             tt::TablePrinter::num(base / online_run.seconds, 3),
             std::to_string(online_run.policy_stats.selections),
             tt::TablePrinter::pct(online_run.monitor_overhead),
             std::to_string(online_run.mtl_trace.back().second)});
        table.print(std::cout);
        bench_json.beginRow();
        bench_json.value("experiment", "idle_bound_trigger");
        bench_json.value("variant", "online_exhaustive");
        bench_json.value("speedup", base / online_run.seconds);
        bench_json.value("selections",
                         online_run.policy_stats.selections);
        bench_json.value("probe_fraction",
                         online_run.monitor_overhead);
    }
    std::printf("\nnote: offline exhaustive needs %d full runs at this "
                "scale; the model-pruned dynamic mechanism probes "
                "O(log n) = 5 points per selection, but the paper's "
                "exact IdleBound trigger needs hysteresis to stay "
                "quiet when n is large.\n",
                n);
    return bench_json.write() ? 0 : 1;
}
