/**
 * @file
 * Table II regenerator: memory-to-compute ratios (T_m1/T_c) of the
 * dft kernel and the six streamcluster input sets, measured at
 * MTL=1 on the simulated machine and compared against the paper's
 * published values.
 *
 * The simulated workloads are *calibrated* to the published ratios
 * (DESIGN.md substitution table), so this bench verifies that the
 * calibration survives actual scheduling: measured ratios must land
 * within a few percent of the targets despite queueing, warm-up and
 * tail effects.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "util/table.hh"
#include "workloads/dft.hh"
#include "workloads/streamcluster.hh"
#include "workloads/tables.hh"

namespace {

double
measureRatio(const tt::cpu::MachineConfig &machine,
             const tt::stream::TaskGraph &graph)
{
    tt::core::StaticMtlPolicy policy(1, machine.contexts());
    const auto run = tt::simrt::runOnce(machine, graph, policy);
    return run.avg_tm / run.avg_tc;
}

} // namespace

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("table2_ratios");
    if (!bench_json.parseArgs(argc, argv))
        return 2;
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    bench_json.config("machine", "1dimm");
    bench_json.config("mtl", 1);

    std::printf("=== Table II: workload memory-to-compute ratios "
                "(T_m1/T_c) ===\n\n");
    tt::TablePrinter table(
        {"benchmark", "name", "paper", "measured", "rel.err"});

    {
        const auto graph = tt::workloads::dftSim(machine);
        const double measured = measureRatio(machine, graph);
        const double paper = tt::workloads::tables::kDftRatio;
        bench_json.beginRow();
        bench_json.value("workload", "dft");
        bench_json.value("paper_ratio", paper);
        bench_json.value("measured_ratio", measured);
        table.addRow({"dft in OpenCV", "dft",
                      tt::TablePrinter::pct(paper),
                      tt::TablePrinter::pct(measured),
                      tt::TablePrinter::pct((measured - paper) / paper)});
    }
    for (const auto &entry : tt::workloads::tables::kStreamcluster) {
        const auto graph =
            tt::workloads::streamclusterSim(machine, entry.dim);
        const double measured = measureRatio(machine, graph);
        bench_json.beginRow();
        bench_json.value("workload", "SC_d" + std::to_string(entry.dim));
        bench_json.value("paper_ratio", entry.ratio);
        bench_json.value("measured_ratio", measured);
        table.addRow(
            {"streamcluster", "SC_d" + std::to_string(entry.dim),
             tt::TablePrinter::pct(entry.ratio),
             tt::TablePrinter::pct(measured),
             tt::TablePrinter::pct((measured - entry.ratio) /
                                   entry.ratio)});
    }
    table.print(std::cout);
    return bench_json.write() ? 0 : 1;
}
