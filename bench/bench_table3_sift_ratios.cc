/**
 * @file
 * Table III regenerator: T_m1/T_c per parallel function of SIFT,
 * measured at MTL=1 on the simulated machine against the paper's
 * values (same calibration-verification role as Table II; see
 * bench_table2_ratios.cc).
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "util/table.hh"
#include "workloads/sift.hh"
#include "workloads/tables.hh"

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("table3_sift_ratios");
    if (!bench_json.parseArgs(argc, argv))
        return 2;
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    bench_json.config("machine", "1dimm");
    bench_json.config("mtl", 1);

    // One run of the whole pipeline at MTL=1; per-phase averages
    // come from the per-phase aggregation of the scheduler.
    const auto graph = tt::workloads::siftSim(machine);
    tt::core::StaticMtlPolicy policy(1, machine.contexts());
    const auto run = tt::simrt::runOnce(machine, graph, policy);

    std::printf("=== Table III: T_m1/T_c per SIFT parallel function "
                "===\n\n");
    tt::TablePrinter table({"function", "paper", "measured", "rel.err"});
    for (std::size_t i = 0; i < run.phases.size(); ++i) {
        const auto &phase = run.phases[i];
        const double paper =
            tt::workloads::tables::kSift[i].ratio;
        const double measured = phase.tm_mean / phase.tc_mean;
        bench_json.beginRow();
        bench_json.value("function", phase.name);
        bench_json.value("paper_ratio", paper);
        bench_json.value("measured_ratio", measured);
        table.addRow({phase.name, tt::TablePrinter::pct(paper),
                      tt::TablePrinter::pct(measured),
                      tt::TablePrinter::pct((measured - paper) / paper)});
    }
    table.print(std::cout);
    return bench_json.write() ? 0 : 1;
}
