/**
 * @file
 * Figure 15 regenerator: dynamic-throttling speedup of the realistic
 * workloads as the monitoring window W varies over {4, 8, 16, 24}
 * (Sec. VI-C).
 *
 * Paper reference points: larger W estimates T_mk/T_c better but
 * costs more probing; dft (only 96 pairs) degrades beyond W=8, while
 * streamcluster and SIFT are fine at W=16.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/dynamic_policy.hh"
#include "util/table.hh"
#include "workloads/dft.hh"
#include "workloads/sift.hh"
#include "workloads/streamcluster.hh"

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("fig15_monitor_w");
    if (!bench_json.parseArgs(argc, argv))
        return 2;
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    const std::vector<int> windows{4, 8, 16, 24};
    bench_json.config("machine", "1dimm");

    struct Entry
    {
        std::string name;
        tt::stream::TaskGraph graph;
    };
    std::vector<Entry> entries;
    entries.push_back({"dft", tt::workloads::dftSim(machine)});
    entries.push_back(
        {"SC_d128", tt::workloads::streamclusterSim(machine, 128)});
    entries.push_back({"SIFT", tt::workloads::siftSim(machine)});

    std::printf("=== Figure 15: dynamic-throttling speedup vs "
                "monitoring window W ===\n\n");

    tt::TablePrinter table({"workload", "W=4", "W=8", "W=16", "W=24"});
    for (const auto &entry : entries) {
        tt::core::ConventionalPolicy conventional(machine.contexts());
        const double base =
            tt::simrt::runOnce(machine, entry.graph, conventional)
                .seconds;

        std::vector<std::string> row{entry.name};
        for (int w : windows) {
            tt::core::DynamicThrottlePolicy dynamic(machine.contexts(),
                                                    w);
            const auto run =
                tt::simrt::runOnce(machine, entry.graph, dynamic);
            row.push_back(tt::TablePrinter::num(base / run.seconds, 3));
            bench_json.beginRow();
            bench_json.value("workload", entry.name);
            bench_json.value("window", w);
            bench_json.value("speedup", base / run.seconds);
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::printf("\npaper: dft peaks at W<=8 (96 pairs -> monitoring "
                "dominates beyond); SC/SIFT are accurate by W=16\n");
    return bench_json.write() ? 0 : 1;
}
