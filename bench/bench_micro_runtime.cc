/**
 * @file
 * google-benchmark microbenchmarks of the runtime primitives: the
 * analytical model evaluation, phase detector and selector state
 * machines, the event queue, the DRAM channel, host-runtime pair
 * dispatch, and the live-telemetry hot paths (span recording, one
 * OpenMetrics scrape). These bound the per-decision overhead the
 * dynamic mechanism adds to an application (the paper argues that
 * overhead is negligible; here it is nanoseconds per event).
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/analytical_model.hh"
#include "util/concurrency/mpmc_queue.hh"
#include "util/concurrency/sharded_gate.hh"
#include "core/dynamic_policy.hh"
#include "core/mtl_selector.hh"
#include "core/phase_detector.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "mem/dram_channel.hh"
#include "obs/live.hh"
#include "obs/span.hh"
#include "runtime/runtime.hh"
#include "sim/event_queue.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "util/stats.hh"

namespace {

void
BM_ModelSpeedup(benchmark::State &state)
{
    double tm = 0.1;
    for (auto _ : state) {
        tm += 1e-9;
        benchmark::DoNotOptimize(
            tt::core::AnalyticalModel::speedup(tm, 0.5, 1.0, 2, 4));
    }
}
BENCHMARK(BM_ModelSpeedup);

void
BM_ModelIdleBound(benchmark::State &state)
{
    double tm = 0.1;
    for (auto _ : state) {
        tm += 1e-9;
        benchmark::DoNotOptimize(
            tt::core::AnalyticalModel::idleBound(tm, 1.0, 4));
    }
}
BENCHMARK(BM_ModelIdleBound);

void
BM_PhaseDetectorSample(benchmark::State &state)
{
    tt::core::PhaseDetector detector(16, 4);
    tt::core::PairSample sample;
    sample.tm = 0.2;
    sample.tc = 1.0;
    sample.mtl = 4;
    for (auto _ : state)
        benchmark::DoNotOptimize(detector.addSample(sample, 4));
}
BENCHMARK(BM_PhaseDetectorSample);

void
BM_FullMtlSelection(benchmark::State &state)
{
    const auto cores = static_cast<int>(state.range(0));
    for (auto _ : state) {
        tt::core::MtlSelector selector(cores);
        while (auto mtl = selector.nextProbe())
            selector.reportProbe(*mtl, 0.4 + 0.05 * *mtl, 1.0);
        benchmark::DoNotOptimize(selector.result());
    }
}
BENCHMARK(BM_FullMtlSelection)->Arg(4)->Arg(8)->Arg(64);

void
BM_DynamicPolicyPair(benchmark::State &state)
{
    tt::core::DynamicThrottlePolicy policy(4, 16);
    tt::core::PairSample sample;
    sample.tm = 0.2;
    sample.tc = 1.0;
    double clock = 0.0;
    for (auto _ : state) {
        clock += 1.2;
        sample.end_time = clock;
        sample.mtl = policy.currentMtl();
        policy.onPairMeasured(sample);
    }
}
BENCHMARK(BM_DynamicPolicyPair);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        tt::sim::EventQueue queue;
        for (int i = 0; i < 1024; ++i)
            queue.schedule(static_cast<tt::sim::Tick>(i * 7 % 997),
                           [] {});
        queue.run();
        benchmark::DoNotOptimize(queue.executed());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_DramChannelStream(benchmark::State &state)
{
    for (auto _ : state) {
        tt::sim::EventQueue queue;
        tt::mem::DramChannel channel(queue, tt::mem::DramConfig{});
        int done = 0;
        for (std::uint64_t line = 0; line < 512; ++line) {
            tt::mem::DramRequest req;
            req.line_addr = line;
            req.on_complete = [&done] { ++done; };
            channel.submit(std::move(req));
        }
        queue.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DramChannelStream);

void
BM_SimRuntimeSmallGraph(benchmark::State &state)
{
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    tt::stream::StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(16, [](int) {
        tt::stream::PairSpec spec;
        spec.bytes = 64 * 1024;
        spec.compute_cycles = 100000;
        return spec;
    });
    const auto graph = std::move(builder).build();
    for (auto _ : state) {
        tt::core::ConventionalPolicy policy(machine.contexts());
        benchmark::DoNotOptimize(
            tt::simrt::runOnce(machine, graph, policy).seconds);
    }
}
BENCHMARK(BM_SimRuntimeSmallGraph);

void
BM_HostRuntimePairDispatch(benchmark::State &state)
{
    // Cost of scheduling one (trivial) pair through the real-thread
    // runtime, single worker: queue + gate + timing overhead.
    for (auto _ : state) {
        state.PauseTiming();
        tt::stream::StreamProgramBuilder builder;
        builder.beginPhase("p");
        builder.addPairs(256, [](int) {
            tt::stream::PairSpec spec;
            spec.bytes = 64;
            spec.compute_cycles = 1;
            return spec;
        });
        const auto graph = std::move(builder).build();
        tt::core::ConventionalPolicy policy(1);
        tt::runtime::RuntimeOptions opts;
        opts.threads = 1;
        opts.pin_affinity = false;
        tt::runtime::Runtime runtime(graph, policy, opts);
        state.ResumeTiming();
        benchmark::DoNotOptimize(runtime.run().samples.size());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_HostRuntimePairDispatch);

void
BM_MpmcQueuePushPop(benchmark::State &state)
{
    // The dispatch-op primitive of the lock-free fast path: one ring
    // enqueue plus one dequeue (what a completion + the next worker
    // pay instead of a scheduler-mutex round trip).
    tt::util::MpmcQueue<int> queue(1024);
    int out = 0;
    for (auto _ : state) {
        queue.tryPush(1);
        queue.tryPop(out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcQueuePushPop);

void
BM_ShardedGateAdmit(benchmark::State &state)
{
    // One MTL admission + release through the sharded gate (the
    // lock-free form of the mem_in_flight < MTL check); the fold
    // walks `shards` cache lines.
    const auto shards = static_cast<std::size_t>(state.range(0));
    tt::util::ShardedGate gate(shards);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gate.tryAcquire(0, 4));
        gate.release(0);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedGateAdmit)->Arg(1)->Arg(8)->Arg(64);

void
BM_HostDispatchThroughput(benchmark::State &state)
{
    // End-to-end dispatch-op throughput of the pull-mode hot path:
    // trivial bodies, so the measured rate is queue-pop + admission
    // + completion bookkeeping across real worker threads. One item
    // = one task attempt (memory + compute per pair).
    const int threads = static_cast<int>(state.range(0));
    constexpr int kPairs = 1024;
    for (auto _ : state) {
        state.PauseTiming();
        tt::stream::StreamProgramBuilder builder;
        builder.beginPhase("p");
        builder.addPairs(kPairs, [](int) {
            tt::stream::PairSpec spec;
            spec.bytes = 64;
            spec.compute_cycles = 1;
            return spec;
        });
        const auto graph = std::move(builder).build();
        tt::core::ConventionalPolicy policy(threads);
        tt::runtime::RuntimeOptions opts;
        opts.threads = threads;
        opts.pin_affinity = false;
        tt::runtime::Runtime runtime(graph, policy, opts);
        state.ResumeTiming();
        benchmark::DoNotOptimize(runtime.run().samples.size());
    }
    state.SetItemsProcessed(state.iterations() * kPairs * 2);
}
BENCHMARK(BM_HostDispatchThroughput)->Arg(1)->Arg(2)->Arg(4);

void
BM_SimDispatch64Contexts(benchmark::State &state)
{
    // Scheduler-side dispatch cost at scale: a 64-context machine
    // (16 cores x 4-way SMT) pushing a wide phase through the
    // deterministic engine. One item = one task dispatch decision.
    auto machine = tt::cpu::MachineConfig::power7();
    machine.cores = 16;
    machine.smt_ways = 4;
    constexpr int kPairs = 512;
    tt::stream::StreamProgramBuilder builder;
    builder.beginPhase("p");
    builder.addPairs(kPairs, [](int) {
        tt::stream::PairSpec spec;
        spec.bytes = 4 * 1024;
        spec.compute_cycles = 10000;
        return spec;
    });
    const auto graph = std::move(builder).build();
    for (auto _ : state) {
        tt::core::ConventionalPolicy policy(machine.contexts());
        benchmark::DoNotOptimize(
            tt::simrt::runOnce(machine, graph, policy).seconds);
    }
    state.SetItemsProcessed(state.iterations() * kPairs * 2);
}
// At ~tens of ms per iteration, google-benchmark's default time
// budget can settle on a single iteration -- too noisy to gate on.
// Pinning the iteration count keeps the measured throughput stable
// across runs, which is what lets check_regression.py include this
// benchmark in the dispatch gate.
BENCHMARK(BM_SimDispatch64Contexts)->Iterations(8);

void
BM_SpanBufferRecord(benchmark::State &state)
{
    // Per-job cost of assembling the causal span: one record with a
    // typical two-attempt (memory + compute) history into a bounded
    // buffer that is already wrapping.
    tt::obs::SpanBuffer buffer(4096);
    tt::obs::JobSpan span;
    span.pair = 0;
    span.arrival = 0.0;
    span.end = 2e-4;
    span.attempts.resize(2);
    span.attempts[0].is_memory = true;
    span.attempts[0].end = 1e-4;
    span.attempts[1].start = 1e-4;
    span.attempts[1].end = 2e-4;
    for (auto _ : state) {
        ++span.pair;
        buffer.record(span);
        benchmark::DoNotOptimize(buffer.recorded());
    }
}
BENCHMARK(BM_SpanBufferRecord);

void
BM_OpenMetricsRender(benchmark::State &state)
{
    // Per-scrape cost of the live endpoint: render a registry the
    // size of a real run's (the serving thread pays exactly this,
    // charged to obs.overhead.live_export_ns).
    tt::MetricsRegistry metrics;
    for (int i = 0; i < 32; ++i)
        metrics.add("runtime.counter_" + std::to_string(i), i);
    for (int i = 0; i < 8; ++i)
        metrics.set("runtime.gauge_" + std::to_string(i), 0.5 * i);
    for (int i = 0; i < 8; ++i)
        for (int s = 0; s < 512; ++s)
            metrics.observe("runtime.hist_" + std::to_string(i),
                            1e-6 * s);
    for (auto _ : state) {
        auto text = tt::obs::openMetricsText(metrics, 1.0);
        benchmark::DoNotOptimize(text.data());
    }
}
BENCHMARK(BM_OpenMetricsRender);

} // namespace

/**
 * Same contract as the figure benches: `--json-out [FILE]` writes
 * machine-readable results (default BENCH_micro_runtime.json). Here
 * it is sugar for google-benchmark's own JSON reporter
 * (--benchmark_out=FILE --benchmark_out_format=json), so the file
 * follows that schema rather than the BenchJson one; native
 * --benchmark_* flags still pass through untouched.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv, argv + argc);
    std::string json_path;
    for (std::size_t i = 1; i < args.size();) {
        if (args[i] == "--json-out") {
            json_path = "BENCH_micro_runtime.json";
            args.erase(args.begin() + static_cast<long>(i));
            if (i < args.size() && args[i][0] != '-') {
                json_path = args[i];
                args.erase(args.begin() + static_cast<long>(i));
            }
        } else if (args[i].rfind("--json-out=", 0) == 0) {
            json_path = args[i].substr(std::string("--json-out=").size());
            args.erase(args.begin() + static_cast<long>(i));
        } else {
            ++i;
        }
    }
    if (!json_path.empty()) {
        args.push_back("--benchmark_out=" + json_path);
        args.push_back("--benchmark_out_format=json");
    }
    std::vector<char *> cargs;
    for (auto &arg : args)
        cargs.push_back(arg.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
