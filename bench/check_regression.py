#!/usr/bin/env python3
"""Dispatch-throughput regression gate over google-benchmark JSON.

Compares a fresh BENCH_micro_runtime.json against the committed
baseline in bench/baselines/ and fails (exit 1) when any
dispatch-path benchmark lost more than --threshold (default 25%) of
its items_per_second. The gate targets the failure mode that
motivates it -- accidentally serializing a lock-free path, which
costs integer factors, not percent -- so the threshold leaves room
for the timing noise of shared hardware. Only benchmarks present in
BOTH files are compared, so adding a benchmark never breaks the gate
(it starts gating once the baseline is refreshed).

Two defenses keep the gate usable on shared/virtualized hardware,
where run-to-run swings of 10%+ are routine even for unchanged code:

- **Medians, not samples.** When a file carries repeated runs
  (``--benchmark_repetitions=N``), the per-benchmark median is
  compared; `/repeats:N` name decorations are stripped so repeated
  and single-run files compare against each other.
- **Drift correction.** The median throughput ratio across all
  shared benchmarks estimates machine-state drift (CPU steal,
  thermal state) between the two recordings. When the whole suite is
  uniformly slower, losses are measured against that drift rather
  than against the absolute baseline. Only slowdowns are corrected
  (the factor is clamped at 1.0), so a uniformly *faster* machine
  never hides a real regression. The corollary is acknowledged: a
  change that slows every dispatch path by the same factor is
  indistinguishable from machine state here and will not trip the
  gate -- per-path regressions, the common failure mode, still do.

Benchmark timings only compare within one machine: when the context
fingerprint (cpu count, nominal MHz, build type) differs from the
baseline's, the gate reports SKIP and exits 0 rather than comparing
apples to oranges. Refresh the baseline on the machine of record
with:

    bench/bench_micro_runtime --benchmark_repetitions=5 \
        --json-out bench/baselines/BENCH_micro_runtime.json
"""

import argparse
import json
import re
import statistics
import sys


# The lock-free fast path under the gate: ring ops, MTL admission,
# end-to-end host dispatch, and the wide-machine simulated dispatch
# path. BM_SimDispatch64Contexts used to be excluded (too few
# iterations inside the smoke's time budget); it now runs a pinned
# iteration count, which makes its throughput stable enough to gate.
DISPATCH_PATTERN = re.compile(
    r"HostDispatch|HostRuntimePairDispatch|MpmcQueue|ShardedGate"
    r"|SimDispatch",
    re.ASCII)

REPEATS_DECORATION = re.compile(r"/repeats:\d+", re.ASCII)


def fingerprint(context):
    """Stable machine identity for apples-to-apples comparison."""
    return (
        context.get("num_cpus"),
        context.get("mhz_per_cpu"),
        context.get("library_build_type"),
    )


def throughputs(doc):
    """name -> median items_per_second per dispatch-path benchmark.

    Repetition aggregates are preferred when present; otherwise the
    median over the individual runs sharing a (repeat-stripped) name
    -- which is the run itself for unrepeated files.
    """
    samples = {}
    medians = {}
    for bench in doc.get("benchmarks", []):
        rate = bench.get("items_per_second")
        name = REPEATS_DECORATION.sub(
            "", bench.get("run_name") or bench.get("name", ""))
        if not rate or not DISPATCH_PATTERN.search(name):
            continue
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") == "median":
                medians[name] = float(rate)
        else:
            samples.setdefault(name, []).append(float(rate))
    out = {name: statistics.median(rates)
           for name, rates in samples.items()}
    out.update(medians)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional loss beyond "
                             "machine drift (default 0.25)")
    args = parser.parse_args()

    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    base_fp = fingerprint(baseline.get("context", {}))
    cur_fp = fingerprint(current.get("context", {}))
    if base_fp != cur_fp:
        print(f"SKIP: machine fingerprint changed "
              f"(baseline {base_fp}, current {cur_fp}); "
              f"refresh the baseline to re-arm the gate")
        return 0

    base_rates = throughputs(baseline)
    cur_rates = throughputs(current)
    shared = sorted(set(base_rates) & set(cur_rates))
    if not shared:
        print("SKIP: no dispatch benchmarks shared with the baseline")
        return 0

    # Uniform machine drift between the recordings; <= 1.0 so a
    # faster machine today cannot mask a regression.
    drift = min(1.0, statistics.median(
        cur_rates[name] / base_rates[name] for name in shared))
    if drift < 1.0:
        print(f"note: machine drift {drift:.3f}x "
              f"(median ratio over {len(shared)} benchmarks); "
              f"losses measured against drifted baseline")

    failures = []
    for name in shared:
        base = base_rates[name] * drift
        cur = cur_rates[name]
        loss = (base - cur) / base
        status = "FAIL" if loss > args.threshold else "ok"
        print(f"{status:4s} {name:40s} "
              f"{base / 1e6:10.3f}M/s -> {cur / 1e6:10.3f}M/s "
              f"({-loss:+.1%})")
        if loss > args.threshold:
            failures.append(name)

    if failures:
        print(f"FAIL: {len(failures)} dispatch benchmark(s) regressed "
              f"more than {args.threshold:.0%}: {', '.join(failures)}")
        return 1
    print(f"ok: {len(shared)} dispatch benchmark(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
