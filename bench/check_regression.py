#!/usr/bin/env python3
"""Dispatch-throughput regression gate over google-benchmark JSON.

Compares a fresh BENCH_micro_runtime.json against the committed
baseline in bench/baselines/ and fails (exit 1) when any
dispatch-path benchmark lost more than --threshold (default 10%) of
its items_per_second. Only benchmarks present in BOTH files are
compared, so adding a benchmark never breaks the gate (it starts
gating once the baseline is refreshed).

Benchmark timings only compare within one machine: when the context
fingerprint (cpu count, nominal MHz, build type) differs from the
baseline's, the gate reports SKIP and exits 0 rather than comparing
apples to oranges. Refresh the baseline on the machine of record
with:

    bench/bench_micro_runtime --json-out bench/baselines/BENCH_micro_runtime.json
"""

import argparse
import json
import re
import sys


# The lock-free fast path under the gate: ring ops, MTL admission,
# and end-to-end host dispatch. BM_SimDispatch64Contexts is
# deliberately absent: at ~20 ms per iteration it gets too few
# iterations inside the smoke's time budget to gate on reliably (it
# remains a reported scalability number).
DISPATCH_PATTERN = re.compile(
    r"HostDispatch|HostRuntimePairDispatch|MpmcQueue|ShardedGate",
    re.ASCII)


def fingerprint(context):
    """Stable machine identity for apples-to-apples comparison."""
    return (
        context.get("num_cpus"),
        context.get("mhz_per_cpu"),
        context.get("library_build_type"),
    )


def throughputs(doc):
    """name -> items_per_second for every dispatch-path benchmark."""
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name", "")
        rate = bench.get("items_per_second")
        if rate and DISPATCH_PATTERN.search(name):
            out[name] = float(rate)
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline benchmark JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max allowed fractional loss (default 0.10)")
    args = parser.parse_args()

    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    base_fp = fingerprint(baseline.get("context", {}))
    cur_fp = fingerprint(current.get("context", {}))
    if base_fp != cur_fp:
        print(f"SKIP: machine fingerprint changed "
              f"(baseline {base_fp}, current {cur_fp}); "
              f"refresh the baseline to re-arm the gate")
        return 0

    base_rates = throughputs(baseline)
    cur_rates = throughputs(current)
    shared = sorted(set(base_rates) & set(cur_rates))
    if not shared:
        print("SKIP: no dispatch benchmarks shared with the baseline")
        return 0

    failures = []
    for name in shared:
        base = base_rates[name]
        cur = cur_rates[name]
        loss = (base - cur) / base
        status = "FAIL" if loss > args.threshold else "ok"
        print(f"{status:4s} {name:40s} "
              f"{base / 1e6:10.3f}M/s -> {cur / 1e6:10.3f}M/s "
              f"({-loss:+.1%})")
        if loss > args.threshold:
            failures.append(name)

    if failures:
        print(f"FAIL: {len(failures)} dispatch benchmark(s) regressed "
              f"more than {args.threshold:.0%}: {', '.join(failures)}")
        return 1
    print(f"ok: {len(shared)} dispatch benchmark(s) within "
          f"{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
