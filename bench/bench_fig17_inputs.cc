/**
 * @file
 * Figure 17 regenerator: streamcluster speedup and selected MTL
 * across input array dimensions (128/72/48/36/32/20), dynamic
 * throttling versus offline exhaustive search (Sec. VI-D2).
 *
 * Paper reference points: input sets change T_m1/T_c (Table II) and
 * hence the right MTL -- d32 (24.6% <= 33%) runs at D-MTL=1 while
 * d36 (54.1% > 33%) picks D-MTL=2.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "util/table.hh"
#include "workloads/streamcluster.hh"
#include "workloads/tables.hh"

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("fig17_inputs");
    if (!bench_json.parseArgs(argc, argv))
        return 2;
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    const int w = 16;
    bench_json.config("machine", "1dimm");
    bench_json.config("window", w);

    std::printf("=== Figure 17: streamcluster across input "
                "dimensions ===\n\n");

    tt::TablePrinter table({"input", "Tm1/Tc(paper)",
                            "offline(speedup,MTL)",
                            "dynamic(speedup,MTL)"});
    for (const auto &entry : tt::workloads::tables::kStreamcluster) {
        const auto graph =
            tt::workloads::streamclusterSim(machine, entry.dim);
        const auto cmp =
            tt::bench::comparePolicies(machine, graph, w, w);
        tt::bench::addComparisonRow(
            bench_json, "SC_d" + std::to_string(entry.dim), cmp);
        table.addRow(
            {"SC_d" + std::to_string(entry.dim),
             tt::TablePrinter::pct(entry.ratio),
             tt::TablePrinter::num(cmp.offlineSpeedup(), 3) + "  (" +
                 std::to_string(cmp.offline_mtl) + ")",
             tt::TablePrinter::num(cmp.dynamicSpeedup(), 3) + "  (" +
                 std::to_string(cmp.dynamic_final_mtl) + ")"});
    }
    table.print(std::cout);
    std::printf("\npaper: ratios <= 33%% (d48, d32) pick D-MTL=1; "
                "ratios > 33%% (d128, d72, d36, d20) pick D-MTL=2\n");
    return bench_json.write() ? 0 : 1;
}
