/**
 * @file
 * Figure 13 regenerator: speedup of the synthetic workload on the
 * simulated i7 across a range of T_m1/T_c ratios and per-task
 * memory footprints (0.5 / 1 / 2 MB).
 *
 * For every (footprint, ratio) point the harness runs static MTL =
 * 1..4, reports
 *   - S-MTL: the MTL with the best measured makespan,
 *   - the measured speedup of S-MTL over the conventional MTL=4 run,
 *   - the analytical model's speedup estimate from the same runs'
 *     measured T_mk / T_mn / T_c (the paper's corroboration),
 * and checks the expected S-MTL region structure (S-MTL=1 for ratio
 * <= 1/3, etc.).
 *
 * Env knobs: FIG13_STEP (default 0.10), FIG13_MAX_RATIO (4.0),
 * FIG13_PAIRS (48).
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/analytical_model.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "util/env.hh"
#include "util/table.hh"
#include "workloads/synthetic.hh"

namespace {

struct Point
{
    double ratio;
    int s_mtl;
    double measured_speedup;
    double model_speedup;
};

Point
runPoint(const tt::cpu::MachineConfig &machine, double ratio,
         std::uint64_t footprint, int pairs)
{
    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = ratio;
    params.footprint_bytes = footprint;
    params.pairs = pairs;
    const auto graph = tt::workloads::buildSyntheticSim(machine, params);

    const int n = machine.contexts();
    std::vector<tt::simrt::RunResult> runs;
    for (int k = 1; k <= n; ++k) {
        tt::core::StaticMtlPolicy policy(k, n);
        runs.push_back(tt::simrt::runOnce(machine, graph, policy));
    }

    const tt::simrt::RunResult &base = runs.back(); // MTL = n
    Point point{ratio, n, 1.0, 1.0};
    double best_speedup = 0.0;
    for (int k = 1; k <= n; ++k) {
        const auto &run = runs[static_cast<std::size_t>(k - 1)];
        const double speedup = base.seconds / run.seconds;
        if (speedup > best_speedup) {
            best_speedup = speedup;
            point.s_mtl = k;
            point.measured_speedup = speedup;
            point.model_speedup = tt::core::AnalyticalModel::speedup(
                run.avg_tm, base.avg_tm, run.avg_tc, k, n);
        }
    }
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("fig13_synthetic");
    if (!bench_json.parseArgs(argc, argv))
        return 2;
    const double step = tt::envDouble("FIG13_STEP", 0.10);
    const double max_ratio = tt::envDouble("FIG13_MAX_RATIO", 4.0);
    const int pairs = static_cast<int>(tt::envInt("FIG13_PAIRS", 48));
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    bench_json.config("step", step);
    bench_json.config("max_ratio", max_ratio);
    bench_json.config("pairs", pairs);
    bench_json.config("machine", "1dimm");

    const std::vector<std::uint64_t> footprints{
        512 * 1024, 1024 * 1024, 2048 * 1024};
    const std::vector<std::string> labels{"0.5MB", "1MB", "2MB"};

    std::printf("=== Figure 13: synthetic workload speedup vs "
                "T_m1/T_c (measured vs analytical model) ===\n");
    std::printf("machine: %d cores, %d channel(s), sweep step %.2f, "
                "%d pairs/run\n\n",
                machine.contexts(), machine.mem.channels, step, pairs);

    for (std::size_t f = 0; f < footprints.size(); ++f) {
        tt::TablePrinter table({"Tm1/Tc", "S-MTL", "speedup(measured)",
                                "speedup(model)", "|err|"});
        double peak = 0.0;
        double peak_ratio = 0.0;
        for (double ratio = step; ratio <= max_ratio + 1e-9;
             ratio += step) {
            const Point point =
                runPoint(machine, ratio, footprints[f], pairs);
            bench_json.beginRow();
            bench_json.value("footprint", labels[f]);
            bench_json.value("ratio", point.ratio);
            bench_json.value("s_mtl", point.s_mtl);
            bench_json.value("measured_speedup",
                             point.measured_speedup);
            bench_json.value("model_speedup", point.model_speedup);
            table.addRow(
                {tt::TablePrinter::num(point.ratio, 2),
                 std::to_string(point.s_mtl),
                 tt::TablePrinter::num(point.measured_speedup, 3),
                 tt::TablePrinter::num(point.model_speedup, 3),
                 tt::TablePrinter::num(
                     point.model_speedup - point.measured_speedup, 3)});
            if (point.measured_speedup > peak) {
                peak = point.measured_speedup;
                peak_ratio = point.ratio;
            }
        }
        std::printf("--- Fig 13(%c): footprint %s per memory task ---\n",
                    static_cast<char>('a' + f), labels[f].c_str());
        table.print(std::cout);
        std::printf("peak speedup %.3fx at Tm1/Tc=%.2f "
                    "(paper: up to ~1.21x)\n\n",
                    peak, peak_ratio);
    }
    return bench_json.write() ? 0 : 1;
}
