/**
 * @file
 * Figure 16 regenerator: per-function speedup and selected MTL for
 * the main parallel functions of SIFT (Sec. VI-D1), dynamic
 * throttling versus offline exhaustive search.
 *
 * Paper reference points: ECONVOLVE (ratio 70% > 33%) runs best at
 * MTL=2; ECONVOLVE2 (7.8% <= 33%) at MTL=1; the dynamic mechanism
 * matches the offline assignment per function, with slight speedup
 * differences from the pairs it spends probing. The full-pipeline
 * run at the end shows the phase-change adaptation (the paper's
 * 8.58% whole-SIFT speedup).
 */

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_common.hh"
#include "util/table.hh"
#include "workloads/phased.hh"
#include "workloads/sift.hh"

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("fig16_sift_phases");
    if (!bench_json.parseArgs(argc, argv))
        return 2;
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    const int w = 16; // best W for SIFT (Fig. 15)
    bench_json.config("machine", "1dimm");
    bench_json.config("window", w);

    std::printf("=== Figure 16: SIFT parallel functions, speedup and "
                "selected MTL ===\n\n");

    tt::TablePrinter table({"function", "Tm1/Tc(paper)",
                            "offline(speedup,MTL)",
                            "dynamic(speedup,MTL)"});

    for (const auto &phase : tt::workloads::siftPhases()) {
        // Each function evaluated standalone, as in the figure.
        const auto graph =
            tt::workloads::buildPhasedSim(machine, {phase});
        const auto cmp =
            tt::bench::comparePolicies(machine, graph, w, w);
        tt::bench::addComparisonRow(bench_json, phase.name, cmp);
        table.addRow(
            {phase.name, tt::TablePrinter::pct(phase.tm1_over_tc),
             tt::TablePrinter::num(cmp.offlineSpeedup(), 3) + "  (" +
                 std::to_string(cmp.offline_mtl) + ")",
             tt::TablePrinter::num(cmp.dynamicSpeedup(), 3) + "  (" +
                 std::to_string(cmp.dynamic_final_mtl) + ")"});
    }
    table.print(std::cout);

    // Whole pipeline: the dynamic mechanism must adapt the MTL as
    // SIFT moves between functions.
    const auto full = tt::workloads::siftSim(machine);
    tt::core::ConventionalPolicy conventional(machine.contexts());
    const double base =
        tt::simrt::runOnce(machine, full, conventional).seconds;
    tt::core::DynamicThrottlePolicy dynamic(machine.contexts(), w);
    const auto run = tt::simrt::runOnce(machine, full, dynamic);

    std::printf("\nwhole SIFT pipeline: %.3fx speedup "
                "(paper: ~1.086x), %ld selections, %ld MTL switches\n",
                base / run.seconds, run.policy_stats.selections,
                run.policy_stats.mtl_switches);
    std::ostringstream trace;
    for (const auto &[time, mtl] : run.mtl_trace)
        trace << mtl << " ";
    std::printf("D-MTL trace across phases: %s\n", trace.str().c_str());
    bench_json.beginRow();
    bench_json.value("workload", "SIFT_full");
    bench_json.value("dynamic_speedup", base / run.seconds);
    bench_json.value("selections", run.policy_stats.selections);
    bench_json.value("mtl_switches", run.policy_stats.mtl_switches);
    return bench_json.write() ? 0 : 1;
}
