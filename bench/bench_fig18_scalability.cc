/**
 * @file
 * Figure 18 regenerator: scalability of the dynamic mechanism on the
 * 2-DIMM (two-channel, 17 GB/s) machine, without SMT (4 threads) and
 * with 2-way SMT (8 threads) (Sec. VI-E).
 *
 * Paper reference points: with doubled bandwidth the 4-thread
 * speedups shrink to 3.0-9.1% (channel parallelism already absorbs
 * some interference); enabling SMT stresses the memory system again
 * and the gains grow (streamcluster 13.3%), even though T_c stops
 * being constant under SMT.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "util/table.hh"
#include "workloads/dft.hh"
#include "workloads/sift.hh"
#include "workloads/streamcluster.hh"

namespace {

void
runConfig(const tt::cpu::MachineConfig &machine, const char *title,
          const char *config_label, tt::bench::BenchJson &bench_json)
{
    struct Entry
    {
        std::string name;
        tt::stream::TaskGraph graph;
        int w;
    };
    std::vector<Entry> entries;
    entries.push_back({"dft", tt::workloads::dftSim(machine), 8});
    entries.push_back(
        {"SC_d128", tt::workloads::streamclusterSim(machine, 128), 16});
    entries.push_back({"SIFT", tt::workloads::siftSim(machine), 16});

    std::printf("--- %s (%d contexts, %d channels) ---\n", title,
                machine.contexts(), machine.mem.channels);
    tt::TablePrinter table({"workload", "offline(speedup,MTL)",
                            "dynamic(speedup,MTL)"});
    for (const auto &entry : entries) {
        const auto cmp = tt::bench::comparePolicies(
            machine, entry.graph, entry.w, entry.w);
        tt::bench::addComparisonRow(
            bench_json, std::string(config_label) + "/" + entry.name,
            cmp);
        table.addRow(
            {entry.name,
             tt::TablePrinter::num(cmp.offlineSpeedup(), 3) + "  (" +
                 std::to_string(cmp.offline_mtl) + ")",
             tt::TablePrinter::num(cmp.dynamicSpeedup(), 3) + "  (" +
                 std::to_string(cmp.dynamic_final_mtl) + ")"});
    }
    table.print(std::cout);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("fig18_scalability");
    if (!bench_json.parseArgs(argc, argv))
        return 2;
    std::printf("=== Figure 18: 2-DIMM scalability, without and with "
                "SMT ===\n\n");
    runConfig(tt::cpu::MachineConfig::i7_860_2dimm(),
              "2-DIMM, SMT off (4 threads)", "2dimm", bench_json);
    runConfig(tt::cpu::MachineConfig::i7_860_2dimm_smt(),
              "2-DIMM, SMT on (8 threads)", "2dimm-smt", bench_json);
    std::printf("paper: 4-thread speedups drop to 1.03-1.09x on the "
                "wider memory system;\nSMT adds contention back and "
                "speedups rise (SC ~1.13x)\n");
    return bench_json.write() ? 0 : 1;
}
