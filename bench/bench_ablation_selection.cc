/**
 * @file
 * Ablation bench for the two design choices DESIGN.md calls out:
 *
 *  1. *Model-pruned selection* (binary search + two-candidate
 *     comparison) versus brute-force probing of every MTL: we count
 *     probe pairs and compare end-to-end time on a multi-phase
 *     workload. This isolates the Sec. IV-C pruning from the
 *     trigger policy.
 *
 *  2. *IdleBound phase detection* versus the naive
 *     "re-select whenever the memory-to-compute ratio changes"
 *     trigger (Sec. IV-B's strawman): on a workload whose ratio
 *     drifts within one idle-behaviour class, the naive trigger
 *     keeps re-selecting while IdleBound stays quiet.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/dynamic_policy.hh"
#include "core/online_exhaustive_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "util/table.hh"
#include "workloads/calibration.hh"
#include "workloads/phased.hh"
#include "workloads/sift.hh"

namespace {

using tt::core::DynamicThrottlePolicy;

/** A workload whose ratio drifts but never crosses an IdleBound. */
tt::stream::TaskGraph
driftingWorkload(const tt::cpu::MachineConfig &machine)
{
    // Ratios 0.06 .. 0.30 all keep every core busy at MTL=1 on a
    // quad-core (boundary: 1/3), so the ideal policy selects MTL=1
    // once and never re-selects.
    std::vector<tt::workloads::PhaseSpec> phases;
    for (double ratio : {0.06, 0.10, 0.16, 0.22, 0.30, 0.12, 0.26}) {
        tt::workloads::PhaseSpec phase;
        phase.name = "drift-" + std::to_string(ratio);
        phase.tm1_over_tc = ratio;
        phase.footprint_bytes = 128 * 1024;
        phase.write_fraction = 0.5;
        phase.pairs = 96;
        phases.push_back(std::move(phase));
    }
    return tt::workloads::buildPhasedSim(machine, phases);
}

} // namespace

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("ablation_selection");
    if (!bench_json.parseArgs(argc, argv))
        return 2;
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    const int n = machine.contexts();
    const int w = 16;
    bench_json.config("machine", "1dimm");
    bench_json.config("window", w);

    // One row per (experiment, variant) measurement.
    const auto addRow = [&bench_json](const std::string &experiment,
                                      const std::string &variant,
                                      double speedup,
                                      const tt::simrt::RunResult &run) {
        bench_json.beginRow();
        bench_json.value("experiment", experiment);
        bench_json.value("variant", variant);
        bench_json.value("speedup", speedup);
        bench_json.value("probe_pairs",
                         run.policy_stats.probe_pairs);
        bench_json.value("probe_fraction", run.monitor_overhead);
        bench_json.value("selections", run.policy_stats.selections);
    };

    std::printf("=== Ablation 1: model-pruned MTL selection vs "
                "brute-force probing ===\n\n");
    {
        const auto graph = tt::workloads::siftSim(machine);
        tt::core::ConventionalPolicy conventional(n);
        const double base =
            tt::simrt::runOnce(machine, graph, conventional).seconds;

        DynamicThrottlePolicy pruned(n, w);
        const auto pruned_run = tt::simrt::runOnce(machine, graph, pruned);

        tt::core::OnlineExhaustivePolicy brute(n, w);
        const auto brute_run = tt::simrt::runOnce(machine, graph, brute);

        addRow("selection", "pruned", base / pruned_run.seconds,
               pruned_run);
        addRow("selection", "brute_force", base / brute_run.seconds,
               brute_run);

        tt::TablePrinter table({"selector", "speedup", "probe pairs",
                                "probe fraction", "selections"});
        table.addRow(
            {"pruned (model, O(log n) probes)",
             tt::TablePrinter::num(base / pruned_run.seconds, 3),
             std::to_string(pruned_run.policy_stats.probe_pairs),
             tt::TablePrinter::pct(pruned_run.monitor_overhead),
             std::to_string(pruned_run.policy_stats.selections)});
        table.addRow(
            {"brute force (time every MTL)",
             tt::TablePrinter::num(base / brute_run.seconds, 3),
             std::to_string(brute_run.policy_stats.probe_pairs),
             tt::TablePrinter::pct(brute_run.monitor_overhead),
             std::to_string(brute_run.policy_stats.selections)});
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("=== Ablation 2: IdleBound trigger vs naive "
                "ratio-change trigger ===\n\n");
    {
        const auto graph = driftingWorkload(machine);
        tt::core::ConventionalPolicy conventional(n);
        const double base =
            tt::simrt::runOnce(machine, graph, conventional).seconds;

        DynamicThrottlePolicy idle_bound(n, w);
        const auto ib_run =
            tt::simrt::runOnce(machine, graph, idle_bound);

        DynamicThrottlePolicy naive(
            n, w, -1, DynamicThrottlePolicy::TriggerMode::kRatioChange);
        const auto naive_run = tt::simrt::runOnce(machine, graph, naive);

        addRow("trigger", "idle_bound", base / ib_run.seconds, ib_run);
        addRow("trigger", "ratio_change", base / naive_run.seconds,
               naive_run);

        tt::TablePrinter table({"trigger", "speedup", "selections",
                                "probe fraction"});
        table.addRow({"IdleBound (paper)",
                      tt::TablePrinter::num(base / ib_run.seconds, 3),
                      std::to_string(ib_run.policy_stats.selections),
                      tt::TablePrinter::pct(ib_run.monitor_overhead)});
        table.addRow({"any ratio change (naive)",
                      tt::TablePrinter::num(base / naive_run.seconds, 3),
                      std::to_string(naive_run.policy_stats.selections),
                      tt::TablePrinter::pct(naive_run.monitor_overhead)});
        table.print(std::cout);
        std::printf("\nthe drifting workload never changes core-idle "
                    "behaviour, so every selection beyond the first "
                    "is wasted monitoring\n");
    }
    return bench_json.write() ? 0 : 1;
}
