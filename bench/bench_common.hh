/**
 * @file
 * Shared harness code for the figure/table regenerators: run one
 * workload under the paper's four schedulers (conventional, offline
 * exhaustive, dynamic throttling, online exhaustive) and collect the
 * numbers every figure reports.
 */

#ifndef TT_BENCH_BENCH_COMMON_HH
#define TT_BENCH_BENCH_COMMON_HH

#include <string>

#include "core/dynamic_policy.hh"
#include "core/online_exhaustive_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "stream/task_graph.hh"

namespace tt::bench {

/** One workload's results under all four schedulers. */
struct PolicyComparison
{
    double conventional_seconds = 0.0;

    double offline_seconds = 0.0;
    int offline_mtl = 0;

    double dynamic_seconds = 0.0;
    int dynamic_final_mtl = 0;
    double dynamic_probe_fraction = 0.0;
    long dynamic_selections = 0;

    double online_seconds = 0.0;
    int online_final_mtl = 0;
    double online_probe_fraction = 0.0;

    double offlineSpeedup() const
    {
        return conventional_seconds / offline_seconds;
    }
    double dynamicSpeedup() const
    {
        return conventional_seconds / dynamic_seconds;
    }
    double onlineSpeedup() const
    {
        return conventional_seconds / online_seconds;
    }
};

/**
 * Run `graph` under all four schedulers on fresh machines built from
 * `config`. `w_dynamic` / `w_online` are the monitoring windows (the
 * paper reports each policy at its best W).
 */
inline PolicyComparison
comparePolicies(const cpu::MachineConfig &config,
                const stream::TaskGraph &graph, int w_dynamic,
                int w_online)
{
    PolicyComparison cmp;
    const int n = config.contexts();

    core::ConventionalPolicy conventional(n);
    cmp.conventional_seconds =
        simrt::runOnce(config, graph, conventional).seconds;

    const auto offline = simrt::offlineExhaustiveSearch(config, graph);
    cmp.offline_seconds = offline.best_seconds;
    cmp.offline_mtl = offline.best_mtl;

    core::DynamicThrottlePolicy dynamic(n, w_dynamic);
    const auto dyn = simrt::runOnce(config, graph, dynamic);
    cmp.dynamic_seconds = dyn.seconds;
    cmp.dynamic_final_mtl =
        dyn.mtl_trace.empty() ? n : dyn.mtl_trace.back().second;
    cmp.dynamic_probe_fraction = dyn.monitor_overhead;
    cmp.dynamic_selections = dyn.policy_stats.selections;

    core::OnlineExhaustivePolicy online(n, w_online);
    const auto onl = simrt::runOnce(config, graph, online);
    cmp.online_seconds = onl.seconds;
    cmp.online_final_mtl =
        onl.mtl_trace.empty() ? n : onl.mtl_trace.back().second;
    cmp.online_probe_fraction = onl.monitor_overhead;

    return cmp;
}

} // namespace tt::bench

#endif // TT_BENCH_BENCH_COMMON_HH
