/**
 * @file
 * Shared harness code for the figure/table regenerators: run one
 * workload under the paper's four schedulers (conventional, offline
 * exhaustive, dynamic throttling, online exhaustive) and collect the
 * numbers every figure reports.
 */

#ifndef TT_BENCH_BENCH_COMMON_HH
#define TT_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/dynamic_policy.hh"
#include "core/online_exhaustive_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "stream/task_graph.hh"

namespace tt::bench {

/**
 * Machine-readable results emitter for the figure regenerators.
 *
 * Every bench binary accepts `--json-out [FILE]`; when the flag is
 * present the bench writes, alongside its human-readable tables, one
 * JSON document of the form
 *
 *   {"bench": "<name>",
 *    "config": {"knob": value, ...},
 *    "results": [{"key": value, ...}, ...]}
 *
 * FILE defaults to BENCH_<name>.json in the working directory, so CI
 * can collect the artefacts with one glob. Construct one at the top
 * of main(), call parseArgs(), record the effective knob settings
 * with config(), append one flat row per measured point with
 * beginRow()/value(), and finish with write() -- a no-op unless the
 * flag was given, so the default text-only behaviour is unchanged.
 */
class BenchJson
{
  public:
    explicit BenchJson(const std::string &name) : name_(name) {}

    /**
     * Parse the bench command line (benches are otherwise configured
     * through environment knobs, so `--json-out [FILE]` and `--help`
     * are the only arguments). Returns false, after printing usage,
     * on anything it does not recognise.
     */
    bool parseArgs(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--json-out") {
                enabled_ = true;
                if (i + 1 < argc && argv[i + 1][0] != '-')
                    path_ = argv[++i];
            } else if (arg.rfind("--json-out=", 0) == 0) {
                enabled_ = true;
                path_ = arg.substr(std::string("--json-out=").size());
            } else {
                std::fprintf(stderr,
                             "usage: %s [--json-out [FILE]]\n"
                             "  (default FILE: %s; other settings "
                             "come from env knobs, see the header "
                             "comment)\n",
                             argv[0], defaultPath().c_str());
                return false;
            }
        }
        if (enabled_ && path_.empty())
            path_ = defaultPath();
        return true;
    }

    bool enabled() const { return enabled_; }

    /** Record one configuration knob (numeric or string). */
    void config(const std::string &key, double v)
    {
        appendField(config_, key, numberLiteral(v));
    }
    void config(const std::string &key, const std::string &v)
    {
        appendField(config_, key, stringLiteral(v));
    }

    /** Start the next result row. */
    void beginRow() { rows_.emplace_back(); }

    /** Add one field to the current row (beginRow() first). */
    void value(const std::string &key, double v)
    {
        appendField(rows_.back(), key, numberLiteral(v));
    }
    void value(const std::string &key, const std::string &v)
    {
        appendField(rows_.back(), key, stringLiteral(v));
    }

    /**
     * Write the document when enabled; returns false (with a
     * message on stderr) if the file cannot be written.
     */
    bool write() const
    {
        if (!enabled_)
            return true;
        std::ofstream out(path_);
        if (out) {
            out << "{\"bench\": " << stringLiteral(name_)
                << ",\n \"config\": {" << config_
                << "},\n \"results\": [";
            for (std::size_t i = 0; i < rows_.size(); ++i)
                out << (i > 0 ? ",\n   {" : "\n   {") << rows_[i]
                    << "}";
            out << "\n ]}\n";
            out.flush();
        }
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n", path_.c_str());
            return false;
        }
        std::printf("bench json      %10s\n", path_.c_str());
        return true;
    }

  private:
    std::string defaultPath() const
    {
        return "BENCH_" + name_ + ".json";
    }

    static std::string numberLiteral(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", v);
        return buf;
    }

    static std::string stringLiteral(const std::string &raw)
    {
        std::string out = "\"";
        for (char c : raw) {
            if (c == '"' || c == '\\')
                out += '\\';
            out += c;
        }
        return out + "\"";
    }

    static void appendField(std::string &dst, const std::string &key,
                            const std::string &literal)
    {
        if (!dst.empty())
            dst += ", ";
        dst += stringLiteral(key) + ": " + literal;
    }

    std::string name_;
    bool enabled_ = false;
    std::string path_;
    std::string config_;
    std::vector<std::string> rows_;
};

/** One workload's results under all four schedulers. */
struct PolicyComparison
{
    double conventional_seconds = 0.0;

    double offline_seconds = 0.0;
    int offline_mtl = 0;

    double dynamic_seconds = 0.0;
    int dynamic_final_mtl = 0;
    double dynamic_probe_fraction = 0.0;
    long dynamic_selections = 0;

    double online_seconds = 0.0;
    int online_final_mtl = 0;
    double online_probe_fraction = 0.0;

    double offlineSpeedup() const
    {
        return conventional_seconds / offline_seconds;
    }
    double dynamicSpeedup() const
    {
        return conventional_seconds / dynamic_seconds;
    }
    double onlineSpeedup() const
    {
        return conventional_seconds / online_seconds;
    }
};

/**
 * Run `graph` under all four schedulers on fresh machines built from
 * `config`. `w_dynamic` / `w_online` are the monitoring windows (the
 * paper reports each policy at its best W).
 */
inline PolicyComparison
comparePolicies(const cpu::MachineConfig &config,
                const stream::TaskGraph &graph, int w_dynamic,
                int w_online)
{
    PolicyComparison cmp;
    const int n = config.contexts();

    core::ConventionalPolicy conventional(n);
    cmp.conventional_seconds =
        simrt::runOnce(config, graph, conventional).seconds;

    const auto offline = simrt::offlineExhaustiveSearch(config, graph);
    cmp.offline_seconds = offline.best_seconds;
    cmp.offline_mtl = offline.best_mtl;

    core::DynamicThrottlePolicy dynamic(n, w_dynamic);
    const auto dyn = simrt::runOnce(config, graph, dynamic);
    cmp.dynamic_seconds = dyn.seconds;
    cmp.dynamic_final_mtl =
        dyn.mtl_trace.empty() ? n : dyn.mtl_trace.back().second;
    cmp.dynamic_probe_fraction = dyn.monitor_overhead;
    cmp.dynamic_selections = dyn.policy_stats.selections;

    core::OnlineExhaustivePolicy online(n, w_online);
    const auto onl = simrt::runOnce(config, graph, online);
    cmp.online_seconds = onl.seconds;
    cmp.online_final_mtl =
        onl.mtl_trace.empty() ? n : onl.mtl_trace.back().second;
    cmp.online_probe_fraction = onl.monitor_overhead;

    return cmp;
}

/** Append one PolicyComparison to `out` as a labelled result row. */
inline void
addComparisonRow(BenchJson &out, const std::string &label,
                 const PolicyComparison &cmp)
{
    out.beginRow();
    out.value("workload", label);
    out.value("conventional_s", cmp.conventional_seconds);
    out.value("offline_s", cmp.offline_seconds);
    out.value("offline_mtl", cmp.offline_mtl);
    out.value("offline_speedup", cmp.offlineSpeedup());
    out.value("dynamic_s", cmp.dynamic_seconds);
    out.value("dynamic_final_mtl", cmp.dynamic_final_mtl);
    out.value("dynamic_probe_fraction", cmp.dynamic_probe_fraction);
    out.value("dynamic_speedup", cmp.dynamicSpeedup());
    out.value("online_s", cmp.online_seconds);
    out.value("online_final_mtl", cmp.online_final_mtl);
    out.value("online_probe_fraction", cmp.online_probe_fraction);
    out.value("online_speedup", cmp.onlineSpeedup());
}

} // namespace tt::bench

#endif // TT_BENCH_BENCH_COMMON_HH
