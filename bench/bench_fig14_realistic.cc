/**
 * @file
 * Figure 14 regenerator: speedup of the realistic workloads (dft,
 * streamcluster d128, SIFT) on the 1-DIMM quad-core machine under
 * Offline Exhaustive Search, Dynamic Throttling and Online
 * Exhaustive Search, with the selected MTL per bar, plus the
 * Sec. VI-B monitoring-overhead comparison.
 *
 * Paper reference points: dynamic throttling gives ~12% geometric-
 * mean speedup, up to ~20% (21.29%) for streamcluster; dft converges
 * to D-MTL=1; streamcluster selects between 1 and 2; dynamic beats
 * online-exhaustive by ~5% on average; monitoring overhead is ~0.04%
 * (dynamic) vs ~4.87% (online) of execution time for streamcluster.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "util/stats.hh"
#include "util/table.hh"
#include "workloads/dft.hh"
#include "workloads/sift.hh"
#include "workloads/streamcluster.hh"

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("fig14_realistic");
    if (!bench_json.parseArgs(argc, argv))
        return 2;
    const auto machine = tt::cpu::MachineConfig::i7_860_1dimm();
    bench_json.config("machine", "1dimm");
    bench_json.config("threads", machine.contexts());

    struct Entry
    {
        std::string name;
        tt::stream::TaskGraph graph;
        int w_dynamic; // best W per Sec. VI-C
    };
    std::vector<Entry> entries;
    entries.push_back({"dft", tt::workloads::dftSim(machine), 8});
    entries.push_back(
        {"SC_d128", tt::workloads::streamclusterSim(machine, 128), 16});
    entries.push_back({"SIFT", tt::workloads::siftSim(machine), 16});

    std::printf("=== Figure 14: realistic workloads, 4 threads, "
                "1-DIMM ===\n\n");
    tt::TablePrinter table(
        {"workload", "offline(speedup,MTL)", "dynamic(speedup,MTL)",
         "online(speedup,MTL)", "probe% dyn", "probe% online"});

    std::vector<double> dynamic_speedups;
    std::vector<double> online_speedups;
    for (const auto &entry : entries) {
        const auto cmp = tt::bench::comparePolicies(
            machine, entry.graph, entry.w_dynamic, entry.w_dynamic);
        dynamic_speedups.push_back(cmp.dynamicSpeedup());
        online_speedups.push_back(cmp.onlineSpeedup());
        tt::bench::addComparisonRow(bench_json, entry.name, cmp);
        table.addRow(
            {entry.name,
             tt::TablePrinter::num(cmp.offlineSpeedup(), 3) + "  (" +
                 std::to_string(cmp.offline_mtl) + ")",
             tt::TablePrinter::num(cmp.dynamicSpeedup(), 3) + "  (" +
                 std::to_string(cmp.dynamic_final_mtl) + ")",
             tt::TablePrinter::num(cmp.onlineSpeedup(), 3) + "  (" +
                 std::to_string(cmp.online_final_mtl) + ")",
             tt::TablePrinter::pct(cmp.dynamic_probe_fraction),
             tt::TablePrinter::pct(cmp.online_probe_fraction)});
    }
    table.print(std::cout);

    std::printf("\ngeomean dynamic-throttling speedup: %.3fx "
                "(paper: ~1.12x)\n",
                tt::geometricMean(dynamic_speedups));
    std::printf("geomean online-exhaustive speedup:  %.3fx "
                "(paper: dynamic wins by ~5%%)\n",
                tt::geometricMean(online_speedups));
    std::printf("\nprobe%% = fraction of task pairs executed while "
                "monitoring candidate MTLs\n(the paper's overhead "
                "metric; dynamic must be far below online)\n");
    return bench_json.write() ? 0 : 1;
}
