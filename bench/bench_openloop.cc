/**
 * @file
 * Open-loop overload bench: response time and shedding vs offered
 * load (robustness extension; see docs/robustness.md).
 *
 * Sweeps a seeded Poisson arrival stream over a range of offered
 * rates on the 1-DIMM machine -- from well under capacity to ~2x
 * past it -- injecting the synthetic workload's job pairs through
 * bounded admission into the simulated runtime, under the
 * conventional (unthrottled) scheduler and the SLO-aware dynamic
 * throttler. Reports per rate: admitted/shed/deadline-missed counts,
 * p50/p95/p99 response time, SLO attainment and drain makespan. The
 * knee -- the lowest rate where attainment degrades -- is the
 * capacity estimate bench consumers should provision below.
 *
 * Env knobs: TT_OPENLOOP_PAIRS (jobs per run, default 128),
 * TT_OPENLOOP_SLO_US (relative deadline, default 2000),
 * TT_OPENLOOP_QUEUE_CAP (default 16). The admission predictor uses
 * the 1-DIMM synthetic queue fit (T_ml 140 us, T_ql 40 us; see the
 * worked example in docs/robustness.md).
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_common.hh"
#include "load/arrival.hh"
#include "obs/analyzer.hh"
#include "util/table.hh"
#include "workloads/synthetic.hh"

namespace {

long
envLong(const char *name, long fallback)
{
    const char *value = std::getenv(name);
    return value != nullptr ? std::atol(value) : fallback;
}

struct PointResult
{
    tt::exec::RunResult run;
    tt::obs::DistSummary response;
};

PointResult
runPoint(const tt::cpu::MachineConfig &machine,
         const tt::stream::TaskGraph &graph, const char *policy_name,
         double rate, double slo_seconds, int queue_cap)
{
    tt::load::ArrivalConfig arrivals;
    arrivals.rate = rate;
    arrivals.slo_seconds = slo_seconds;
    const tt::load::ArrivalPlan plan =
        tt::load::buildArrivalPlan(arrivals, graph.pairCount());

    tt::exec::EngineOptions options;
    options.arrival_plan = &plan;
    options.admission.queue_cap = queue_cap;
    options.admission.service_tml = 140e-6;
    options.admission.service_tql = 40e-6;

    const int n = machine.contexts();
    tt::core::ConventionalPolicy conventional(n);
    tt::core::DynamicThrottlePolicy dynamic(n, 16);
    dynamic.setSloAware();
    tt::core::SchedulingPolicy &policy =
        std::string(policy_name) == "dynamic"
            ? static_cast<tt::core::SchedulingPolicy &>(dynamic)
            : conventional;

    tt::cpu::SimMachine sim_machine(machine);
    tt::simrt::SimRuntime runtime(sim_machine, graph, policy, options);
    PointResult out;
    out.run = runtime.run();
    out.response = tt::obs::summarize(out.run.response_seconds);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    tt::bench::BenchJson bench_json("openloop");
    if (!bench_json.parseArgs(argc, argv))
        return 2;

    const int pairs =
        static_cast<int>(envLong("TT_OPENLOOP_PAIRS", 128));
    const double slo_seconds =
        static_cast<double>(envLong("TT_OPENLOOP_SLO_US", 2000)) * 1e-6;
    const int queue_cap =
        static_cast<int>(envLong("TT_OPENLOOP_QUEUE_CAP", 16));
    const tt::cpu::MachineConfig machine =
        tt::cpu::MachineConfig::i7_860_1dimm();

    tt::workloads::SyntheticParams params;
    params.tm1_over_tc = 0.5;
    params.pairs = pairs;
    const tt::stream::TaskGraph graph =
        tt::workloads::buildSyntheticSim(machine, params);

    bench_json.config("pairs", pairs);
    bench_json.config("slo_us", slo_seconds * 1e6);
    bench_json.config("queue_cap", queue_cap);
    bench_json.config("machine", "1dimm");

    // Capacity of one synthetic pair is ~2.7k jobs/s on this machine
    // (4 contexts, ~365 us/pair); the sweep brackets it generously.
    static const double kRates[] = {2000,  5000,  8000,
                                    12000, 16000, 24000};
    static const char *kPolicies[] = {"conventional", "dynamic"};

    std::printf("=== open-loop overload: response and shedding vs "
                "offered load ===\n(%d jobs, SLO %.0f us, queue cap "
                "%d)\n\n",
                pairs, slo_seconds * 1e6, queue_cap);
    tt::TablePrinter table({"policy", "rate(/s)", "admitted", "shed",
                            "missed", "p50(us)", "p95(us)", "p99(us)",
                            "attain", "drain(ms)"});
    std::vector<std::string> knee_lines;
    for (const char *policy : kPolicies) {
        double knee = 0.0;
        for (const double rate : kRates) {
            const PointResult point = runPoint(
                machine, graph, policy, rate, slo_seconds, queue_cap);
            const auto &r = point.run;
            if (r.failed) {
                std::fprintf(stderr, "run failed: %s\n",
                             r.failure_reason.c_str());
                return 1;
            }
            if (knee == 0.0 && r.slo_attainment < 0.95)
                knee = rate;
            table.addRow(
                {policy, tt::TablePrinter::num(rate, 0),
                 std::to_string(r.jobs_admitted),
                 std::to_string(r.jobs_shed),
                 std::to_string(r.jobs_deadline_missed),
                 tt::TablePrinter::num(point.response.p50 * 1e6, 1),
                 tt::TablePrinter::num(point.response.p95 * 1e6, 1),
                 tt::TablePrinter::num(point.response.p99 * 1e6, 1),
                 tt::TablePrinter::pct(r.slo_attainment),
                 tt::TablePrinter::num(r.seconds * 1e3, 3)});
            bench_json.beginRow();
            bench_json.value("policy", policy);
            bench_json.value("rate", rate);
            bench_json.value("offered", r.jobs_offered);
            bench_json.value("admitted", r.jobs_admitted);
            bench_json.value("delayed", r.jobs_delayed);
            bench_json.value("shed", r.jobs_shed);
            bench_json.value("missed", r.jobs_deadline_missed);
            bench_json.value("p50_s", point.response.p50);
            bench_json.value("p95_s", point.response.p95);
            bench_json.value("p99_s", point.response.p99);
            bench_json.value("attainment", r.slo_attainment);
            bench_json.value("drain_s", r.seconds);
        }
        knee_lines.push_back(
            std::string(policy) + " knee: " +
            (knee > 0.0 ? tt::TablePrinter::num(knee, 0) + " jobs/s"
                        : std::string("not reached")));
    }
    table.print(std::cout);
    for (const std::string &line : knee_lines)
        std::printf("%s\n", line.c_str());
    return bench_json.write() ? 0 : 1;
}
