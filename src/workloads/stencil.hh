/**
 * @file
 * Extra workload (beyond the paper's three): an iterative 5-point
 * Jacobi stencil in stream style.
 *
 * Each sweep is one barrier-separated phase; within a sweep the grid
 * is split into row blocks, the memory task gathers a block plus its
 * halo rows from the source grid, and the compute task writes the
 * averaged block into the destination grid (ping-pong per sweep).
 * The kernel does ~4 flops per 4-byte point, i.e. it is memory-heavy
 * -- a useful contrast to the calibrated paper workloads and a
 * natural MTL-throttling beneficiary.
 */

#ifndef TT_WORKLOADS_STENCIL_HH
#define TT_WORKLOADS_STENCIL_HH

#include <memory>
#include <vector>

#include "cpu/machine_config.hh"
#include "stream/task_graph.hh"
#include "workloads/kernels/image.hh"

namespace tt::workloads {

/** Parameters of the stencil workload. */
struct StencilParams
{
    std::size_t width = 512;
    std::size_t height = 512;
    int sweeps = 4;       ///< Jacobi iterations (phases)
    int blocks = 32;      ///< row blocks per sweep (pairs)
};

/** Sim-mode graph (descriptors derived from the data layout). */
stream::TaskGraph stencilSim(const cpu::MachineConfig &config,
                             const StencilParams &params);

/** Host-mode instance with real Jacobi kernels. */
struct StencilHost
{
    stream::TaskGraph graph;
    std::shared_ptr<Image> front; ///< initial grid (sweep 0 source)
    std::shared_ptr<Image> back;  ///< ping-pong partner
    StencilParams params;

    /** Grid holding the final sweep's output. */
    std::shared_ptr<Image>
    result() const
    {
        return params.sweeps % 2 == 1 ? back : front;
    }
};

StencilHost buildStencilHost(const StencilParams &params);

/** Reference: `sweeps` full-grid Jacobi iterations of `input`. */
Image jacobiReference(const Image &input, int sweeps);

} // namespace tt::workloads

#endif // TT_WORKLOADS_STENCIL_HH
