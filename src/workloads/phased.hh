/**
 * @file
 * Builder for multi-phase simulated workloads calibrated to target
 * memory-to-compute ratios (the common machinery behind the dft,
 * streamcluster and SIFT sim graphs).
 */

#ifndef TT_WORKLOADS_PHASED_HH
#define TT_WORKLOADS_PHASED_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/machine_config.hh"
#include "stream/task_graph.hh"

namespace tt::workloads {

/** One phase of a calibrated workload. */
struct PhaseSpec
{
    std::string name;
    double tm1_over_tc = 0.5;  ///< target T_m1/T_c for the phase
    std::uint64_t footprint_bytes = 256 * 1024;
    double write_fraction = 0.25; ///< scatter share of the stream
    int pairs = 64;
};

/**
 * Build a sim-mode TaskGraph whose phases hit the given ratios on
 * `config` (compute cycle counts calibrated per phase).
 */
stream::TaskGraph buildPhasedSim(const cpu::MachineConfig &config,
                                 const std::vector<PhaseSpec> &phases);

} // namespace tt::workloads

#endif // TT_WORKLOADS_PHASED_HH
