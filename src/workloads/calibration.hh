/**
 * @file
 * Calibration of simulated task sizes.
 *
 * The paper sizes its synthetic workloads by *measuring* on the
 * target machine: the `count` knob of the compute kernel is adjusted
 * until T_m1/T_c hits the desired ratio (Sec. V). We do the same on
 * the simulated machine: memSecondsPerByte() measures the
 * contention-free (MTL=1) streaming cost of a memory task of a given
 * size, and computeCyclesForRatio() converts a target memory-to-
 * compute ratio into the compute-task cycle count that achieves it.
 *
 * Results are memoised per (machine, task shape) because the figure
 * sweeps re-use the same calibration hundreds of times.
 */

#ifndef TT_WORKLOADS_CALIBRATION_HH
#define TT_WORKLOADS_CALIBRATION_HH

#include <cstdint>

#include "cpu/machine_config.hh"

namespace tt::workloads {

/**
 * Contention-free seconds one memory task of `bytes` takes per byte
 * on `config` (measured at MTL=1 with idle siblings).
 */
double memSecondsPerByte(const cpu::MachineConfig &config,
                         std::uint64_t bytes, double write_fraction);

/**
 * Compute-task cycle count such that T_m1/T_c == ratio for a memory
 * task of `bytes` on `config`.
 */
std::uint64_t computeCyclesForRatio(const cpu::MachineConfig &config,
                                    std::uint64_t bytes,
                                    double write_fraction, double ratio);

} // namespace tt::workloads

#endif // TT_WORKLOADS_CALIBRATION_HH
