/**
 * @file
 * The streamcluster workload: PARSEC's online k-median kernel in
 * stream style (paper Sec. V, Table II). The input array dimension
 * (128/72/48/36/32/20) changes the memory-to-compute ratio, which is
 * what Fig. 17 exploits to show MTL adaptation across input sets.
 *
 * Structure: points are processed in blocks; each memory task
 * gathers one block of d-dimensional points, and its compute task
 * assigns every point in the block to its nearest center and
 * accumulates the clustering cost (the pgain hot loop).
 */

#ifndef TT_WORKLOADS_STREAMCLUSTER_HH
#define TT_WORKLOADS_STREAMCLUSTER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/machine_config.hh"
#include "stream/task_graph.hh"
#include "workloads/phased.hh"

namespace tt::workloads {

/** Sim-mode phase list for one input dimension (Table II ratio). */
std::vector<PhaseSpec> streamclusterPhases(int dim);

/** Sim-mode graph for input dimension `dim`, calibrated on `config`. */
stream::TaskGraph streamclusterSim(const cpu::MachineConfig &config,
                                   int dim);

/** Host-mode streamcluster instance with real k-median kernels. */
struct StreamclusterHost
{
    stream::TaskGraph graph;

    std::shared_ptr<std::vector<float>> points;   ///< n x dim
    std::shared_ptr<std::vector<float>> centers;  ///< k x dim
    std::shared_ptr<std::vector<std::uint32_t>> assignment; ///< n
    /** Per-pair block cost, filled by the compute tasks. */
    std::shared_ptr<std::vector<double>> block_costs;

    std::size_t dim = 0;
    std::size_t centers_k = 0;
    std::size_t points_per_block = 0;
    int pairs = 0;

    /** Total clustering cost after a run. */
    double totalCost() const;
};

/** Build the host workload. */
StreamclusterHost buildStreamclusterHost(int dim = 32, int pairs = 64,
                                         std::size_t points_per_block = 64,
                                         std::size_t centers_k = 10,
                                         std::uint64_t seed = 42);

} // namespace tt::workloads

#endif // TT_WORKLOADS_STREAMCLUSTER_HH
