/**
 * @file
 * The paper's synthetic micro-benchmark (Fig. 12).
 *
 *   MemoryTasks:  for (i = start; i < end; i++) { A[i] = Const; }
 *   ComputeTasks: for (k = 0; k < count; k++)
 *                     for (i = start; i < end; i++) { A[i] += k; }
 *
 * Each memory task initialises (stores) a slice of the array; the
 * compute task then iterates `count` times over the slice, which the
 * memory task left resident in the LLC. Varying `count` sweeps the
 * memory-to-compute ratio T_m1/T_c (the paper uses 0.01..4.00);
 * varying the slice size sweeps the per-task footprint (0.5/1/2 MB
 * in Fig. 13).
 *
 * Both execution modes are populated: host closures run the actual
 * loops; sim descriptors carry the slice size and a calibrated cycle
 * count hitting the requested ratio on the target MachineConfig.
 */

#ifndef TT_WORKLOADS_SYNTHETIC_HH
#define TT_WORKLOADS_SYNTHETIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/machine_config.hh"
#include "stream/task_graph.hh"

namespace tt::workloads {

/** Parameters of one synthetic workload instance. */
struct SyntheticParams
{
    /** Target memory-to-compute ratio T_m1/T_c. */
    double tm1_over_tc = 0.5;

    /** Slice bytes per memory task (Fig. 13: 0.5/1/2 MB). */
    std::uint64_t footprint_bytes = 512 * 1024;

    /** Number of memory-compute pairs (the model's t). */
    int pairs = 32;
};

/**
 * Synthetic workload for the simulator: descriptors only, with the
 * compute cycle count calibrated against `config`.
 */
stream::TaskGraph buildSyntheticSim(const cpu::MachineConfig &config,
                                    const SyntheticParams &params);

/**
 * Synthetic workload with real host loops (for the thread runtime).
 * `count` is the compute-loop repetition knob of Fig. 12; the
 * backing arrays are owned by the returned holder and must outlive
 * any run of the graph.
 */
struct HostSynthetic
{
    stream::TaskGraph graph;
    std::shared_ptr<std::vector<std::uint64_t>> storage;
};

HostSynthetic buildSyntheticHost(const SyntheticParams &params,
                                 int count);

} // namespace tt::workloads

#endif // TT_WORKLOADS_SYNTHETIC_HH
