#include "workloads/kernels/image.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace tt::workloads {

std::vector<float>
gaussianKernel(double sigma, int radius)
{
    tt_assert(sigma > 0.0, "sigma must be positive");
    tt_assert(radius >= 0, "radius must be non-negative");
    std::vector<float> taps(static_cast<std::size_t>(2 * radius + 1));
    double sum = 0.0;
    for (int i = -radius; i <= radius; ++i) {
        const double value =
            std::exp(-(static_cast<double>(i) * i) /
                     (2.0 * sigma * sigma));
        taps[static_cast<std::size_t>(i + radius)] =
            static_cast<float>(value);
        sum += value;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (float &tap : taps)
        tap *= inv;
    return taps;
}

Image
upsample2x(const Image &src)
{
    tt_assert(src.width > 0 && src.height > 0, "empty source image");
    Image dst(src.width * 2, src.height * 2);
    for (std::size_t y = 0; y < dst.height; ++y) {
        const double sy = static_cast<double>(y) / 2.0;
        const std::size_t y0 =
            std::min(static_cast<std::size_t>(sy), src.height - 1);
        const std::size_t y1 = std::min(y0 + 1, src.height - 1);
        const float fy = static_cast<float>(sy - static_cast<double>(y0));
        for (std::size_t x = 0; x < dst.width; ++x) {
            const double sx = static_cast<double>(x) / 2.0;
            const std::size_t x0 =
                std::min(static_cast<std::size_t>(sx), src.width - 1);
            const std::size_t x1 = std::min(x0 + 1, src.width - 1);
            const float fx =
                static_cast<float>(sx - static_cast<double>(x0));
            const float top = src.at(x0, y0) * (1.0f - fx) +
                              src.at(x1, y0) * fx;
            const float bottom = src.at(x0, y1) * (1.0f - fx) +
                                 src.at(x1, y1) * fx;
            dst.at(x, y) = top * (1.0f - fy) + bottom * fy;
        }
    }
    return dst;
}

namespace {

std::size_t
clampIndex(std::ptrdiff_t i, std::size_t bound)
{
    if (i < 0)
        return 0;
    if (static_cast<std::size_t>(i) >= bound)
        return bound - 1;
    return static_cast<std::size_t>(i);
}

} // namespace

void
convolveRowsRange(const Image &src, Image &dst,
                  const std::vector<float> &taps, std::size_t row_begin,
                  std::size_t row_end)
{
    tt_assert(src.width == dst.width && src.height == dst.height,
              "image dimension mismatch");
    tt_assert(taps.size() % 2 == 1, "kernel length must be odd");
    tt_assert(row_end <= src.height, "row range out of bounds");
    const int radius = static_cast<int>(taps.size() / 2);
    for (std::size_t y = row_begin; y < row_end; ++y) {
        for (std::size_t x = 0; x < src.width; ++x) {
            float acc = 0.0f;
            for (int t = -radius; t <= radius; ++t) {
                const std::size_t sx = clampIndex(
                    static_cast<std::ptrdiff_t>(x) + t, src.width);
                acc += src.at(sx, y) *
                       taps[static_cast<std::size_t>(t + radius)];
            }
            dst.at(x, y) = acc;
        }
    }
}

void
convolveColsRange(const Image &src, Image &dst,
                  const std::vector<float> &taps, std::size_t row_begin,
                  std::size_t row_end)
{
    tt_assert(src.width == dst.width && src.height == dst.height,
              "image dimension mismatch");
    tt_assert(taps.size() % 2 == 1, "kernel length must be odd");
    tt_assert(row_end <= src.height, "row range out of bounds");
    const int radius = static_cast<int>(taps.size() / 2);
    for (std::size_t y = row_begin; y < row_end; ++y) {
        for (std::size_t x = 0; x < src.width; ++x) {
            float acc = 0.0f;
            for (int t = -radius; t <= radius; ++t) {
                const std::size_t sy = clampIndex(
                    static_cast<std::ptrdiff_t>(y) + t, src.height);
                acc += src.at(x, sy) *
                       taps[static_cast<std::size_t>(t + radius)];
            }
            dst.at(x, y) = acc;
        }
    }
}

Image
convolveSeparable(const Image &src, const std::vector<float> &taps)
{
    Image tmp(src.width, src.height);
    convolveRowsRange(src, tmp, taps, 0, src.height);
    Image dst(src.width, src.height);
    convolveColsRange(tmp, dst, taps, 0, src.height);
    return dst;
}

Image
differenceOfGaussians(const Image &a, const Image &b)
{
    tt_assert(a.width == b.width && a.height == b.height,
              "image dimension mismatch");
    Image dst(a.width, a.height);
    for (std::size_t i = 0; i < dst.pixels.size(); ++i)
        dst.pixels[i] = b.pixels[i] - a.pixels[i];
    return dst;
}

Image
downsample2x(const Image &src)
{
    tt_assert(src.width >= 2 && src.height >= 2,
              "image too small to decimate");
    Image dst(src.width / 2, src.height / 2);
    for (std::size_t y = 0; y < dst.height; ++y)
        for (std::size_t x = 0; x < dst.width; ++x)
            dst.at(x, y) = src.at(x * 2, y * 2);
    return dst;
}

Image
makeTestImage(std::size_t width, std::size_t height)
{
    Image img(width, height);
    for (std::size_t y = 0; y < height; ++y)
        for (std::size_t x = 0; x < width; ++x)
            img.at(x, y) =
                std::sin(0.05f * static_cast<float>(x)) +
                std::cos(0.07f * static_cast<float>(y)) +
                0.001f * static_cast<float>(x + y);
    return img;
}

} // namespace tt::workloads
