#include "workloads/kernels/fft.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"

namespace tt::workloads {

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

void
fftInPlace(Complex *data, std::size_t n, bool inverse)
{
    tt_assert(isPowerOfTwo(n), "FFT length must be a power of two");

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    const float sign = inverse ? 1.0f : -1.0f;
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const float angle =
            sign * 2.0f * std::numbers::pi_v<float> /
            static_cast<float>(len);
        const Complex wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0f, 0.0f);
            for (std::size_t j = 0; j < len / 2; ++j) {
                const Complex u = data[i + j];
                const Complex v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const float inv_n = 1.0f / static_cast<float>(n);
        for (std::size_t i = 0; i < n; ++i)
            data[i] *= inv_n;
    }
}

std::vector<Complex>
naiveDft(const std::vector<Complex> &input)
{
    const std::size_t n = input.size();
    std::vector<Complex> output(n);
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc(0.0f, 0.0f);
        for (std::size_t t = 0; t < n; ++t) {
            const float angle = -2.0f * std::numbers::pi_v<float> *
                                static_cast<float>(k * t) /
                                static_cast<float>(n);
            acc += input[t] * Complex(std::cos(angle), std::sin(angle));
        }
        output[k] = acc;
    }
    return output;
}

float
maxAbsError(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    tt_assert(a.size() == b.size(), "signal length mismatch");
    float worst = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

} // namespace tt::workloads
