/**
 * @file
 * Discrete Fourier transform kernels backing the dft workload
 * (the OpenCV dft kernel rewritten in stream style, paper Sec. V).
 *
 * fftInPlace() is an iterative radix-2 Cooley-Tukey transform;
 * naiveDft() is the O(n^2) reference used by the unit tests.
 */

#ifndef TT_WORKLOADS_KERNELS_FFT_HH
#define TT_WORKLOADS_KERNELS_FFT_HH

#include <complex>
#include <cstddef>
#include <vector>

namespace tt::workloads {

using Complex = std::complex<float>;

/** True when n is a power of two (and nonzero). */
bool isPowerOfTwo(std::size_t n);

/**
 * In-place iterative radix-2 FFT of `n` points; n must be a power of
 * two. Forward transform when `inverse` is false; the inverse
 * transform includes the 1/n normalisation.
 */
void fftInPlace(Complex *data, std::size_t n, bool inverse = false);

/** O(n^2) reference DFT (forward). */
std::vector<Complex> naiveDft(const std::vector<Complex> &input);

/** Maximum absolute componentwise difference of two signals. */
float maxAbsError(const std::vector<Complex> &a,
                  const std::vector<Complex> &b);

} // namespace tt::workloads

#endif // TT_WORKLOADS_KERNELS_FFT_HH
