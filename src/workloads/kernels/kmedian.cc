#include "workloads/kernels/kmedian.hh"

#include <limits>

#include "util/logging.hh"
#include "util/random.hh"

namespace tt::workloads {

float
squaredDistance(const float *a, const float *b, std::size_t dim)
{
    float acc = 0.0f;
    for (std::size_t i = 0; i < dim; ++i) {
        const float diff = a[i] - b[i];
        acc += diff * diff;
    }
    return acc;
}

std::size_t
nearestCenter(const float *point, const float *centers, std::size_t k,
              std::size_t dim, float &best_cost)
{
    tt_assert(k > 0, "need at least one center");
    std::size_t best = 0;
    best_cost = std::numeric_limits<float>::max();
    for (std::size_t c = 0; c < k; ++c) {
        const float cost = squaredDistance(point, centers + c * dim, dim);
        if (cost < best_cost) {
            best_cost = cost;
            best = c;
        }
    }
    return best;
}

double
assignBlock(const float *points, std::size_t n, const float *centers,
            std::size_t k, std::size_t dim, std::uint32_t *assignment)
{
    double total = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
        float cost = 0.0f;
        assignment[p] = static_cast<std::uint32_t>(
            nearestCenter(points + p * dim, centers, k, dim, cost));
        total += cost;
    }
    return total;
}

std::vector<float>
refineCenters(const float *points, std::size_t n,
              const std::uint32_t *assignment, const float *centers,
              std::size_t k, std::size_t dim)
{
    std::vector<float> sums(k * dim, 0.0f);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t p = 0; p < n; ++p) {
        const std::uint32_t c = assignment[p];
        tt_assert(c < k, "assignment index out of range");
        ++counts[c];
        for (std::size_t i = 0; i < dim; ++i)
            sums[c * dim + i] += points[p * dim + i];
    }
    std::vector<float> fresh(k * dim);
    for (std::size_t c = 0; c < k; ++c) {
        if (counts[c] == 0) {
            for (std::size_t i = 0; i < dim; ++i)
                fresh[c * dim + i] = centers[c * dim + i];
        } else {
            const float inv = 1.0f / static_cast<float>(counts[c]);
            for (std::size_t i = 0; i < dim; ++i)
                fresh[c * dim + i] = sums[c * dim + i] * inv;
        }
    }
    return fresh;
}

std::vector<float>
makeClusteredPoints(std::size_t n, std::size_t k, std::size_t dim,
                    std::uint64_t seed)
{
    tt_assert(k > 0 && dim > 0, "degenerate point cloud");
    Rng rng(seed);
    std::vector<float> seeds(k * dim);
    for (float &coord : seeds)
        coord = static_cast<float>(rng.nextDouble(-10.0, 10.0));

    std::vector<float> points(n * dim);
    for (std::size_t p = 0; p < n; ++p) {
        const std::size_t c = p % k;
        for (std::size_t i = 0; i < dim; ++i) {
            points[p * dim + i] =
                seeds[c * dim + i] +
                static_cast<float>(rng.nextGaussian(0.0, 0.5));
        }
    }
    return points;
}

} // namespace tt::workloads
