/**
 * @file
 * Online k-median kernels backing the streamcluster workload (the
 * PARSEC streamcluster hot loop rewritten in stream style).
 *
 * streamcluster's dominant cost is pgain(): for every point, the
 * squared distance to candidate centers. The stream rewrite gathers
 * blocks of d-dimensional points into the LLC and runs the distance/
 * assignment kernel over each block.
 */

#ifndef TT_WORKLOADS_KERNELS_KMEDIAN_HH
#define TT_WORKLOADS_KERNELS_KMEDIAN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tt::workloads {

/** Squared Euclidean distance between two d-dimensional points. */
float squaredDistance(const float *a, const float *b, std::size_t dim);

/**
 * Index of the nearest center to `point` among `centers` (row-major
 * k x dim), with the squared distance returned through `best_cost`.
 */
std::size_t nearestCenter(const float *point, const float *centers,
                          std::size_t k, std::size_t dim,
                          float &best_cost);

/**
 * Assign every point of a block (row-major n x dim) to its nearest
 * center; writes assignments and returns the block's total cost.
 */
double assignBlock(const float *points, std::size_t n,
                   const float *centers, std::size_t k, std::size_t dim,
                   std::uint32_t *assignment);

/**
 * One Lloyd-style refinement: recompute each center as the mean of
 * its assigned points (k-median approximated by k-means update, as
 * streamcluster's local search does in spirit). Returns the new
 * centers; empty clusters keep their previous center.
 */
std::vector<float> refineCenters(const float *points, std::size_t n,
                                 const std::uint32_t *assignment,
                                 const float *centers, std::size_t k,
                                 std::size_t dim);

/** Deterministic synthetic point cloud around k seeds. */
std::vector<float> makeClusteredPoints(std::size_t n, std::size_t k,
                                       std::size_t dim,
                                       std::uint64_t seed);

} // namespace tt::workloads

#endif // TT_WORKLOADS_KERNELS_KMEDIAN_HH
