/**
 * @file
 * Image-processing kernels backing the SIFT workload (SIFT++'s
 * parallel functions, paper Table III): bilinear up-sampling
 * (COPYUP), separable Gaussian convolution (ECONVOLVE family) and
 * difference of Gaussians (DOG).
 */

#ifndef TT_WORKLOADS_KERNELS_IMAGE_HH
#define TT_WORKLOADS_KERNELS_IMAGE_HH

#include <cstddef>
#include <vector>

namespace tt::workloads {

/** Row-major single-channel float image. */
struct Image
{
    std::size_t width = 0;
    std::size_t height = 0;
    std::vector<float> pixels;

    Image() = default;
    Image(std::size_t w, std::size_t h)
        : width(w), height(h), pixels(w * h, 0.0f)
    {
    }

    float &at(std::size_t x, std::size_t y) { return pixels[y * width + x]; }
    float at(std::size_t x, std::size_t y) const
    {
        return pixels[y * width + x];
    }
};

/** Normalised 1-D Gaussian taps of odd length 2*radius+1. */
std::vector<float> gaussianKernel(double sigma, int radius);

/** Bilinear 2x up-sampling (SIFT's COPYUP). */
Image upsample2x(const Image &src);

/**
 * Horizontal convolution of rows [row_begin, row_end) with clamped
 * borders; dst must match src dimensions.
 */
void convolveRowsRange(const Image &src, Image &dst,
                       const std::vector<float> &taps,
                       std::size_t row_begin, std::size_t row_end);

/** Vertical convolution over the same row range. */
void convolveColsRange(const Image &src, Image &dst,
                       const std::vector<float> &taps,
                       std::size_t row_begin, std::size_t row_end);

/** Full separable convolution (rows then columns). */
Image convolveSeparable(const Image &src, const std::vector<float> &taps);

/** Per-pixel difference b - a (SIFT's DOG). */
Image differenceOfGaussians(const Image &a, const Image &b);

/** 2:1 decimation (next pyramid octave). */
Image downsample2x(const Image &src);

/** Deterministic test image with smooth structure. */
Image makeTestImage(std::size_t width, std::size_t height);

} // namespace tt::workloads

#endif // TT_WORKLOADS_KERNELS_IMAGE_HH
