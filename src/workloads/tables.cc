#include "workloads/tables.hh"

#include "util/logging.hh"

namespace tt::workloads::tables {

double
streamclusterRatio(int dim)
{
    for (const StreamclusterEntry &entry : kStreamcluster)
        if (entry.dim == dim)
            return entry.ratio;
    tt_fatal("no Table II entry for streamcluster dimension ", dim,
             " (known: 128, 72, 48, 36, 32, 20)");
}

} // namespace tt::workloads::tables
