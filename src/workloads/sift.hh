/**
 * @file
 * The SIFT workload: the Gaussian scale-space front end of SIFT++
 * rewritten in stream style (paper Sec. V, Table III).
 *
 * SIFT is the paper's multi-phase showcase: its 14 parallel
 * functions (COPYUP, the ECONVOLVE family over shrinking octaves,
 * DOG) have memory-to-compute ratios from 7.8% to 70%, so the
 * dynamic mechanism must re-select the MTL as the program moves
 * between functions (Fig. 16).
 *
 * Host mode runs the real pipeline: bilinear 2x up-sampling,
 * separable Gaussian blurs at four octaves (with decimating
 * gathers between octaves) and a difference-of-Gaussians, each
 * parallelised over row blocks with halo-aware gather tasks.
 */

#ifndef TT_WORKLOADS_SIFT_HH
#define TT_WORKLOADS_SIFT_HH

#include <memory>
#include <vector>

#include "cpu/machine_config.hh"
#include "stream/task_graph.hh"
#include "workloads/kernels/image.hh"
#include "workloads/phased.hh"

namespace tt::workloads {

/** Sim-mode phase list: all 14 functions, Table III ratios. */
std::vector<PhaseSpec> siftPhases();

/** Sim-mode graph calibrated on `config`. */
stream::TaskGraph siftSim(const cpu::MachineConfig &config);

/** Host-mode SIFT pipeline with real image kernels. */
struct SiftHost
{
    stream::TaskGraph graph;

    std::shared_ptr<Image> base;     ///< input image
    std::shared_ptr<Image> up;       ///< COPYUP output (2x)
    std::shared_ptr<Image> g1;       ///< ECONVOLVE output (2x)
    std::shared_ptr<Image> g2;       ///< ECONVOLVE2 output (1x)
    std::vector<std::shared_ptr<Image>> o3; ///< ECONVOLVE3-0..4 (1/2x)
    std::vector<std::shared_ptr<Image>> o4; ///< ECONVOLVE4-0..4 (1/4x)
    std::shared_ptr<Image> dog;      ///< DOG output (2x)

    std::vector<float> taps; ///< shared Gaussian taps
};

/**
 * Build the host pipeline for a `width` x `height` input (both must
 * be multiples of 16 so every octave splits evenly into row blocks).
 */
SiftHost buildSiftHost(std::size_t width = 128, std::size_t height = 128);

} // namespace tt::workloads

#endif // TT_WORKLOADS_SIFT_HH
