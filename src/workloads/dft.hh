/**
 * @file
 * The dft workload: OpenCV's dft kernel rewritten in stream style
 * (paper Sec. V, Table II: T_m1/T_c = 12.77%, 96 parallel pairs).
 *
 * Structure: a 2-D transform's row pass. Each memory task gathers a
 * slice of matrix rows into a task-local buffer; the compute task
 * runs an in-place radix-2 FFT on every gathered row and scatters
 * the spectra to the output matrix.
 */

#ifndef TT_WORKLOADS_DFT_HH
#define TT_WORKLOADS_DFT_HH

#include <memory>
#include <vector>

#include "cpu/machine_config.hh"
#include "stream/task_graph.hh"
#include "workloads/kernels/fft.hh"
#include "workloads/phased.hh"

namespace tt::workloads {

/** Sim-mode phase list (one phase, paper-calibrated ratio). */
std::vector<PhaseSpec> dftPhases();

/** Sim-mode graph calibrated for `config`. */
stream::TaskGraph dftSim(const cpu::MachineConfig &config);

/** Host-mode dft instance with real FFT kernels. */
struct DftHost
{
    stream::TaskGraph graph;

    /** rows x cols row-major input spectra. */
    std::shared_ptr<std::vector<Complex>> input;
    /** transform output, same shape. */
    std::shared_ptr<std::vector<Complex>> output;

    std::size_t rows = 0;
    std::size_t cols = 0;
};

/**
 * Build the host dft: `pairs` tasks of `rows_per_task` rows of
 * `cols` complex samples each (cols must be a power of two).
 */
DftHost buildDftHost(int pairs = 96, std::size_t rows_per_task = 2,
                     std::size_t cols = 256);

} // namespace tt::workloads

#endif // TT_WORKLOADS_DFT_HH
