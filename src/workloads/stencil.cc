#include "workloads/stencil.hh"

#include <algorithm>

#include "stream/builder.hh"
#include "util/logging.hh"

namespace tt::workloads {

namespace {

/** One Jacobi row: clamped 4-neighbour average. */
void
jacobiRows(const Image &src, Image &dst, std::size_t row_begin,
           std::size_t row_end)
{
    const std::size_t w = src.width;
    const std::size_t h = src.height;
    for (std::size_t y = row_begin; y < row_end; ++y) {
        const std::size_t up = y > 0 ? y - 1 : 0;
        const std::size_t down = std::min(y + 1, h - 1);
        for (std::size_t x = 0; x < w; ++x) {
            const std::size_t left = x > 0 ? x - 1 : 0;
            const std::size_t right = std::min(x + 1, w - 1);
            dst.at(x, y) = 0.25f * (src.at(left, y) + src.at(right, y) +
                                    src.at(x, up) + src.at(x, down));
        }
    }
}

} // namespace

Image
jacobiReference(const Image &input, int sweeps)
{
    Image a = input;
    Image b(input.width, input.height);
    for (int s = 0; s < sweeps; ++s) {
        jacobiRows(a, b, 0, a.height);
        std::swap(a, b);
    }
    return a;
}

stream::TaskGraph
stencilSim(const cpu::MachineConfig &config, const StencilParams &params)
{
    (void)config; // descriptors derive from the layout, not the machine
    tt_assert(params.blocks > 0 && params.sweeps > 0,
              "degenerate stencil");
    const std::size_t rows_per_block =
        std::max<std::size_t>(1, params.height /
                                     static_cast<std::size_t>(
                                         params.blocks));
    const std::uint64_t block_bytes =
        params.width * (rows_per_block + 2) * sizeof(float);

    stream::StreamProgramBuilder builder;
    for (int sweep = 0; sweep < params.sweeps; ++sweep) {
        builder.beginPhase("jacobi-" + std::to_string(sweep));
        builder.addPairs(params.blocks, [&](int) {
            stream::PairSpec spec;
            // Gather block + halo, scatter the block.
            spec.bytes = block_bytes * 2;
            spec.write_fraction = 0.5;
            // ~4 adds + 1 multiply per point.
            spec.compute_cycles = static_cast<std::uint64_t>(
                params.width * rows_per_block * 5);
            spec.footprint_bytes = block_bytes;
            return spec;
        });
    }
    return std::move(builder).build();
}

StencilHost
buildStencilHost(const StencilParams &params)
{
    tt_assert(params.blocks > 0 && params.sweeps > 0,
              "degenerate stencil");
    tt_assert(params.height %
                      static_cast<std::size_t>(params.blocks) ==
                  0,
              "height must divide evenly into blocks");

    StencilHost host;
    host.params = params;
    host.front = std::make_shared<Image>(
        makeTestImage(params.width, params.height));
    host.back =
        std::make_shared<Image>(params.width, params.height);

    const std::size_t rows =
        params.height / static_cast<std::size_t>(params.blocks);

    stream::StreamProgramBuilder builder(/*uniform_pairs=*/false);
    for (int sweep = 0; sweep < params.sweeps; ++sweep) {
        builder.beginPhase("jacobi-" + std::to_string(sweep));
        auto src = (sweep % 2 == 0) ? host.front : host.back;
        auto dst = (sweep % 2 == 0) ? host.back : host.front;
        for (int b = 0; b < params.blocks; ++b) {
            const std::size_t begin = static_cast<std::size_t>(b) * rows;
            const std::size_t end = begin + rows;
            const std::size_t halo_begin = begin > 0 ? begin - 1 : 0;
            const std::size_t halo_end =
                std::min(params.height, end + 1);
            auto scratch = std::make_shared<Image>(
                params.width, halo_end - halo_begin);

            stream::PairSpec spec;
            spec.host_memory = [src, scratch, halo_begin] {
                // Gather block + halo into the task buffer.
                for (std::size_t j = 0; j < scratch->height; ++j)
                    for (std::size_t x = 0; x < scratch->width; ++x)
                        scratch->at(x, j) =
                            src->at(x, halo_begin + j);
            };
            spec.host_compute = [dst, scratch, begin, end, halo_begin,
                                 h = params.height] {
                // Compute on the gathered halo block; clamp at the
                // grid borders (which coincide with scratch borders
                // exactly when the halo was truncated there).
                const std::size_t local_h = scratch->height;
                for (std::size_t y = begin; y < end; ++y) {
                    const std::size_t ly = y - halo_begin;
                    const std::size_t lup = ly > 0 ? ly - 1 : 0;
                    const std::size_t ldown =
                        std::min(ly + 1, local_h - 1);
                    (void)h;
                    for (std::size_t x = 0; x < scratch->width; ++x) {
                        const std::size_t left = x > 0 ? x - 1 : 0;
                        const std::size_t right =
                            std::min(x + 1, scratch->width - 1);
                        dst->at(x, y) =
                            0.25f * (scratch->at(left, ly) +
                                     scratch->at(right, ly) +
                                     scratch->at(x, lup) +
                                     scratch->at(x, ldown));
                    }
                }
            };
            const std::uint64_t block_bytes =
                params.width * (rows + 2) * sizeof(float);
            spec.bytes = block_bytes * 2;
            spec.write_fraction = 0.5;
            spec.compute_cycles = static_cast<std::uint64_t>(
                params.width * rows * 5);
            spec.footprint_bytes = block_bytes;
            builder.addPair(std::move(spec));
        }
    }
    host.graph = std::move(builder).build();
    return host;
}

} // namespace tt::workloads
