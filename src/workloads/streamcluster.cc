#include "workloads/streamcluster.hh"

#include "stream/builder.hh"
#include "util/logging.hh"
#include "workloads/kernels/kmedian.hh"
#include "workloads/tables.hh"

namespace tt::workloads {

std::vector<PhaseSpec>
streamclusterPhases(int dim)
{
    PhaseSpec phase;
    phase.name = "streamcluster-d" + std::to_string(dim);
    phase.tm1_over_tc = tables::streamclusterRatio(dim);
    phase.footprint_bytes = 512 * 1024;
    // Point blocks are gathered; only the assignments scatter back.
    phase.write_fraction = 0.1;
    phase.pairs = 384;
    return {phase};
}

stream::TaskGraph
streamclusterSim(const cpu::MachineConfig &config, int dim)
{
    return buildPhasedSim(config, streamclusterPhases(dim));
}

double
StreamclusterHost::totalCost() const
{
    double total = 0.0;
    for (double cost : *block_costs)
        total += cost;
    return total;
}

StreamclusterHost
buildStreamclusterHost(int dim, int pairs, std::size_t points_per_block,
                       std::size_t centers_k, std::uint64_t seed)
{
    tt_assert(dim > 0, "dimension must be positive");
    tt_assert(pairs > 0, "need at least one pair");
    tt_assert(points_per_block > 0, "empty blocks");
    tt_assert(centers_k > 0, "need at least one center");

    StreamclusterHost host;
    host.dim = static_cast<std::size_t>(dim);
    host.centers_k = centers_k;
    host.points_per_block = points_per_block;
    host.pairs = pairs;

    const std::size_t total_points =
        static_cast<std::size_t>(pairs) * points_per_block;
    host.points = std::make_shared<std::vector<float>>(
        makeClusteredPoints(total_points, centers_k, host.dim, seed));

    // Initial centers: the first point of each of the k generator
    // clusters (deterministic and spread out).
    host.centers =
        std::make_shared<std::vector<float>>(centers_k * host.dim);
    for (std::size_t c = 0; c < centers_k; ++c)
        for (std::size_t i = 0; i < host.dim; ++i)
            (*host.centers)[c * host.dim + i] =
                (*host.points)[c * host.dim + i];

    host.assignment =
        std::make_shared<std::vector<std::uint32_t>>(total_points, 0);
    host.block_costs = std::make_shared<std::vector<double>>(
        static_cast<std::size_t>(pairs), 0.0);

    auto scratch =
        std::make_shared<std::vector<float>>(total_points * host.dim);

    const std::uint64_t block_bytes =
        points_per_block * host.dim * sizeof(float);

    stream::StreamProgramBuilder builder;
    builder.beginPhase("streamcluster-d" + std::to_string(dim));
    builder.addPairs(pairs, [&](int p) {
        const std::size_t begin = static_cast<std::size_t>(p) *
                                  points_per_block * host.dim;
        const std::size_t floats = points_per_block * host.dim;
        auto points = host.points;
        auto centers = host.centers;
        auto assignment = host.assignment;
        auto costs = host.block_costs;
        const std::size_t dim_z = host.dim;
        const std::size_t k_z = host.centers_k;
        const std::size_t n_block = points_per_block;

        stream::PairSpec spec;
        spec.host_memory = [points, scratch, begin, floats] {
            const float *src = points->data() + begin;
            float *dst = scratch->data() + begin;
            for (std::size_t i = 0; i < floats; ++i)
                dst[i] = src[i];
        };
        spec.host_compute = [scratch, centers, assignment, costs, begin,
                             n_block, dim_z, k_z, p] {
            const float *block = scratch->data() + begin;
            std::uint32_t *assign =
                assignment->data() + begin / dim_z;
            (*costs)[static_cast<std::size_t>(p)] = assignBlock(
                block, n_block, centers->data(), k_z, dim_z, assign);
        };
        spec.bytes = block_bytes;
        spec.write_fraction = 0.1;
        // ~dim multiply-adds per center per point.
        spec.compute_cycles = static_cast<std::uint64_t>(
            n_block * k_z * dim_z);
        spec.footprint_bytes = block_bytes;
        return spec;
    });
    host.graph = std::move(builder).build();
    return host;
}

} // namespace tt::workloads
