/**
 * @file
 * Measured memory-to-compute ratios from the paper (Tables II and
 * III), used to calibrate the simulated real-world workloads.
 *
 * The authors measured these T_m1/T_c values on their i7-860; we
 * cannot re-measure OpenCV/PARSEC/SIFT++ on that hardware, so the
 * simulated workloads size their compute tasks to hit the published
 * ratios (see DESIGN.md, substitution table). bench_table2_ratios
 * and bench_table3_sift_ratios then report paper-vs-measured.
 */

#ifndef TT_WORKLOADS_TABLES_HH
#define TT_WORKLOADS_TABLES_HH

#include <array>
#include <string_view>

namespace tt::workloads::tables {

/** Table II: dft kernel from OpenCV. */
inline constexpr double kDftRatio = 0.1277;

/** Table II: streamcluster instances by input array dimension. */
struct StreamclusterEntry
{
    int dim;
    double ratio;
};

inline constexpr std::array<StreamclusterEntry, 6> kStreamcluster{{
    {128, 0.3714}, // SC_d128 (native)
    {72, 0.4309},  // SC_d72
    {48, 0.2890},  // SC_d48
    {36, 0.5413},  // SC_d36
    {32, 0.2459},  // SC_d32
    {20, 0.4958},  // SC_d20
}};

/** Ratio for a given streamcluster input dimension. */
double streamclusterRatio(int dim);

/** Table III: SIFT parallel functions, in execution order. */
struct SiftEntry
{
    std::string_view name;
    double ratio;
};

inline constexpr std::array<SiftEntry, 14> kSift{{
    {"COPYUP", 0.2102},
    {"ECONVOLVE", 0.7004},
    {"ECONVOLVE2", 0.0783},
    {"ECONVOLVE3-0", 0.0845},
    {"ECONVOLVE3-1", 0.0845},
    {"ECONVOLVE3-2", 0.0832},
    {"ECONVOLVE3-3", 0.0827},
    {"ECONVOLVE3-4", 0.0815},
    {"ECONVOLVE4-0", 0.1187},
    {"ECONVOLVE4-1", 0.1166},
    {"ECONVOLVE4-2", 0.1210},
    {"ECONVOLVE4-3", 0.1168},
    {"ECONVOLVE4-4", 0.1153},
    {"DOG", 0.6032},
}};

} // namespace tt::workloads::tables

#endif // TT_WORKLOADS_TABLES_HH
