#include "workloads/sift.hh"

#include <algorithm>

#include "stream/builder.hh"
#include "util/logging.hh"
#include "workloads/tables.hh"

namespace tt::workloads {

std::vector<PhaseSpec>
siftPhases()
{
    // Footprints shrink with the octave: full-resolution functions
    // stream big row blocks, deeper octaves stream smaller ones.
    // Pair counts follow the amount of parallel work per function.
    std::vector<PhaseSpec> phases;
    for (const tables::SiftEntry &entry : tables::kSift) {
        PhaseSpec phase;
        phase.name = std::string(entry.name);
        phase.tm1_over_tc = entry.ratio;
        phase.write_fraction = 0.4; // blur: read block, write block
        if (entry.name == "COPYUP" || entry.name == "ECONVOLVE" ||
            entry.name == "DOG") {
            phase.footprint_bytes = 512 * 1024;
            phase.pairs = 128;
        } else if (entry.name == "ECONVOLVE2") {
            phase.footprint_bytes = 256 * 1024;
            phase.pairs = 96;
        } else if (entry.name.starts_with("ECONVOLVE3")) {
            phase.footprint_bytes = 128 * 1024;
            phase.pairs = 64;
        } else { // ECONVOLVE4 family
            phase.footprint_bytes = 64 * 1024;
            phase.pairs = 48;
        }
        phases.push_back(std::move(phase));
    }
    return phases;
}

stream::TaskGraph
siftSim(const cpu::MachineConfig &config)
{
    return buildPhasedSim(config, siftPhases());
}

namespace {

/** Rows per block so a phase of image height h gets ~`pairs` pairs. */
std::size_t
blockRows(std::size_t height, int pairs)
{
    const std::size_t rows = std::max<std::size_t>(
        1, height / static_cast<std::size_t>(pairs));
    return rows;
}

/**
 * Add one blur phase: gather a decimated, halo-padded row block of
 * `src` (stride 1 keeps full resolution, 2 moves down an octave),
 * row+column convolve it, and scatter the interior rows to `dst`.
 */
void
addBlurPhase(stream::StreamProgramBuilder &builder,
             const std::string &name, std::shared_ptr<Image> src,
             std::size_t stride, std::shared_ptr<Image> dst,
             const std::vector<float> &taps, int pairs)
{
    const std::size_t radius = taps.size() / 2;
    const std::size_t out_h = src->height / stride;
    const std::size_t out_w = src->width / stride;
    tt_assert(dst->height == out_h && dst->width == out_w,
              "destination shape mismatch in phase ", name);
    const std::size_t rows = blockRows(out_h, pairs);
    const int blocks = static_cast<int>((out_h + rows - 1) / rows);

    builder.beginPhase(name);
    for (int b = 0; b < blocks; ++b) {
        const std::size_t begin = static_cast<std::size_t>(b) * rows;
        const std::size_t end = std::min(out_h, begin + rows);
        const std::size_t halo_begin =
            begin >= radius ? begin - radius : 0;
        const std::size_t halo_end = std::min(out_h, end + radius);
        const std::size_t scratch_h = halo_end - halo_begin;

        auto scratch = std::make_shared<Image>(out_w, scratch_h);
        auto taps_copy = taps;

        stream::PairSpec spec;
        spec.host_memory = [src, scratch, stride, halo_begin,
                            scratch_h, out_w] {
            // Decimating gather with the halo rows included.
            for (std::size_t j = 0; j < scratch_h; ++j) {
                const std::size_t sy = (halo_begin + j) * stride;
                for (std::size_t x = 0; x < out_w; ++x)
                    scratch->at(x, j) = src->at(x * stride, sy);
            }
        };
        spec.host_compute = [dst, scratch, taps_copy, begin, end,
                             halo_begin, scratch_h, out_w, radius] {
            // Row pass over the whole scratch (halo included).
            Image tmp(out_w, scratch_h);
            convolveRowsRange(*scratch, tmp, taps_copy, 0, scratch_h);
            // Column pass over the interior, clamped inside scratch
            // (which equals image-border clamping because truncated
            // halos only occur at the image edges).
            const int r = static_cast<int>(radius);
            for (std::size_t y = begin; y < end; ++y) {
                const std::ptrdiff_t local =
                    static_cast<std::ptrdiff_t>(y - halo_begin);
                for (std::size_t x = 0; x < out_w; ++x) {
                    float acc = 0.0f;
                    for (int t = -r; t <= r; ++t) {
                        std::ptrdiff_t sy = local + t;
                        sy = std::clamp<std::ptrdiff_t>(
                            sy, 0,
                            static_cast<std::ptrdiff_t>(scratch_h) - 1);
                        acc += tmp.at(x, static_cast<std::size_t>(sy)) *
                               taps_copy[static_cast<std::size_t>(t + r)];
                    }
                    dst->at(x, y) = acc;
                }
            }
        };
        const std::uint64_t block_bytes =
            out_w * scratch_h * sizeof(float);
        spec.bytes = block_bytes * 2; // gather block + scatter rows
        spec.write_fraction = 0.4;
        spec.compute_cycles = static_cast<std::uint64_t>(
            2 * out_w * (end - begin) * taps.size() * 2);
        spec.footprint_bytes = block_bytes;
        builder.addPair(std::move(spec));
    }
}

} // namespace

SiftHost
buildSiftHost(std::size_t width, std::size_t height)
{
    tt_assert(width % 16 == 0 && height % 16 == 0,
              "image dimensions must be multiples of 16");

    SiftHost host;
    host.taps = gaussianKernel(1.6, 3);
    host.base = std::make_shared<Image>(makeTestImage(width, height));
    host.up = std::make_shared<Image>(width * 2, height * 2);
    host.g1 = std::make_shared<Image>(width * 2, height * 2);
    host.g2 = std::make_shared<Image>(width, height);
    for (int i = 0; i < 5; ++i)
        host.o3.push_back(
            std::make_shared<Image>(width / 2, height / 2));
    for (int i = 0; i < 5; ++i)
        host.o4.push_back(
            std::make_shared<Image>(width / 4, height / 4));
    host.dog = std::make_shared<Image>(width * 2, height * 2);

    // The builder allows non-uniform pairs: halo truncation makes
    // edge blocks slightly smaller than interior ones.
    stream::StreamProgramBuilder builder(/*uniform_pairs=*/false);

    // --- COPYUP: bilinear 2x up-sampling, parallel over dst rows.
    {
        const std::size_t out_h = height * 2;
        const std::size_t rows = blockRows(out_h, 64);
        const int blocks = static_cast<int>((out_h + rows - 1) / rows);
        builder.beginPhase("COPYUP");
        for (int b = 0; b < blocks; ++b) {
            const std::size_t begin = static_cast<std::size_t>(b) * rows;
            const std::size_t end = std::min(out_h, begin + rows);
            // Source rows feeding [begin, end): y/2 and y/2+1.
            const std::size_t src_begin = begin / 2;
            const std::size_t src_end =
                std::min(height, (end - 1) / 2 + 2);
            const std::size_t scratch_h = src_end - src_begin;
            auto scratch = std::make_shared<Image>(width, scratch_h);
            auto base = host.base;
            auto up = host.up;

            stream::PairSpec spec;
            spec.host_memory = [base, scratch, src_begin, scratch_h,
                                width] {
                for (std::size_t j = 0; j < scratch_h; ++j)
                    for (std::size_t x = 0; x < width; ++x)
                        scratch->at(x, j) = base->at(x, src_begin + j);
            };
            spec.host_compute = [up, scratch, begin, end, src_begin,
                                 scratch_h, width, height] {
                for (std::size_t y = begin; y < end; ++y) {
                    const double sy = static_cast<double>(y) / 2.0;
                    std::size_t y0 = std::min(
                        static_cast<std::size_t>(sy), height - 1);
                    std::size_t y1 = std::min(y0 + 1, height - 1);
                    const float fy = static_cast<float>(
                        sy - static_cast<double>(y0));
                    const std::size_t ly0 =
                        std::min(y0 - src_begin, scratch_h - 1);
                    const std::size_t ly1 =
                        std::min(y1 - src_begin, scratch_h - 1);
                    for (std::size_t x = 0; x < up->width; ++x) {
                        const double sx = static_cast<double>(x) / 2.0;
                        std::size_t x0 = std::min(
                            static_cast<std::size_t>(sx), width - 1);
                        std::size_t x1 = std::min(x0 + 1, width - 1);
                        const float fx = static_cast<float>(
                            sx - static_cast<double>(x0));
                        const float top =
                            scratch->at(x0, ly0) * (1.0f - fx) +
                            scratch->at(x1, ly0) * fx;
                        const float bottom =
                            scratch->at(x0, ly1) * (1.0f - fx) +
                            scratch->at(x1, ly1) * fx;
                        up->at(x, y) = top * (1.0f - fy) + bottom * fy;
                    }
                }
            };
            const std::uint64_t block_bytes =
                width * scratch_h * sizeof(float);
            spec.bytes = block_bytes * 3; // gather + 2x-sized scatter
            spec.write_fraction = 0.6;
            spec.compute_cycles = static_cast<std::uint64_t>(
                8 * up->width * (end - begin));
            spec.footprint_bytes = block_bytes;
            builder.addPair(std::move(spec));
        }
    }

    // --- Gaussian pyramid.
    addBlurPhase(builder, "ECONVOLVE", host.up, 1, host.g1, host.taps,
                 64);
    addBlurPhase(builder, "ECONVOLVE2", host.g1, 2, host.g2, host.taps,
                 48);
    addBlurPhase(builder, "ECONVOLVE3-0", host.g2, 2, host.o3[0],
                 host.taps, 32);
    for (int i = 1; i < 5; ++i)
        addBlurPhase(builder, "ECONVOLVE3-" + std::to_string(i),
                     host.o3[static_cast<std::size_t>(i - 1)], 1,
                     host.o3[static_cast<std::size_t>(i)], host.taps, 32);
    addBlurPhase(builder, "ECONVOLVE4-0", host.o3[4], 2, host.o4[0],
                 host.taps, 24);
    for (int i = 1; i < 5; ++i)
        addBlurPhase(builder, "ECONVOLVE4-" + std::to_string(i),
                     host.o4[static_cast<std::size_t>(i - 1)], 1,
                     host.o4[static_cast<std::size_t>(i)], host.taps, 24);

    // --- DOG: g1 - up, parallel over rows (memory heavy: two
    // gathered operands per computed row).
    {
        const std::size_t out_h = height * 2;
        const std::size_t out_w = width * 2;
        const std::size_t rows = blockRows(out_h, 64);
        const int blocks = static_cast<int>((out_h + rows - 1) / rows);
        builder.beginPhase("DOG");
        for (int b = 0; b < blocks; ++b) {
            const std::size_t begin = static_cast<std::size_t>(b) * rows;
            const std::size_t end = std::min(out_h, begin + rows);
            const std::size_t scratch_h = end - begin;
            auto scratch_a = std::make_shared<Image>(out_w, scratch_h);
            auto scratch_b = std::make_shared<Image>(out_w, scratch_h);
            auto up = host.up;
            auto g1 = host.g1;
            auto dog = host.dog;

            stream::PairSpec spec;
            spec.host_memory = [up, g1, scratch_a, scratch_b, begin,
                                scratch_h, out_w] {
                for (std::size_t j = 0; j < scratch_h; ++j) {
                    for (std::size_t x = 0; x < out_w; ++x) {
                        scratch_a->at(x, j) = up->at(x, begin + j);
                        scratch_b->at(x, j) = g1->at(x, begin + j);
                    }
                }
            };
            spec.host_compute = [dog, scratch_a, scratch_b, begin,
                                 scratch_h, out_w] {
                for (std::size_t j = 0; j < scratch_h; ++j)
                    for (std::size_t x = 0; x < out_w; ++x)
                        dog->at(x, begin + j) = scratch_b->at(x, j) -
                                                scratch_a->at(x, j);
            };
            const std::uint64_t block_bytes =
                out_w * scratch_h * sizeof(float);
            spec.bytes = block_bytes * 3; // two gathers + one scatter
            spec.write_fraction = 0.33;
            spec.compute_cycles = static_cast<std::uint64_t>(
                out_w * scratch_h);
            spec.footprint_bytes = block_bytes * 2;
            builder.addPair(std::move(spec));
        }
    }

    host.graph = std::move(builder).build();
    return host;
}

} // namespace tt::workloads
