/**
 * @file
 * Extra workload: block-parallel histogram reduction in stream
 * style.
 *
 * Each memory task gathers one block of 32-bit keys; its compute
 * task bins the block into a pair-private 256-bin histogram
 * (privatisation, the standard parallel-histogram trick). The
 * gathered traffic is read-only with trivial compute (~2 cycles per
 * key), so the workload is deeply memory-bound -- on a quad-core the
 * analytical model puts it in the "some cores idle at any MTL < n"
 * regime, a useful boundary case for the policies.
 */

#ifndef TT_WORKLOADS_HISTOGRAM_HH
#define TT_WORKLOADS_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "cpu/machine_config.hh"
#include "stream/task_graph.hh"

namespace tt::workloads {

inline constexpr std::size_t kHistogramBins = 256;

/** Parameters of the histogram workload. */
struct HistogramParams
{
    int pairs = 128;
    std::size_t keys_per_block = 64 * 1024;
    std::uint64_t seed = 1234;
};

/** Sim-mode graph (descriptors from the layout). */
stream::TaskGraph histogramSim(const cpu::MachineConfig &config,
                               const HistogramParams &params);

/** Host-mode instance with real binning kernels. */
struct HistogramHost
{
    stream::TaskGraph graph;
    std::shared_ptr<std::vector<std::uint32_t>> keys;
    /** One private histogram per pair, merged by totals(). */
    std::shared_ptr<std::vector<std::array<std::uint64_t,
                                           kHistogramBins>>> partials;
    HistogramParams params;

    /** Merge the pair-private histograms. */
    std::array<std::uint64_t, kHistogramBins> totals() const;
};

HistogramHost buildHistogramHost(const HistogramParams &params);

} // namespace tt::workloads

#endif // TT_WORKLOADS_HISTOGRAM_HH
