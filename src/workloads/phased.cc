#include "workloads/phased.hh"

#include "stream/builder.hh"
#include "util/logging.hh"
#include "workloads/calibration.hh"

namespace tt::workloads {

stream::TaskGraph
buildPhasedSim(const cpu::MachineConfig &config,
               const std::vector<PhaseSpec> &phases)
{
    tt_assert(!phases.empty(), "workload needs at least one phase");

    stream::StreamProgramBuilder builder;
    for (const PhaseSpec &phase : phases) {
        tt_assert(phase.pairs > 0, "phase '", phase.name,
                  "' has no pairs");
        const std::uint64_t cycles = computeCyclesForRatio(
            config, phase.footprint_bytes, phase.write_fraction,
            phase.tm1_over_tc);
        builder.beginPhase(phase.name);
        builder.addPairs(phase.pairs, [&](int) {
            stream::PairSpec spec;
            spec.bytes = phase.footprint_bytes;
            spec.write_fraction = phase.write_fraction;
            spec.compute_cycles = cycles;
            spec.footprint_bytes = phase.footprint_bytes;
            return spec;
        });
    }
    return std::move(builder).build();
}

} // namespace tt::workloads
