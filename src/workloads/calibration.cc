#include "workloads/calibration.hh"

#include <cmath>
#include <map>
#include <tuple>

#include "core/policy.hh"
#include "simrt/sim_runtime.hh"
#include "stream/builder.hh"
#include "util/logging.hh"

namespace tt::workloads {

namespace {

using Key = std::tuple<int, int, int, std::uint64_t, std::uint64_t, int,
                       std::uint64_t, std::uint64_t>;

Key
makeKey(const cpu::MachineConfig &config, std::uint64_t bytes,
        double write_fraction)
{
    // Every machine parameter that changes a memory task's timing
    // must key the memo, or a sweep over configs reuses stale
    // calibrations.
    return {config.mem.channels,
            config.mlp_per_context,
            config.contexts(),
            config.mem.llc_bytes,
            bytes,
            static_cast<int>(write_fraction * 1000.0),
            config.mem.frontend_latency,
            config.mem.dram.t_cl + config.mem.dram.t_rcd +
                config.mem.dram.t_burst};
}

// Memoisation is deliberately not thread-safe: calibration runs from
// single-threaded bench/test mains (documented in the header).
std::map<Key, double> &
cache()
{
    static std::map<Key, double> instance;
    return instance;
}

} // namespace

double
memSecondsPerByte(const cpu::MachineConfig &config, std::uint64_t bytes,
                  double write_fraction)
{
    tt_assert(bytes > 0, "cannot calibrate a zero-byte task");
    const Key key = makeKey(config, bytes, write_fraction);
    auto hit = cache().find(key);
    if (hit != cache().end())
        return hit->second;

    // A short MTL=1 run: streams are serialised, so avg_tm is the
    // contention-free memory-task time. A skip-count of warm-up
    // pairs is unnecessary -- the first task runs on a cold machine,
    // which is exactly the contention-free condition.
    stream::StreamProgramBuilder builder;
    builder.beginPhase("calibration");
    builder.addPairs(8, [&](int) {
        stream::PairSpec spec;
        spec.bytes = bytes;
        spec.write_fraction = write_fraction;
        spec.compute_cycles = 1;
        return spec;
    });
    const stream::TaskGraph graph = std::move(builder).build();

    core::StaticMtlPolicy policy(1, config.contexts());
    const simrt::RunResult run = simrt::runOnce(config, graph, policy);
    tt_assert(run.avg_tm > 0.0, "calibration produced zero task time");

    const double result = run.avg_tm / static_cast<double>(bytes);
    cache()[key] = result;
    return result;
}

std::uint64_t
computeCyclesForRatio(const cpu::MachineConfig &config,
                      std::uint64_t bytes, double write_fraction,
                      double ratio)
{
    tt_assert(ratio > 0.0, "memory-to-compute ratio must be positive");
    const double tm1 =
        memSecondsPerByte(config, bytes, write_fraction) *
        static_cast<double>(bytes);
    const double tc = tm1 / ratio;
    const double cycles = tc * config.core_ghz * 1e9;
    return static_cast<std::uint64_t>(std::llround(cycles));
}

} // namespace tt::workloads
