#include "workloads/histogram.hh"

#include "stream/builder.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace tt::workloads {

stream::TaskGraph
histogramSim(const cpu::MachineConfig &config,
             const HistogramParams &params)
{
    (void)config;
    tt_assert(params.pairs > 0 && params.keys_per_block > 0,
              "degenerate histogram");
    const std::uint64_t block_bytes =
        params.keys_per_block * sizeof(std::uint32_t);

    stream::StreamProgramBuilder builder;
    builder.beginPhase("histogram");
    builder.addPairs(params.pairs, [&](int) {
        stream::PairSpec spec;
        spec.bytes = block_bytes;       // read-only key stream
        spec.write_fraction = 0.0;
        spec.compute_cycles = static_cast<std::uint64_t>(
            params.keys_per_block * 2); // shift + increment per key
        spec.footprint_bytes = block_bytes;
        return spec;
    });
    return std::move(builder).build();
}

std::array<std::uint64_t, kHistogramBins>
HistogramHost::totals() const
{
    std::array<std::uint64_t, kHistogramBins> merged{};
    for (const auto &partial : *partials)
        for (std::size_t bin = 0; bin < kHistogramBins; ++bin)
            merged[bin] += partial[bin];
    return merged;
}

HistogramHost
buildHistogramHost(const HistogramParams &params)
{
    tt_assert(params.pairs > 0 && params.keys_per_block > 0,
              "degenerate histogram");

    HistogramHost host;
    host.params = params;
    const std::size_t total_keys =
        static_cast<std::size_t>(params.pairs) * params.keys_per_block;
    host.keys =
        std::make_shared<std::vector<std::uint32_t>>(total_keys);
    Rng rng(params.seed);
    for (auto &key : *host.keys)
        key = static_cast<std::uint32_t>(rng.next());

    host.partials = std::make_shared<
        std::vector<std::array<std::uint64_t, kHistogramBins>>>(
        static_cast<std::size_t>(params.pairs));

    auto scratch =
        std::make_shared<std::vector<std::uint32_t>>(total_keys);
    const std::uint64_t block_bytes =
        params.keys_per_block * sizeof(std::uint32_t);

    stream::StreamProgramBuilder builder;
    builder.beginPhase("histogram");
    builder.addPairs(params.pairs, [&](int p) {
        const std::size_t begin =
            static_cast<std::size_t>(p) * params.keys_per_block;
        const std::size_t count = params.keys_per_block;
        auto keys = host.keys;
        auto partials = host.partials;

        stream::PairSpec spec;
        spec.host_memory = [keys, scratch, begin, count] {
            const std::uint32_t *src = keys->data() + begin;
            std::uint32_t *dst = scratch->data() + begin;
            for (std::size_t i = 0; i < count; ++i)
                dst[i] = src[i];
        };
        spec.host_compute = [scratch, partials, begin, count, p] {
            auto &hist = (*partials)[static_cast<std::size_t>(p)];
            hist.fill(0);
            const std::uint32_t *block = scratch->data() + begin;
            for (std::size_t i = 0; i < count; ++i)
                ++hist[block[i] >> 24]; // top byte selects the bin
        };
        spec.bytes = block_bytes;
        spec.write_fraction = 0.0;
        spec.compute_cycles =
            static_cast<std::uint64_t>(count * 2);
        spec.footprint_bytes = block_bytes;
        return spec;
    });
    host.graph = std::move(builder).build();
    return host;
}

} // namespace tt::workloads
