#include "workloads/synthetic.hh"

#include "stream/builder.hh"
#include "util/logging.hh"
#include "workloads/calibration.hh"

namespace tt::workloads {

stream::TaskGraph
buildSyntheticSim(const cpu::MachineConfig &config,
                  const SyntheticParams &params)
{
    tt_assert(params.pairs > 0, "need at least one pair");
    tt_assert(params.footprint_bytes > 0, "need a positive footprint");

    // The Fig. 12 memory task is a pure store loop.
    const double write_fraction = 1.0;
    const std::uint64_t cycles = computeCyclesForRatio(
        config, params.footprint_bytes, write_fraction,
        params.tm1_over_tc);

    stream::StreamProgramBuilder builder;
    builder.beginPhase("synthetic");
    builder.addPairs(params.pairs, [&](int) {
        stream::PairSpec spec;
        spec.bytes = params.footprint_bytes;
        spec.write_fraction = write_fraction;
        spec.compute_cycles = cycles;
        spec.footprint_bytes = params.footprint_bytes;
        return spec;
    });
    return std::move(builder).build();
}

HostSynthetic
buildSyntheticHost(const SyntheticParams &params, int count)
{
    tt_assert(params.pairs > 0, "need at least one pair");
    tt_assert(count >= 0, "negative compute count");

    const std::uint64_t elems_per_task =
        params.footprint_bytes / sizeof(std::uint64_t);
    tt_assert(elems_per_task > 0, "footprint smaller than one element");

    HostSynthetic result;
    result.storage = std::make_shared<std::vector<std::uint64_t>>(
        elems_per_task * static_cast<std::uint64_t>(params.pairs));

    stream::StreamProgramBuilder builder;
    builder.beginPhase("synthetic");
    builder.addPairs(params.pairs, [&](int p) {
        auto storage = result.storage;
        const std::uint64_t start =
            static_cast<std::uint64_t>(p) * elems_per_task;
        const std::uint64_t end = start + elems_per_task;

        stream::PairSpec spec;
        spec.host_memory = [storage, start, end] {
            std::uint64_t *data = storage->data();
            for (std::uint64_t i = start; i < end; ++i)
                data[i] = 7; // A[i] = Const
        };
        spec.host_compute = [storage, start, end, count] {
            std::uint64_t *data = storage->data();
            for (int k = 0; k < count; ++k)
                for (std::uint64_t i = start; i < end; ++i)
                    data[i] += static_cast<std::uint64_t>(k);
        };
        spec.bytes = params.footprint_bytes;
        spec.write_fraction = 1.0;
        // Rough host-side cycle estimate: one add per element per
        // iteration; exact calibration only matters in sim mode.
        spec.compute_cycles =
            static_cast<std::uint64_t>(count) * elems_per_task;
        spec.footprint_bytes = params.footprint_bytes;
        return spec;
    });
    result.graph = std::move(builder).build();
    return result;
}

} // namespace tt::workloads
