#include "workloads/dft.hh"

#include <cmath>

#include "stream/builder.hh"
#include "util/logging.hh"
#include "workloads/tables.hh"

namespace tt::workloads {

std::vector<PhaseSpec>
dftPhases()
{
    PhaseSpec phase;
    phase.name = "dft";
    phase.tm1_over_tc = tables::kDftRatio;
    phase.footprint_bytes = 512 * 1024;
    // Gather rows, scatter spectra: roughly half the traffic writes.
    phase.write_fraction = 0.5;
    phase.pairs = 96; // the paper's dft has 96 parallel pairs
    return {phase};
}

stream::TaskGraph
dftSim(const cpu::MachineConfig &config)
{
    return buildPhasedSim(config, dftPhases());
}

DftHost
buildDftHost(int pairs, std::size_t rows_per_task, std::size_t cols)
{
    tt_assert(pairs > 0, "need at least one pair");
    tt_assert(isPowerOfTwo(cols), "cols must be a power of two");

    DftHost host;
    host.rows = static_cast<std::size_t>(pairs) * rows_per_task;
    host.cols = cols;
    host.input =
        std::make_shared<std::vector<Complex>>(host.rows * cols);
    host.output =
        std::make_shared<std::vector<Complex>>(host.rows * cols);

    // Deterministic smooth input signal.
    for (std::size_t r = 0; r < host.rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const float phase_x =
                0.02f * static_cast<float>(c) * (1.0f + 0.001f * r);
            (*host.input)[r * cols + c] =
                Complex(std::sin(phase_x), std::cos(2.0f * phase_x));
        }
    }

    // Task-local gather buffers, one slice per pair.
    auto scratch = std::make_shared<std::vector<Complex>>(
        host.rows * cols);

    const std::uint64_t slice_bytes =
        rows_per_task * cols * sizeof(Complex);

    stream::StreamProgramBuilder builder;
    builder.beginPhase("dft");
    builder.addPairs(pairs, [&](int p) {
        const std::size_t begin =
            static_cast<std::size_t>(p) * rows_per_task * cols;
        const std::size_t count = rows_per_task * cols;
        auto input = host.input;
        auto output = host.output;

        stream::PairSpec spec;
        spec.host_memory = [input, scratch, begin, count] {
            // Gather: stream the slice into the task buffer.
            const Complex *src = input->data() + begin;
            Complex *dst = scratch->data() + begin;
            for (std::size_t i = 0; i < count; ++i)
                dst[i] = src[i];
        };
        spec.host_compute = [output, scratch, begin, rows_per_task,
                             cols] {
            // Compute: per-row FFT in the gathered buffer, then
            // scatter the spectra (the scatter stays with the
            // compute closure; the gathered data is already
            // LLC-resident so the copy is cheap).
            Complex *buf = scratch->data() + begin;
            for (std::size_t r = 0; r < rows_per_task; ++r)
                fftInPlace(buf + r * cols, cols);
            Complex *dst = output->data() + begin;
            for (std::size_t i = 0; i < rows_per_task * cols; ++i)
                dst[i] = buf[i];
        };
        spec.bytes = slice_bytes;
        spec.write_fraction = 0.5;
        const double log2n =
            std::log2(static_cast<double>(cols));
        spec.compute_cycles = static_cast<std::uint64_t>(
            5.0 * static_cast<double>(rows_per_task * cols) * log2n);
        spec.footprint_bytes = slice_bytes;
        return spec;
    });
    host.graph = std::move(builder).build();
    return host;
}

} // namespace tt::workloads
