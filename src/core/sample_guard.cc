#include "core/sample_guard.hh"

#include <cmath>

#include "util/logging.hh"

namespace tt::core {

SampleGuard::SampleGuard(const Options &options)
    : options_(options)
{
    tt_assert(options_.outlier_factor > 1.0,
              "outlier factor must exceed 1");
    tt_assert(options_.min_history >= 1,
              "outlier screening needs at least one history sample");
}

bool
SampleGuard::accept(const PairSample &sample)
{
    const bool finite = std::isfinite(sample.tm) &&
                        std::isfinite(sample.tc) &&
                        std::isfinite(sample.end_time);
    if (!finite || sample.tm < 0.0 || sample.tc < 0.0) {
        ++rejected_;
        return false;
    }

    const double total = sample.tm + sample.tc;
    if (accepted_ >= options_.min_history && total_mean_ > 0.0 &&
        total > options_.outlier_factor * total_mean_) {
        ++rejected_;
        return false;
    }

    ++accepted_;
    total_mean_ +=
        (total - total_mean_) / static_cast<double>(accepted_);
    return true;
}

void
SampleGuard::reset()
{
    accepted_ = 0;
    rejected_ = 0;
    total_mean_ = 0.0;
}

} // namespace tt::core
