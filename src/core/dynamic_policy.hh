/**
 * @file
 * The paper's run-time memory thread throttling mechanism (Sec. IV,
 * Fig. 6): phase change detection feeding pruned MTL selection.
 *
 * Operation alternates between two states:
 *  - MONITOR: execute under the currently selected MTL while the
 *    PhaseDetector averages W task pairs; when the resulting
 *    IdleBound differs from the previous window's, a phase change is
 *    declared;
 *  - SELECT: drive the MtlSelector's binary search, temporarily
 *    switching the enforced MTL to each probe point and averaging W
 *    pairs there, until D-MTL is decided and applied.
 *
 * The very first completed window always counts as a phase change,
 * which gives the mechanism its initial MTL decision.
 */

#ifndef TT_CORE_DYNAMIC_POLICY_HH
#define TT_CORE_DYNAMIC_POLICY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/mtl_selector.hh"
#include "core/phase_detector.hh"
#include "core/policy.hh"
#include "core/sample_guard.hh"

namespace tt::core {

/** Dynamic memory-thread-throttling policy (D-MTL). */
class DynamicThrottlePolicy : public SchedulingPolicy
{
  public:
    /**
     * What counts as a phase change (Sec. IV-B).
     *
     * kIdleBound is the paper's mechanism: re-select only when the
     * model's core-idle behaviour flips. kRatioChange is the naive
     * strawman the paper argues against -- "triggering MTL selection
     * as long as the memory-to-compute ratio changes" -- kept as an
     * ablation (see bench_ablation_selection).
     */
    enum class TriggerMode { kIdleBound, kRatioChange };

    /**
     * @param cores   n, hardware contexts the runtime schedules on
     * @param window  W, pairs averaged per estimate (paper Sec. VI-C)
     * @param initial starting MTL; defaults to n (the conventional,
     *                unthrottled schedule) as the paper's mechanism
     *                begins interference-oblivious
     * @param mode    phase-change criterion (ablation hook)
     * @param ratio_threshold relative T_m/T_c change that counts as
     *                "the ratio changed" in kRatioChange mode
     */
    DynamicThrottlePolicy(int cores, int window, int initial = -1,
                          TriggerMode mode = TriggerMode::kIdleBound,
                          double ratio_threshold = 0.05);

    /**
     * Scalability extension (not in the paper): re-select only when
     * the observed IdleBound differs from the accepted one by more
     * than `amount`. With many hardware contexts the closed-form
     * IdleBound ceil(n*T_m/(T_m+T_c)) becomes fine-grained and
     * measurement noise flips it by +-1 every window, which makes
     * the paper's exact-mismatch trigger re-select perpetually;
     * bench_ext_power7 demonstrates the thrash at n=32 and this fix.
     */
    void setIdleBoundHysteresis(int amount);

    /**
     * Fault-tolerance knobs (robustness extension, not in the
     * paper). Samples failing the SampleGuard (non-finite, negative
     * or extreme-outlier durations) are dropped and counted as
     * `policy.samples_rejected`. After `reject_limit` consecutive
     * rejections -- i.e. repeated measurement windows made of
     * garbage -- the policy *degrades*: it abandons any in-flight
     * selection and pins the MTL to the safe static value (the
     * conventional, unthrottled n), because acting on corrupt
     * measurements is worse than not throttling. Once
     * `reenter_after` consecutive valid samples arrive while
     * degraded, it re-enters dynamic selection from scratch.
     *
     * Defaults: reject_limit = 2 * window, reenter_after = window.
     */
    void setFaultTolerance(int reject_limit, int reenter_after);

    /** As setFaultTolerance, plus explicit outlier-screen options. */
    void setSampleGuardOptions(const SampleGuard::Options &options);

    /** True while degraded to the safe static MTL. */
    bool degraded() const override { return state_ == State::Degraded; }

    /**
     * SLO-aware mode (robustness extension): react to admission
     * backpressure. On entering SHED the policy abandons any
     * in-flight probing and pins the throughput-optimal MTL -- the
     * last selected D-MTL, or the unthrottled n before a first
     * selection -- because probing during overload both sheds more
     * jobs and inflates tail latency; this maximizes admitted
     * goodput while the controller enforces deadline attainment by
     * shedding. The transition is audited with the `overload`
     * reason. When backpressure recovers to ACCEPT, a `reenter`
     * record is written and normal phase-adaptive selection resumes
     * from scratch (the post-burst load regime may differ).
     */
    void setSloAware(bool on = true) { slo_aware_ = on; }

    /** True while MTL selection is pinned by an overload episode. */
    bool overloadHold() const { return overload_hold_; }

    void onBackpressure(double time, BackpressureState state,
                        long backlog) override;

    std::string name() const override { return "dynamic-throttle"; }
    int currentMtl() const override { return mtl_; }
    void onPairMeasured(const PairSample &sample) override;

    /** All MTL-selection outcomes, in order (for the reports). */
    const std::vector<MtlSelector::Result> &
    selections() const
    {
        return selection_log_;
    }

    int window() const { return window_; }
    int cores() const { return cores_; }

  private:
    void beginSelection();
    void finishSelection();
    void startProbe();
    void enterDegraded();
    void leaveDegraded();

    enum class State { Monitor, Select, Degraded };

    int cores_;
    int window_;
    int mtl_;
    TriggerMode mode_;
    double ratio_threshold_;
    int idle_bound_hysteresis_ = 0;
    std::optional<int> accepted_idle_bound_;
    double last_ratio_ = -1.0;
    State state_ = State::Monitor;
    PhaseDetector detector_;

    /** Window whose measurements triggered the in-flight selection. */
    std::optional<WindowSummary> trigger_window_;

    // SLO-aware overload reaction (onBackpressure).
    bool slo_aware_ = false;
    bool overload_hold_ = false;
    int last_selected_mtl_ = 0; ///< 0 until a selection completed

    // Fault tolerance: sample screening and graceful degradation.
    SampleGuard guard_;
    int reject_limit_;
    int reenter_after_;
    int consecutive_rejected_ = 0;
    int degraded_valid_ = 0;

    // SELECT-state machinery.
    std::unique_ptr<MtlSelector> selector_;
    std::optional<int> probe_mtl_;
    int probe_filled_ = 0;
    double probe_tm_acc_ = 0.0;
    double probe_tc_acc_ = 0.0;
    double last_sample_time_ = 0.0;

    std::vector<MtlSelector::Result> selection_log_;
};

} // namespace tt::core

#endif // TT_CORE_DYNAMIC_POLICY_HH
