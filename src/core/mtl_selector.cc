#include "core/mtl_selector.hh"

#include "core/analytical_model.hh"
#include "util/logging.hh"

namespace tt::core {

MtlSelector::MtlSelector(int cores)
    : cores_(cores), lo_(1), hi_(cores)
{
    tt_assert(cores_ >= 1, "need at least one core");
}

void
MtlSelector::advance()
{
    // Consume cached probes to move the binary-search bounds as far
    // as the available measurements allow.
    while (lo_ < hi_) {
        const int mid = (lo_ + hi_) / 2;
        auto it = tm_probes_.find(mid);
        if (it == tm_probes_.end() || !have_tc_)
            return;
        if (AnalyticalModel::allCoresBusy(it->second, tc_, mid, cores_))
            hi_ = mid;
        else
            lo_ = mid + 1;
    }
}

bool
MtlSelector::candidateMeasured(int mtl) const
{
    return tm_probes_.count(mtl) > 0;
}

std::optional<int>
MtlSelector::nextProbe() const
{
    if (lo_ < hi_)
        return (lo_ + hi_) / 2;
    // Boundary found: lo_ == hi_ == MTL_NoIdle. Ensure both
    // candidates carry measurements before ranking them.
    const int no_idle = lo_;
    if (!candidateMeasured(no_idle))
        return no_idle;
    if (no_idle > 1 && !candidateMeasured(no_idle - 1))
        return no_idle - 1;
    return std::nullopt;
}

void
MtlSelector::reportProbe(int mtl, double tm, double tc)
{
    tt_assert(mtl >= 1 && mtl <= cores_, "probe MTL out of range");
    tt_assert(tm >= 0.0 && tc >= 0.0, "negative probe measurement");
    tm_probes_[mtl] = tm;
    tc_ = tc; // compute time is MTL-invariant; keep the freshest
    have_tc_ = true;
    ++probes_used_;
    result_.reset();
    advance();
}

bool
MtlSelector::done() const
{
    return !nextProbe().has_value();
}

MtlSelector::Result
MtlSelector::result() const
{
    tt_assert(done(), "selection still in progress");
    if (result_)
        return *result_;

    Result res;
    res.mtl_no_idle = lo_;
    res.probes_used = probes_used_;

    const double tm_no_idle = tm_probes_.at(res.mtl_no_idle);
    res.rank_no_idle = AnalyticalModel::speedupRank(
        tm_no_idle, tc_, res.mtl_no_idle, cores_);

    if (res.mtl_no_idle > 1) {
        const int idle = res.mtl_no_idle - 1;
        res.mtl_idle = idle;
        const double tm_idle = tm_probes_.at(idle);
        res.rank_idle =
            AnalyticalModel::speedupRank(tm_idle, tc_, idle, cores_);
        res.d_mtl =
            res.rank_idle > res.rank_no_idle ? idle : res.mtl_no_idle;
    } else {
        res.d_mtl = res.mtl_no_idle;
    }

    result_ = res;
    return res;
}

} // namespace tt::core
