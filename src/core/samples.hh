/**
 * @file
 * Measurement records exchanged between a runtime (real-thread or
 * simulated) and the scheduling policies.
 */

#ifndef TT_CORE_SAMPLES_HH
#define TT_CORE_SAMPLES_HH

namespace tt::core {

/**
 * One finished memory-compute task pair, as observed by the runtime.
 *
 * Times are in seconds (wall seconds for the real runtime, simulated
 * seconds for the simulator); `end_time` is relative to the start of
 * the run. `mtl` records the MTL in force while the memory task ran
 * so policies can discard samples taken under a stale constraint.
 */
struct PairSample
{
    double tm = 0.0;       ///< memory-task duration
    double tc = 0.0;       ///< compute-task duration
    double end_time = 0.0; ///< completion timestamp of the pair
    int mtl = 0;           ///< MTL in force when the memory task ran
};

/** Aggregate counters a policy exposes after a run. */
struct PolicyStats
{
    long pairs_observed = 0;   ///< samples delivered to the policy
    long probe_pairs = 0;      ///< samples accepted toward an MTL probe
    long stale_pairs = 0;      ///< probe-time samples rejected as stale
                               ///  (measured under a pre-probe MTL)
    long selections = 0;       ///< MTL-selection rounds triggered
    long phase_changes = 0;    ///< phase changes detected
    long mtl_switches = 0;     ///< times currentMtl() changed value
    long samples_rejected = 0; ///< non-finite/negative/outlier samples
                               ///  dropped by the validity guard
    long fallbacks = 0;        ///< times the policy degraded to the
                               ///  safe static MTL after repeated
                               ///  rejected measurement windows
};

} // namespace tt::core

#endif // TT_CORE_SAMPLES_HH
