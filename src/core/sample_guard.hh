/**
 * @file
 * Validity guard for PairSamples feeding the adaptive policies.
 *
 * The paper's mechanism trusts every T_mk / T_c measurement, but a
 * real runtime can deliver garbage: a clock glitch or an injected
 * fault yields NaN / infinite / negative durations, and a straggling
 * task yields a sample orders of magnitude away from the workload's
 * steady state. Feeding any of those into the analytical model
 * either poisons a whole monitoring window or drives the D-MTL
 * search to a nonsensical limit. SampleGuard screens samples before
 * a policy consumes them:
 *
 *  - hard rejects: non-finite or negative tm / tc / end_time;
 *  - soft rejects: once enough history has accumulated, a sample
 *    whose total duration (tm + tc) exceeds `outlier_factor` times
 *    the running mean is treated as a straggler artefact.
 *
 * The guard is deliberately conservative (default factor 1000x): it
 * exists to stop garbage, not to second-guess genuine phase changes,
 * which shift durations by small multiples only.
 */

#ifndef TT_CORE_SAMPLE_GUARD_HH
#define TT_CORE_SAMPLE_GUARD_HH

#include <cstddef>

#include "core/samples.hh"

namespace tt::core {

/** Screens PairSamples for the adaptive policies. */
class SampleGuard
{
  public:
    struct Options
    {
        /** Reject samples beyond this multiple of the running mean. */
        double outlier_factor = 1000.0;

        /** Accepted samples required before outlier screening arms. */
        int min_history = 16;
    };

    SampleGuard() : SampleGuard(Options{}) {}
    explicit SampleGuard(const Options &options);

    /**
     * True when the sample is trustworthy; accepted samples update
     * the running mean used for outlier screening.
     */
    bool accept(const PairSample &sample);

    /** Forget the accumulated history (e.g. across phases). */
    void reset();

    long accepted() const { return accepted_; }
    long rejected() const { return rejected_; }

  private:
    Options options_;
    long accepted_ = 0;
    long rejected_ = 0;
    double total_mean_ = 0.0; ///< running mean of tm + tc
};

} // namespace tt::core

#endif // TT_CORE_SAMPLE_GUARD_HH
