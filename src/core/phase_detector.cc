#include "core/phase_detector.hh"

#include <cmath>

#include "core/analytical_model.hh"
#include "util/logging.hh"

namespace tt::core {

PhaseDetector::PhaseDetector(int window, int cores)
    : window_(window), cores_(cores)
{
    tt_assert(window_ >= 1, "monitoring window must be positive");
    tt_assert(cores_ >= 1, "need at least one core");
}

std::optional<WindowSummary>
PhaseDetector::addSample(const PairSample &sample, int expected_mtl)
{
    if (sample.mtl != expected_mtl)
        return std::nullopt; // stale: measured under an old constraint

    // Defence in depth behind the policies' SampleGuard: one
    // non-finite duration would poison the whole window's averages
    // (NaN propagates through the accumulators and IdleBound), so a
    // degenerate sample never enters the window.
    if (!std::isfinite(sample.tm) || !std::isfinite(sample.tc) ||
        sample.tm < 0.0 || sample.tc < 0.0)
        return std::nullopt;

    tm_acc_ += sample.tm;
    tc_acc_ += sample.tc;
    ++filled_;
    if (filled_ < window_)
        return std::nullopt;

    WindowSummary summary;
    summary.tm = tm_acc_ / static_cast<double>(window_);
    summary.tc = tc_acc_ / static_cast<double>(window_);
    summary.idle_bound =
        AnalyticalModel::idleBound(summary.tm, summary.tc, cores_);
    summary.phase_change =
        !last_idle_bound_ || *last_idle_bound_ != summary.idle_bound;

    last_idle_bound_ = summary.idle_bound;
    resetWindow();
    return summary;
}

void
PhaseDetector::reset()
{
    resetWindow();
    last_idle_bound_.reset();
}

void
PhaseDetector::resetWindow()
{
    filled_ = 0;
    tm_acc_ = 0.0;
    tc_acc_ = 0.0;
}

} // namespace tt::core
