/**
 * @file
 * MTL selection by pruned search (paper Sec. IV-C, Fig. 11).
 *
 * The paper proves two monotonicity lemmas under the queuing
 * decomposition T_mb = T_ml + b*T_ql:
 *   1. among MTLs where all cores stay busy, the *lowest* wins;
 *   2. among MTLs where some cores idle, the *highest* wins.
 * Hence only two candidates can be optimal: MTL_NoIdle (minimum MTL
 * with all cores busy) and MTL_Idle = MTL_NoIdle - 1 (maximum MTL
 * with some cores idle). The selector binary-searches for the
 * boundary, probing -- i.e. asking the runtime to measure W pairs at
 * a given MTL -- O(log n) points instead of all n, then ranks the two
 * candidates with the analytical model.
 *
 * The class is a passive state machine: call nextProbe() to learn
 * which MTL to measure next, feed the measurement back through
 * reportProbe(), repeat until done().
 */

#ifndef TT_CORE_MTL_SELECTOR_HH
#define TT_CORE_MTL_SELECTOR_HH

#include <map>
#include <optional>

namespace tt::core {

/** Binary-search MTL selector. */
class MtlSelector
{
  public:
    /** Outcome of a completed selection. */
    struct Result
    {
        int d_mtl = 1;           ///< the selected MTL
        int mtl_no_idle = 1;     ///< min MTL with all cores busy
        std::optional<int> mtl_idle; ///< max MTL with some idle, if any
        double rank_no_idle = 0.0; ///< model rank of mtl_no_idle
        double rank_idle = 0.0;    ///< model rank of mtl_idle (0 if none)
        int probes_used = 0;       ///< number of probe measurements
    };

    explicit MtlSelector(int cores);

    /**
     * MTL the runtime should measure next, or nullopt when the
     * selection has converged.
     */
    std::optional<int> nextProbe() const;

    /**
     * Feed the averaged measurement (tm, tc) taken at MTL=mtl.
     * Out-of-order or repeated reports simply refresh the cache.
     */
    void reportProbe(int mtl, double tm, double tc);

    /** True once d-MTL is decided. */
    bool done() const;

    /** The decision; only valid when done(). */
    Result result() const;

    /**
     * Measurements gathered so far, keyed by MTL (tm values); used by
     * harnesses to report estimated speedups.
     */
    const std::map<int, double> &probedTm() const { return tm_probes_; }

    /** Latest compute-task time estimate across probes. */
    double probedTc() const { return tc_; }

  private:
    void advance();
    bool candidateMeasured(int mtl) const;

    int cores_;
    int lo_;
    int hi_;
    std::map<int, double> tm_probes_;
    double tc_ = 0.0;
    bool have_tc_ = false;
    int probes_used_ = 0;
    mutable std::optional<Result> result_;
};

} // namespace tt::core

#endif // TT_CORE_MTL_SELECTOR_HH
