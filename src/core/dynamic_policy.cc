#include "core/dynamic_policy.hh"

#include <cmath>
#include <cstdlib>

#include "core/analytical_model.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace tt::core {

DynamicThrottlePolicy::DynamicThrottlePolicy(int cores, int window,
                                             int initial,
                                             TriggerMode mode,
                                             double ratio_threshold)
    : cores_(cores),
      window_(window),
      mtl_(initial < 0 ? cores : initial),
      mode_(mode),
      ratio_threshold_(ratio_threshold),
      detector_(window, cores),
      reject_limit_(2 * window),
      reenter_after_(window)
{
    tt_assert(cores_ >= 1, "need at least one core");
    tt_assert(window_ >= 1, "monitoring window must be positive");
    tt_assert(mtl_ >= 1 && mtl_ <= cores_, "initial MTL out of range");
    traceMtl(0.0, mtl_);

    MtlDecision d;
    d.reason = DecisionReason::Initial;
    d.to_mtl = mtl_;
    recordDecision(std::move(d));
}

void
DynamicThrottlePolicy::setFaultTolerance(int reject_limit,
                                         int reenter_after)
{
    tt_assert(reject_limit >= 1, "rejection limit must be positive");
    tt_assert(reenter_after >= 1, "re-entry threshold must be positive");
    reject_limit_ = reject_limit;
    reenter_after_ = reenter_after;
}

void
DynamicThrottlePolicy::setSampleGuardOptions(
    const SampleGuard::Options &options)
{
    guard_ = SampleGuard(options);
}

void
DynamicThrottlePolicy::setIdleBoundHysteresis(int amount)
{
    tt_assert(amount >= 0, "hysteresis must be non-negative");
    idle_bound_hysteresis_ = amount;
}

void
DynamicThrottlePolicy::onPairMeasured(const PairSample &sample)
{
    ++stats_.pairs_observed;

    // Screen before trusting anything in the sample -- even its
    // timestamp. A rejected sample never reaches the detector or the
    // selector; enough of them in a row and the measurements are
    // untrustworthy wholesale, so degrade to the safe static MTL.
    if (!guard_.accept(sample)) {
        ++stats_.samples_rejected;
        countMetric("policy.samples_rejected");
        ++consecutive_rejected_;
        degraded_valid_ = 0;
        if (state_ != State::Degraded &&
            consecutive_rejected_ >= reject_limit_)
            enterDegraded();
        return;
    }
    consecutive_rejected_ = 0;
    last_sample_time_ = sample.end_time;

    if (state_ == State::Degraded) {
        // Hold the safe MTL until measurements look healthy again,
        // then re-enter dynamic selection from scratch.
        if (++degraded_valid_ >= reenter_after_)
            leaveDegraded();
        return;
    }

    if (overload_hold_) {
        // An overload episode pins the MTL: measurements keep being
        // observed (stats, metrics) but neither trigger nor probe --
        // re-selection waits for backpressure to recover.
        return;
    }

    if (state_ == State::Monitor) {
        auto summary = detector_.addSample(sample, mtl_);
        if (!summary)
            return;
        bool triggered = false;
        if (mode_ == TriggerMode::kIdleBound) {
            triggered =
                !accepted_idle_bound_ ||
                std::abs(summary->idle_bound - *accepted_idle_bound_) >
                    idle_bound_hysteresis_;
        } else {
            // Naive criterion: any relative change of the ratio.
            const double ratio =
                summary->tc > 0.0 ? summary->tm / summary->tc : 1e18;
            if (last_ratio_ < 0.0) {
                // First completed window of the run.
                triggered = true;
            } else if (last_ratio_ == 0.0) {
                // A pure-compute window (tm == 0) has no relative
                // scale; fall back to an absolute test so a later
                // memory phase still registers instead of wedging
                // the trigger permanently.
                triggered = ratio > ratio_threshold_;
            } else {
                triggered =
                    std::abs(ratio - last_ratio_) / last_ratio_ >
                    ratio_threshold_;
            }
            last_ratio_ = ratio;
        }
        if (triggered) {
            ++stats_.phase_changes;
            countMetric("policy.phase_changes");
            trigger_window_ = *summary;
            beginSelection();
        }
        return;
    }

    // State::Select -- accumulate the current probe's window. Pairs
    // measured under a pre-probe MTL are rejected as stale and kept
    // out of the probe-overhead accounting (monitor_overhead counts
    // only samples the selection actually consumed).
    if (!probe_mtl_ || sample.mtl != *probe_mtl_) {
        ++stats_.stale_pairs;
        countMetric("policy.stale_pairs");
        return;
    }
    ++stats_.probe_pairs;
    countMetric("policy.probe_pairs");
    probe_tm_acc_ += sample.tm;
    probe_tc_acc_ += sample.tc;
    if (++probe_filled_ < window_)
        return;

    const double denom = static_cast<double>(window_);
    selector_->reportProbe(*probe_mtl_, probe_tm_acc_ / denom,
                           probe_tc_acc_ / denom);
    if (selector_->done())
        finishSelection();
    else
        startProbe();
}

void
DynamicThrottlePolicy::beginSelection()
{
    ++stats_.selections;
    countMetric("policy.selections");
    state_ = State::Select;
    selector_ = std::make_unique<MtlSelector>(cores_);
    if (selector_->done()) {
        // Degenerate single-core machine: nothing to search.
        finishSelection();
        return;
    }
    startProbe();
}

void
DynamicThrottlePolicy::startProbe()
{
    probe_mtl_ = selector_->nextProbe();
    tt_assert(probe_mtl_.has_value(), "probe requested after done");
    probe_filled_ = 0;
    probe_tm_acc_ = 0.0;
    probe_tc_acc_ = 0.0;
    const int prev = mtl_;
    mtl_ = *probe_mtl_;
    traceMtl(last_sample_time_, mtl_);

    MtlDecision d;
    d.reason = DecisionReason::Probe;
    d.time = last_sample_time_;
    d.from_mtl = prev;
    d.to_mtl = mtl_;
    if (trigger_window_) {
        d.window_tm = trigger_window_->tm;
        d.window_tc = trigger_window_->tc;
        d.idle_bound = trigger_window_->idle_bound;
    }
    recordDecision(std::move(d));
}

void
DynamicThrottlePolicy::finishSelection()
{
    MtlSelector::Result res;
    if (cores_ == 1) {
        res.d_mtl = 1;
        res.mtl_no_idle = 1;
    } else {
        res = selector_->result();
    }
    selection_log_.push_back(res);

    const int prev = mtl_;
    mtl_ = res.d_mtl;
    last_selected_mtl_ = res.d_mtl;
    traceMtl(last_sample_time_, mtl_);

    // Audit the selection: candidates, ranks and the model's
    // predicted speedup of the winner over the unthrottled MTL=n.
    // T_mn comes from the probe at n when the search measured it,
    // otherwise from the queuing decomposition fitted across the
    // lowest and highest probed MTLs (T_mb = T_ml + b*T_ql).
    MtlDecision d;
    d.reason = DecisionReason::Select;
    d.time = last_sample_time_;
    d.from_mtl = prev;
    d.to_mtl = mtl_;
    if (trigger_window_) {
        d.window_tm = trigger_window_->tm;
        d.window_tc = trigger_window_->tc;
        d.idle_bound = trigger_window_->idle_bound;
    }
    d.mtl_no_idle = res.mtl_no_idle;
    d.mtl_idle = res.mtl_idle.value_or(0);
    d.rank_no_idle = res.rank_no_idle;
    d.rank_idle = res.rank_idle;
    d.probes_used = res.probes_used;
    d.predicted_speedup = 1.0;
    if (selector_) {
        const auto &tm_probes = selector_->probedTm();
        for (const auto &[mtl, tm] : tm_probes)
            d.probed_mtls.push_back(mtl);
        const auto it_k = tm_probes.find(res.d_mtl);
        if (cores_ > 1 && it_k != tm_probes.end()) {
            double tm_n = it_k->second;
            const auto it_n = tm_probes.find(cores_);
            if (it_n != tm_probes.end()) {
                tm_n = it_n->second;
            } else if (tm_probes.size() >= 2) {
                const auto lo = *tm_probes.begin();
                const auto hi = *tm_probes.rbegin();
                const auto fit = QueuingModel::fit(
                    lo.first, lo.second, hi.first, hi.second);
                if (fit.tmAt(cores_) > 0.0)
                    tm_n = fit.tmAt(cores_);
            }
            const double predicted = AnalyticalModel::speedup(
                it_k->second, tm_n, selector_->probedTc(), res.d_mtl,
                cores_);
            if (predicted > 0.0 && std::isfinite(predicted))
                d.predicted_speedup = predicted;
        }
    }
    recordDecision(std::move(d));
    trigger_window_.reset();

    // Resume monitoring under the new MTL. Accept the boundary the
    // selection just established so the very next window does not
    // spuriously re-trigger.
    accepted_idle_bound_ = res.mtl_no_idle;
    detector_.reset();
    detector_.primeIdleBound(res.mtl_no_idle);

    state_ = State::Monitor;
    selector_.reset();
    probe_mtl_.reset();
}

void
DynamicThrottlePolicy::onBackpressure(double time,
                                      BackpressureState state,
                                      long backlog)
{
    (void)backlog;
    if (!slo_aware_)
        return;

    if (state == BackpressureState::Shed && !overload_hold_) {
        overload_hold_ = true;
        countMetric("policy.overload_entries");
        if (metrics_)
            metrics_->set("policy.overload", 1.0);

        // Pin the throughput-optimal MTL for the drain: the last
        // selected D-MTL if one exists, the unthrottled n when
        // overload hit mid-probe before any selection, the current
        // MTL otherwise. Degraded mode already holds the safe n.
        int target = mtl_;
        if (state_ != State::Degraded) {
            if (last_selected_mtl_ > 0)
                target = last_selected_mtl_;
            else if (state_ == State::Select)
                target = cores_;
        }

        MtlDecision d;
        d.reason = DecisionReason::Overload;
        d.time = time;
        d.from_mtl = mtl_;
        d.to_mtl = target;
        d.degraded = state_ == State::Degraded;

        if (state_ == State::Select) {
            // Abandon the in-flight selection: its remaining probes
            // would throttle the drain we are trying to maximize.
            selector_.reset();
            probe_mtl_.reset();
            trigger_window_.reset();
            state_ = State::Monitor;
        }
        if (state_ != State::Degraded) {
            mtl_ = target;
            traceMtl(time, mtl_);
        }
        recordDecision(std::move(d));
        return;
    }

    if (state == BackpressureState::Accept && overload_hold_) {
        overload_hold_ = false;
        if (metrics_)
            metrics_->set("policy.overload", 0.0);

        MtlDecision d;
        d.reason = DecisionReason::Reenter;
        d.time = time;
        d.from_mtl = mtl_;
        d.to_mtl = mtl_;
        d.degraded = state_ == State::Degraded;
        recordDecision(std::move(d));

        // The post-burst load regime may differ from the one the
        // pinned MTL was selected for: restart phase detection so
        // the next completed window re-selects.
        if (state_ != State::Degraded) {
            detector_.reset();
            accepted_idle_bound_.reset();
            last_ratio_ = -1.0;
        }
    }
}

void
DynamicThrottlePolicy::enterDegraded()
{
    ++stats_.fallbacks;
    countMetric("policy.fallbacks");
    if (metrics_)
        metrics_->set("policy.degraded", 1.0);
    state_ = State::Degraded;
    degraded_valid_ = 0;

    MtlDecision d;
    d.reason = DecisionReason::Degrade;
    d.time = last_sample_time_;
    d.from_mtl = mtl_;
    d.to_mtl = cores_;
    d.idle_bound = accepted_idle_bound_.value_or(0);
    d.degraded = true;

    // Abandon any in-flight selection: its probe measurements are
    // tainted by the same corruption that triggered the fallback.
    selector_.reset();
    probe_mtl_.reset();
    trigger_window_.reset();
    detector_.reset();
    accepted_idle_bound_.reset();
    last_ratio_ = -1.0;

    // The safe static MTL is the conventional, unthrottled schedule:
    // it forfeits the paper's speedup but can never corrupt the
    // schedule the way a garbage-driven D-MTL could.
    mtl_ = cores_;
    traceMtl(last_sample_time_, mtl_);
    recordDecision(std::move(d));
}

void
DynamicThrottlePolicy::leaveDegraded()
{
    if (metrics_)
        metrics_->set("policy.degraded", 0.0);
    state_ = State::Monitor;
    degraded_valid_ = 0;
    // With no accepted IdleBound the next completed window counts as
    // a phase change, which re-runs MTL selection -- the periodic
    // re-entry into dynamic mode.
    detector_.reset();
    accepted_idle_bound_.reset();
    last_ratio_ = -1.0;

    MtlDecision d;
    d.reason = DecisionReason::Reenter;
    d.time = last_sample_time_;
    d.from_mtl = mtl_;
    d.to_mtl = mtl_;
    recordDecision(std::move(d));
}

} // namespace tt::core
