#include "core/dynamic_policy.hh"

#include <cmath>
#include <cstdlib>

#include "util/logging.hh"
#include "util/stats.hh"

namespace tt::core {

DynamicThrottlePolicy::DynamicThrottlePolicy(int cores, int window,
                                             int initial,
                                             TriggerMode mode,
                                             double ratio_threshold)
    : cores_(cores),
      window_(window),
      mtl_(initial < 0 ? cores : initial),
      mode_(mode),
      ratio_threshold_(ratio_threshold),
      detector_(window, cores),
      reject_limit_(2 * window),
      reenter_after_(window)
{
    tt_assert(cores_ >= 1, "need at least one core");
    tt_assert(window_ >= 1, "monitoring window must be positive");
    tt_assert(mtl_ >= 1 && mtl_ <= cores_, "initial MTL out of range");
    traceMtl(0.0, mtl_);
}

void
DynamicThrottlePolicy::setFaultTolerance(int reject_limit,
                                         int reenter_after)
{
    tt_assert(reject_limit >= 1, "rejection limit must be positive");
    tt_assert(reenter_after >= 1, "re-entry threshold must be positive");
    reject_limit_ = reject_limit;
    reenter_after_ = reenter_after;
}

void
DynamicThrottlePolicy::setSampleGuardOptions(
    const SampleGuard::Options &options)
{
    guard_ = SampleGuard(options);
}

void
DynamicThrottlePolicy::setIdleBoundHysteresis(int amount)
{
    tt_assert(amount >= 0, "hysteresis must be non-negative");
    idle_bound_hysteresis_ = amount;
}

void
DynamicThrottlePolicy::onPairMeasured(const PairSample &sample)
{
    ++stats_.pairs_observed;

    // Screen before trusting anything in the sample -- even its
    // timestamp. A rejected sample never reaches the detector or the
    // selector; enough of them in a row and the measurements are
    // untrustworthy wholesale, so degrade to the safe static MTL.
    if (!guard_.accept(sample)) {
        ++stats_.samples_rejected;
        countMetric("policy.samples_rejected");
        ++consecutive_rejected_;
        degraded_valid_ = 0;
        if (state_ != State::Degraded &&
            consecutive_rejected_ >= reject_limit_)
            enterDegraded();
        return;
    }
    consecutive_rejected_ = 0;
    last_sample_time_ = sample.end_time;

    if (state_ == State::Degraded) {
        // Hold the safe MTL until measurements look healthy again,
        // then re-enter dynamic selection from scratch.
        if (++degraded_valid_ >= reenter_after_)
            leaveDegraded();
        return;
    }

    if (state_ == State::Monitor) {
        auto summary = detector_.addSample(sample, mtl_);
        if (!summary)
            return;
        bool triggered = false;
        if (mode_ == TriggerMode::kIdleBound) {
            triggered =
                !accepted_idle_bound_ ||
                std::abs(summary->idle_bound - *accepted_idle_bound_) >
                    idle_bound_hysteresis_;
        } else {
            // Naive criterion: any relative change of the ratio.
            const double ratio =
                summary->tc > 0.0 ? summary->tm / summary->tc : 1e18;
            if (last_ratio_ < 0.0) {
                // First completed window of the run.
                triggered = true;
            } else if (last_ratio_ == 0.0) {
                // A pure-compute window (tm == 0) has no relative
                // scale; fall back to an absolute test so a later
                // memory phase still registers instead of wedging
                // the trigger permanently.
                triggered = ratio > ratio_threshold_;
            } else {
                triggered =
                    std::abs(ratio - last_ratio_) / last_ratio_ >
                    ratio_threshold_;
            }
            last_ratio_ = ratio;
        }
        if (triggered) {
            ++stats_.phase_changes;
            countMetric("policy.phase_changes");
            beginSelection();
        }
        return;
    }

    // State::Select -- accumulate the current probe's window. Pairs
    // measured under a pre-probe MTL are rejected as stale and kept
    // out of the probe-overhead accounting (monitor_overhead counts
    // only samples the selection actually consumed).
    if (!probe_mtl_ || sample.mtl != *probe_mtl_) {
        ++stats_.stale_pairs;
        countMetric("policy.stale_pairs");
        return;
    }
    ++stats_.probe_pairs;
    countMetric("policy.probe_pairs");
    probe_tm_acc_ += sample.tm;
    probe_tc_acc_ += sample.tc;
    if (++probe_filled_ < window_)
        return;

    const double denom = static_cast<double>(window_);
    selector_->reportProbe(*probe_mtl_, probe_tm_acc_ / denom,
                           probe_tc_acc_ / denom);
    if (selector_->done())
        finishSelection();
    else
        startProbe();
}

void
DynamicThrottlePolicy::beginSelection()
{
    ++stats_.selections;
    countMetric("policy.selections");
    state_ = State::Select;
    selector_ = std::make_unique<MtlSelector>(cores_);
    if (selector_->done()) {
        // Degenerate single-core machine: nothing to search.
        finishSelection();
        return;
    }
    startProbe();
}

void
DynamicThrottlePolicy::startProbe()
{
    probe_mtl_ = selector_->nextProbe();
    tt_assert(probe_mtl_.has_value(), "probe requested after done");
    probe_filled_ = 0;
    probe_tm_acc_ = 0.0;
    probe_tc_acc_ = 0.0;
    mtl_ = *probe_mtl_;
    traceMtl(last_sample_time_, mtl_);
}

void
DynamicThrottlePolicy::finishSelection()
{
    MtlSelector::Result res;
    if (cores_ == 1) {
        res.d_mtl = 1;
        res.mtl_no_idle = 1;
    } else {
        res = selector_->result();
    }
    selection_log_.push_back(res);

    mtl_ = res.d_mtl;
    traceMtl(last_sample_time_, mtl_);

    // Resume monitoring under the new MTL. Accept the boundary the
    // selection just established so the very next window does not
    // spuriously re-trigger.
    accepted_idle_bound_ = res.mtl_no_idle;
    detector_.reset();
    detector_.primeIdleBound(res.mtl_no_idle);

    state_ = State::Monitor;
    selector_.reset();
    probe_mtl_.reset();
}

void
DynamicThrottlePolicy::enterDegraded()
{
    ++stats_.fallbacks;
    countMetric("policy.fallbacks");
    if (metrics_)
        metrics_->set("policy.degraded", 1.0);
    state_ = State::Degraded;
    degraded_valid_ = 0;

    // Abandon any in-flight selection: its probe measurements are
    // tainted by the same corruption that triggered the fallback.
    selector_.reset();
    probe_mtl_.reset();
    detector_.reset();
    accepted_idle_bound_.reset();
    last_ratio_ = -1.0;

    // The safe static MTL is the conventional, unthrottled schedule:
    // it forfeits the paper's speedup but can never corrupt the
    // schedule the way a garbage-driven D-MTL could.
    mtl_ = cores_;
    traceMtl(last_sample_time_, mtl_);
}

void
DynamicThrottlePolicy::leaveDegraded()
{
    if (metrics_)
        metrics_->set("policy.degraded", 0.0);
    state_ = State::Monitor;
    degraded_valid_ = 0;
    // With no accepted IdleBound the next completed window counts as
    // a phase change, which re-runs MTL selection -- the periodic
    // re-entry into dynamic mode.
    detector_.reset();
    accepted_idle_bound_.reset();
    last_ratio_ = -1.0;
}

} // namespace tt::core
