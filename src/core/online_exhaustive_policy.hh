/**
 * @file
 * The paper's naive "Online Exhaustive Search" baseline (Sec. V).
 *
 * This policy knows nothing of the analytical model. It watches the
 * wall-clock time taken by consecutive groups of W task pairs;
 * whenever a group's time differs from the previous group's by more
 * than a threshold (10% performed best in the paper), it re-selects
 * the MTL by brute force: it runs W pairs at *every* MTL from 1 to n,
 * times each group, and keeps the fastest. Contrast with
 * DynamicThrottlePolicy, which probes only O(log n) MTLs and judges
 * candidates with the model rather than with noisy group wall times.
 */

#ifndef TT_CORE_ONLINE_EXHAUSTIVE_POLICY_HH
#define TT_CORE_ONLINE_EXHAUSTIVE_POLICY_HH

#include <string>
#include <vector>

#include "core/policy.hh"
#include "core/sample_guard.hh"

namespace tt::core {

/** Brute-force online MTL search baseline. */
class OnlineExhaustivePolicy : public SchedulingPolicy
{
  public:
    /**
     * @param cores     n, hardware contexts
     * @param window    W, pairs per timed group
     * @param threshold relative group-time change that triggers a
     *                  re-selection (paper's best value: 0.10)
     */
    OnlineExhaustivePolicy(int cores, int window, double threshold = 0.10);

    /**
     * Fault-tolerance knobs, mirroring
     * DynamicThrottlePolicy::setFaultTolerance: after `reject_limit`
     * consecutive guard-rejected samples the policy abandons any
     * brute-force search in flight and pins the MTL to the safe
     * static value (n); `reenter_after` consecutive valid samples
     * re-arm the search from scratch.
     */
    void setFaultTolerance(int reject_limit, int reenter_after);

    /** True while degraded to the safe static MTL. */
    bool degraded() const override { return state_ == State::Degraded; }

    std::string name() const override { return "online-exhaustive"; }
    int currentMtl() const override { return mtl_; }
    void onPairMeasured(const PairSample &sample) override;

    int window() const { return window_; }

  private:
    void beginSearch(double now);
    void startGroup(double now);
    void enterDegraded(double now);

    enum class State { Monitor, Search, Degraded };

    int cores_;
    int window_;
    double threshold_;
    int mtl_;
    State state_ = State::Monitor;

    // Group timing.
    double group_start_ = 0.0;
    int group_filled_ = 0;
    double prev_group_time_ = -1.0;
    bool searched_once_ = false;

    // Search progress: measured group time per candidate MTL.
    int search_mtl_ = 0;
    std::vector<double> search_times_;

    // Fault tolerance: sample screening and graceful degradation.
    SampleGuard guard_;
    int reject_limit_;
    int reenter_after_;
    int consecutive_rejected_ = 0;
    int degraded_valid_ = 0;
};

} // namespace tt::core

#endif // TT_CORE_ONLINE_EXHAUSTIVE_POLICY_HH
