/**
 * @file
 * Scheduling-policy interface plus the two trivial policies.
 *
 * A policy is a sans-IO object: the hosting runtime (real threads in
 * tt_runtime, simulated cores in tt_simrt) reports every finished
 * memory-compute pair through onPairMeasured() and consults
 * currentMtl() each time it is about to start a memory task. This is
 * exactly the application-layer structure the paper prototypes with
 * a lock and a counter (Sec. V).
 */

#ifndef TT_CORE_POLICY_HH
#define TT_CORE_POLICY_HH

#include <string>
#include <utility>
#include <vector>

#include "core/samples.hh"

namespace tt::core {

/** Abstract MTL-scheduling policy. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Human-readable policy name for reports. */
    virtual std::string name() const = 0;

    /** MTL the runtime must enforce for the next memory task. */
    virtual int currentMtl() const = 0;

    /** Deliver the measurement of one finished pair. */
    virtual void onPairMeasured(const PairSample &sample) = 0;

    /** Counters accumulated so far. */
    virtual PolicyStats stats() const { return stats_; }

    /**
     * Trace of (time, mtl) at every MTL switch, starting with the
     * initial value at time 0; used by the phase-adaptation reports.
     */
    const std::vector<std::pair<double, int>> &
    mtlTrace() const
    {
        return mtl_trace_;
    }

  protected:
    /** Record an MTL change in the trace and the counters. */
    void
    traceMtl(double time, int mtl)
    {
        if (!mtl_trace_.empty() && mtl_trace_.back().second == mtl)
            return;
        if (!mtl_trace_.empty())
            ++stats_.mtl_switches;
        mtl_trace_.emplace_back(time, mtl);
    }

    PolicyStats stats_;

  private:
    std::vector<std::pair<double, int>> mtl_trace_;
};

/**
 * Interference-oblivious baseline: MTL is pinned to the core count,
 * i.e. memory tasks are never throttled.
 */
class ConventionalPolicy : public SchedulingPolicy
{
  public:
    explicit ConventionalPolicy(int cores);

    std::string name() const override { return "conventional"; }
    int currentMtl() const override { return cores_; }
    void onPairMeasured(const PairSample &sample) override;

  private:
    int cores_;
};

/** Fixed MTL=k for the whole run (the paper's S-MTL building block). */
class StaticMtlPolicy : public SchedulingPolicy
{
  public:
    StaticMtlPolicy(int mtl, int cores);

    std::string name() const override;
    int currentMtl() const override { return mtl_; }
    void onPairMeasured(const PairSample &sample) override;

  private:
    int mtl_;
};

} // namespace tt::core

#endif // TT_CORE_POLICY_HH
