/**
 * @file
 * Scheduling-policy interface plus the two trivial policies.
 *
 * A policy is a sans-IO object: the hosting runtime (real threads in
 * tt_runtime, simulated cores in tt_simrt) reports every finished
 * memory-compute pair through onPairMeasured() and consults
 * currentMtl() each time it is about to start a memory task. This is
 * exactly the application-layer structure the paper prototypes with
 * a lock and a counter (Sec. V).
 */

#ifndef TT_CORE_POLICY_HH
#define TT_CORE_POLICY_HH

#include <string>
#include <utility>
#include <vector>

#include "core/audit.hh"
#include "core/samples.hh"

namespace tt {
class MetricsRegistry;
}

namespace tt::core {

/** Abstract MTL-scheduling policy. */
class SchedulingPolicy
{
  public:
    virtual ~SchedulingPolicy() = default;

    /** Human-readable policy name for reports. */
    virtual std::string name() const = 0;

    /** MTL the runtime must enforce for the next memory task. */
    virtual int currentMtl() const = 0;

    /** Deliver the measurement of one finished pair. */
    virtual void onPairMeasured(const PairSample &sample) = 0;

    /** Counters accumulated so far. */
    virtual PolicyStats stats() const { return stats_; }

    /** True while in a fault-tolerance fallback (adaptive policies). */
    virtual bool degraded() const { return false; }

    /**
     * Admission backpressure changed state (open-loop runs only). The
     * hosting engine calls this on transitions, not per arrival;
     * `backlog` is the admission controller's virtual backlog at the
     * transition. Default: ignore -- only SLO-aware policies react.
     */
    virtual void
    onBackpressure(double time, BackpressureState state, long backlog)
    {
        (void)time;
        (void)state;
        (void)backlog;
    }

    /**
     * Attach a metrics registry (not owned; nullptr detaches). A
     * bound policy publishes its decision counters -- MTL switches,
     * phase changes, selections, accepted vs stale probe samples --
     * under "policy.*" as they happen, so a live run is observable
     * without waiting for stats().
     */
    void bindMetrics(MetricsRegistry *metrics) { metrics_ = metrics; }

    /**
     * Trace of (time, mtl) at every MTL switch, starting with the
     * initial value at time 0; used by the phase-adaptation reports.
     */
    const std::vector<std::pair<double, int>> &
    mtlTrace() const
    {
        return mtl_trace_;
    }

    /**
     * Audit log: every MTL transition with the measurements that
     * drove it, in decision order. Static policies leave it empty;
     * the adaptive policies append one record per transition (see
     * core/audit.hh). Consumed by obs::TraceData / ttreport.
     */
    const std::vector<MtlDecision> &
    decisions() const
    {
        return decision_log_;
    }

  protected:
    /** Record an MTL change in the trace, counters and metrics. */
    void traceMtl(double time, int mtl);

    /** Append one audit record (and publish its headline metrics). */
    void recordDecision(MtlDecision decision);

    /** Bump a counter in the bound registry, if any. */
    void countMetric(const char *name, long delta = 1);

    PolicyStats stats_;
    MetricsRegistry *metrics_ = nullptr;

  private:
    std::vector<std::pair<double, int>> mtl_trace_;
    std::vector<MtlDecision> decision_log_;
};

/**
 * Interference-oblivious baseline: MTL is pinned to the core count,
 * i.e. memory tasks are never throttled.
 */
class ConventionalPolicy : public SchedulingPolicy
{
  public:
    explicit ConventionalPolicy(int cores);

    std::string name() const override { return "conventional"; }
    int currentMtl() const override { return cores_; }
    void onPairMeasured(const PairSample &sample) override;

  private:
    int cores_;
};

/** Fixed MTL=k for the whole run (the paper's S-MTL building block). */
class StaticMtlPolicy : public SchedulingPolicy
{
  public:
    StaticMtlPolicy(int mtl, int cores);

    std::string name() const override;
    int currentMtl() const override { return mtl_; }
    void onPairMeasured(const PairSample &sample) override;

  private:
    int mtl_;
};

} // namespace tt::core

#endif // TT_CORE_POLICY_HH
