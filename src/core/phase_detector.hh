/**
 * @file
 * Coarse-grained phase change detection (paper Sec. IV-B).
 *
 * The detector accumulates the execution times of W memory-compute
 * task pairs, estimates T_mk and T_c from their averages, and derives
 * IdleBound -- the minimum MTL at which the analytical model says all
 * cores stay busy. Only a change of IdleBound (a change in core idle
 * *behaviour*, not merely in the memory-to-compute ratio) counts as a
 * phase change; this is what keeps MTL re-selection rare and cheap.
 */

#ifndef TT_CORE_PHASE_DETECTOR_HH
#define TT_CORE_PHASE_DETECTOR_HH

#include <optional>

#include "core/samples.hh"

namespace tt::core {

/** Result of one full monitoring window. */
struct WindowSummary
{
    double tm = 0.0;     ///< mean memory-task time over the window
    double tc = 0.0;     ///< mean compute-task time over the window
    int idle_bound = 1;  ///< min MTL with all cores busy (model)
    bool phase_change = false; ///< IdleBound differs from last window
};

/** IdleBound-based phase change detector. */
class PhaseDetector
{
  public:
    /**
     * @param window w, the number of pairs averaged per estimate
     * @param cores  n, hardware contexts available to the runtime
     */
    PhaseDetector(int window, int cores);

    /**
     * Feed one pair measurement. Samples taken under an MTL other
     * than `expected_mtl` are discarded (they reflect a stale
     * constraint). Returns a summary exactly when the W-th valid
     * sample arrives, then starts a fresh window.
     */
    std::optional<WindowSummary> addSample(const PairSample &sample,
                                           int expected_mtl);

    /** Forget window contents and phase history (e.g. after probing). */
    void reset();

    /** Forget window contents but keep the last IdleBound. */
    void resetWindow();

    /**
     * Install an externally determined IdleBound (e.g. the boundary a
     * completed MTL selection just located) so the next window is
     * compared against it instead of unconditionally triggering.
     */
    void primeIdleBound(int idle_bound) { last_idle_bound_ = idle_bound; }

    /** Last completed window's IdleBound, if any window completed. */
    std::optional<int> lastIdleBound() const { return last_idle_bound_; }

    int window() const { return window_; }
    int cores() const { return cores_; }

  private:
    int window_;
    int cores_;
    int filled_ = 0;
    double tm_acc_ = 0.0;
    double tc_acc_ = 0.0;
    std::optional<int> last_idle_bound_;
};

} // namespace tt::core

#endif // TT_CORE_PHASE_DETECTOR_HH
