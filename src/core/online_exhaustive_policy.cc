#include "core/online_exhaustive_policy.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace tt::core {

OnlineExhaustivePolicy::OnlineExhaustivePolicy(int cores, int window,
                                               double threshold)
    : cores_(cores), window_(window), threshold_(threshold), mtl_(cores),
      reject_limit_(2 * window), reenter_after_(window)
{
    tt_assert(cores_ >= 1, "need at least one core");
    tt_assert(window_ >= 1, "monitoring window must be positive");
    tt_assert(threshold_ > 0.0, "threshold must be positive");
    traceMtl(0.0, mtl_);

    MtlDecision d;
    d.reason = DecisionReason::Initial;
    d.to_mtl = mtl_;
    recordDecision(std::move(d));
}

void
OnlineExhaustivePolicy::setFaultTolerance(int reject_limit,
                                          int reenter_after)
{
    tt_assert(reject_limit >= 1, "rejection limit must be positive");
    tt_assert(reenter_after >= 1, "re-entry threshold must be positive");
    reject_limit_ = reject_limit;
    reenter_after_ = reenter_after;
}

void
OnlineExhaustivePolicy::onPairMeasured(const PairSample &sample)
{
    ++stats_.pairs_observed;

    // Non-finite, negative or extreme-outlier measurements would
    // poison the timed groups the search compares; drop them, and
    // after a sustained run of garbage fall back to the safe static
    // MTL (see DynamicThrottlePolicy for the rationale).
    if (!guard_.accept(sample)) {
        ++stats_.samples_rejected;
        countMetric("policy.samples_rejected");
        ++consecutive_rejected_;
        degraded_valid_ = 0;
        if (state_ != State::Degraded &&
            consecutive_rejected_ >= reject_limit_)
            enterDegraded(sample.end_time);
        return;
    }
    consecutive_rejected_ = 0;

    if (state_ == State::Degraded) {
        if (++degraded_valid_ >= reenter_after_) {
            if (metrics_)
                metrics_->set("policy.degraded", 0.0);
            state_ = State::Monitor;
            degraded_valid_ = 0;
            // Forget the search history: the next completed group
            // re-triggers the initial brute-force search.
            prev_group_time_ = -1.0;
            searched_once_ = false;
            startGroup(sample.end_time);

            MtlDecision d;
            d.reason = DecisionReason::Reenter;
            d.time = sample.end_time;
            d.from_mtl = mtl_;
            d.to_mtl = mtl_;
            recordDecision(std::move(d));
        }
        return;
    }

    if (state_ == State::Search) {
        // Only pairs actually executed under the candidate MTL count
        // toward its timed group -- or toward the probe overhead.
        if (sample.mtl != search_mtl_) {
            ++stats_.stale_pairs;
            countMetric("policy.stale_pairs");
            return;
        }
        ++stats_.probe_pairs;
        countMetric("policy.probe_pairs");
        if (++group_filled_ < window_)
            return;

        search_times_.push_back(sample.end_time - group_start_);
        if (search_mtl_ < cores_) {
            const int prev = mtl_;
            ++search_mtl_;
            mtl_ = search_mtl_;
            traceMtl(sample.end_time, mtl_);
            startGroup(sample.end_time);

            MtlDecision d;
            d.reason = DecisionReason::Probe;
            d.time = sample.end_time;
            d.from_mtl = prev;
            d.to_mtl = mtl_;
            d.window_tm = search_times_.back(); // candidate group time
            recordDecision(std::move(d));
            return;
        }
        // All candidates timed: keep the fastest.
        const int prev = mtl_;
        const auto best = std::min_element(search_times_.begin(),
                                           search_times_.end());
        mtl_ = static_cast<int>(best - search_times_.begin()) + 1;
        traceMtl(sample.end_time, mtl_);
        state_ = State::Monitor;
        prev_group_time_ = -1.0; // re-establish the baseline

        // Model-free audit record: the candidate ranks stay zero, and
        // the predicted speedup is the ratio of the measured group
        // time at MTL=n to the winner's (the search's implicit
        // estimate of its gain over the unthrottled schedule).
        MtlDecision d;
        d.reason = DecisionReason::Select;
        d.time = sample.end_time;
        d.from_mtl = prev;
        d.to_mtl = mtl_;
        d.window_tm = *best;
        d.probes_used = cores_ * window_;
        for (int k = 1; k <= cores_; ++k)
            d.probed_mtls.push_back(k);
        if (*best > 0.0)
            d.predicted_speedup = search_times_.back() / *best;
        recordDecision(std::move(d));
        startGroup(sample.end_time);
        return;
    }

    // State::Monitor -- time consecutive groups of W pairs.
    if (++group_filled_ < window_)
        return;
    const double group_time = sample.end_time - group_start_;
    const bool baseline_missing = prev_group_time_ < 0.0;
    // The very first group of the run triggers the initial search;
    // after a search, the first monitored group only re-establishes
    // the comparison baseline.
    const bool initial = baseline_missing && !searched_once_;
    const bool big_change =
        !baseline_missing && prev_group_time_ > 0.0 &&
        std::abs(group_time - prev_group_time_) / prev_group_time_ >
            threshold_;
    prev_group_time_ = group_time;
    if (initial || big_change) {
        ++stats_.phase_changes;
        countMetric("policy.phase_changes");
        beginSearch(sample.end_time);
    } else {
        startGroup(sample.end_time);
    }
}

void
OnlineExhaustivePolicy::beginSearch(double now)
{
    ++stats_.selections;
    countMetric("policy.selections");
    searched_once_ = true;
    state_ = State::Search;
    search_times_.clear();
    const int prev = mtl_;
    search_mtl_ = 1;
    mtl_ = 1;
    traceMtl(now, mtl_);
    startGroup(now);

    MtlDecision d;
    d.reason = DecisionReason::Search;
    d.time = now;
    d.from_mtl = prev;
    d.to_mtl = mtl_;
    d.window_tm = prev_group_time_ > 0.0 ? prev_group_time_ : 0.0;
    recordDecision(std::move(d));
}

void
OnlineExhaustivePolicy::startGroup(double now)
{
    group_start_ = now;
    group_filled_ = 0;
}

void
OnlineExhaustivePolicy::enterDegraded(double now)
{
    ++stats_.fallbacks;
    countMetric("policy.fallbacks");
    if (metrics_)
        metrics_->set("policy.degraded", 1.0);
    state_ = State::Degraded;
    degraded_valid_ = 0;
    search_times_.clear();
    const int prev = mtl_;
    mtl_ = cores_;
    traceMtl(now, mtl_);

    MtlDecision d;
    d.reason = DecisionReason::Degrade;
    d.time = now;
    d.from_mtl = prev;
    d.to_mtl = mtl_;
    d.degraded = true;
    recordDecision(std::move(d));
}

} // namespace tt::core
