#include "core/policy.hh"

#include "util/logging.hh"
#include "util/stats.hh"

namespace tt::core {

void
SchedulingPolicy::traceMtl(double time, int mtl)
{
    if (metrics_)
        metrics_->set("policy.mtl", mtl);
    if (!mtl_trace_.empty() && mtl_trace_.back().second == mtl)
        return;
    if (!mtl_trace_.empty()) {
        ++stats_.mtl_switches;
        countMetric("policy.mtl_switches");
    }
    mtl_trace_.emplace_back(time, mtl);
}

void
SchedulingPolicy::countMetric(const char *name, long delta)
{
    if (metrics_)
        metrics_->add(name, delta);
}

void
SchedulingPolicy::recordDecision(MtlDecision decision)
{
    if (metrics_) {
        metrics_->add("policy.decisions", 1);
        if (decision.predicted_speedup > 0.0)
            metrics_->set("policy.predicted_speedup",
                          decision.predicted_speedup);
    }
    decision_log_.push_back(std::move(decision));
}

const char *
decisionReasonName(DecisionReason reason)
{
    switch (reason) {
      case DecisionReason::Initial:
        return "initial";
      case DecisionReason::Probe:
        return "probe";
      case DecisionReason::Search:
        return "search";
      case DecisionReason::Select:
        return "select";
      case DecisionReason::Degrade:
        return "degrade";
      case DecisionReason::Reenter:
        return "reenter";
      case DecisionReason::Overload:
        return "overload";
    }
    return "?";
}

const char *
backpressureStateName(BackpressureState state)
{
    switch (state) {
      case BackpressureState::Accept:
        return "accept";
      case BackpressureState::Delay:
        return "delay";
      case BackpressureState::Shed:
        return "shed";
    }
    return "?";
}

ConventionalPolicy::ConventionalPolicy(int cores)
    : cores_(cores)
{
    tt_assert(cores_ >= 1, "need at least one core");
    traceMtl(0.0, cores_);
}

void
ConventionalPolicy::onPairMeasured(const PairSample &sample)
{
    (void)sample;
    ++stats_.pairs_observed;
}

StaticMtlPolicy::StaticMtlPolicy(int mtl, int cores)
    : mtl_(mtl)
{
    tt_assert(cores >= 1, "need at least one core");
    tt_assert(mtl_ >= 1 && mtl_ <= cores,
              "static MTL ", mtl_, " out of range [1, ", cores, "]");
    traceMtl(0.0, mtl_);
}

std::string
StaticMtlPolicy::name() const
{
    return "static-mtl-" + std::to_string(mtl_);
}

void
StaticMtlPolicy::onPairMeasured(const PairSample &sample)
{
    (void)sample;
    ++stats_.pairs_observed;
}

} // namespace tt::core
