#include "core/policy.hh"

#include "util/logging.hh"

namespace tt::core {

ConventionalPolicy::ConventionalPolicy(int cores)
    : cores_(cores)
{
    tt_assert(cores_ >= 1, "need at least one core");
    traceMtl(0.0, cores_);
}

void
ConventionalPolicy::onPairMeasured(const PairSample &sample)
{
    (void)sample;
    ++stats_.pairs_observed;
}

StaticMtlPolicy::StaticMtlPolicy(int mtl, int cores)
    : mtl_(mtl)
{
    tt_assert(cores >= 1, "need at least one core");
    tt_assert(mtl_ >= 1 && mtl_ <= cores,
              "static MTL ", mtl_, " out of range [1, ", cores, "]");
    traceMtl(0.0, mtl_);
}

std::string
StaticMtlPolicy::name() const
{
    return "static-mtl-" + std::to_string(mtl_);
}

void
StaticMtlPolicy::onPairMeasured(const PairSample &sample)
{
    (void)sample;
    ++stats_.pairs_observed;
}

} // namespace tt::core
