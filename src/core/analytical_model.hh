/**
 * @file
 * The paper's analytical performance model (Sec. IV-A).
 *
 * Symbols follow Table I of the paper:
 *   - n     : number of processor cores (hardware contexts)
 *   - k     : the Memory Task Limit (MTL) under evaluation
 *   - T_mk  : average execution time of a memory task under MTL=k
 *   - T_c   : average execution time of a compute task (invariant
 *             to MTL because compute tasks hit in the LLC)
 *   - t     : number of memory-compute task pairs
 *
 * Core idle test (Eq. 1):
 *     T_mk / T_c  >  k / (n - k)   ==>  some cores idle at MTL=k
 *     T_mk / T_c  <= k / (n - k)   ==>  all cores busy at MTL=k
 *
 * Execution-time estimates in steady state:
 *     all busy : (T_mk + T_c) * t / n
 *     some idle:  T_mk * t / k
 *
 * Speedups versus the interference-oblivious schedule (MTL = n):
 *     all busy :  (T_mn + T_c) / (T_mk + T_c)
 *     some idle:  (T_mn + T_c) * k / (T_mk * n)
 */

#ifndef TT_CORE_ANALYTICAL_MODEL_HH
#define TT_CORE_ANALYTICAL_MODEL_HH

namespace tt::core {

/**
 * Queuing decomposition of memory-task latency used in the paper's
 * MTL-selection proof (Sec. IV-C):  T_mb = T_ml + b * T_ql, where
 * T_ml is the contention-free latency and T_ql the per-competitor
 * queuing increment.
 */
struct QueuingModel
{
    double tml = 0.0; ///< contention-free memory task time
    double tql = 0.0; ///< queuing increment per concurrent memory task

    /** Predicted memory-task time under MTL=k. */
    double tmAt(int k) const { return tml + static_cast<double>(k) * tql; }

    /**
     * Fit (tml, tql) from two measurements: T_m at MTL=a and MTL=b.
     * Requires a != b.
     */
    static QueuingModel fit(int a, double tm_a, int b, double tm_b);
};

/** Static evaluator for the Sec. IV-A formulas. */
class AnalyticalModel
{
  public:
    /**
     * Eq. 1 idle test: does MTL=k leave some cores idle?
     * MTL = n can never force idleness (there is no restriction).
     *
     * @param tm_k measured memory-task time under MTL=k
     * @param tc   measured compute-task time
     * @param k    MTL under evaluation, 1 <= k <= n
     * @param n    core count
     */
    static bool someCoresIdle(double tm_k, double tc, int k, int n);

    /** Complement of someCoresIdle(). */
    static bool
    allCoresBusy(double tm_k, double tc, int k, int n)
    {
        return !someCoresIdle(tm_k, tc, k, n);
    }

    /**
     * IdleBound: the minimum MTL at which all cores are busy,
     * approximating T_mj by the supplied `tm` for every j (the
     * run-time mechanism only has the measurement at the current
     * MTL). Closed form: ceil(n * tm / (tm + tc)), clamped to [1, n].
     */
    static int idleBound(double tm, double tc, int n);

    /** Steady-state execution-time estimate for t pairs at MTL=k. */
    static double execTime(double tm_k, double tc, int t, int k, int n);

    /**
     * Speedup of MTL=k over the interference-oblivious MTL=n
     * schedule, given measurements at both points.
     */
    static double speedup(double tm_k, double tm_n, double tc, int k,
                          int n);

    /**
     * Comparison key proportional to throughput at MTL=k; the
     * (T_mn + T_c) numerator common to both speedup formulas cancels,
     * so two candidate MTLs can be ranked without a measurement at
     * MTL=n. Larger is better.
     */
    static double speedupRank(double tm_k, double tc, int k, int n);

    /**
     * The T_mk/T_c ratio at which the speedup curve for region
     * S-MTL=k peaks (the region boundary k / (n - k); +infinity for
     * k == n).
     */
    static double regionBoundary(int k, int n);
};

} // namespace tt::core

#endif // TT_CORE_ANALYTICAL_MODEL_HH
