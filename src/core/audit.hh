/**
 * @file
 * Policy decision audit records.
 *
 * Every MTL transition an adaptive policy makes is driven by
 * measurements: a monitoring window's T_m/T_c and IdleBound, a probe
 * schedule, the model ranks of the two candidate MTLs, or a
 * fault-tolerance fallback. MtlDecision captures those inputs at the
 * moment of the transition so a run can be audited after the fact --
 * "why did the policy pick MTL=2 at t=1.3ms?" becomes a lookup, not
 * a re-derivation. The records ride along in obs::TraceData, render
 * as Chrome-trace instant events, and feed the ttreport audit table.
 */

#ifndef TT_CORE_AUDIT_HH
#define TT_CORE_AUDIT_HH

#include <vector>

namespace tt::core {

/** Why a policy changed (or confirmed) its MTL. */
enum class DecisionReason
{
    Initial, ///< the policy's starting MTL, before any measurement
    Probe,   ///< temporary switch to measure a candidate MTL
    Search,  ///< online-exhaustive brute-force sweep started
    Select,  ///< a completed selection applied its winner
    Degrade, ///< fault-tolerance fallback to the safe static MTL
    Reenter, ///< left degraded/overload mode, back to normal operation
    Overload, ///< admission control started shedding; MTL pinned for drain
};

/** Stable lower-case name for reports and trace events. */
const char *decisionReasonName(DecisionReason reason);

/**
 * Admission backpressure state the engine publishes to its policy and
 * to the timeseries. Declared here (not in tt_load) so policies can
 * react to overload without a dependency on the load generator.
 */
enum class BackpressureState
{
    Accept, ///< admitting everything; backlog below the delay watermark
    Delay,  ///< admitting, but arrivals queue behind a visible backlog
    Shed,   ///< overloaded: dropping work (lowest priority first)
};

/** Stable lower-case name ("accept"/"delay"/"shed"). */
const char *backpressureStateName(BackpressureState state);

/**
 * One audited MTL transition with the inputs that drove it. Fields
 * that a given reason cannot know stay at their zero defaults (e.g.
 * a Probe has no candidate ranks yet; the model-free online
 * exhaustive search never computes an IdleBound).
 */
struct MtlDecision
{
    double time = 0.0;  ///< seconds from run start (last sample time)
    int from_mtl = 0;   ///< MTL in force before (0 for Initial)
    int to_mtl = 0;     ///< MTL in force after
    DecisionReason reason = DecisionReason::Initial;

    double window_tm = 0.0; ///< triggering window's mean T_m (seconds)
    double window_tc = 0.0; ///< triggering window's mean T_c (seconds)
    int idle_bound = 0;     ///< IdleBound derived from that window

    int mtl_no_idle = 0;      ///< candidate: min MTL with all cores busy
    int mtl_idle = 0;         ///< candidate: max MTL with idle cores (0 if none)
    double rank_no_idle = 0.0; ///< model rank of mtl_no_idle
    double rank_idle = 0.0;    ///< model rank of mtl_idle

    /** Predicted speedup of to_mtl over the unthrottled MTL=n. */
    double predicted_speedup = 0.0;

    int probes_used = 0;         ///< probe measurements consumed
    std::vector<int> probed_mtls; ///< MTLs measured by the selection

    bool degraded = false; ///< decision made in/into degraded state
};

} // namespace tt::core

#endif // TT_CORE_AUDIT_HH
