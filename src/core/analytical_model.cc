#include "core/analytical_model.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace tt::core {

QueuingModel
QueuingModel::fit(int a, double tm_a, int b, double tm_b)
{
    tt_assert(a != b, "QueuingModel::fit needs two distinct MTLs");
    QueuingModel qm;
    qm.tql = (tm_b - tm_a) / static_cast<double>(b - a);
    qm.tml = tm_a - static_cast<double>(a) * qm.tql;
    return qm;
}

namespace {

/**
 * Degenerate-measurement guard: the run-time mechanism can feed the
 * model times from corrupted windows (clock glitches, injected
 * faults). Negative and NaN durations carry no information and are
 * clamped to zero, which steers every formula to its harmless
 * degenerate branch; +infinity is preserved (an "infinitely slow"
 * task is a meaningful limit the formulas already handle).
 */
double
sanitizeTime(double t)
{
    if (std::isnan(t) || t < 0.0)
        return 0.0;
    return t;
}

} // namespace

bool
AnalyticalModel::someCoresIdle(double tm_k, double tc, int k, int n)
{
    tt_assert(n >= 1, "need at least one core");
    tt_assert(k >= 1 && k <= n, "MTL ", k, " out of range [1, ", n, "]");
    tm_k = sanitizeTime(tm_k);
    tc = sanitizeTime(tc);
    if (k == n)
        return false; // no restriction, cores are never forced idle
    if (std::isinf(tm_k))
        return !std::isinf(tc); // inf vs inf: no evidence of idling
    // T_mk / T_c > k / (n - k), cross-multiplied to avoid divide-by-0
    // when tc == 0 (a pure-memory phase is idle-bound at any k < n as
    // long as memory tasks take non-zero time).
    return tm_k * static_cast<double>(n - k) > tc * static_cast<double>(k);
}

int
AnalyticalModel::idleBound(double tm, double tc, int n)
{
    tt_assert(n >= 1, "need at least one core");
    tm = sanitizeTime(tm);
    tc = sanitizeTime(tc);
    if (std::isinf(tm))
        return std::isinf(tc) ? 1 : n; // memory-dominated limit
    if (std::isinf(tc))
        return 1; // compute-dominated limit: throttling cannot bind
    const double total = tm + tc;
    if (total <= 0.0)
        return 1; // degenerate zero-length tasks: no restriction binds
    const int bound = static_cast<int>(
        std::ceil(static_cast<double>(n) * tm / total -
                  // tolerate FP noise exactly on the boundary
                  1e-12));
    if (bound < 1)
        return 1;
    if (bound > n)
        return n;
    return bound;
}

double
AnalyticalModel::execTime(double tm_k, double tc, int t, int k, int n)
{
    tt_assert(t >= 0, "negative pair count");
    const double pairs = static_cast<double>(t);
    if (someCoresIdle(tm_k, tc, k, n))
        return tm_k * pairs / static_cast<double>(k);
    return (tm_k + tc) * pairs / static_cast<double>(n);
}

double
AnalyticalModel::speedup(double tm_k, double tm_n, double tc, int k, int n)
{
    const double base = tm_n + tc;
    if (someCoresIdle(tm_k, tc, k, n)) {
        tt_assert(tm_k > 0.0, "idle-regime speedup needs tm_k > 0");
        return base * static_cast<double>(k) /
               (tm_k * static_cast<double>(n));
    }
    tt_assert(tm_k + tc > 0.0, "busy-regime speedup needs tm_k+tc > 0");
    return base / (tm_k + tc);
}

double
AnalyticalModel::speedupRank(double tm_k, double tc, int k, int n)
{
    // speedup = (T_mn + T_c) * rank, with
    //   rank = 1 / (T_mk + T_c)          when all cores busy
    //   rank = k / (T_mk * n)            when some cores idle
    if (someCoresIdle(tm_k, tc, k, n)) {
        if (tm_k <= 0.0)
            return std::numeric_limits<double>::infinity();
        return static_cast<double>(k) / (tm_k * static_cast<double>(n));
    }
    if (tm_k + tc <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / (tm_k + tc);
}

double
AnalyticalModel::regionBoundary(int k, int n)
{
    tt_assert(k >= 1 && k <= n, "MTL out of range");
    if (k == n)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(k) / static_cast<double>(n - k);
}

} // namespace tt::core
