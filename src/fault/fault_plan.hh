/**
 * @file
 * Deterministic fault injection for chaos-testing the runtimes.
 *
 * A FaultPlan is a pure function from (seed, task id, attempt) to a
 * set of fault decisions: task-body exceptions, straggler latency
 * multipliers, corrupted (non-finite / negative) timing samples, and
 * worker stalls. Decisions are derived by hashing, not by drawing
 * from a sequential RNG stream, so they are independent of thread
 * interleaving and scheduling order -- the same plan applied to
 * runtime::Runtime (real threads) and simrt::SimRuntime (simulated
 * time) injects the *same* faults into the *same* tasks, which makes
 * chaos runs reproducible and host/sim behaviour directly
 * comparable.
 *
 * The plan is consulted by the runtimes at three points:
 *  - before executing a task body (fail / stall / straggler);
 *  - when a pair sample is assembled (corruption, keyed by the
 *    pair's compute task, independent of the attempt so a retried
 *    task corrupts identically);
 *  - by ttsim, to report what was injected.
 */

#ifndef TT_FAULT_FAULT_PLAN_HH
#define TT_FAULT_FAULT_PLAN_HH

#include <cstdint>
#include <stdexcept>
#include <string>

#include "stream/task.hh"

namespace tt::fault {

/** Knobs of one fault-injection campaign. */
struct FaultConfig
{
    /** Seed; two plans with equal config inject identical faults. */
    std::uint64_t seed = 0;

    /** Probability a task attempt throws from its body. */
    double fail_p = 0.0;

    /** Probability a task attempt runs as a straggler. */
    double straggler_p = 0.0;

    /** Latency multiplier applied to straggler attempts (>= 1). */
    double straggler_factor = 4.0;

    /** Probability a pair's timing sample is corrupted. */
    double corrupt_p = 0.0;

    /** Probability a task attempt stalls its worker. */
    double stall_p = 0.0;

    /**
     * How long a stalled worker hangs, in (host wall / simulated)
     * seconds. Set it beyond the watchdog deadline to model a wedge.
     */
    double stall_seconds = 0.05;

    /** Probability a job's arrival rides an injected traffic burst
     *  (its inter-arrival gap is divided by burst_compression). */
    double arrival_burst_p = 0.0;

    /** Inter-arrival compression of burst-faulted jobs (>= 1). */
    double burst_compression = 8.0;

    /** Probability a job's deadline is slashed (a deadline storm). */
    double deadline_storm_p = 0.0;

    /** SLO multiplier for storm-faulted jobs (in (0, 1]). */
    double storm_slash = 0.25;

    /** True when any task-level injection probability is nonzero. */
    bool
    enabled() const
    {
        return fail_p > 0.0 || straggler_p > 0.0 || corrupt_p > 0.0 ||
               stall_p > 0.0;
    }

    /** True when any job-level (arrival-plan) fault is configured. */
    bool
    jobFaultsEnabled() const
    {
        return arrival_burst_p > 0.0 || deadline_storm_p > 0.0;
    }
};

/** Decisions for one offered job of an open-loop arrival plan. */
struct JobFaults
{
    bool burst = false;          ///< compress this job's arrival gap
    bool deadline_storm = false; ///< slash this job's SLO
    double burst_compression = 1.0;
    double storm_slash = 1.0;
};

/** Decisions for one (task, attempt). */
struct TaskFaults
{
    bool fail = false;           ///< throw from the task body
    bool stall = false;          ///< hang the worker for stall_seconds
    bool corrupt_sample = false; ///< poison the pair's PairSample
    double latency_factor = 1.0; ///< 1.0 = no straggling
};

/** The exception an injected task-body failure throws. */
class InjectedFault : public std::runtime_error
{
  public:
    InjectedFault(stream::TaskId task, int attempt)
        : std::runtime_error("injected fault: task " +
                             std::to_string(task) + " attempt " +
                             std::to_string(attempt)),
          task_(task), attempt_(attempt)
    {
    }

    stream::TaskId task() const { return task_; }
    int attempt() const { return attempt_; }

  private:
    stream::TaskId task_;
    int attempt_;
};

/** Seeded, order-independent fault decision table. */
class FaultPlan
{
  public:
    explicit FaultPlan(const FaultConfig &config);

    const FaultConfig &config() const { return config_; }
    bool enabled() const { return config_.enabled(); }

    /**
     * Decisions for attempt `attempt` (0-based) of task `task`.
     * Deterministic in (seed, task, attempt) only; corruption is
     * keyed by the task alone so retries corrupt identically.
     */
    TaskFaults forTask(stream::TaskId task, int attempt) const;

    /**
     * Job-level decisions for job index `job` of an arrival plan.
     * Deterministic in (seed, job) -- the plan generator consults
     * this once, at plan-build time, so a perturbed plan replays
     * identically on both backends.
     */
    JobFaults forJob(int job) const;

    /**
     * The poisoned value a corrupted sample field takes: cycles
     * deterministically through NaN, +infinity, a negative time and
     * an absurdly large outlier, so validators see every shape of
     * garbage.
     */
    double corruptValue(stream::TaskId task, int field) const;

  private:
    /** Uniform [0, 1) from the decision coordinates. */
    double roll(stream::TaskId task, int attempt,
                std::uint64_t salt) const;

    FaultConfig config_;
};

} // namespace tt::fault

#endif // TT_FAULT_FAULT_PLAN_HH
