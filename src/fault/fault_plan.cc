#include "fault/fault_plan.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace tt::fault {

namespace {

/** SplitMix64 finaliser: a strong 64-bit mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
hashCoords(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
           std::uint64_t salt)
{
    // Chain the coordinates through the mixer so nearby (task,
    // attempt, salt) triples decorrelate fully.
    std::uint64_t h = mix64(seed ^ 0x5bf03635f0935ad1ULL);
    h = mix64(h ^ a);
    h = mix64(h ^ (b + 0x632be59bd9b4e019ULL));
    h = mix64(h ^ (salt * 0xd6e8feb86659fd93ULL));
    return h;
}

double
toUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kSaltFail = 1;
constexpr std::uint64_t kSaltStraggler = 2;
constexpr std::uint64_t kSaltCorrupt = 3;
constexpr std::uint64_t kSaltStall = 4;
constexpr std::uint64_t kSaltCorruptShape = 5;
constexpr std::uint64_t kSaltArrivalBurst = 6;
constexpr std::uint64_t kSaltDeadlineStorm = 7;

} // namespace

FaultPlan::FaultPlan(const FaultConfig &config)
    : config_(config)
{
    tt_assert(config_.fail_p >= 0.0 && config_.fail_p <= 1.0,
              "fail probability out of [0, 1]");
    tt_assert(config_.straggler_p >= 0.0 && config_.straggler_p <= 1.0,
              "straggler probability out of [0, 1]");
    tt_assert(config_.corrupt_p >= 0.0 && config_.corrupt_p <= 1.0,
              "corrupt probability out of [0, 1]");
    tt_assert(config_.stall_p >= 0.0 && config_.stall_p <= 1.0,
              "stall probability out of [0, 1]");
    tt_assert(config_.straggler_factor >= 1.0,
              "straggler factor must be >= 1");
    tt_assert(config_.stall_seconds >= 0.0,
              "stall duration must be non-negative");
    tt_assert(config_.arrival_burst_p >= 0.0 &&
                  config_.arrival_burst_p <= 1.0,
              "arrival-burst probability out of [0, 1]");
    tt_assert(config_.deadline_storm_p >= 0.0 &&
                  config_.deadline_storm_p <= 1.0,
              "deadline-storm probability out of [0, 1]");
    tt_assert(config_.burst_compression >= 1.0,
              "burst compression must be >= 1");
    tt_assert(config_.storm_slash > 0.0 && config_.storm_slash <= 1.0,
              "storm slash factor out of (0, 1]");
}

double
FaultPlan::roll(stream::TaskId task, int attempt, std::uint64_t salt) const
{
    return toUnit(hashCoords(config_.seed,
                             static_cast<std::uint64_t>(task),
                             static_cast<std::uint64_t>(attempt), salt));
}

TaskFaults
FaultPlan::forTask(stream::TaskId task, int attempt) const
{
    TaskFaults faults;
    if (!enabled())
        return faults;
    faults.fail = roll(task, attempt, kSaltFail) < config_.fail_p;
    if (roll(task, attempt, kSaltStraggler) < config_.straggler_p)
        faults.latency_factor = config_.straggler_factor;
    faults.stall = roll(task, attempt, kSaltStall) < config_.stall_p;
    // Corruption ignores the attempt: whether this task's sample is
    // poisoned is a property of the task, so a retried task corrupts
    // the same way and host/sim retry histories cannot diverge it.
    faults.corrupt_sample =
        roll(task, 0, kSaltCorrupt) < config_.corrupt_p;
    return faults;
}

JobFaults
FaultPlan::forJob(int job) const
{
    JobFaults faults;
    if (!config_.jobFaultsEnabled())
        return faults;
    const auto id = static_cast<stream::TaskId>(job);
    if (roll(id, 0, kSaltArrivalBurst) < config_.arrival_burst_p) {
        faults.burst = true;
        faults.burst_compression = config_.burst_compression;
    }
    if (roll(id, 0, kSaltDeadlineStorm) < config_.deadline_storm_p) {
        faults.deadline_storm = true;
        faults.storm_slash = config_.storm_slash;
    }
    return faults;
}

double
FaultPlan::corruptValue(stream::TaskId task, int field) const
{
    const std::uint64_t h = hashCoords(
        config_.seed, static_cast<std::uint64_t>(task),
        static_cast<std::uint64_t>(field), kSaltCorruptShape);
    switch (h % 4) {
    case 0:
        return std::numeric_limits<double>::quiet_NaN();
    case 1:
        return std::numeric_limits<double>::infinity();
    case 2:
        return -1.0e-3;
    default:
        return 1.0e18; // finite but absurd: the outlier case
    }
}

} // namespace tt::fault
