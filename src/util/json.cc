#include "util/json.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace tt::json {

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : object)
        if (name == key)
            return &value;
    return nullptr;
}

double
Value::numberAt(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

std::string
Value::stringAt(const std::string &key,
                const std::string &fallback) const
{
    const Value *v = find(key);
    return v != nullptr && v->isString() ? v->string : fallback;
}

namespace {

/** Recursive-descent parser over a string view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<Value>
    parseDocument(std::string *error)
    {
        Value value;
        if (!parseValue(value) || (skipSpace(), pos_ != text_.size())) {
            if (error != nullptr) {
                if (error_.empty())
                    error_ = "trailing characters after document";
                *error = error_ + " at offset " + std::to_string(pos_);
            }
            return std::nullopt;
        }
        return value;
    }

  private:
    bool
    fail(const char *why)
    {
        if (error_.empty())
            error_ = why;
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.substr(pos_, len) != word)
            return fail("unrecognised literal");
        pos_ += len;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (++depth_ > kMaxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= text_.size()) {
            --depth_;
            return fail("unexpected end of input");
        }
        bool ok = false;
        switch (text_[pos_]) {
          case '{':
            ok = parseObject(out);
            break;
          case '[':
            ok = parseArray(out);
            break;
          case '"':
            out.kind = Value::Kind::String;
            ok = parseString(out.string);
            break;
          case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            ok = literal("true");
            break;
          case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            ok = literal("false");
            break;
          case 'n':
            out.kind = Value::Kind::Null;
            ok = literal("null");
            break;
          default:
            ok = parseNumber(out);
        }
        --depth_;
        return ok;
    }

    bool
    parseObject(Value &out)
    {
        out.kind = Value::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (!consume(':'))
                return fail("expected ':' after object key");
            Value value;
            if (!parseValue(value))
                return false;
            out.object.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(Value &out)
    {
        out.kind = Value::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            Value value;
            if (!parseValue(value))
                return false;
            out.array.push_back(std::move(value));
            skipSpace();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                unsigned code = 0;
                if (!parseHex4(&code))
                    return false;
                appendUtf8(out, code);
                break;
              }
              default:
                return fail("bad escape in string");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseHex4(unsigned *code)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        *code = value;
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned code)
    {
        // Surrogate pairs are not recombined -- the documents this
        // repo emits are ASCII; lone code points encode directly.
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    bool
    parseNumber(Value &out)
    {
        const std::size_t start = pos_;
        if (consume('-'))
            ;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("unexpected character");
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            return fail("malformed number");
        out.kind = Value::Kind::Number;
        out.number = value;
        return true;
    }

    static constexpr int kMaxDepth = 256;

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

} // namespace

std::optional<Value>
parse(std::string_view text, std::string *error)
{
    return Parser(text).parseDocument(error);
}

} // namespace tt::json
