/**
 * @file
 * Minimal command-line flag parsing for the tools and examples.
 *
 * Supports `--name value`, `--name=value` and boolean `--name`
 * switches, collects positional arguments, and renders a usage
 * listing. No registration macros, no global state.
 */

#ifndef TT_UTIL_FLAGS_HH
#define TT_UTIL_FLAGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tt {

/** Parsed command line. */
class Flags
{
  public:
    /**
     * Parse argv. Returns false (and fills error()) on malformed
     * input such as `--` with nothing after it.
     */
    bool parse(int argc, const char *const *argv);

    /** True when `--name` or `--name=...` appeared. */
    bool has(const std::string &name) const;

    /** String value of `--name`; `fallback` when absent. */
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /**
     * Integer value of `--name`; `fallback` when absent. A present
     * but non-numeric value sets error() and returns `fallback`.
     */
    std::int64_t getInt(const std::string &name,
                        std::int64_t fallback) const;

    /** Double value of `--name` with the same error contract. */
    double getDouble(const std::string &name, double fallback) const;

    /** Boolean switch: present (no value or "true"/"1") => true. */
    bool getBool(const std::string &name, bool fallback = false) const;

    /** Arguments that were not flags, in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /**
     * Verify every parsed flag appears in `known`. The first
     * unknown flag sets error() and returns false, so a typo'd
     * flag fails loudly instead of silently using the default.
     */
    bool allowOnly(const std::vector<std::string> &known) const;

    /** First parse/convert error, empty when none. */
    const std::string &error() const { return error_; }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
    mutable std::string error_;
};

} // namespace tt

#endif // TT_UTIL_FLAGS_HH
