#include "util/env.hh"

#include <cstdlib>

namespace tt {

std::int64_t
envInt(const char *name, std::int64_t fallback)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return fallback;
    char *end = nullptr;
    const long long value = std::strtoll(raw, &end, 10);
    if (end == raw || *end != '\0')
        return fallback;
    return value;
}

double
envDouble(const char *name, double fallback)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(raw, &end);
    if (end == raw || *end != '\0')
        return fallback;
    return value;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *raw = std::getenv(name);
    return (raw && *raw) ? std::string(raw) : fallback;
}

} // namespace tt
