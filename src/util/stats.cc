#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace tt {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    sum_ += other.sum_;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
RunningStat::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return count_ ? min_ : 0.0;
}

double
RunningStat::max() const
{
    return count_ ? max_ : 0.0;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

double
trimmedMean(std::vector<double> xs, std::size_t trim)
{
    if (xs.empty())
        return 0.0;
    tt_assert(2 * trim < xs.size(),
              "trimmedMean would discard every sample");
    std::sort(xs.begin(), xs.end());
    double acc = 0.0;
    const std::size_t lo = trim;
    const std::size_t hi = xs.size() - trim;
    for (std::size_t i = lo; i < hi; ++i)
        acc += xs[i];
    return acc / static_cast<double>(hi - lo);
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_acc = 0.0;
    for (double x : xs) {
        tt_assert(x > 0.0, "geometricMean requires positive inputs");
        log_acc += std::log(x);
    }
    return std::exp(log_acc / static_cast<double>(xs.size()));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

SlidingWindow::SlidingWindow(std::size_t capacity)
    : capacity_(capacity)
{
    tt_assert(capacity_ > 0, "SlidingWindow capacity must be positive");
    data_.reserve(capacity_);
}

void
SlidingWindow::add(double x)
{
    if (data_.size() < capacity_) {
        data_.push_back(x);
    } else {
        data_[head_] = x;
        head_ = (head_ + 1) % capacity_;
    }
}

void
SlidingWindow::reset()
{
    data_.clear();
    head_ = 0;
}

double
SlidingWindow::mean() const
{
    return tt::mean(data_);
}

} // namespace tt
