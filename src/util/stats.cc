#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "util/logging.hh"
#include "util/table.hh"

namespace tt {

void
RunningStat::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    sum_ += other.sum_;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
RunningStat::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
RunningStat::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::min() const
{
    return count_ ? min_ : 0.0;
}

double
RunningStat::max() const
{
    return count_ ? max_ : 0.0;
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += x;
    return acc / static_cast<double>(xs.size());
}

double
trimmedMean(std::vector<double> xs, std::size_t trim)
{
    if (xs.empty())
        return 0.0;
    tt_assert(2 * trim < xs.size(),
              "trimmedMean would discard every sample");
    std::sort(xs.begin(), xs.end());
    double acc = 0.0;
    const std::size_t lo = trim;
    const std::size_t hi = xs.size() - trim;
    for (std::size_t i = lo; i < hi; ++i)
        acc += xs[i];
    return acc / static_cast<double>(hi - lo);
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_acc = 0.0;
    for (double x : xs) {
        tt_assert(x > 0.0, "geometricMean requires positive inputs");
        log_acc += std::log(x);
    }
    return std::exp(log_acc / static_cast<double>(xs.size()));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

SlidingWindow::SlidingWindow(std::size_t capacity)
    : capacity_(capacity)
{
    tt_assert(capacity_ > 0, "SlidingWindow capacity must be positive");
    data_.reserve(capacity_);
}

void
SlidingWindow::add(double x)
{
    if (data_.size() < capacity_) {
        data_.push_back(x);
    } else {
        data_[head_] = x;
        head_ = (head_ + 1) % capacity_;
    }
}

void
SlidingWindow::reset()
{
    data_.clear();
    head_ = 0;
}

double
SlidingWindow::mean() const
{
    return tt::mean(data_);
}

Histogram::Histogram(const Options &options)
    : options_(options)
{
    tt_assert(options_.min_value > 0.0,
              "Histogram min_value must be positive");
    tt_assert(options_.growth > 1.0, "Histogram growth must exceed 1");
    tt_assert(options_.buckets >= 1, "Histogram needs a bucket");
    edges_.reserve(static_cast<std::size_t>(options_.buckets) + 1);
    double edge = options_.min_value;
    for (int k = 0; k <= options_.buckets; ++k) {
        edges_.push_back(edge);
        edge *= options_.growth;
    }
    hits_.assign(static_cast<std::size_t>(options_.buckets) + 2, 0);
}

void
Histogram::add(double x)
{
    ++hits_[static_cast<std::size_t>(bucketIndex(x))];
    stat_.add(x);
}

void
Histogram::merge(const Histogram &other)
{
    tt_assert(options_.min_value == other.options_.min_value &&
                  options_.growth == other.options_.growth &&
                  options_.buckets == other.options_.buckets,
              "cannot merge histograms with different bucket geometry");
    for (std::size_t i = 0; i < hits_.size(); ++i)
        hits_[i] += other.hits_[i];
    stat_.merge(other.stat_);
}

void
Histogram::reset()
{
    std::fill(hits_.begin(), hits_.end(), 0);
    stat_.reset();
}

std::uint64_t
Histogram::bucketHits(int bucket) const
{
    tt_assert(bucket >= 0 && bucket < bucketCount(),
              "bucket index out of range");
    return hits_[static_cast<std::size_t>(bucket)];
}

double
Histogram::bucketLowerBound(int bucket) const
{
    tt_assert(bucket >= 0 && bucket < bucketCount(),
              "bucket index out of range");
    return bucket == 0 ? 0.0
                       : edges_[static_cast<std::size_t>(bucket) - 1];
}

double
Histogram::bucketUpperBound(int bucket) const
{
    tt_assert(bucket >= 0 && bucket < bucketCount(),
              "bucket index out of range");
    return bucket == bucketCount() - 1
               ? std::numeric_limits<double>::infinity()
               : edges_[static_cast<std::size_t>(bucket)];
}

int
Histogram::bucketIndex(double x) const
{
    // First edge > x; slot 0 is underflow, the last slot overflow.
    return static_cast<int>(
        std::upper_bound(edges_.begin(), edges_.end(), x) -
        edges_.begin());
}

double
Histogram::quantile(double q) const
{
    if (stat_.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(stat_.count());
    double seen = 0.0;
    for (int b = 0; b < bucketCount(); ++b) {
        const double here = static_cast<double>(bucketHits(b));
        if (here == 0.0)
            continue;
        if (seen + here >= target) {
            const double lo =
                std::max(bucketLowerBound(b), stat_.min());
            const double hi =
                std::min(bucketUpperBound(b), stat_.max());
            const double frac =
                here > 0.0 ? (target - seen) / here : 0.0;
            return std::clamp(lo + frac * (hi - lo), stat_.min(),
                              stat_.max());
        }
        seen += here;
    }
    return stat_.max();
}

void
MetricsRegistry::add(const std::string &name, std::int64_t delta)
{
    std::lock_guard lock(mutex_);
    counters_[name] += delta;
}

void
MetricsRegistry::set(const std::string &name, double value)
{
    std::lock_guard lock(mutex_);
    gauges_[name] = value;
}

void
MetricsRegistry::setMax(const std::string &name, double value)
{
    std::lock_guard lock(mutex_);
    auto [it, inserted] = gauges_.try_emplace(name, value);
    if (!inserted)
        it->second = std::max(it->second, value);
}

void
MetricsRegistry::observe(const std::string &name, double value)
{
    observe(name, value, Histogram::Options{});
}

void
MetricsRegistry::observe(const std::string &name, double value,
                         const Histogram::Options &options)
{
    std::lock_guard lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(options)).first;
    it->second.add(value);
}

void
MetricsRegistry::merge(const std::string &name,
                       const Histogram &shard)
{
    if (shard.empty())
        return;
    std::lock_guard lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(shard.options()))
                 .first;
    it->second.merge(shard);
}

std::int64_t
MetricsRegistry::counter(const std::string &name) const
{
    std::lock_guard lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::gauge(const std::string &name, double fallback) const
{
    std::lock_guard lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? fallback : it->second;
}

Histogram
MetricsRegistry::histogram(const std::string &name) const
{
    std::lock_guard lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? Histogram() : it->second;
}

bool
MetricsRegistry::hasCounter(const std::string &name) const
{
    std::lock_guard lock(mutex_);
    return counters_.count(name) > 0;
}

bool
MetricsRegistry::hasGauge(const std::string &name) const
{
    std::lock_guard lock(mutex_);
    return gauges_.count(name) > 0;
}

bool
MetricsRegistry::hasHistogram(const std::string &name) const
{
    std::lock_guard lock(mutex_);
    return histograms_.count(name) > 0;
}

namespace {

template <typename Map>
std::vector<std::string>
sortedKeys(const Map &map)
{
    std::vector<std::string> names;
    names.reserve(map.size());
    for (const auto &[name, value] : map)
        names.push_back(name);
    return names; // std::map iterates in key order already
}

/** Escape a metric name for a JSON literal. */
std::string
jsonName(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
jsonNumber(double value)
{
    std::ostringstream os;
    os << std::setprecision(12) << value;
    return os.str();
}

} // namespace

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    std::lock_guard lock(mutex_);
    return sortedKeys(counters_);
}

std::vector<std::string>
MetricsRegistry::gaugeNames() const
{
    std::lock_guard lock(mutex_);
    return sortedKeys(gauges_);
}

std::vector<std::string>
MetricsRegistry::histogramNames() const
{
    std::lock_guard lock(mutex_);
    return sortedKeys(histograms_);
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard lock(mutex_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void
MetricsRegistry::clear()
{
    std::lock_guard lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard lock(mutex_);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonName(name)
           << "\": " << value;
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonName(name)
           << "\": " << jsonNumber(value);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonName(name)
           << "\": {\"count\": " << hist.count()
           << ", \"mean\": " << jsonNumber(hist.mean())
           << ", \"min\": " << jsonNumber(hist.min())
           << ", \"max\": " << jsonNumber(hist.max())
           << ", \"p50\": " << jsonNumber(hist.p50())
           << ", \"p90\": " << jsonNumber(hist.p90())
           << ", \"p95\": " << jsonNumber(hist.p95())
           << ", \"p99\": " << jsonNumber(hist.p99())
           << ", \"buckets\": [";
        bool first_bucket = true;
        for (int b = 0; b < hist.bucketCount(); ++b) {
            if (hist.bucketHits(b) == 0)
                continue;
            if (!first_bucket)
                os << ", ";
            first_bucket = false;
            os << "[" << jsonNumber(hist.bucketLowerBound(b)) << ", "
               << (b == hist.bucketCount() - 1
                       ? jsonNumber(hist.max())
                       : jsonNumber(hist.bucketUpperBound(b)))
               << ", " << hist.bucketHits(b) << "]";
        }
        os << "]}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string
MetricsRegistry::summaryTable() const
{
    std::lock_guard lock(mutex_);
    TablePrinter table({"metric", "type", "count", "value/mean", "p50",
                        "p90", "p95", "p99", "max"});
    for (const auto &[name, value] : counters_)
        table.addRow({name, "counter", "", std::to_string(value), "",
                      "", "", "", ""});
    for (const auto &[name, value] : gauges_)
        table.addRow({name, "gauge", "", TablePrinter::num(value, 3),
                      "", "", "", "", ""});
    for (const auto &[name, hist] : histograms_) {
        table.addRow({name, "histogram", std::to_string(hist.count()),
                      TablePrinter::num(hist.mean(), 6),
                      TablePrinter::num(hist.p50(), 6),
                      TablePrinter::num(hist.p90(), 6),
                      TablePrinter::num(hist.p95(), 6),
                      TablePrinter::num(hist.p99(), 6),
                      TablePrinter::num(hist.max(), 6)});
    }
    return table.str();
}

} // namespace tt
