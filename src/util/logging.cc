#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

namespace tt {

namespace {
std::atomic<bool> g_verbose{true};

std::mutex &
hookMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::map<int, CrashDumpHook> &
hookMap()
{
    static std::map<int, CrashDumpHook> hooks;
    return hooks;
}

int g_next_hook_id = 1;
std::atomic<bool> g_hooks_running{false};
} // namespace

int
registerCrashDumpHook(CrashDumpHook hook)
{
    std::lock_guard lock(hookMutex());
    const int id = g_next_hook_id++;
    hookMap().emplace(id, std::move(hook));
    return id;
}

void
unregisterCrashDumpHook(int id)
{
    std::lock_guard lock(hookMutex());
    hookMap().erase(id);
}

void
runCrashDumpHooks() noexcept
{
    // One shot: a hook that itself crashes (or two racing crash
    // paths) must not re-enter the dump machinery.
    if (g_hooks_running.exchange(true))
        return;
    // Copy out under the lock, run unlocked: a hook may legitimately
    // call unregisterCrashDumpHook or log through this file.
    std::map<int, CrashDumpHook> hooks;
    {
        std::lock_guard lock(hookMutex());
        hooks = hookMap();
    }
    for (auto &[id, hook] : hooks) {
        (void)id;
        try {
            if (hook)
                hook();
        } catch (...) {
            // Best-effort: keep draining the remaining hooks.
        }
    }
    std::fflush(nullptr);
}

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace detail {

void
terminate(const char *kind, const std::string &msg, const char *file,
          int line, bool do_abort)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::fflush(stderr);
    // Let bound trace rings / metrics registries flush their
    // diagnostics before the process dies, so a failed run still
    // leaves artefacts to debug from.
    runCrashDumpHooks();
    if (do_abort)
        std::abort();
    std::exit(1);
}

void
message(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

} // namespace detail

} // namespace tt
