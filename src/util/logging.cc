#include "util/logging.hh"

#include <atomic>
#include <cstdio>

namespace tt {

namespace {
std::atomic<bool> g_verbose{true};
} // namespace

void
setVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace detail {

void
terminate(const char *kind, const std::string &msg, const char *file,
          int line, bool do_abort)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::fflush(stderr);
    if (do_abort)
        std::abort();
    std::exit(1);
}

void
message(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
}

} // namespace detail

} // namespace tt
