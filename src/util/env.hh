/**
 * @file
 * Environment-variable knobs for the bench harnesses.
 *
 * Benches honour a handful of env vars (sweep granularity, pair
 * counts) so a user can trade fidelity for wall time without
 * recompiling; these helpers parse them with defaults.
 */

#ifndef TT_UTIL_ENV_HH
#define TT_UTIL_ENV_HH

#include <cstdint>
#include <string>

namespace tt {

/** Read an integer env var; returns `fallback` if unset or invalid. */
std::int64_t envInt(const char *name, std::int64_t fallback);

/** Read a double env var; returns `fallback` if unset or invalid. */
double envDouble(const char *name, double fallback);

/** Read a string env var; returns `fallback` if unset. */
std::string envString(const char *name, const std::string &fallback);

} // namespace tt

#endif // TT_UTIL_ENV_HH
