/**
 * @file
 * Plain-text table formatting for the benchmark harnesses.
 *
 * Every bench binary regenerates one of the paper's tables or figures
 * as rows of text; TablePrinter keeps the columns aligned and prints
 * a rule under the header, so the output is diff-able run to run.
 */

#ifndef TT_UTIL_TABLE_HH
#define TT_UTIL_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace tt {

/** Column-aligned text table builder. */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with fixed precision (helper for cells). */
    static std::string num(double value, int precision = 2);

    /** Format a percentage, e.g. pct(0.1234) == "12.34%". */
    static std::string pct(double fraction, int precision = 2);

    /** Render the table to a stream. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    std::string str() const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tt

#endif // TT_UTIL_TABLE_HH
