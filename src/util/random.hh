/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in the library flows through Rng so that
 * simulations and workload generators are exactly reproducible from a
 * seed. The generator is SplitMix64-seeded xoshiro256**, which is
 * fast, has a 2^256-1 period, and passes BigCrush.
 */

#ifndef TT_UTIL_RANDOM_HH
#define TT_UTIL_RANDOM_HH

#include <cstdint>

namespace tt {

/** Deterministic, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound) using Lemire rejection. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextDouble(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with probability p of true. */
    bool nextBool(double p = 0.5);

    /** Approximately normal variate (sum-of-uniforms). */
    double nextGaussian(double mean, double stddev);

  private:
    std::uint64_t s_[4];
};

} // namespace tt

#endif // TT_UTIL_RANDOM_HH
