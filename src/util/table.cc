#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace tt {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    tt_assert(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    tt_assert(cells.size() == headers_.size(),
              "row has ", cells.size(), " cells, expected ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "") << std::left
               << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
TablePrinter::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace tt
