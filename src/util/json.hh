/**
 * @file
 * Minimal JSON parser for the tools and tests.
 *
 * The repo emits JSON in several places (metrics registry, Chrome
 * traces, ttreport reports); ttreport --diff and the golden-structure
 * trace tests need to read it back without an external dependency.
 * This is a small recursive-descent parser into a tagged tree value:
 * no streaming, no SAX, numbers as double -- exactly enough for the
 * documents this codebase produces.
 */

#ifndef TT_UTIL_JSON_HH
#define TT_UTIL_JSON_HH

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tt::json {

/** One parsed JSON value (a tagged tree). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /** Object members in document order (duplicates kept as-is). */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Member lookup on an object; nullptr when absent or not one. */
    const Value *find(const std::string &key) const;

    /** Member's number, or `fallback` when absent / not a number. */
    double numberAt(const std::string &key, double fallback = 0.0) const;

    /** Member's string, or `fallback` when absent / not a string. */
    std::string stringAt(const std::string &key,
                         const std::string &fallback = {}) const;
};

/**
 * Parse one complete JSON document. Returns nullopt on malformed
 * input (and, when `error` is non-null, a human-readable reason with
 * the byte offset). Trailing non-whitespace after the document is an
 * error.
 */
std::optional<Value> parse(std::string_view text,
                           std::string *error = nullptr);

} // namespace tt::json

#endif // TT_UTIL_JSON_HH
