/**
 * @file
 * Status and error reporting in the spirit of gem5's base/logging.hh.
 *
 * panic()  -- internal invariant violated (a bug in this library);
 *             aborts so a debugger/core dump can capture state.
 * fatal()  -- the caller/user supplied an impossible configuration;
 *             exits with an error code.
 * warn()   -- something is suspicious but execution can continue.
 * inform() -- plain status output.
 */

#ifndef TT_UTIL_LOGGING_HH
#define TT_UTIL_LOGGING_HH

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace tt {

/**
 * Crash-dump hooks: callbacks invoked (once, in registration order)
 * when the process is about to terminate abnormally -- a tt_panic /
 * tt_fatal / failed tt_assert, or a runtime watchdog firing. Long
 * running components (the runtimes, ttsim) register a hook that
 * flushes their diagnostics -- trace rings, metrics registries --
 * so a failed run still leaves artefacts. Hooks must be best-effort:
 * they run on the crashing thread while other threads may still be
 * live, and any exception they throw is swallowed.
 */
using CrashDumpHook = std::function<void()>;

/** Register a hook; returns an id for unregisterCrashDumpHook(). */
int registerCrashDumpHook(CrashDumpHook hook);

/** Remove a previously registered hook (no-op on unknown id). */
void unregisterCrashDumpHook(int id);

/**
 * Run every registered hook once. Reentrant calls (e.g. a hook that
 * itself panics) and repeated calls are no-ops, so the process
 * cannot recurse through the crash path.
 */
void runCrashDumpHooks() noexcept;

namespace detail {

/** Compose, print and terminate; shared backend for panic/fatal. */
[[noreturn]] void terminate(const char *kind, const std::string &msg,
                            const char *file, int line, bool do_abort);

/** Print a non-fatal message with a severity prefix. */
void message(const char *kind, const std::string &msg);

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
fold(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Global verbosity: when false, inform() output is suppressed. */
void setVerbose(bool verbose);
bool verbose();

} // namespace tt

#define tt_panic(...)                                                       \
    ::tt::detail::terminate("panic", ::tt::detail::fold(__VA_ARGS__),       \
                            __FILE__, __LINE__, true)

#define tt_fatal(...)                                                       \
    ::tt::detail::terminate("fatal", ::tt::detail::fold(__VA_ARGS__),       \
                            __FILE__, __LINE__, false)

#define tt_warn(...)                                                        \
    ::tt::detail::message("warn", ::tt::detail::fold(__VA_ARGS__))

#define tt_inform(...)                                                      \
    do {                                                                    \
        if (::tt::verbose())                                                \
            ::tt::detail::message("info", ::tt::detail::fold(__VA_ARGS__)); \
    } while (0)

/** Assert-like check that survives NDEBUG builds. */
#define tt_assert(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::tt::detail::terminate(                                        \
                "panic", "assertion '" #cond "' failed: " +                 \
                ::tt::detail::fold(__VA_ARGS__), __FILE__, __LINE__, true); \
        }                                                                   \
    } while (0)

#endif // TT_UTIL_LOGGING_HH
