/**
 * @file
 * Status and error reporting in the spirit of gem5's base/logging.hh.
 *
 * panic()  -- internal invariant violated (a bug in this library);
 *             aborts so a debugger/core dump can capture state.
 * fatal()  -- the caller/user supplied an impossible configuration;
 *             exits with an error code.
 * warn()   -- something is suspicious but execution can continue.
 * inform() -- plain status output.
 */

#ifndef TT_UTIL_LOGGING_HH
#define TT_UTIL_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace tt {

namespace detail {

/** Compose, print and terminate; shared backend for panic/fatal. */
[[noreturn]] void terminate(const char *kind, const std::string &msg,
                            const char *file, int line, bool do_abort);

/** Print a non-fatal message with a severity prefix. */
void message(const char *kind, const std::string &msg);

/** Fold a list of streamable values into one string. */
template <typename... Args>
std::string
fold(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Global verbosity: when false, inform() output is suppressed. */
void setVerbose(bool verbose);
bool verbose();

} // namespace tt

#define tt_panic(...)                                                       \
    ::tt::detail::terminate("panic", ::tt::detail::fold(__VA_ARGS__),       \
                            __FILE__, __LINE__, true)

#define tt_fatal(...)                                                       \
    ::tt::detail::terminate("fatal", ::tt::detail::fold(__VA_ARGS__),       \
                            __FILE__, __LINE__, false)

#define tt_warn(...)                                                        \
    ::tt::detail::message("warn", ::tt::detail::fold(__VA_ARGS__))

#define tt_inform(...)                                                      \
    do {                                                                    \
        if (::tt::verbose())                                                \
            ::tt::detail::message("info", ::tt::detail::fold(__VA_ARGS__)); \
    } while (0)

/** Assert-like check that survives NDEBUG builds. */
#define tt_assert(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::tt::detail::terminate(                                        \
                "panic", "assertion '" #cond "' failed: " +                 \
                ::tt::detail::fold(__VA_ARGS__), __FILE__, __LINE__, true); \
        }                                                                   \
    } while (0)

#endif // TT_UTIL_LOGGING_HH
