#include "util/concurrency/epoch.hh"

#include <utility>

namespace tt::util {

EpochReclaimer::EpochReclaimer(std::size_t stripes)
    : slots_(stripes == 0 ? 1 : stripes)
{
}

EpochReclaimer::~EpochReclaimer()
{
    std::lock_guard<std::mutex> lock(limbo_mutex_);
    for (auto &bucket : limbo_) {
        for (auto &deleter : bucket)
            deleter();
        bucket.clear();
    }
}

std::size_t
EpochReclaimer::threadStripe()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
EpochReclaimer::enter(std::size_t stripe)
{
    auto &state = slots_[stripe].state;
    for (;;) {
        std::uint64_t cur = state.load(std::memory_order_seq_cst);
        if ((cur & kCountMask) != 0) {
            // Shared stripe: inherit the advertised epoch. It can
            // only lag ours (the first holder entered no later),
            // which at worst delays an advance.
            if (state.compare_exchange_weak(
                    cur, cur + 1, std::memory_order_seq_cst))
                return;
            continue;
        }
        const std::uint64_t epoch =
            global_epoch_.load(std::memory_order_seq_cst);
        if (!state.compare_exchange_weak(
                cur, (epoch << kCountBits) | 1,
                std::memory_order_seq_cst))
            continue;
        // If the epoch advanced between the load and the store we
        // may advertise a stale value — safe (blocks the *next*
        // advance) but re-publish the current epoch when we can.
        const std::uint64_t now =
            global_epoch_.load(std::memory_order_seq_cst);
        if (now == epoch)
            return;
        std::uint64_t mine = (epoch << kCountBits) | 1;
        state.compare_exchange_strong(mine,
                                      (now << kCountBits) | 1,
                                      std::memory_order_seq_cst);
        return; // CAS failure means another holder joined: leave it
    }
}

void
EpochReclaimer::exit(std::size_t stripe)
{
    slots_[stripe].state.fetch_sub(1, std::memory_order_seq_cst);
}

void
EpochReclaimer::retire(std::function<void()> deleter)
{
    std::lock_guard<std::mutex> lock(limbo_mutex_);
    const std::uint64_t epoch =
        global_epoch_.load(std::memory_order_seq_cst);
    limbo_[epoch % 3].push_back(std::move(deleter));
    pending_.fetch_add(1, std::memory_order_relaxed);
}

bool
EpochReclaimer::tryAdvance()
{
    std::vector<std::function<void()>> to_free;
    {
        std::lock_guard<std::mutex> lock(limbo_mutex_);
        const std::uint64_t epoch =
            global_epoch_.load(std::memory_order_seq_cst);
        for (const auto &slot : slots_) {
            const std::uint64_t state =
                slot.state.load(std::memory_order_seq_cst);
            if ((state & kCountMask) != 0 &&
                (state >> kCountBits) != epoch) {
                stalls_.fetch_add(1, std::memory_order_relaxed);
                return false; // a guard lags behind
            }
        }
        global_epoch_.store(epoch + 1, std::memory_order_seq_cst);
        advances_.fetch_add(1, std::memory_order_relaxed);
        // The bucket retired at epoch-1 is two epochs behind the new
        // epoch: every guard that could reach its objects advertised
        // at most epoch-1 and has exited (it would have blocked the
        // previous advance otherwise).
        to_free.swap(limbo_[(epoch + 2) % 3]);
        pending_.fetch_sub(to_free.size(),
                           std::memory_order_relaxed);
    }
    // Run deleters outside the mutex: a deleter may retire() again.
    for (auto &deleter : to_free)
        deleter();
    return true;
}

} // namespace tt::util
