/**
 * @file
 * Lightweight epoch-based reclamation (EBR) for buffer segments that
 * lock-free readers may still be traversing when a writer retires
 * them.
 *
 * The span buffer's segmented ring installs fresh segments and
 * unlinks exhausted ones while readers (the live-telemetry scraper,
 * the drain path) may hold raw pointers into them; freeing
 * immediately would be use-after-free. Classic three-bucket EBR
 * solves this:
 *
 *  - Threads wrap pointer-holding sections in a Guard. A guard
 *    hashes onto one of a fixed set of slot stripes; each stripe
 *    packs (advertised_epoch << 16 | active_count) into one atomic
 *    word. The first enterer of an idle stripe advertises the
 *    current global epoch; later enterers just bump the count and
 *    inherit the advertised epoch. An inherited epoch can only be
 *    older than the enterer's true epoch, which merely delays
 *    advancement — never permits a premature free — so stripes are
 *    safe to share between threads.
 *  - retire(deleter) files the deleter in the limbo bucket of the
 *    current epoch. The object must already be unlinked from the
 *    live structure: a guard entered after the retire can no longer
 *    reach it.
 *  - tryAdvance() bumps the global epoch only when every active
 *    stripe advertises the current one, then frees the bucket
 *    retired two epochs ago: any guard that could have observed
 *    those objects advertised an epoch at least two behind the new
 *    one and has therefore exited.
 *
 * Retire and advance are rare (segment granularity, not per-record)
 * and serialize on a small mutex; guard enter/exit on the hot path
 * is one CAS each, no locks.
 *
 * Memory ordering: stripe stores and global-epoch loads are seq_cst.
 * The advance scan must not miss a guard that entered before the
 * scan (store-buffer argument, as in the sharded gate); the enter
 * loop's re-check of the global epoch after publishing closes the
 * race where the epoch advances between the read and the store.
 */

#ifndef TT_UTIL_CONCURRENCY_EPOCH_HH
#define TT_UTIL_CONCURRENCY_EPOCH_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace tt::util {

class EpochReclaimer
{
  public:
    /** `stripes` guard slots (clamped to >= 1); threads hash on. */
    explicit EpochReclaimer(std::size_t stripes = 16);

    /** Frees everything still in limbo; no guards may be live. */
    ~EpochReclaimer();

    EpochReclaimer(const EpochReclaimer &) = delete;
    EpochReclaimer &operator=(const EpochReclaimer &) = delete;

    /** RAII critical section pinned to stripe `stripe`. */
    class Guard
    {
      public:
        Guard(EpochReclaimer &owner, std::size_t stripe)
            : owner_(owner), stripe_(stripe % owner.stripes())
        {
            owner_.enter(stripe_);
        }
        /** Stripe chosen by hashing the calling thread's id. */
        explicit Guard(EpochReclaimer &owner)
            : Guard(owner, threadStripe())
        {
        }
        ~Guard() { owner_.exit(stripe_); }
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

      private:
        EpochReclaimer &owner_;
        std::size_t stripe_;
    };

    /**
     * Schedule `deleter` to run once no guard entered before this
     * call can still be live. Callable from any thread; the deleter
     * itself runs outside the limbo mutex and may retire() again.
     */
    void retire(std::function<void()> deleter);

    /**
     * Advance the epoch if all active stripes have caught up,
     * freeing any limbo bucket that became unreachable. Returns
     * true when the epoch moved.
     */
    bool tryAdvance();

    std::uint64_t epoch() const
    {
        return global_epoch_.load(std::memory_order_seq_cst);
    }

    /** Successful epoch advances (tryAdvance returned true). */
    std::uint64_t advances() const
    {
        return advances_.load(std::memory_order_relaxed);
    }

    /** tryAdvance calls blocked by a lagging guard — the
     *  reclamation-lag signal the health engine watches. */
    std::uint64_t advanceStalls() const
    {
        return stalls_.load(std::memory_order_relaxed);
    }

    /** Deleters currently filed in limbo, not yet freed. */
    std::uint64_t pending() const
    {
        return pending_.load(std::memory_order_relaxed);
    }

    std::size_t stripes() const { return slots_.size(); }

  private:
    void enter(std::size_t stripe);
    void exit(std::size_t stripe);

    /** Process-wide small integer for the calling thread. */
    static std::size_t threadStripe();

    static constexpr std::uint64_t kCountBits = 16;
    static constexpr std::uint64_t kCountMask =
        (std::uint64_t{1} << kCountBits) - 1;

    struct alignas(64) Slot
    {
        /** (advertised_epoch << kCountBits) | active_count. */
        std::atomic<std::uint64_t> state{0};
    };

    std::vector<Slot> slots_;
    alignas(64) std::atomic<std::uint64_t> global_epoch_{0};

    /** Reclamation telemetry; all on the already-mutexed slow path. */
    std::atomic<std::uint64_t> advances_{0};
    std::atomic<std::uint64_t> stalls_{0};
    std::atomic<std::uint64_t> pending_{0};

    std::mutex limbo_mutex_; ///< guards limbo_ and epoch advance
    std::vector<std::function<void()>> limbo_[3];
};

} // namespace tt::util

#endif // TT_UTIL_CONCURRENCY_EPOCH_HH
