/**
 * @file
 * Bounded lock-free multi-producer/multi-consumer ring queue
 * (Dmitry Vyukov's bounded MPMC algorithm).
 *
 * This is the ready-queue primitive of the engine's lock-free fast
 * path: dispatch pops and completion pushes cost one CAS on the
 * position counter plus one release store on the cell, with no
 * allocation after construction. Cells are padded to a cache line so
 * neighbouring slots never false-share, and the producer/consumer
 * cursors live on their own lines.
 *
 * Memory ordering (the whole contract, per Vyukov):
 *  - each cell carries a `sequence` ticket. A producer may fill cell
 *    i once sequence == position; it publishes the element with
 *    sequence.store(position + 1, release).
 *  - a consumer may drain cell i once sequence == position + 1 (the
 *    acquire load of that ticket synchronises with the producer's
 *    release store, so the element read happens-after its write);
 *    it recycles the cell with sequence.store(position + capacity,
 *    release) for the producer one lap ahead.
 *  - the position counters themselves only need relaxed CAS: all
 *    inter-thread publication rides on the cell tickets.
 *
 * tryPush/tryPop are non-blocking and fail on full/empty; callers
 * park at a higher level (the engine's worker parking lot) rather
 * than spinning here.
 */

#ifndef TT_UTIL_CONCURRENCY_MPMC_QUEUE_HH
#define TT_UTIL_CONCURRENCY_MPMC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/logging.hh"

namespace tt::util {

template <typename T> class MpmcQueue
{
  public:
    /** Capacity is rounded up to the next power of two (>= 2). */
    explicit MpmcQueue(std::size_t capacity)
    {
        std::size_t cap = 2;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::vector<Cell>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            cells_[i].sequence.store(i, std::memory_order_relaxed);
    }

    MpmcQueue(const MpmcQueue &) = delete;
    MpmcQueue &operator=(const MpmcQueue &) = delete;

    std::size_t capacity() const { return mask_ + 1; }

    /** Enqueue; false when the ring is full. */
    bool
    tryPush(T value)
    {
        Cell *cell = nullptr;
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq =
                cell->sequence.load(std::memory_order_acquire);
            const auto dif = static_cast<std::ptrdiff_t>(seq) -
                             static_cast<std::ptrdiff_t>(pos);
            if (dif == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // full: consumer a full lap behind
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        cell->sequence.store(pos + 1, std::memory_order_release);
        // Occupancy high-watermark. Reading the live consumer cursor
        // here would put producer-consumer coherence traffic on every
        // push, so the guard works off a *stale* head cache: head only
        // grows, so `pos + 1 - head_cache_` overestimates occupancy
        // and the guard can never miss a true new peak. Only when the
        // overestimate beats the recorded peak (at most capacity()
        // times between genuine rises) do we refresh the cache from
        // the real cursor and CAS-max the exact snapshot in. The
        // snapshot races the consumer the same way sizeApprox() does —
        // never above the count logically enqueued at some instant.
        const std::size_t cached =
            head_cache_.load(std::memory_order_relaxed);
        const std::size_t upper = pos + 1 > cached ? pos + 1 - cached : 0;
        if (upper > peak_.load(std::memory_order_relaxed)) {
            const std::size_t head =
                head_.load(std::memory_order_relaxed);
            head_cache_.store(head, std::memory_order_relaxed);
            const std::size_t occ = pos + 1 > head ? pos + 1 - head : 0;
            std::size_t seen = peak_.load(std::memory_order_relaxed);
            while (occ > seen &&
                   !peak_.compare_exchange_weak(
                       seen, occ, std::memory_order_relaxed))
                ;
        }
        return true;
    }

    /** Dequeue into `out`; false when the ring is empty. */
    bool
    tryPop(T &out)
    {
        Cell *cell = nullptr;
        std::size_t pos = head_.load(std::memory_order_relaxed);
        for (;;) {
            cell = &cells_[pos & mask_];
            const std::size_t seq =
                cell->sequence.load(std::memory_order_acquire);
            const auto dif = static_cast<std::ptrdiff_t>(seq) -
                             static_cast<std::ptrdiff_t>(pos + 1);
            if (dif == 0) {
                if (head_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // empty: no producer reached this cell
            } else {
                pos = head_.load(std::memory_order_relaxed);
            }
        }
        out = std::move(cell->value);
        cell->sequence.store(pos + mask_ + 1,
                             std::memory_order_release);
        return true;
    }

    /**
     * Approximate occupancy: exact when quiescent, a snapshot of two
     * racing cursors otherwise (never negative). Used for depth
     * metrics and park decisions, both tolerant of slack.
     */
    std::size_t
    sizeApprox() const
    {
        const std::size_t tail =
            tail_.load(std::memory_order_relaxed);
        const std::size_t head =
            head_.load(std::memory_order_relaxed);
        return tail > head ? tail - head : 0;
    }

    bool emptyApprox() const { return sizeApprox() == 0; }

    /**
     * Highest occupancy observed at any push (same slack as
     * sizeApprox()). Monotone over the queue's lifetime; feeds the
     * `runtime.ring_peak.*` telemetry.
     */
    std::size_t
    peakApprox() const
    {
        return peak_.load(std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Cell
    {
        std::atomic<std::size_t> sequence{0};
        T value{};
    };

    std::size_t mask_ = 0;
    std::vector<Cell> cells_;
    alignas(64) std::atomic<std::size_t> tail_{0}; ///< producers
    alignas(64) std::atomic<std::size_t> head_{0}; ///< consumers
    alignas(64) std::atomic<std::size_t> peak_{0}; ///< max occupancy
    /** Stale copy of head_ for the watermark guard: head only grows,
     *  so a stale value overestimates occupancy — conservative, and
     *  a racing writeback that regresses it stays conservative too. */
    alignas(64) std::atomic<std::size_t> head_cache_{0};
};

} // namespace tt::util

#endif // TT_UTIL_CONCURRENCY_MPMC_QUEUE_HH
