#include "util/concurrency/sharded_gate.hh"

namespace tt::util {

ShardedGate::ShardedGate(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards),
      stats_(shards == 0 ? 1 : shards)
{
}

bool
ShardedGate::tryAcquire(std::size_t shard_hint, long bound)
{
    const std::size_t index = shard_hint % shards_.size();
    auto &shard = shards_[index];
    auto &stats = stats_[index];
    if (bound <= 0) {
        stats.failures.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    shard.count.fetch_add(1, std::memory_order_seq_cst);
    stats.folds.fetch_add(1, std::memory_order_relaxed);
    const long sum = current();
    if (sum > bound) {
        shard.count.fetch_sub(1, std::memory_order_seq_cst);
        stats.failures.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    notePeak(sum);
    return true;
}

void
ShardedGate::release(std::size_t shard_hint)
{
    shards_[shard_hint % shards_.size()].count.fetch_sub(
        1, std::memory_order_seq_cst);
}

long
ShardedGate::current() const
{
    long sum = 0;
    for (const auto &shard : shards_)
        sum += shard.count.load(std::memory_order_seq_cst);
    return sum;
}

long
ShardedGate::peak() const
{
    return peak_.load(std::memory_order_relaxed);
}

long
ShardedGate::admitFailures() const
{
    long sum = 0;
    for (const auto &stats : stats_)
        sum += stats.failures.load(std::memory_order_relaxed);
    return sum;
}

long
ShardedGate::folds() const
{
    long sum = 0;
    for (const auto &stats : stats_)
        sum += stats.folds.load(std::memory_order_relaxed);
    return sum;
}

void
ShardedGate::notePeak(long value)
{
    long seen = peak_.load(std::memory_order_relaxed);
    while (value > seen &&
           !peak_.compare_exchange_weak(seen, value,
                                        std::memory_order_relaxed))
        ;
}

} // namespace tt::util
