/**
 * @file
 * Sharded admission gate: a concurrent bounded counter that admits at
 * most `bound` holders at any instant, built from per-shard atomics
 * so concurrent admitters on different workers do not contend on one
 * cache line.
 *
 * This is the lock-free form of the engine's `mem_in_flight < MTL`
 * check. Admission is optimistic: the caller bumps its own shard,
 * then folds all shards and backs the increment out if the sum
 * overshoots the bound. The gate is *conservative* — a racing fold
 * can observe another admitter's transient increment and spuriously
 * reject (the caller simply requeues and retries), but two admitters
 * can never both succeed past the bound.
 *
 * Memory ordering: the fetch_add and the fold loads are seq_cst, not
 * relaxed. The bound proof is a Dekker-style store-buffer argument —
 * each admitter must observe every increment that precedes its fold
 * in the single total order of seq_cst operations. Consider any set
 * of admissions that would jointly exceed the bound: the last of
 * their fetch_adds in that total order is followed by that
 * admitter's fold, which therefore sees all the others' increments,
 * sums past the bound, and backs out. With relaxed (or even acq_rel)
 * ordering two concurrent admitters could each miss the other's
 * store still sitting in a store buffer and both conclude the gate
 * has room.
 *
 * Peak tracking: after a *successful* admit the caller folds again
 * and CAS-maxes the sum into `peak_`. Sums recorded this way are
 * bounded by `bound` (transient over-admissions back out before
 * recording), so peak() never exceeds the largest bound in effect —
 * the property the audit asserts — and is exact whenever admissions
 * are serialized (the deterministic sim/push path).
 */

#ifndef TT_UTIL_CONCURRENCY_SHARDED_GATE_HH
#define TT_UTIL_CONCURRENCY_SHARDED_GATE_HH

#include <atomic>
#include <cstddef>
#include <vector>

namespace tt::util {

class ShardedGate
{
  public:
    /** `shards` is clamped to >= 1; one per worker is the intent. */
    explicit ShardedGate(std::size_t shards);

    ShardedGate(const ShardedGate &) = delete;
    ShardedGate &operator=(const ShardedGate &) = delete;

    /**
     * Try to take one slot against `bound`, preferring the caller's
     * shard. Returns false (and leaves the gate unchanged) when the
     * folded count would exceed the bound. `bound <= 0` always
     * rejects.
     */
    bool tryAcquire(std::size_t shard_hint, long bound);

    /** Release one slot previously acquired. */
    void release(std::size_t shard_hint);

    /** Precise fold of all shards (seq_cst loads). */
    long current() const;

    /** Highest folded count observed at any successful admit. */
    long peak() const;

    /** Monotonically raise peak_ (push-mode bookkeeping reuse). */
    void notePeak(long value);

    /**
     * Total rejected tryAcquire calls (bound full, spurious
     * conservative rejects, and bound <= 0). Relaxed fold across
     * shards: exact once admitters quiesce.
     */
    long admitFailures() const;

    /** Total shard folds performed by tryAcquire (one per call). */
    long folds() const;

    std::size_t shards() const { return shards_.size(); }

  private:
    struct alignas(64) Shard
    {
        std::atomic<long> count{0};
    };

    /** Contention telemetry lives on its own per-shard lines: every
     *  fold reads all `count` lines, so a telemetry bump sharing one
     *  would invalidate every other admitter's cached copy. Here only
     *  the owning worker writes, and nothing hot ever reads. */
    struct alignas(64) ShardStats
    {
        std::atomic<long> failures{0};
        std::atomic<long> folds{0};
    };

    std::vector<Shard> shards_;
    std::vector<ShardStats> stats_;
    alignas(64) std::atomic<long> peak_{0};
};

} // namespace tt::util

#endif // TT_UTIL_CONCURRENCY_SHARDED_GATE_HH
