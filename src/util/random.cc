#include "util/random.hh"

#include "util/logging.hh"

namespace tt {

namespace {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Seed the full 256-bit state from SplitMix64 per the xoshiro
    // authors' recommendation; guards against all-zero state.
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    tt_assert(bound > 0, "nextBounded requires a positive bound");
    // Lemire's multiply-shift with rejection for exact uniformity.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
        std::uint64_t floor = (-bound) % bound;
        while (l < floor) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            l = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::nextDouble(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

std::int64_t
Rng::nextInt(std::int64_t lo, std::int64_t hi)
{
    tt_assert(lo <= hi, "nextInt bounds inverted");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextGaussian(double mean, double stddev)
{
    // Irwin-Hall sum of 12 uniforms: mean 6, variance 1.
    double acc = 0.0;
    for (int i = 0; i < 12; ++i)
        acc += nextDouble();
    return mean + stddev * (acc - 6.0);
}

} // namespace tt
