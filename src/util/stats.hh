/**
 * @file
 * Small statistics helpers used by monitors, the simulator and the
 * benchmark harnesses.
 *
 * The paper (Sec. V) averages the middle 10 of 20 runs to suppress
 * measurement noise; trimmedMean() implements that estimator.
 * geometricMean() matches the "geometric mean of 12% improvement"
 * summary statistic used in the abstract.
 */

#ifndef TT_UTIL_STATS_HH
#define TT_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace tt {

/** Streaming accumulator: count / mean / variance / min / max. */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Remove all observations. */
    void reset();

    std::size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation; 0 when empty. */
    double min() const;

    /** Largest observation; 0 when empty. */
    double max() const;

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of a vector; 0 when empty. */
double mean(const std::vector<double> &xs);

/**
 * Mean of the middle samples after discarding the `trim` smallest and
 * `trim` largest values (the paper's middle-10-of-20 estimator is
 * trimmedMean(xs, 5) with 20 samples).
 */
double trimmedMean(std::vector<double> xs, std::size_t trim);

/** Geometric mean; all inputs must be positive. */
double geometricMean(const std::vector<double> &xs);

/** Median (of a copy); 0 when empty. */
double median(std::vector<double> xs);

/** Sliding window over the last `capacity` observations. */
class SlidingWindow
{
  public:
    explicit SlidingWindow(std::size_t capacity);

    void add(double x);
    void reset();

    std::size_t size() const { return data_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool full() const { return data_.size() == capacity_; }

    /** Mean over the samples currently held. */
    double mean() const;

  private:
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::vector<double> data_;
};

} // namespace tt

#endif // TT_UTIL_STATS_HH
