/**
 * @file
 * Small statistics helpers used by monitors, the simulator and the
 * benchmark harnesses.
 *
 * The paper (Sec. V) averages the middle 10 of 20 runs to suppress
 * measurement noise; trimmedMean() implements that estimator.
 * geometricMean() matches the "geometric mean of 12% improvement"
 * summary statistic used in the abstract.
 *
 * Histogram and MetricsRegistry form the metrics half of the runtime
 * observability layer (src/obs holds the tracing half): policies and
 * runtimes publish named counters, gauges and log-bucketed
 * distributions into a registry, which renders them as JSON
 * (`ttsim --metrics-out=`) or a human-readable table.
 */

#ifndef TT_UTIL_STATS_HH
#define TT_UTIL_STATS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace tt {

/** Streaming accumulator: count / mean / variance / min / max. */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStat &other);

    /** Remove all observations. */
    void reset();

    std::size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Population variance; 0 with fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation; 0 when empty. */
    double min() const;

    /** Largest observation; 0 when empty. */
    double max() const;

    /** Sum of all observations. */
    double sum() const { return sum_; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Arithmetic mean of a vector; 0 when empty. */
double mean(const std::vector<double> &xs);

/**
 * Mean of the middle samples after discarding the `trim` smallest and
 * `trim` largest values (the paper's middle-10-of-20 estimator is
 * trimmedMean(xs, 5) with 20 samples).
 */
double trimmedMean(std::vector<double> xs, std::size_t trim);

/** Geometric mean; all inputs must be positive. */
double geometricMean(const std::vector<double> &xs);

/** Median (of a copy); 0 when empty. */
double median(std::vector<double> xs);

/** Sliding window over the last `capacity` observations. */
class SlidingWindow
{
  public:
    explicit SlidingWindow(std::size_t capacity);

    void add(double x);
    void reset();

    std::size_t size() const { return data_.size(); }
    std::size_t capacity() const { return capacity_; }
    bool full() const { return data_.size() == capacity_; }

    /** Mean over the samples currently held. */
    double mean() const;

  private:
    std::size_t capacity_;
    std::size_t head_ = 0;
    std::vector<double> data_;
};

/**
 * Fixed log-scale-bucket histogram.
 *
 * Bucket edges are min_value * growth^k for k in [0, buckets]; slot
 * 0 is the underflow bucket (x < min_value) and the last slot the
 * overflow bucket (x >= the top edge). The geometry is fixed at
 * construction so two histograms with equal options merge exactly;
 * the defaults span 1 ns .. ~18 s at x2 resolution, covering every
 * duration the runtimes measure.
 */
class Histogram
{
  public:
    struct Options
    {
        double min_value = 1e-9; ///< lower edge of the first bucket
        double growth = 2.0;     ///< geometric factor between edges
        int buckets = 64;        ///< finite buckets between the edges
    };

    Histogram() : Histogram(Options{}) {}
    explicit Histogram(const Options &options);

    void add(double x);

    /** Merge another histogram; the bucket geometry must match. */
    void merge(const Histogram &other);

    void reset();

    std::size_t count() const { return stat_.count(); }
    bool empty() const { return stat_.empty(); }
    double mean() const { return stat_.mean(); }
    double min() const { return stat_.min(); }
    double max() const { return stat_.max(); }
    double sum() const { return stat_.sum(); }

    /** Total slots, including underflow (0) and overflow (last). */
    int bucketCount() const { return static_cast<int>(hits_.size()); }

    std::uint64_t bucketHits(int bucket) const;

    /** Inclusive lower edge of a slot (0 for the underflow slot). */
    double bucketLowerBound(int bucket) const;

    /** Exclusive upper edge of a slot (+inf for the overflow slot). */
    double bucketUpperBound(int bucket) const;

    /** Slot index the value would land in. */
    int bucketIndex(double x) const;

    /**
     * Approximate q-quantile (q in [0, 1]): linear interpolation
     * within the bucket holding the q-th observation, clamped to the
     * observed min/max. 0 when empty.
     */
    double quantile(double q) const;

    /** Common percentiles (log-bucket interpolation via quantile). */
    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    const Options &options() const { return options_; }

  private:
    Options options_;
    std::vector<double> edges_; ///< buckets + 1 ascending edges
    std::vector<std::uint64_t> hits_;
    RunningStat stat_;
};

/**
 * Thread-safe registry of named metrics: monotonic counters, last- or
 * max-value gauges, and log-bucket Histogram distributions. Policies
 * and runtimes publish into one registry during a run; afterwards it
 * renders as JSON (writeJson) or an aligned text table (summaryTable,
 * built on TablePrinter). All operations take one internal mutex --
 * cheap next to the work each published sample represents.
 */
class MetricsRegistry
{
  public:
    /** Add `delta` to a counter, creating it at zero. */
    void add(const std::string &name, std::int64_t delta = 1);

    /** Set a gauge to `value`. */
    void set(const std::string &name, double value);

    /** Raise a gauge to `value` if larger (high-water mark). */
    void setMax(const std::string &name, double value);

    /** Record one observation into a histogram (default geometry). */
    void observe(const std::string &name, double value);

    /** As observe(), with explicit geometry on first use. */
    void observe(const std::string &name, double value,
                 const Histogram::Options &options);

    /**
     * Merge a whole histogram into the named one (creating it with
     * `shard`'s geometry if absent) — the fold point for per-worker
     * metric shards. Exact for bucket hits, counts, sums and
     * min/max; equivalent to having observed every sample here.
     */
    void merge(const std::string &name, const Histogram &shard);

    std::int64_t counter(const std::string &name) const;
    double gauge(const std::string &name, double fallback = 0.0) const;

    /** Snapshot of a histogram; empty default geometry when absent. */
    Histogram histogram(const std::string &name) const;

    bool hasCounter(const std::string &name) const;
    bool hasGauge(const std::string &name) const;
    bool hasHistogram(const std::string &name) const;

    std::vector<std::string> counterNames() const;
    std::vector<std::string> gaugeNames() const;
    std::vector<std::string> histogramNames() const;

    bool empty() const;
    void clear();

    /** Render every metric as one JSON object. */
    void writeJson(std::ostream &os) const;

    /** Render every metric as an aligned human-readable table. */
    std::string summaryTable() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::int64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace tt

#endif // TT_UTIL_STATS_HH
