#include "util/flags.hh"

#include <cstdlib>

namespace tt {

bool
Flags::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        if (arg == "--") {
            error_ = "bare '--' is not a flag";
            return false;
        }
        const std::string body = arg.substr(2);
        const std::size_t eq = body.find('=');
        if (eq != std::string::npos) {
            values_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // `--name value` when the next token is not itself a flag;
        // otherwise a boolean switch.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            values_[body] = argv[++i];
        } else {
            values_[body] = "";
        }
    }
    return true;
}

bool
Flags::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Flags::getString(const std::string &name,
                 const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Flags::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
        error_ = "flag --" + name + " expects an integer, got '" +
                 it->second + "'";
        return fallback;
    }
    return value;
}

double
Flags::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
        error_ = "flag --" + name + " expects a number, got '" +
                 it->second + "'";
        return fallback;
    }
    return value;
}

bool
Flags::getBool(const std::string &name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string &value = it->second;
    if (value.empty() || value == "1" || value == "true" ||
        value == "yes") {
        return true;
    }
    if (value == "0" || value == "false" || value == "no")
        return false;
    error_ = "flag --" + name + " expects a boolean, got '" + value +
             "'";
    return fallback;
}

bool
Flags::allowOnly(const std::vector<std::string> &known) const
{
    for (const auto &entry : values_) {
        bool found = false;
        for (const std::string &name : known) {
            if (entry.first == name) {
                found = true;
                break;
            }
        }
        if (!found) {
            error_ = "unknown flag --" + entry.first;
            return false;
        }
    }
    return true;
}

} // namespace tt
