#include "obs/span.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tt::obs {

const char *
spanOutcomeName(SpanOutcome outcome)
{
    switch (outcome) {
      case SpanOutcome::Completed:
        return "completed";
      case SpanOutcome::DeadlineMiss:
        return "deadline_miss";
      case SpanOutcome::Shed:
        return "shed";
      case SpanOutcome::Failed:
        return "failed";
    }
    return "?";
}

CriticalPath
computeCriticalPath(const JobSpan &span)
{
    CriticalPath cp;
    cp.response = std::max(span.end - span.arrival, 0.0);
    if (span.attempts.empty())
        return cp; // shed before dispatch: nothing to attribute

    // Execution time of the attempts that counted vs the retry tax
    // (failed bodies + the backoff sleep each was granted).
    double exec = 0.0;
    double retry = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t stalled = 0;
    for (const SpanAttempt &attempt : span.attempts) {
        const double body = std::max(attempt.end - attempt.start, 0.0);
        if (attempt.failed) {
            retry += body + attempt.backoff_seconds;
            continue;
        }
        exec += body;
        if (attempt.has_counters) {
            cycles += attempt.counters.cycles;
            stalled += attempt.counters.stalled_cycles;
        }
    }
    exec = std::min(exec, cp.response);
    retry = std::min(retry, cp.response - exec);

    // Split execution into memory-stalled vs compute time using the
    // hw-counter stall share of the successful attempts; without
    // counters everything executing counts as compute.
    double stall_share = 0.0;
    if (cycles > 0)
        stall_share = std::clamp(static_cast<double>(stalled) /
                                     static_cast<double>(cycles),
                                 0.0, 1.0);
    cp.mem_stall = exec * stall_share;
    cp.compute = exec - cp.mem_stall;
    cp.retry_backoff = retry;

    // Everything not executing and not a retry is queueing (ready-
    // queue wait plus inter-task dispatch gaps), so the components
    // sum to the measured response by construction.
    cp.queue_wait =
        std::max(cp.response - exec - retry - cp.admission, 0.0);
    return cp;
}

SpanBuffer::SpanBuffer(std::size_t capacity) : capacity_(capacity)
{
    tt_assert(capacity_ > 0, "span buffer needs capacity >= 1");
    data_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void
SpanBuffer::record(JobSpan span)
{
    const std::size_t slot =
        static_cast<std::size_t>(recorded_ % capacity_);
    if (data_.size() < capacity_ && slot == data_.size())
        data_.push_back(std::move(span));
    else
        data_[slot] = std::move(span);
    ++recorded_;
}

std::size_t
SpanBuffer::size() const
{
    return data_.size();
}

std::uint64_t
SpanBuffer::dropped() const
{
    return recorded_ - data_.size();
}

std::vector<JobSpan>
SpanBuffer::spans() const
{
    std::vector<JobSpan> out;
    out.reserve(data_.size());
    const std::size_t oldest =
        static_cast<std::size_t>(recorded_ % capacity_);
    if (data_.size() < capacity_) {
        out = data_;
    } else {
        for (std::size_t i = 0; i < data_.size(); ++i)
            out.push_back(data_[(oldest + i) % capacity_]);
    }
    return out;
}

} // namespace tt::obs
