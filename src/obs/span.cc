#include "obs/span.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tt::obs {

const char *
spanOutcomeName(SpanOutcome outcome)
{
    switch (outcome) {
      case SpanOutcome::Completed:
        return "completed";
      case SpanOutcome::DeadlineMiss:
        return "deadline_miss";
      case SpanOutcome::Shed:
        return "shed";
      case SpanOutcome::Failed:
        return "failed";
    }
    return "?";
}

CriticalPath
computeCriticalPath(const JobSpan &span)
{
    CriticalPath cp;
    cp.response = std::max(span.end - span.arrival, 0.0);
    if (span.attempts.empty())
        return cp; // shed before dispatch: nothing to attribute

    // Execution time of the attempts that counted vs the retry tax
    // (failed bodies + the backoff sleep each was granted).
    double exec = 0.0;
    double retry = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t stalled = 0;
    for (const SpanAttempt &attempt : span.attempts) {
        const double body = std::max(attempt.end - attempt.start, 0.0);
        if (attempt.failed) {
            retry += body + attempt.backoff_seconds;
            continue;
        }
        exec += body;
        if (attempt.has_counters) {
            cycles += attempt.counters.cycles;
            stalled += attempt.counters.stalled_cycles;
        }
    }
    exec = std::min(exec, cp.response);
    retry = std::min(retry, cp.response - exec);

    // Split execution into memory-stalled vs compute time using the
    // hw-counter stall share of the successful attempts; without
    // counters everything executing counts as compute.
    double stall_share = 0.0;
    if (cycles > 0)
        stall_share = std::clamp(static_cast<double>(stalled) /
                                     static_cast<double>(cycles),
                                 0.0, 1.0);
    cp.mem_stall = exec * stall_share;
    cp.compute = exec - cp.mem_stall;
    cp.retry_backoff = retry;

    // Everything not executing and not a retry is queueing (ready-
    // queue wait plus inter-task dispatch gaps), so the components
    // sum to the measured response by construction.
    cp.queue_wait =
        std::max(cp.response - exec - retry - cp.admission, 0.0);
    return cp;
}

SpanBuffer::SpanBuffer(std::size_t capacity) : capacity_(capacity)
{
    tt_assert(capacity_ > 0, "span buffer needs capacity >= 1");
    auto *first = new Segment(0);
    head_.store(first, std::memory_order_release);
    tail_.store(first, std::memory_order_release);
}

SpanBuffer::~SpanBuffer()
{
    // Epoch limbo is drained by epoch_'s destructor; the still-live
    // chain is ours to free (no guards can be live here).
    Segment *seg = head_.load(std::memory_order_acquire);
    while (seg != nullptr) {
        Segment *next = seg->next.load(std::memory_order_acquire);
        delete seg;
        seg = next;
    }
}

SpanBuffer::Segment *
SpanBuffer::segmentFor(std::uint64_t seq)
{
    // Fast path: the newest segment covers almost every claim.
    Segment *seg = tail_.load(std::memory_order_acquire);
    if (seq >= seg->base && seq < seg->base + kSegmentSpans)
        return seg;
    if (seq >= seg->base + kSegmentSpans) {
        // Extend the chain far enough to cover seq. Rare: once per
        // kSegmentSpans records, shared by every writer that raced
        // past the tail.
        std::lock_guard<std::mutex> lock(install_mutex_);
        seg = tail_.load(std::memory_order_acquire);
        while (seq >= seg->base + kSegmentSpans) {
            auto *fresh = new Segment(seg->base + kSegmentSpans);
            seg->next.store(fresh, std::memory_order_release);
            tail_.store(fresh, std::memory_order_release);
            seg = fresh;
        }
        return seg;
    }
    // Slow path: an older (still linked) segment.
    seg = head_.load(std::memory_order_acquire);
    while (seg != nullptr &&
           seq >= seg->base + kSegmentSpans)
        seg = seg->next.load(std::memory_order_acquire);
    if (seg == nullptr || seq < seg->base)
        return nullptr; // window slid past a stalled writer's claim
    return seg;
}

void
SpanBuffer::reclaim(std::uint64_t window_start)
{
    {
        std::lock_guard<std::mutex> lock(install_mutex_);
        Segment *seg = head_.load(std::memory_order_acquire);
        while (seg != nullptr &&
               seg->base + kSegmentSpans <= window_start &&
               seg != tail_.load(std::memory_order_acquire)) {
            Segment *next =
                seg->next.load(std::memory_order_acquire);
            head_.store(next, std::memory_order_release);
            epoch_.retire([seg] { delete seg; });
            seg = next;
        }
    }
    epoch_.tryAdvance();
}

void
SpanBuffer::record(JobSpan span)
{
    const std::uint64_t seq =
        next_seq_.fetch_add(1, std::memory_order_relaxed);
    {
        util::EpochReclaimer::Guard guard(epoch_);
        Segment *seg = segmentFor(seq);
        if (seg != nullptr) {
            Slot &slot = seg->slots[seq - seg->base];
            slot.span = std::move(span);
            slot.ready.store(1, std::memory_order_release);
        }
        // A null segment means the window already slid past this
        // claim (a stalled writer lapped by >capacity records); the
        // span counts as dropped, exactly as the window semantics
        // dictate.
    }
    // Amortized housekeeping: each segment's last writer trims the
    // chain below the new window start.
    if ((seq + 1) % kSegmentSpans == 0 && seq + 1 > capacity_)
        reclaim(seq + 1 - capacity_);
}

std::uint64_t
SpanBuffer::recorded() const
{
    return next_seq_.load(std::memory_order_relaxed);
}

std::size_t
SpanBuffer::size() const
{
    return static_cast<std::size_t>(
        std::min<std::uint64_t>(recorded(), capacity_));
}

std::uint64_t
SpanBuffer::dropped() const
{
    return recorded() - size();
}

std::vector<JobSpan>
SpanBuffer::spans() const
{
    std::vector<JobSpan> out;
    const std::uint64_t end =
        next_seq_.load(std::memory_order_acquire);
    const std::uint64_t start = end > capacity_ ? end - capacity_ : 0;
    out.reserve(static_cast<std::size_t>(end - start));
    util::EpochReclaimer::Guard guard(epoch_);
    const Segment *seg = head_.load(std::memory_order_acquire);
    for (; seg != nullptr;
         seg = seg->next.load(std::memory_order_acquire)) {
        if (seg->base + kSegmentSpans <= start)
            continue;
        if (seg->base >= end)
            break;
        const std::uint64_t lo = std::max(seg->base, start);
        const std::uint64_t hi =
            std::min(seg->base + kSegmentSpans, end);
        for (std::uint64_t seq = lo; seq < hi; ++seq) {
            const Slot &slot = seg->slots[seq - seg->base];
            if (slot.ready.load(std::memory_order_acquire))
                out.push_back(slot.span);
        }
    }
    return out;
}

} // namespace tt::obs
