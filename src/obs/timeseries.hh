/**
 * @file
 * Periodic run-state snapshots as JSON Lines.
 *
 * Both runtimes can emit a time series of their live scheduler state
 * -- one JSON object per line, so the file streams cleanly into
 * jq/pandas and survives a crashed run up to the last flushed row.
 * The host runtime samples from a background thread on wall time;
 * SimRuntime samples on simulated time from its event queue. ttsim
 * exposes both via --timeseries-out FILE.
 */

#ifndef TT_OBS_TIMESERIES_HH
#define TT_OBS_TIMESERIES_HH

#include <cstdint>
#include <ostream>

namespace tt::obs {

/** One snapshot of a running schedule. */
struct TimeseriesSample
{
    double time = 0.0;     ///< seconds from run start (wall or sim)
    int mtl = 0;           ///< MTL the policy currently publishes
    int mem_in_flight = 0; ///< memory tasks executing right now
    int tasks_done = 0;
    long pairs_done = 0;            ///< pairs measured so far
    std::size_t ready_memory = 0;   ///< ready-queue depths
    std::size_t ready_compute = 0;
    long selections = 0;  ///< MTL selections completed so far
    bool degraded = false; ///< policy in fault-tolerance fallback
    long queue_depth = 0; ///< admitted jobs in system (open-loop; 0 else)
    int backpressure = 0; ///< 0=accept 1=delay 2=shed (open-loop; 0 else)
};

/** Append `sample` to `os` as one JSONL row (with trailing newline). */
void writeTimeseriesRow(const TimeseriesSample &sample,
                        std::ostream &os);

} // namespace tt::obs

#endif // TT_OBS_TIMESERIES_HH
