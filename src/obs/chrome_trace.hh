/**
 * @file
 * Chrome trace-event rendering of a TraceData stream.
 *
 * The emitted JSON loads into chrome://tracing or Perfetto: one row
 * per worker/context with its memory (M) and compute (C) task slices
 * annotated with the pair, the phase name and the MTL in force at
 * dispatch, plus a counter track of the policy's MTL over time --
 * which makes throttling decisions and phase adaptation literally
 * visible. Every backend exports through here: exec::toTraceData
 * couples any run's RunResult with its graph, and ttsim's
 * --trace-out flag uses it for host and simulated runs alike.
 */

#ifndef TT_OBS_CHROME_TRACE_HH
#define TT_OBS_CHROME_TRACE_HH

#include <ostream>
#include <string>

#include "obs/trace.hh"

namespace tt::obs {

/**
 * Write `data` as a Chrome trace-event JSON array. Durations are in
 * microseconds of run time (simulated or wall, per the producer).
 */
void writeChromeTrace(const TraceData &data, std::ostream &os);

/** Convenience: render to a string (used by tests). */
std::string chromeTraceString(const TraceData &data);

} // namespace tt::obs

#endif // TT_OBS_CHROME_TRACE_HH
