/**
 * @file
 * Live telemetry: OpenMetrics rendering of a MetricsRegistry plus
 * the two delivery mechanisms behind `ttsim --live-metrics PATH`.
 *
 * Every other observability surface (ttreport, metrics JSON, Chrome
 * traces, time series) is post-mortem -- written after the run
 * drains. This module exposes the registry *while the run is live*:
 *
 *  - writeOpenMetrics() renders a snapshot in the OpenMetrics text
 *    format (counters as `_total`, gauges, histograms as summaries
 *    with p50/p90/p95/p99 quantile lines, `# EOF` terminator). The
 *    render is lock-light: it snapshots through the registry's
 *    public accessors, never holding its mutex across the write.
 *
 *  - LiveMetricsServer serves snapshots over a Unix-domain socket
 *    from a background thread (host backend: real time, poll on
 *    demand). The protocol is trivial: connect, read one snapshot
 *    to EOF. `ttstat` is the bundled client.
 *
 *  - LiveFileSink rewrites a snapshot file atomically (write tmp +
 *    rename); the engine drives it on backend timers, which on the
 *    sim backend yields periodic *simulated-time* snapshots.
 *
 * Both sinks charge their rendering cost to the
 * `obs.overhead.live_export_ns` counter so the observability layer
 * reports its own cost.
 */

#ifndef TT_OBS_LIVE_HH
#define TT_OBS_LIVE_HH

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <thread>

namespace tt {
class MetricsRegistry;
}

namespace tt::obs {

/**
 * Sanitize a registry metric name for OpenMetrics: characters
 * outside [a-zA-Z0-9_:] become '_' ("runtime.tm_seconds.mtl=4" ->
 * "runtime_tm_seconds_mtl_4"); a leading digit gains a '_' prefix.
 */
std::string openMetricsName(const std::string &name);

/**
 * Render every metric in `metrics` as OpenMetrics text. When
 * `snapshot_seconds` is >= 0 an extra `obs_snapshot_time_seconds`
 * gauge stamps the engine-clock snapshot time.
 */
void writeOpenMetrics(const MetricsRegistry &metrics, std::ostream &os,
                      double snapshot_seconds = -1.0);

/** As writeOpenMetrics(), into a string. */
std::string openMetricsText(const MetricsRegistry &metrics,
                            double snapshot_seconds = -1.0);

/**
 * Periodic OpenMetrics file snapshots. snapshot() renders to
 * `path + ".tmp"` and renames over `path`, so a concurrent reader
 * (ttstat in file mode) never sees a torn snapshot. Write failures
 * warn once and latch ok() false without failing the run.
 */
class LiveFileSink
{
  public:
    /** `metrics` is borrowed and must outlive the sink. */
    LiveFileSink(std::string path, MetricsRegistry &metrics);

    /** Rewrite the snapshot file; `now_seconds` stamps it. */
    void snapshot(double now_seconds);

    const std::string &path() const { return path_; }
    std::uint64_t snapshots() const { return snapshots_; }
    bool ok() const { return ok_; }

  private:
    std::string path_;
    MetricsRegistry &metrics_;
    std::uint64_t snapshots_ = 0;
    bool ok_ = true;
};

/**
 * Unix-domain-socket OpenMetrics endpoint. start() binds `path`
 * (unlinking any stale socket), listens, and spawns one background
 * thread; every accepted connection receives one snapshot and is
 * closed. stop() (also run by the destructor) joins the thread and
 * unlinks the socket. The registry is thread-safe, so serving
 * concurrently with a live run is sound.
 */
class LiveMetricsServer
{
  public:
    /** `metrics` is borrowed and must outlive the server. */
    LiveMetricsServer(std::string path, MetricsRegistry &metrics);
    ~LiveMetricsServer();

    LiveMetricsServer(const LiveMetricsServer &) = delete;
    LiveMetricsServer &operator=(const LiveMetricsServer &) = delete;

    /** Bind + listen + spawn; false (and error()) on failure. */
    bool start();

    /** Stop serving, join the thread, unlink the socket. */
    void stop();

    const std::string &path() const { return path_; }
    const std::string &error() const { return error_; }

    /** Snapshots served so far. */
    std::uint64_t served() const
    {
        return served_.load(std::memory_order_relaxed);
    }

  private:
    void serveLoop();

    std::string path_;
    MetricsRegistry &metrics_;
    std::string error_;
    int listen_fd_ = -1;
    std::thread thread_;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> served_{0};
};

} // namespace tt::obs

#endif // TT_OBS_LIVE_HH
