#include "obs/health.hh"

#include <algorithm>
#include <utility>

namespace tt::obs {

const char *
alertSeverityName(AlertSeverity severity)
{
    switch (severity) {
    case AlertSeverity::Warning:
        return "warning";
    case AlertSeverity::Critical:
        return "critical";
    }
    return "unknown";
}

const char *
alertEdgeName(AlertEdge edge)
{
    switch (edge) {
    case AlertEdge::Fired:
        return "fired";
    case AlertEdge::Cleared:
        return "cleared";
    }
    return "unknown";
}

HealthEngine::HealthEngine(const HealthConfig &config)
    : config_(config)
{
    config_.window_jobs = std::max(1, config_.window_jobs);
    config_.fire_windows = std::max(1, config_.fire_windows);
    config_.clear_windows = std::max(1, config_.clear_windows);
    config_.alert_capacity =
        std::max<std::size_t>(1, config_.alert_capacity);

    slo_burn_ = {"slo_burn", AlertSeverity::Critical,
                 config_.slo_burn_enabled};
    queue_growth_ = {"queue_growth", AlertSeverity::Warning,
                     config_.queue_growth_enabled};
    gate_saturation_ = {"gate_saturation", AlertSeverity::Warning,
                        config_.gate_saturation_enabled};
    drop_rate_ = {"drop_rate", AlertSeverity::Warning,
                  config_.drop_rate_enabled};
    ebr_lag_ = {"ebr_lag", AlertSeverity::Warning,
                config_.ebr_lag_enabled};
    model_bound_ = {"model_bound", AlertSeverity::Critical,
                    config_.model_bound_enabled &&
                        config_.model_tml > 0.0};
}

void
HealthEngine::evaluate(Rule &rule, bool breach, std::uint64_t window,
                       double observed, double threshold, double time)
{
    if (!rule.enabled)
        return;
    if (breach) {
        ++rule.breach_streak;
        rule.healthy_streak = 0;
        if (!rule.active &&
            rule.breach_streak >= config_.fire_windows) {
            rule.active = true;
            ++rule.fired;
            append({rule.id, rule.severity, AlertEdge::Fired, window,
                    observed, threshold, time});
        }
    } else {
        ++rule.healthy_streak;
        rule.breach_streak = 0;
        if (rule.active &&
            rule.healthy_streak >= config_.clear_windows) {
            rule.active = false;
            ++rule.cleared;
            append({rule.id, rule.severity, AlertEdge::Cleared,
                    window, observed, threshold, time});
        }
    }
}

void
HealthEngine::onJobWindow(const JobWindowSample &sample)
{
    // slo_burn: burn rate = per-window miss share over the miss
    // budget. Sheds and predicted-late admits are both misses in the
    // model's eyes; actual deadline outcomes are wall-clock-dependent
    // on the host and would break cross-backend determinism.
    const double budget =
        std::max(1e-9, 1.0 - config_.attainment_target);
    const int offered = std::max(1, sample.offered);
    const double miss =
        static_cast<double>(sample.shed + sample.predicted_late) /
        static_cast<double>(offered);
    const double burn = miss / budget;
    if (!burn_primed_) {
        burn_fast_ = burn;
        burn_slow_ = burn;
        burn_primed_ = true;
    } else {
        burn_fast_ = config_.burn_fast_alpha * burn +
                     (1.0 - config_.burn_fast_alpha) * burn_fast_;
        burn_slow_ = config_.burn_slow_alpha * burn +
                     (1.0 - config_.burn_slow_alpha) * burn_slow_;
    }
    const bool burning =
        burn_fast_ >= config_.burn_fast_threshold &&
        burn_slow_ >= config_.burn_slow_threshold;
    evaluate(slo_burn_, burning, sample.window, burn_fast_,
             config_.burn_fast_threshold, sample.time);

    // queue_growth: model backlog strictly rising above the floor.
    // The fire hysteresis supplies the "sustained" requirement.
    const bool growing =
        have_prev_backlog_ && sample.backlog > prev_backlog_ &&
        sample.backlog > config_.queue_growth_floor;
    prev_backlog_ = sample.backlog;
    have_prev_backlog_ = true;
    evaluate(queue_growth_, growing, sample.window,
             static_cast<double>(sample.backlog),
             static_cast<double>(config_.queue_growth_floor),
             sample.time);
}

void
HealthEngine::onTickWindow(const TickWindowSample &sample)
{
    // gate_saturation: share of gate folds that ended in rejection.
    const double folds =
        static_cast<double>(std::max<long>(1, sample.gate_folds));
    const double failure_ratio = std::min(
        1.0, static_cast<double>(sample.gate_failures) / folds);
    const bool saturated =
        sample.gate_folds >= config_.gate_min_folds &&
        failure_ratio >= config_.gate_failure_ratio;
    evaluate(gate_saturation_, saturated, sample.window,
             failure_ratio, config_.gate_failure_ratio, sample.time);

    // drop_rate: dropped share of everything offered to the trace
    // ring and span buffer this window.
    const long drops = sample.trace_dropped + sample.span_dropped;
    const double denom = static_cast<double>(
        std::max<long>(1, sample.records + drops));
    const double drop_ratio = static_cast<double>(drops) / denom;
    evaluate(drop_rate_, drop_ratio >= config_.drop_rate_threshold,
             sample.window, drop_ratio, config_.drop_rate_threshold,
             sample.time);

    // ebr_lag: limbo holding retired segments while the epoch makes
    // no progress — a reader stuck in a guard or a stalled advance.
    const bool lagging =
        sample.ebr_pending >= config_.ebr_pending_floor &&
        sample.ebr_advances == 0;
    evaluate(ebr_lag_, lagging, sample.window,
             static_cast<double>(sample.ebr_pending),
             static_cast<double>(config_.ebr_pending_floor),
             sample.time);

    // model_bound: measured memory seconds against the Sec. IV-C
    // queuing fit T_mb = T_ml + b * T_ql summed over the window's
    // completed pairs, scaled by the allowed factor.
    if (sample.pair_samples > 0 && sample.sum_bound > 0.0) {
        const double limit =
            config_.model_bound_factor * sample.sum_bound;
        evaluate(model_bound_, sample.sum_tm > limit, sample.window,
                 sample.sum_tm, limit, sample.time);
    } else {
        evaluate(model_bound_, false, sample.window, 0.0, 0.0,
                 sample.time);
    }
}

bool
HealthEngine::criticalActive() const
{
    for (const Rule *rule :
         {&slo_burn_, &queue_growth_, &gate_saturation_, &drop_rate_,
          &ebr_lag_, &model_bound_})
        if (rule->active && rule->severity == AlertSeverity::Critical)
            return true;
    return false;
}

std::vector<HealthEngine::RuleState>
HealthEngine::ruleStates() const
{
    std::vector<RuleState> states;
    states.reserve(6);
    for (const Rule *rule :
         {&slo_burn_, &queue_growth_, &gate_saturation_, &drop_rate_,
          &ebr_lag_, &model_bound_})
        states.push_back({rule->id, rule->severity, rule->enabled,
                          rule->active, rule->fired, rule->cleared});
    return states;
}

void
HealthEngine::append(AlertEvent event)
{
    if (alerts_.size() >= config_.alert_capacity) {
        alerts_.erase(alerts_.begin());
        ++alerts_dropped_;
    }
    alerts_.push_back(std::move(event));
}

} // namespace tt::obs
