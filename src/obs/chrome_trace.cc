#include "obs/chrome_trace.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace tt::obs {

namespace {

/** Escape a string for a JSON literal (names are simple, but be safe). */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

void
writeChromeTrace(const TraceData &data, std::ostream &os)
{
    os << "[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    os << std::fixed << std::setprecision(3);

    // Worker rows: one duration event per task.
    for (const TaskEvent &event : data.events) {
        sep();
        const std::string phase_name =
            event.phase >= 0 &&
                    event.phase <
                        static_cast<std::int32_t>(data.phase_names.size())
                ? data.phase_names[static_cast<std::size_t>(event.phase)]
                : "?";
        os << "  {\"ph\":\"X\",\"pid\":0,\"tid\":" << event.worker
           << ",\"name\":\"" << (event.is_memory ? "M" : "C") << " pair"
           << event.pair << "\",\"cat\":\""
           << (event.is_memory ? "memory" : "compute")
           << "\",\"ts\":" << event.start * 1e6
           << ",\"dur\":" << (event.end - event.start) * 1e6
           << ",\"args\":{\"phase\":\"" << jsonEscape(phase_name)
           << "\",\"mtl\":" << event.mtl;
        if (event.has_counters)
            os << ",\"llc_misses\":" << event.counters.llc_misses
               << ",\"stalled_cycles\":"
               << event.counters.stalled_cycles
               << ",\"instructions\":"
               << event.counters.instructions;
        os << "}}";
    }

    // Hardware-counter tracks: cumulative totals sampled at each
    // counting event's completion, so the track slopes show where
    // misses and stalls concentrated over the run.
    {
        std::vector<const TaskEvent *> counted;
        for (const TaskEvent &event : data.events)
            if (event.has_counters)
                counted.push_back(&event);
        std::sort(counted.begin(), counted.end(),
                  [](const TaskEvent *a, const TaskEvent *b) {
                      return a->end < b->end;
                  });
        std::uint64_t misses = 0;
        std::uint64_t stalled = 0;
        for (const TaskEvent *event : counted) {
            misses += event->counters.llc_misses;
            stalled += event->counters.stalled_cycles;
            sep();
            os << "  {\"ph\":\"C\",\"pid\":0,\"name\":\"hw "
               << "counters\",\"ts\":" << event->end * 1e6
               << ",\"args\":{\"llc_misses\":" << misses
               << ",\"stalled_cycles\":" << stalled << "}}";
        }
    }

    // MTL counter track.
    for (const auto &[time, mtl] : data.mtl_trace) {
        sep();
        os << "  {\"ph\":\"C\",\"pid\":0,\"name\":\"MTL\",\"ts\":"
           << time * 1e6 << ",\"args\":{\"mtl\":" << mtl << "}}";
    }

    // Policy decision audit: one global instant event per record,
    // carrying the measurements that drove the transition, plus a
    // counter track of the predicted speedup at each selection.
    for (const core::MtlDecision &d : data.decisions) {
        sep();
        os << "  {\"ph\":\"i\",\"pid\":0,\"tid\":0,\"s\":\"g\","
           << "\"cat\":\"policy\",\"name\":\"policy "
           << core::decisionReasonName(d.reason)
           << "\",\"ts\":" << d.time * 1e6 << ",\"args\":{"
           << "\"from_mtl\":" << d.from_mtl
           << ",\"to_mtl\":" << d.to_mtl
           << ",\"window_tm_us\":" << d.window_tm * 1e6
           << ",\"window_tc_us\":" << d.window_tc * 1e6
           << ",\"idle_bound\":" << d.idle_bound
           << ",\"mtl_no_idle\":" << d.mtl_no_idle
           << ",\"mtl_idle\":" << d.mtl_idle
           << ",\"rank_no_idle\":" << d.rank_no_idle
           << ",\"rank_idle\":" << d.rank_idle
           << ",\"predicted_speedup\":" << d.predicted_speedup
           << ",\"probes_used\":" << d.probes_used
           << ",\"degraded\":" << (d.degraded ? "true" : "false")
           << "}}";
    }
    for (const core::MtlDecision &d : data.decisions) {
        if (d.predicted_speedup <= 0.0)
            continue;
        sep();
        os << "  {\"ph\":\"C\",\"pid\":0,\"name\":\"predicted "
           << "speedup\",\"ts\":" << d.time * 1e6
           << ",\"args\":{\"speedup\":" << d.predicted_speedup
           << "}}";
    }

    // Worker naming metadata.
    int max_worker = -1;
    for (const TaskEvent &event : data.events)
        max_worker = std::max(max_worker, event.worker);
    for (const JobSpan &span : data.spans)
        for (const SpanAttempt &attempt : span.attempts)
            max_worker = std::max(max_worker, attempt.worker);
    for (int worker = 0; worker <= max_worker; ++worker) {
        sep();
        os << "  {\"ph\":\"M\",\"pid\":0,\"tid\":" << worker
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"context "
           << worker << "\"}}";
    }

    // Job spans as flow events: a flow start on the synthetic
    // "arrivals" track at the job's arrival stamp, bound (bp:"e") to
    // the worker row where its final attempt ended, so the viewer
    // draws an arrow from arrival to completion crossing any retry
    // hops. Shed jobs never reach a worker and render as instant
    // events on the arrivals track instead.
    {
        const int arrivals_tid = max_worker + 1;
        bool any_span = false;
        std::size_t flow_id = 0;
        for (const JobSpan &span : data.spans) {
            ++flow_id;
            any_span = true;
            if (span.attempts.empty()) {
                sep();
                os << "  {\"ph\":\"i\",\"pid\":0,\"tid\":"
                   << arrivals_tid << ",\"s\":\"t\",\"cat\":\"job\","
                   << "\"name\":\"shed pair" << span.pair
                   << "\",\"ts\":" << span.arrival * 1e6
                   << ",\"args\":{\"reason\":\""
                   << load::shedReasonName(span.shed_reason)
                   << "\",\"priority\":" << span.priority << "}}";
                continue;
            }
            const SpanAttempt &last = span.attempts.back();
            sep();
            os << "  {\"ph\":\"s\",\"pid\":0,\"tid\":" << arrivals_tid
               << ",\"id\":" << flow_id << ",\"cat\":\"job\","
               << "\"name\":\"pair" << span.pair
               << "\",\"ts\":" << span.arrival * 1e6
               << ",\"args\":{\"outcome\":\""
               << spanOutcomeName(span.outcome)
               << "\",\"priority\":" << span.priority
               << ",\"attempts\":" << span.attempts.size()
               << ",\"queue_wait_us\":"
               << span.critical_path.queue_wait * 1e6
               << ",\"mem_stall_us\":"
               << span.critical_path.mem_stall * 1e6 << "}}";
            sep();
            os << "  {\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":"
               << last.worker << ",\"id\":" << flow_id
               << ",\"cat\":\"job\",\"name\":\"pair" << span.pair
               << "\",\"ts\":" << last.end * 1e6 << "}";
        }
        if (any_span) {
            sep();
            os << "  {\"ph\":\"M\",\"pid\":0,\"tid\":" << arrivals_tid
               << ",\"name\":\"thread_name\",\"args\":{\"name\":"
               << "\"arrivals\"}}";
        }
    }

    // Health-alert edges as global instant events: the viewer draws
    // a full-height marker at every fired/cleared edge, with the
    // detector's observed-vs-threshold reading in the args.
    for (const AlertEvent &alert : data.alerts) {
        sep();
        os << "  {\"ph\":\"i\",\"pid\":0,\"tid\":0,\"s\":\"g\","
           << "\"cat\":\"health\",\"name\":\"alert "
           << jsonEscape(alert.rule) << " "
           << alertEdgeName(alert.edge) << "\",\"ts\":"
           << alert.time * 1e6 << ",\"args\":{"
           << "\"severity\":\"" << alertSeverityName(alert.severity)
           << "\",\"edge\":\"" << alertEdgeName(alert.edge)
           << "\",\"window\":" << alert.window
           << ",\"observed\":" << alert.observed
           << ",\"threshold\":" << alert.threshold << "}}";
    }

    os << "\n]\n";
}

std::string
chromeTraceString(const TraceData &data)
{
    std::ostringstream os;
    writeChromeTrace(data, os);
    return os.str();
}

} // namespace tt::obs
