#include "obs/chrome_trace.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace tt::obs {

namespace {

/** Escape a string for a JSON literal (names are simple, but be safe). */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

} // namespace

void
writeChromeTrace(const TraceData &data, std::ostream &os)
{
    os << "[\n";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",\n";
        first = false;
    };
    os << std::fixed << std::setprecision(3);

    // Worker rows: one duration event per task.
    for (const TaskEvent &event : data.events) {
        sep();
        const std::string phase_name =
            event.phase >= 0 &&
                    event.phase <
                        static_cast<std::int32_t>(data.phase_names.size())
                ? data.phase_names[static_cast<std::size_t>(event.phase)]
                : "?";
        os << "  {\"ph\":\"X\",\"pid\":0,\"tid\":" << event.worker
           << ",\"name\":\"" << (event.is_memory ? "M" : "C") << " pair"
           << event.pair << "\",\"cat\":\""
           << (event.is_memory ? "memory" : "compute")
           << "\",\"ts\":" << event.start * 1e6
           << ",\"dur\":" << (event.end - event.start) * 1e6
           << ",\"args\":{\"phase\":\"" << jsonEscape(phase_name)
           << "\",\"mtl\":" << event.mtl << "}}";
    }

    // MTL counter track.
    for (const auto &[time, mtl] : data.mtl_trace) {
        sep();
        os << "  {\"ph\":\"C\",\"pid\":0,\"name\":\"MTL\",\"ts\":"
           << time * 1e6 << ",\"args\":{\"mtl\":" << mtl << "}}";
    }

    // Worker naming metadata.
    int max_worker = -1;
    for (const TaskEvent &event : data.events)
        max_worker = std::max(max_worker, event.worker);
    for (int worker = 0; worker <= max_worker; ++worker) {
        sep();
        os << "  {\"ph\":\"M\",\"pid\":0,\"tid\":" << worker
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"context "
           << worker << "\"}}";
    }

    os << "\n]\n";
}

std::string
chromeTraceString(const TraceData &data)
{
    std::ostringstream os;
    writeChromeTrace(data, os);
    return os.str();
}

} // namespace tt::obs
