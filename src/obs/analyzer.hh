/**
 * @file
 * Post-run latency attribution and model-validation analysis.
 *
 * The tracing substrate (trace.hh) records what happened; this module
 * explains where the time went. analyze() consumes a TraceData stream
 * and produces a Report: per-phase T_m/T_c distributions attributed
 * to the MTL in force at dispatch, per-worker busy/stall/idle
 * accounting, a least-squares fit of the paper's queuing
 * decomposition T_mb = T_ml + b * T_ql (Sec. IV-C) from the observed
 * memory-task concurrency at dispatch, a model-validation section
 * comparing the Sec. IV-A predicted speedup against the measured run,
 * and the policy's decision audit log. ttreport renders the Report as
 * a table or JSON; diffReports() compares two JSON reports for
 * regression gating in CI.
 */

#ifndef TT_OBS_ANALYZER_HH
#define TT_OBS_ANALYZER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/samples.hh"
#include "obs/trace.hh"
#include "util/json.hh"

namespace tt::obs {

/** Five-number summary of a raw sample vector (exact, not bucketed). */
struct DistSummary
{
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Summarise raw samples (sorts a copy; exact order statistics). */
DistSummary summarize(std::vector<double> samples);

/**
 * Hardware-counter interference statistics over a set of events (a
 * phase, or one MTL within a phase). The raw sums come from the
 * per-event CounterSet deltas; the derived ratios are the signals
 * that separate "fewer requests in flight" from "each request got
 * faster":
 *  - mpki: LLC misses per kilo-instruction (miss *rate*);
 *  - stall_share: stalled cycles / cycles (how memory-bound);
 *  - stalls_per_miss: stalled cycles / LLC miss -- the per-request
 *    latency proxy that should *fall* as throttling cuts
 *    interference;
 *  - achieved_mlp: misses * assumed miss latency / stalled cycles --
 *    how much miss latency was overlapped rather than serialized.
 */
struct CounterStats
{
    bool present = false; ///< at least one event carried counters
    std::uint64_t llc_misses = 0;
    std::uint64_t cycles = 0;
    std::uint64_t stalled_cycles = 0;
    std::uint64_t instructions = 0;
    double mpki = 0.0;
    double stall_share = 0.0;
    double stalls_per_miss = 0.0;
    double achieved_mlp = 0.0;
};

/** Time and latency attributed to one MTL value within a phase. */
struct MtlAttribution
{
    int mtl = 0;
    double wall_seconds = 0.0; ///< phase time spent under this MTL
    long pairs = 0;            ///< memory tasks dispatched under it
    DistSummary tm;
    DistSummary tc;
    CounterStats counters; ///< interference under this MTL
};

/**
 * Least-squares fit of T_mb = T_ml + b * T_ql over the phase's memory
 * events, where b is the number of memory tasks in flight at each
 * dispatch (including the task itself). Invalid when the phase never
 * varied its concurrency (zero variance in b).
 */
struct QueueFit
{
    bool valid = false;
    double tml = 0.0; ///< fitted contention-free latency (seconds)
    double tql = 0.0; ///< fitted queuing increment per competitor
    double mean_b = 0.0;
    std::size_t samples = 0;
};

/**
 * Predicted-vs-measured check of the Sec. IV-A speedup model for one
 * phase. T_mn comes from a measurement at MTL=n when the phase has
 * one, else from the queue-fit extrapolation; "measured" speedup is
 * the model's estimated unthrottled phase time over the phase's
 * actual wall time. Invalid when the phase lacks the inputs.
 */
struct ModelValidation
{
    bool valid = false;
    int mtl = 0;          ///< dominant MTL the phase ran under
    double tm_k = 0.0;    ///< measured mean T_m at that MTL
    double tm_n = 0.0;    ///< T_m at MTL=n (measured or extrapolated)
    double tc = 0.0;      ///< measured mean T_c
    bool tm_n_measured = false;
    double predicted_speedup = 0.0;
    double measured_speedup = 0.0;
    double abs_error = 0.0; ///< |predicted - measured|
};

/** Attribution report for one phase of the task graph. */
struct PhaseReport
{
    int phase = -1;
    std::string name;
    double start = 0.0; ///< first dispatch in the phase
    double end = 0.0;   ///< last completion in the phase
    long pairs = 0;
    DistSummary tm;
    DistSummary tc;
    std::vector<MtlAttribution> by_mtl;
    QueueFit queue_fit;
    ModelValidation validation;
    CounterStats counters; ///< whole-phase interference
};

/**
 * Wall-time accounting for one worker/context: busy is time inside
 * recorded events, stall the gaps between consecutive events, idle
 * the remainder of the makespan (lead-in + drain).
 */
struct WorkerReport
{
    int worker = -1;
    std::size_t events = 0;
    double busy = 0.0;
    double stall = 0.0;
    double idle = 0.0;
};

/** Monitoring/probing overhead attribution from the policy counters. */
struct OverheadReport
{
    long pairs_observed = 0;
    long probe_pairs = 0;
    long stale_pairs = 0;
    double probe_fraction = 0.0; ///< probe_pairs / pairs_observed
    double stale_fraction = 0.0; ///< stale_pairs / pairs_observed
    long decisions = 0;          ///< audit records (MTL transitions)
    long fallbacks = 0;
};

/**
 * One offered-load level of an open-loop SLO sweep: response-time
 * quantiles and admission outcomes at `offered_rate` jobs/second.
 */
struct SloPoint
{
    double offered_rate = 0.0; ///< arrival rate (jobs/second)
    long offered = 0;          ///< jobs the generator produced
    long admitted = 0;
    long shed = 0;
    long missed = 0;        ///< deadline misses among admitted jobs
    double shed_rate = 0.0; ///< shed / offered
    double p50 = 0.0;       ///< response-time quantiles (seconds)
    double p95 = 0.0;
    double p99 = 0.0;
    double attainment = 0.0; ///< (admitted - missed) / offered
};

/**
 * SLO attainment vs offered load (open-loop runs only). The knee is
 * the lowest swept rate at which attainment first drops below the
 * sweep's knee threshold -- the capacity estimate operators should
 * provision below. Reports from closed-loop runs simply lack this
 * section; diffReports() tolerates the absence on either side.
 */
struct SloReport
{
    bool valid = false;
    double slo_seconds = 0.0; ///< relative deadline the sweep used
    double knee_rate = 0.0;   ///< 0 when no swept rate degraded
    std::vector<SloPoint> points;
};

/**
 * Critical-path decomposition aggregated over one priority class:
 * response-time quantiles plus the mean seconds each span component
 * (see obs/span.hh) contributed. The components are an accounting
 * identity -- per job they sum to the measured response -- so the
 * means sum to the mean response too.
 */
struct CriticalPathClass
{
    int priority = 0;
    long jobs = 0;
    DistSummary response;
    double admission = 0.0; ///< mean seconds per component
    double queue_wait = 0.0;
    double compute = 0.0;
    double mem_stall = 0.0;
    double retry_backoff = 0.0;
};

/**
 * Per-job critical-path attribution from the run's causal spans.
 * Only present (`valid`) when the trace carried spans; diffReports()
 * skips the section when either side lacks it, so old reports diff
 * cleanly against new ones.
 */
struct CriticalPathReport
{
    bool valid = false;
    long jobs = 0; ///< spans that reached a worker
    long shed = 0; ///< spans rejected at admission
    std::vector<CriticalPathClass> classes;
};

/** Alert activity for one health detector over the run. */
struct HealthRuleSummary
{
    std::string rule;     ///< detector id (health.hh rule name)
    std::string severity; ///< "warning" | "critical"
    std::uint64_t fired = 0;
    std::uint64_t cleared = 0;
    bool active = false; ///< still firing when the run drained
};

/**
 * Run-level health summary from the streaming detector engine
 * (obs/health.hh). Only present (`valid`) when the run evaluated the
 * detectors; an empty `rules` then means "watched and quiet", not
 * "not watched". diffReports() skips the section when either side
 * lacks it, so pre-health reports diff cleanly.
 */
struct HealthReport
{
    bool valid = false;
    std::uint64_t alerts = 0;         ///< fired+cleared edges recorded
    std::uint64_t alerts_dropped = 0; ///< edges lost to the ring bound
    std::uint64_t critical_fired = 0; ///< fired edges at Critical
    bool critical_active = false;     ///< a critical rule ended active
    std::vector<HealthRuleSummary> rules; ///< detectors that alerted
};

/** Everything analyze() derives from one run. */
struct Report
{
    std::string policy;
    int cores = 0;
    double makespan = 0.0;
    std::uint64_t trace_events = 0;
    std::uint64_t trace_dropped = 0;
    std::vector<PhaseReport> phases;
    std::vector<WorkerReport> workers;
    OverheadReport overhead;
    std::vector<core::MtlDecision> decisions;

    /** True when any trace event carried hardware counters; the
     *  counters sections below (and in JSON) exist only then. */
    bool has_counters = false;
    CounterStats counters; ///< whole-run interference totals

    /** Open-loop SLO sweep; `slo.valid` gates its JSON section. */
    SloReport slo;

    /** Span-derived attribution; `valid` gates its JSON section. */
    CriticalPathReport critical_path;

    /** Detector alert summary; `valid` gates its JSON section. */
    HealthReport health;
};

/** Run facts the trace stream alone cannot know. */
struct AnalyzeOptions
{
    std::string policy;       ///< policy name for the report header
    int cores = 0;            ///< hardware contexts (the model's n)
    double makespan = 0.0;    ///< run wall/sim seconds (0: from events)
    std::uint64_t trace_dropped = 0;
    core::PolicyStats policy_stats;

    /**
     * Assumed round-trip LLC-miss latency used for the achieved-MLP
     * proxy (misses * latency / stalled cycles). The default is in
     * the right range for the paper's i7-860 at 2.8 GHz (~90 ns).
     */
    double miss_latency_cycles = 250.0;
};

/** Derive the full attribution report from one run's trace. */
Report analyze(const TraceData &data, const AnalyzeOptions &options);

/** Render the report as one JSON object. */
void writeReportJson(const Report &report, std::ostream &os);

/** Render the report as aligned human-readable tables. */
std::string reportTable(const Report &report);

/** One threshold violation found by diffReports(). */
struct DiffFinding
{
    std::string metric;
    double baseline = 0.0;
    double candidate = 0.0;
    double change = 0.0; ///< relative change, positive = worse
};

/** Outcome of comparing two report JSON documents. */
struct DiffResult
{
    std::vector<DiffFinding> regressions;
    std::vector<std::string> notes; ///< structural mismatches etc.
    bool regressed() const
    {
        return !regressions.empty() || !notes.empty();
    }
};

/**
 * Compare a candidate report against a baseline (both parsed from
 * writeReportJson output). A metric regresses when it worsens by more
 * than `threshold` (relative, e.g. 0.05 = 5%): run makespan, each
 * phase's duration and mean/p95 T_m, the probe-overhead fraction,
 * and -- when both reports carry them -- the hardware-counter
 * interference ratios (stalls-per-miss, stall share). When both
 * reports carry an SLO section, matching offered-rate points are
 * compared on p99 response and shed rate, and the knee shifting to a
 * lower rate (capacity loss) is a regression. When both reports carry
 * a health section, a critical detector firing in the candidate but
 * not the baseline -- or a critical alert still active when the
 * candidate drained -- is a regression. Reports written before the
 * counters, SLO, or health sections existed diff cleanly against
 * newer ones: a section missing from either side is simply skipped,
 * never an error. Phase-set mismatches are reported as notes (also a
 * failure).
 */
DiffResult diffReports(const json::Value &baseline,
                       const json::Value &candidate, double threshold);

} // namespace tt::obs

#endif // TT_OBS_ANALYZER_HH
