#include "obs/trace.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tt::obs {

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity)
{
    tt_assert(capacity_ > 0, "TraceRing capacity must be positive");
    data_.reserve(capacity_);
}

void
TraceRing::record(const TaskEvent &event)
{
    const std::uint64_t n = recorded_.load(std::memory_order_relaxed);
    if (data_.size() < capacity_)
        data_.push_back(event);
    else
        data_[static_cast<std::size_t>(n % capacity_)] = event;
    recorded_.store(n + 1, std::memory_order_relaxed);
}

std::size_t
TraceRing::size() const
{
    return data_.size();
}

std::uint64_t
TraceRing::dropped() const
{
    // Derived from the atomic counter alone (size() would race the
    // owner's push_back during the growth phase): nothing is dropped
    // until the ring has filled, one per record afterwards.
    const std::uint64_t n = recorded_.load(std::memory_order_relaxed);
    return n <= capacity_ ? 0 : n - capacity_;
}

std::vector<TaskEvent>
TraceRing::events() const
{
    std::vector<TaskEvent> out;
    out.reserve(data_.size());
    // Once the ring has wrapped, the oldest surviving event sits at
    // the next overwrite position.
    const std::size_t head =
        data_.size() < capacity_
            ? 0
            : static_cast<std::size_t>(
                  recorded_.load(std::memory_order_relaxed) %
                  capacity_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.push_back(data_[(head + i) % data_.size()]);
    return out;
}

Tracer::Tracer(int workers, std::size_t capacity_per_worker)
{
    tt_assert(workers >= 1, "Tracer needs at least one worker");
    rings_.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        rings_.emplace_back(capacity_per_worker);
}

TraceRing &
Tracer::ring(int worker)
{
    tt_assert(worker >= 0 && worker < workers(),
              "worker index out of range");
    return rings_[static_cast<std::size_t>(worker)];
}

const TraceRing &
Tracer::ring(int worker) const
{
    tt_assert(worker >= 0 && worker < workers(),
              "worker index out of range");
    return rings_[static_cast<std::size_t>(worker)];
}

std::vector<TaskEvent>
Tracer::merged() const
{
    std::vector<TaskEvent> out;
    std::size_t total = 0;
    for (const TraceRing &ring : rings_)
        total += ring.size();
    out.reserve(total);
    for (const TraceRing &ring : rings_) {
        const auto events = ring.events();
        out.insert(out.end(), events.begin(), events.end());
    }
    std::sort(out.begin(), out.end(),
              [](const TaskEvent &a, const TaskEvent &b) {
                  if (a.start != b.start)
                      return a.start < b.start;
                  if (a.end != b.end)
                      return a.end < b.end;
                  return a.task < b.task;
              });
    return out;
}

std::uint64_t
Tracer::recorded() const
{
    std::uint64_t total = 0;
    for (const TraceRing &ring : rings_)
        total += ring.recorded();
    return total;
}

std::uint64_t
Tracer::dropped() const
{
    std::uint64_t total = 0;
    for (const TraceRing &ring : rings_)
        total += ring.dropped();
    return total;
}

} // namespace tt::obs
