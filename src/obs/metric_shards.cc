#include "obs/metric_shards.hh"

#include <utility>

namespace tt::obs {

ShardedMetrics::ShardedMetrics(MetricsRegistry &sink,
                               std::size_t shards)
    : sink_(sink), shards_(shards == 0 ? 1 : shards)
{
}

void
ShardedMetrics::add(std::size_t shard, const std::string &name,
                    std::int64_t delta)
{
    auto &s = shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mutex);
    s.counters[name] += delta;
}

void
ShardedMetrics::observe(std::size_t shard, const std::string &name,
                        double value)
{
    observe(shard, name, value, Histogram::Options{});
}

void
ShardedMetrics::observe(std::size_t shard, const std::string &name,
                        double value,
                        const Histogram::Options &options)
{
    auto &s = shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.histograms.find(name);
    if (it == s.histograms.end())
        it = s.histograms.emplace(name, Histogram(options)).first;
    it->second.add(value);
}

void
ShardedMetrics::fold()
{
    for (auto &s : shards_) {
        std::map<std::string, std::int64_t> counters;
        std::map<std::string, Histogram> histograms;
        {
            std::lock_guard<std::mutex> lock(s.mutex);
            counters.swap(s.counters);
            histograms.swap(s.histograms);
        }
        // Publish outside the shard mutex: the worker can keep
        // publishing into its (now empty) shard meanwhile.
        for (const auto &[name, delta] : counters)
            sink_.add(name, delta);
        for (const auto &[name, hist] : histograms)
            sink_.merge(name, hist);
    }
}

} // namespace tt::obs
