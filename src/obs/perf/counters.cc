#include "obs/perf/counters.hh"

#include "util/logging.hh"

namespace tt::obs::perf {

const std::array<const char *, kCounterCount> &
counterNames()
{
    static const std::array<const char *, kCounterCount> names = {
        "llc_misses",
        "cycles",
        "stalled_cycles",
        "instructions",
    };
    return names;
}

std::uint64_t
CounterSet::value(int id) const
{
    switch (id) {
    case kLlcMisses:
        return llc_misses;
    case kCycles:
        return cycles;
    case kStalledCycles:
        return stalled_cycles;
    case kInstructions:
        return instructions;
    default:
        tt_assert(false, "counter id ", id, " out of range");
        return 0;
    }
}

CounterSet &
CounterSet::operator+=(const CounterSet &other)
{
    llc_misses += other.llc_misses;
    cycles += other.cycles;
    stalled_cycles += other.stalled_cycles;
    instructions += other.instructions;
    return *this;
}

namespace {

std::uint64_t
clampedDelta(std::uint64_t later, std::uint64_t earlier)
{
    return later >= earlier ? later - earlier : 0;
}

} // namespace

CounterSet
CounterSet::operator-(const CounterSet &earlier) const
{
    CounterSet delta;
    delta.llc_misses = clampedDelta(llc_misses, earlier.llc_misses);
    delta.cycles = clampedDelta(cycles, earlier.cycles);
    delta.stalled_cycles =
        clampedDelta(stalled_cycles, earlier.stalled_cycles);
    delta.instructions =
        clampedDelta(instructions, earlier.instructions);
    return delta;
}

void
FakeCounterProvider::prepare(int workers)
{
    totals_.assign(static_cast<std::size_t>(workers), CounterSet{});
    reads_.assign(static_cast<std::size_t>(workers), 0);
}

CounterSet
FakeCounterProvider::read(int worker)
{
    tt_assert(worker >= 0 &&
                  worker < static_cast<int>(totals_.size()),
              "worker ", worker, " not prepared");
    CounterSet scaled = step_;
    const auto factor = static_cast<std::uint64_t>(worker + 1);
    scaled.llc_misses *= factor;
    scaled.cycles *= factor;
    scaled.stalled_cycles *= factor;
    scaled.instructions *= factor;
    totals_[static_cast<std::size_t>(worker)] += scaled;
    ++reads_[static_cast<std::size_t>(worker)];
    return totals_[static_cast<std::size_t>(worker)];
}

void
FakeCounterProvider::advance(int worker, const CounterSet &delta)
{
    tt_assert(worker >= 0 &&
                  worker < static_cast<int>(totals_.size()),
              "worker ", worker, " not prepared");
    totals_[static_cast<std::size_t>(worker)] += delta;
}

int
FakeCounterProvider::reads(int worker) const
{
    return reads_[static_cast<std::size_t>(worker)];
}

} // namespace tt::obs::perf
