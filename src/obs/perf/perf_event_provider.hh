/**
 * @file
 * PerfEventProvider: the shared counter schema read from Linux
 * perf_event_open(2).
 *
 * Each worker thread opens one *grouped* fd set on itself (leader =
 * cycles; members = instructions, LLC-load-misses, stalled cycles),
 * so a single read(2) with PERF_FORMAT_GROUP returns every counter
 * from the same atomic snapshot. Events that the host PMU cannot
 * deliver (stalled-cycles is often absent on modern parts, and any
 * event under a locked-down perf_event_paranoid) are tolerated
 * per-event: the schema slot stays, its reads are zero.
 *
 * Availability is probed at construction with a trial open on the
 * calling thread; use makeHostCounterProvider() to fall back to
 * NullCounterProvider (with a single warning) when the probe fails,
 * which is the expected outcome in unprivileged containers and CI.
 */

#ifndef TT_OBS_PERF_PERF_EVENT_PROVIDER_HH
#define TT_OBS_PERF_PERF_EVENT_PROVIDER_HH

#include <memory>
#include <string>
#include <vector>

#include "obs/perf/counters.hh"

namespace tt::obs::perf {

/** Linux hardware-counter provider (degrades off-Linux). */
class PerfEventProvider final : public CounterProvider
{
  public:
    PerfEventProvider();
    ~PerfEventProvider() override;

    PerfEventProvider(const PerfEventProvider &) = delete;
    PerfEventProvider &operator=(const PerfEventProvider &) = delete;

    std::string name() const override { return "perf"; }
    bool available() const override { return available_; }
    void prepare(int workers) override;
    void attachWorker(int worker) override;
    void detachWorker(int worker) override;
    CounterSet read(int worker) override;

    /** Human-readable probe failure ("" when available). */
    const std::string &unavailableReason() const { return reason_; }

  private:
    /** One grouped fd set owned by exactly one worker thread. */
    struct WorkerGroup
    {
        int leader = -1;
        /** fd per schema slot (== leader for the leader's slot). */
        std::array<int, kCounterCount> fds{{-1, -1, -1, -1}};
        /** Position of each schema slot in the group read buffer
         *  (creation order), -1 when the event failed to open. */
        std::array<int, kCounterCount> position{{-1, -1, -1, -1}};
        int members = 0; ///< events successfully opened
    };

    void closeGroup(WorkerGroup &group);

    bool available_ = false;
    std::string reason_;
    std::vector<WorkerGroup> groups_;
};

/**
 * The host-backend factory: a PerfEventProvider when the probe
 * succeeds, otherwise warn once and hand back NullCounterProvider so
 * the run proceeds unchanged (`runtime.perf_unavailable` = 1).
 */
std::unique_ptr<CounterProvider> makeHostCounterProvider();

} // namespace tt::obs::perf

#endif // TT_OBS_PERF_PERF_EVENT_PROVIDER_HH
