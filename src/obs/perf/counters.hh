/**
 * @file
 * Hardware-counter abstraction shared by the host and sim backends.
 *
 * The paper validated its throttling argument with hardware counters
 * on an i7-860: LLC misses and stall cycles are what separate "fewer
 * requests in flight" from "each request got faster". This layer
 * defines the one counter schema both backends publish --
 * llc_misses, cycles, stalled_cycles, instructions -- behind a small
 * CounterProvider interface, so the engine can bracket every task
 * attempt with two reads and attach the delta to the attempt's
 * obs::TaskEvent without knowing where the numbers come from.
 *
 * Three providers implement it:
 *  - PerfEventProvider (perf_event_provider.hh): Linux
 *    perf_event_open, one grouped fd set per worker thread;
 *  - SimCounterProvider (sim_counter_provider.hh): synthesizes the
 *    identical schema from the discrete-event machine model, so host
 *    and sim stay schema-parity;
 *  - NullCounterProvider (below): graceful degradation when perf is
 *    unavailable (containers, CI) -- reads are zero, the run is
 *    otherwise unchanged and `runtime.perf_unavailable` is set.
 *
 * Threading contract: prepare() is called once before any worker
 * runs; attachWorker()/detachWorker()/read() for worker i are called
 * only from the thread that executes worker i's attempts (or from
 * the single sim/event thread), so per-worker state needs no locks.
 */

#ifndef TT_OBS_PERF_COUNTERS_HH
#define TT_OBS_PERF_COUNTERS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace tt::obs::perf {

/** Counters in the shared schema, in schema order. */
enum CounterId
{
    kLlcMisses = 0,
    kCycles = 1,
    kStalledCycles = 2,
    kInstructions = 3,
};

inline constexpr int kCounterCount = 4;

/** Schema names, indexed by CounterId (stable across backends). */
const std::array<const char *, kCounterCount> &counterNames();

/**
 * One sample (or delta) of the shared schema. Values are monotonic
 * totals when returned by CounterProvider::read(), plain differences
 * when attached to an attempt.
 */
struct CounterSet
{
    std::uint64_t llc_misses = 0;
    std::uint64_t cycles = 0;
    std::uint64_t stalled_cycles = 0;
    std::uint64_t instructions = 0;

    std::uint64_t value(int id) const;

    CounterSet &operator+=(const CounterSet &other);

    /**
     * Delta between two monotonic reads. Counters can appear to run
     * backwards (multiplexed perf events, a worker migrating between
     * sockets); each field clamps at zero instead of wrapping.
     */
    CounterSet operator-(const CounterSet &earlier) const;

    bool
    operator==(const CounterSet &other) const
    {
        return llc_misses == other.llc_misses &&
               cycles == other.cycles &&
               stalled_cycles == other.stalled_cycles &&
               instructions == other.instructions;
    }
};

/**
 * A source of per-worker counter totals. The engine brackets every
 * task-attempt body with read() pairs and records the difference;
 * which hardware (or model) backs the numbers is the provider's
 * business.
 */
class CounterProvider
{
  public:
    virtual ~CounterProvider() = default;

    /** Provider identity for logs and reports: "perf", "sim", ... */
    virtual std::string name() const = 0;

    /**
     * True when reads carry real data. A false provider still
     * honours the full interface (reads return zero); the engine
     * publishes `runtime.perf_unavailable` and skips per-event
     * attachment.
     */
    virtual bool available() const = 0;

    /** Size per-worker state; called once before workers run. */
    virtual void prepare(int workers) = 0;

    /** Called on worker i's own thread before its first attempt. */
    virtual void
    attachWorker(int worker)
    {
        (void)worker;
    }

    /** Called on worker i's own thread after its last attempt. */
    virtual void
    detachWorker(int worker)
    {
        (void)worker;
    }

    /** Monotonic totals for `worker` since attach. */
    virtual CounterSet read(int worker) = 0;
};

/** The degradation path: schema present, every read zero. */
class NullCounterProvider final : public CounterProvider
{
  public:
    std::string name() const override { return "null"; }
    bool available() const override { return false; }
    void prepare(int workers) override { (void)workers; }
    CounterSet read(int worker) override
    {
        (void)worker;
        return {};
    }
};

/**
 * Deterministic provider for tests: every read() advances worker
 * w's totals by `step` scaled by (w + 1), so per-attempt deltas are
 * predictable and per-worker streams are distinguishable. advance()
 * injects extra totals for delta-arithmetic tests.
 */
class FakeCounterProvider final : public CounterProvider
{
  public:
    explicit FakeCounterProvider(const CounterSet &step) : step_(step) {}

    std::string name() const override { return "fake"; }
    bool available() const override { return true; }
    void prepare(int workers) override;
    CounterSet read(int worker) override;

    /** Add `delta` to worker w's totals without counting a read. */
    void advance(int worker, const CounterSet &delta);

    /** read() calls observed for `worker` (attachment diagnostics). */
    int reads(int worker) const;

  private:
    CounterSet step_;
    std::vector<CounterSet> totals_;
    std::vector<int> reads_;
};

} // namespace tt::obs::perf

#endif // TT_OBS_PERF_COUNTERS_HH
