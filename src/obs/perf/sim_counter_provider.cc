#include "obs/perf/sim_counter_provider.hh"

#include <cmath>

#include "util/logging.hh"

namespace tt::obs::perf {

namespace {

/** Issue cost of one streamed line in the synthetic model, cycles. */
constexpr std::uint64_t kCyclesPerLineIssue = 4;

} // namespace

CounterSet
synthesizeCounters(const SimAttemptObservation &obs)
{
    CounterSet c;
    c.cycles = static_cast<std::uint64_t>(
        std::llround(obs.elapsed_seconds * obs.clock_hz));
    c.llc_misses = obs.miss_lines;
    c.instructions =
        obs.miss_lines * kCyclesPerLineIssue + obs.compute_cycles;
    const std::uint64_t busy =
        obs.miss_lines * kCyclesPerLineIssue + obs.compute_cycles;
    c.stalled_cycles = c.cycles > busy ? c.cycles - busy : 0;
    return c;
}

void
SimCounterProvider::prepare(int workers)
{
    totals_.assign(static_cast<std::size_t>(workers), CounterSet{});
}

CounterSet
SimCounterProvider::read(int worker)
{
    tt_assert(worker >= 0 &&
                  worker < static_cast<int>(totals_.size()),
              "worker ", worker, " not prepared");
    return totals_[static_cast<std::size_t>(worker)];
}

CounterSet
SimCounterProvider::creditAttempt(int worker,
                                  const SimAttemptObservation &obs)
{
    tt_assert(worker >= 0 &&
                  worker < static_cast<int>(totals_.size()),
              "worker ", worker, " not prepared");
    const CounterSet delta = synthesizeCounters(obs);
    totals_[static_cast<std::size_t>(worker)] += delta;
    return delta;
}

} // namespace tt::obs::perf
