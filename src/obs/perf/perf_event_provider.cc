#include "obs/perf/perf_event_provider.hh"

#include "util/logging.hh"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace tt::obs::perf {

#if defined(__linux__)

namespace {

int
perfEventOpen(perf_event_attr *attr, pid_t pid, int cpu, int group_fd,
              unsigned long flags)
{
    return static_cast<int>(
        syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

perf_event_attr
makeAttr(std::uint32_t type, std::uint64_t config)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = type;
    attr.config = config;
    // Counting starts immediately; the engine's bracketing reads turn
    // running totals into per-attempt deltas, so enable/disable ioctls
    // are unnecessary on the hot path.
    attr.disabled = 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    return attr;
}

/** Candidate (type, config) encodings per schema slot, best first. */
std::vector<perf_event_attr>
attrCandidates(int id)
{
    switch (id) {
    case kLlcMisses:
        // LLC-load-misses when the cache map is wired up, otherwise
        // the generic miss count.
        return {
            makeAttr(PERF_TYPE_HW_CACHE,
                     PERF_COUNT_HW_CACHE_LL |
                         (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)),
            makeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES),
        };
    case kCycles:
        return {makeAttr(PERF_TYPE_HARDWARE,
                         PERF_COUNT_HW_CPU_CYCLES)};
    case kStalledCycles:
        return {
            makeAttr(PERF_TYPE_HARDWARE,
                     PERF_COUNT_HW_STALLED_CYCLES_BACKEND),
            makeAttr(PERF_TYPE_HARDWARE,
                     PERF_COUNT_HW_STALLED_CYCLES_FRONTEND),
        };
    case kInstructions:
        return {
            makeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS)};
    default:
        tt_assert(false, "counter id ", id, " out of range");
        return {};
    }
}

} // namespace

PerfEventProvider::PerfEventProvider()
{
    // Probe with the cycles event on this thread: if the kernel
    // refuses the simplest possible counter, it will refuse them all
    // (perf_event_paranoid, seccomp, missing PMU).
    perf_event_attr attr =
        makeAttr(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
    attr.read_format = 0;
    const int fd = perfEventOpen(&attr, 0, -1, -1, 0);
    if (fd < 0) {
        reason_ = std::strerror(errno);
        return;
    }
    close(fd);
    available_ = true;
}

PerfEventProvider::~PerfEventProvider()
{
    for (WorkerGroup &group : groups_)
        closeGroup(group);
}

void
PerfEventProvider::prepare(int workers)
{
    groups_.assign(static_cast<std::size_t>(workers), WorkerGroup{});
}

void
PerfEventProvider::attachWorker(int worker)
{
    if (!available_)
        return;
    tt_assert(worker >= 0 && worker < static_cast<int>(groups_.size()),
              "worker ", worker, " not prepared");
    WorkerGroup &group = groups_[static_cast<std::size_t>(worker)];

    // The leader must open first; open order defines each event's
    // position in the PERF_FORMAT_GROUP read buffer.
    static const std::array<int, kCounterCount> open_order = {
        kCycles, kInstructions, kLlcMisses, kStalledCycles};
    for (const int id : open_order) {
        int fd = -1;
        for (perf_event_attr attr : attrCandidates(id)) {
            fd = perfEventOpen(&attr, 0, -1, group.leader, 0);
            if (fd >= 0)
                break;
        }
        if (fd < 0)
            continue; // slot stays in the schema, reads zero
        group.fds[static_cast<std::size_t>(id)] = fd;
        group.position[static_cast<std::size_t>(id)] = group.members++;
        if (group.leader < 0)
            group.leader = fd;
    }
}

void
PerfEventProvider::detachWorker(int worker)
{
    if (groups_.empty())
        return;
    closeGroup(groups_[static_cast<std::size_t>(worker)]);
}

CounterSet
PerfEventProvider::read(int worker)
{
    CounterSet out;
    const WorkerGroup &group =
        groups_[static_cast<std::size_t>(worker)];
    if (group.leader < 0)
        return out;

    // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; } in open
    // order, one atomic snapshot for the whole group.
    std::array<std::uint64_t, 1 + kCounterCount> buffer{};
    const ssize_t wanted = static_cast<ssize_t>(
        sizeof(std::uint64_t) *
        (1 + static_cast<std::size_t>(group.members)));
    if (::read(group.leader, buffer.data(),
               static_cast<std::size_t>(wanted)) != wanted)
        return out;

    const auto count = static_cast<int>(buffer[0]);
    for (int id = 0; id < kCounterCount; ++id) {
        const int pos = group.position[static_cast<std::size_t>(id)];
        if (pos < 0 || pos >= count)
            continue;
        const std::uint64_t value =
            buffer[static_cast<std::size_t>(1 + pos)];
        switch (id) {
        case kLlcMisses:
            out.llc_misses = value;
            break;
        case kCycles:
            out.cycles = value;
            break;
        case kStalledCycles:
            out.stalled_cycles = value;
            break;
        case kInstructions:
            out.instructions = value;
            break;
        }
    }
    return out;
}

void
PerfEventProvider::closeGroup(WorkerGroup &group)
{
    for (int id = 0; id < kCounterCount; ++id) {
        int &fd = group.fds[static_cast<std::size_t>(id)];
        if (fd >= 0)
            close(fd);
        fd = -1;
        group.position[static_cast<std::size_t>(id)] = -1;
    }
    group.leader = -1;
    group.members = 0;
}

#else // !__linux__

PerfEventProvider::PerfEventProvider()
    : reason_("perf_event_open is Linux-only")
{
}

PerfEventProvider::~PerfEventProvider() = default;

void
PerfEventProvider::prepare(int workers)
{
    groups_.assign(static_cast<std::size_t>(workers), WorkerGroup{});
}

void
PerfEventProvider::attachWorker(int worker)
{
    (void)worker;
}

void
PerfEventProvider::detachWorker(int worker)
{
    (void)worker;
}

CounterSet
PerfEventProvider::read(int worker)
{
    (void)worker;
    return {};
}

void
PerfEventProvider::closeGroup(WorkerGroup &group)
{
    (void)group;
}

#endif // __linux__

std::unique_ptr<CounterProvider>
makeHostCounterProvider()
{
    auto perf = std::make_unique<PerfEventProvider>();
    if (perf->available())
        return perf;
    tt_warn("hardware counters unavailable (",
            perf->unavailableReason(),
            "); continuing without perf attribution "
            "(runtime.perf_unavailable = 1)");
    return std::make_unique<NullCounterProvider>();
}

} // namespace tt::obs::perf
