/**
 * @file
 * SimCounterProvider: the shared counter schema synthesized from the
 * discrete-event machine model.
 *
 * The sim backend observes, per attempt, what a PMU cannot be asked
 * for on simulated time: lines streamed through the LLC, demand
 * misses, compute cycles burned and elapsed time. This provider
 * turns each observation into the identical CounterSet schema the
 * host's PerfEventProvider reads from hardware -- so reports,
 * metrics and traces carry the same counter names on both backends,
 * and the interference analysis (stalls-per-miss, stall share) works
 * unchanged.
 *
 * Layering: obs depends only on core/util, so the observation is a
 * plain-number struct; simrt::SimBackend (which sees the machine,
 * the LLC and the task graph) fills it in and calls creditAttempt().
 */

#ifndef TT_OBS_PERF_SIM_COUNTER_PROVIDER_HH
#define TT_OBS_PERF_SIM_COUNTER_PROVIDER_HH

#include <string>
#include <vector>

#include "obs/perf/counters.hh"

namespace tt::obs::perf {

/** What the sim backend measured for one finished attempt body. */
struct SimAttemptObservation
{
    bool is_memory = false;

    /** Cache lines moved through the LLC: the full stream for a
     *  memory task, the demand-fetched spill for a compute task. */
    std::uint64_t miss_lines = 0;

    /** Compute cycles the body burned (0 for memory tasks). */
    std::uint64_t compute_cycles = 0;

    double elapsed_seconds = 0.0; ///< body wall time, simulated
    double clock_hz = 0.0;        ///< core clock (config.core_ghz)
};

/**
 * Map one observation onto the schema. The model is deliberately
 * simple and deterministic:
 *  - cycles       = elapsed * clock;
 *  - llc_misses   = miss_lines (every modelled line is a DRAM trip);
 *  - instructions = ~4 per line (address generation, load, bump,
 *    branch of a streaming loop) + 1 per compute cycle (the model's
 *    unit-IPC burn);
 *  - stalled_cycles = cycles - busy, clamped at 0, where busy is the
 *    issue work (4 cycles per line + the compute burn). Queueing
 *    delay behind other streams lands here, which is exactly the
 *    interference signal the per-MTL analysis wants.
 */
CounterSet synthesizeCounters(const SimAttemptObservation &obs);

/**
 * CounterProvider over synthesized observations. The sim backend
 * calls creditAttempt() as each attempt body completes; read()
 * exposes the running totals with the standard provider contract
 * (single sim thread, so no locking).
 */
class SimCounterProvider final : public CounterProvider
{
  public:
    std::string name() const override { return "sim"; }
    bool available() const override { return true; }
    void prepare(int workers) override;
    CounterSet read(int worker) override;

    /** Synthesize, accumulate into `worker`, return the delta. */
    CounterSet creditAttempt(int worker,
                             const SimAttemptObservation &obs);

  private:
    std::vector<CounterSet> totals_;
};

} // namespace tt::obs::perf

#endif // TT_OBS_PERF_SIM_COUNTER_PROVIDER_HH
