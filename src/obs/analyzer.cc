#include "obs/analyzer.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <map>
#include <queue>
#include <sstream>

#include "core/analytical_model.hh"
#include "util/table.hh"

namespace tt::obs {

namespace {

/** Exact quantile of an ascending-sorted vector (linear interp). */
double
sortedQuantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

DistSummary
summarize(std::vector<double> samples)
{
    DistSummary out;
    if (samples.empty())
        return out;
    std::sort(samples.begin(), samples.end());
    out.count = samples.size();
    double sum = 0.0;
    for (double x : samples)
        sum += x;
    out.mean = sum / static_cast<double>(samples.size());
    out.p50 = sortedQuantile(samples, 0.50);
    out.p95 = sortedQuantile(samples, 0.95);
    out.p99 = sortedQuantile(samples, 0.99);
    out.min = samples.front();
    out.max = samples.back();
    return out;
}

namespace {

/**
 * Concurrency at dispatch for each memory event: the number of memory
 * tasks in flight (start <= t < end, including the event itself) at
 * its start. Sweep in start order with a min-heap of end times.
 */
std::vector<std::pair<double, double>> // (b, tm) samples
concurrencySamples(std::vector<const TaskEvent *> memory_events)
{
    std::sort(memory_events.begin(), memory_events.end(),
              [](const TaskEvent *a, const TaskEvent *b) {
                  return a->start < b->start;
              });
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>>
        ends;
    std::vector<std::pair<double, double>> samples;
    samples.reserve(memory_events.size());
    for (const TaskEvent *e : memory_events) {
        while (!ends.empty() && ends.top() <= e->start)
            ends.pop();
        samples.emplace_back(static_cast<double>(ends.size() + 1),
                             e->end - e->start);
        ends.push(e->end);
    }
    return samples;
}

QueueFit
fitQueueModel(const std::vector<std::pair<double, double>> &samples)
{
    QueueFit fit;
    fit.samples = samples.size();
    if (samples.size() < 2)
        return fit;
    double mean_b = 0.0;
    double mean_tm = 0.0;
    for (const auto &[b, tm] : samples) {
        mean_b += b;
        mean_tm += tm;
    }
    mean_b /= static_cast<double>(samples.size());
    mean_tm /= static_cast<double>(samples.size());
    double var_b = 0.0;
    double cov = 0.0;
    for (const auto &[b, tm] : samples) {
        var_b += (b - mean_b) * (b - mean_b);
        cov += (b - mean_b) * (tm - mean_tm);
    }
    fit.mean_b = mean_b;
    if (var_b <= 0.0)
        return fit; // the run never varied its concurrency
    fit.tql = cov / var_b;
    fit.tml = mean_tm - fit.tql * mean_b;
    fit.valid = std::isfinite(fit.tql) && std::isfinite(fit.tml);
    return fit;
}

/** Wall time each MTL was in force within [begin, end). */
std::map<int, double>
mtlWallTime(const std::vector<std::pair<double, int>> &mtl_trace,
            double begin, double end)
{
    std::map<int, double> wall;
    for (std::size_t i = 0; i < mtl_trace.size(); ++i) {
        const double seg_begin = mtl_trace[i].first;
        const double seg_end = i + 1 < mtl_trace.size()
                                   ? mtl_trace[i + 1].first
                                   : end;
        const double lo = std::max(begin, seg_begin);
        const double hi = std::min(end, seg_end);
        if (hi > lo)
            wall[mtl_trace[i].second] += hi - lo;
    }
    return wall;
}

/** Running CounterStats accumulator over trace events. */
struct CounterAccumulator
{
    CounterStats stats;

    void
    add(const TaskEvent &e)
    {
        if (!e.has_counters)
            return;
        stats.present = true;
        stats.llc_misses += e.counters.llc_misses;
        stats.cycles += e.counters.cycles;
        stats.stalled_cycles += e.counters.stalled_cycles;
        stats.instructions += e.counters.instructions;
    }

    /** Derive the interference ratios from the raw sums. */
    CounterStats
    finish(double miss_latency_cycles) const
    {
        CounterStats out = stats;
        if (out.instructions > 0)
            out.mpki = 1e3 * static_cast<double>(out.llc_misses) /
                       static_cast<double>(out.instructions);
        if (out.cycles > 0)
            out.stall_share =
                static_cast<double>(out.stalled_cycles) /
                static_cast<double>(out.cycles);
        if (out.llc_misses > 0)
            out.stalls_per_miss =
                static_cast<double>(out.stalled_cycles) /
                static_cast<double>(out.llc_misses);
        if (out.stalled_cycles > 0)
            out.achieved_mlp =
                static_cast<double>(out.llc_misses) *
                miss_latency_cycles /
                static_cast<double>(out.stalled_cycles);
        return out;
    }
};

ModelValidation
validatePhase(const PhaseReport &phase, int cores)
{
    ModelValidation v;
    if (cores < 1 || phase.pairs <= 0 || phase.by_mtl.empty())
        return v;
    // Dominant MTL: the one the phase spent the most wall time under
    // (falling back to most pairs when the MTL trace is empty).
    const MtlAttribution *dominant = &phase.by_mtl.front();
    for (const auto &attr : phase.by_mtl)
        if (attr.wall_seconds > dominant->wall_seconds ||
            (attr.wall_seconds == dominant->wall_seconds &&
             attr.pairs > dominant->pairs))
            dominant = &attr;
    v.mtl = dominant->mtl;
    v.tm_k = dominant->tm.mean;
    v.tc = phase.tc.mean;
    if (v.mtl < 1 || v.mtl > cores || v.tm_k <= 0.0)
        return v;
    // T_mn: prefer a direct measurement at MTL=n from this phase,
    // else extrapolate the queue fit to n competitors.
    for (const auto &attr : phase.by_mtl)
        if (attr.mtl == cores && attr.tm.count > 0) {
            v.tm_n = attr.tm.mean;
            v.tm_n_measured = true;
        }
    if (!v.tm_n_measured) {
        if (!phase.queue_fit.valid)
            return v;
        const core::QueuingModel model{phase.queue_fit.tml,
                                       phase.queue_fit.tql};
        v.tm_n = model.tmAt(cores);
    }
    if (v.tm_n <= 0.0)
        return v;
    v.predicted_speedup = core::AnalyticalModel::speedup(
        v.tm_k, v.tm_n, v.tc, v.mtl, cores);
    // "Measured" speedup: the model's estimated unthrottled phase
    // time over the phase's actual wall time.
    const double duration = phase.end - phase.start;
    if (duration <= 0.0)
        return v;
    const double unthrottled = core::AnalyticalModel::execTime(
        v.tm_n, v.tc, static_cast<int>(phase.pairs), cores, cores);
    v.measured_speedup = unthrottled / duration;
    v.abs_error = std::fabs(v.predicted_speedup - v.measured_speedup);
    v.valid = std::isfinite(v.predicted_speedup) &&
              std::isfinite(v.measured_speedup) &&
              v.predicted_speedup > 0.0 && v.measured_speedup > 0.0;
    return v;
}

} // namespace

Report
analyze(const TraceData &data, const AnalyzeOptions &options)
{
    Report report;
    report.policy = options.policy;
    report.cores = options.cores;
    report.trace_events = data.events.size();
    report.trace_dropped = options.trace_dropped;

    double last_end = 0.0;
    for (const TaskEvent &e : data.events)
        last_end = std::max(last_end, e.end);
    report.makespan =
        options.makespan > 0.0 ? options.makespan : last_end;

    // ---- per-phase attribution -------------------------------------
    std::map<int, std::vector<const TaskEvent *>> by_phase;
    for (const TaskEvent &e : data.events)
        by_phase[e.phase].push_back(&e);

    for (const auto &[phase_id, events] : by_phase) {
        PhaseReport phase;
        phase.phase = phase_id;
        if (phase_id >= 0 &&
            phase_id < static_cast<int>(data.phase_names.size()))
            phase.name = data.phase_names[phase_id];
        else
            phase.name = "phase" + std::to_string(phase_id);

        phase.start = events.front()->start;
        phase.end = events.front()->end;
        std::vector<double> tm_all;
        std::vector<double> tc_all;
        std::map<int, std::vector<double>> tm_by_mtl;
        std::map<int, std::vector<double>> tc_by_mtl;
        std::map<int, long> pairs_by_mtl;
        std::vector<const TaskEvent *> memory_events;
        CounterAccumulator phase_counters;
        std::map<int, CounterAccumulator> counters_by_mtl;
        for (const TaskEvent *e : events) {
            phase.start = std::min(phase.start, e->start);
            phase.end = std::max(phase.end, e->end);
            const double duration = e->end - e->start;
            phase_counters.add(*e);
            if (e->has_counters)
                counters_by_mtl[e->mtl].add(*e);
            if (e->is_memory) {
                tm_all.push_back(duration);
                tm_by_mtl[e->mtl].push_back(duration);
                ++pairs_by_mtl[e->mtl];
                memory_events.push_back(e);
            } else {
                tc_all.push_back(duration);
                tc_by_mtl[e->mtl].push_back(duration);
            }
        }
        phase.pairs = static_cast<long>(tm_all.size());
        phase.tm = summarize(std::move(tm_all));
        phase.tc = summarize(std::move(tc_all));

        const std::map<int, double> wall =
            mtlWallTime(data.mtl_trace, phase.start, phase.end);
        std::map<int, MtlAttribution> attrs;
        for (auto &[mtl, samples] : tm_by_mtl) {
            MtlAttribution &attr = attrs[mtl];
            attr.mtl = mtl;
            attr.pairs = pairs_by_mtl[mtl];
            attr.tm = summarize(std::move(samples));
        }
        for (auto &[mtl, samples] : tc_by_mtl) {
            MtlAttribution &attr = attrs[mtl];
            attr.mtl = mtl;
            attr.tc = summarize(std::move(samples));
        }
        for (const auto &[mtl, seconds] : wall)
            attrs[mtl].mtl = mtl, attrs[mtl].wall_seconds = seconds;
        for (const auto &[mtl, acc] : counters_by_mtl) {
            attrs[mtl].mtl = mtl;
            attrs[mtl].counters =
                acc.finish(options.miss_latency_cycles);
        }
        for (auto &[mtl, attr] : attrs)
            phase.by_mtl.push_back(std::move(attr));

        phase.counters =
            phase_counters.finish(options.miss_latency_cycles);
        phase.queue_fit =
            fitQueueModel(concurrencySamples(std::move(memory_events)));
        phase.validation = validatePhase(phase, options.cores);
        report.phases.push_back(std::move(phase));
    }

    // ---- whole-run interference totals -----------------------------
    CounterAccumulator run_counters;
    for (const TaskEvent &e : data.events)
        run_counters.add(e);
    report.counters = run_counters.finish(options.miss_latency_cycles);
    report.has_counters = report.counters.present;

    // ---- per-worker accounting -------------------------------------
    std::map<int, std::vector<const TaskEvent *>> by_worker;
    for (const TaskEvent &e : data.events)
        by_worker[e.worker].push_back(&e);
    for (auto &[worker, events] : by_worker) {
        std::sort(events.begin(), events.end(),
                  [](const TaskEvent *a, const TaskEvent *b) {
                      return a->start < b->start;
                  });
        WorkerReport wr;
        wr.worker = worker;
        wr.events = events.size();
        double prev_end = -1.0;
        for (const TaskEvent *e : events) {
            wr.busy += e->end - e->start;
            if (prev_end >= 0.0 && e->start > prev_end)
                wr.stall += e->start - prev_end;
            prev_end = std::max(prev_end, e->end);
        }
        wr.idle =
            std::max(0.0, report.makespan - wr.busy - wr.stall);
        report.workers.push_back(wr);
    }

    // ---- overhead + audit ------------------------------------------
    const core::PolicyStats &stats = options.policy_stats;
    report.overhead.pairs_observed = stats.pairs_observed;
    report.overhead.probe_pairs = stats.probe_pairs;
    report.overhead.stale_pairs = stats.stale_pairs;
    report.overhead.fallbacks = stats.fallbacks;
    if (stats.pairs_observed > 0) {
        report.overhead.probe_fraction =
            static_cast<double>(stats.probe_pairs) /
            static_cast<double>(stats.pairs_observed);
        report.overhead.stale_fraction =
            static_cast<double>(stats.stale_pairs) /
            static_cast<double>(stats.pairs_observed);
    }
    report.overhead.decisions =
        static_cast<long>(data.decisions.size());
    report.decisions = data.decisions;

    // ---- critical-path attribution from job spans ------------------
    if (!data.spans.empty()) {
        report.critical_path.valid = true;
        std::map<int, std::vector<const JobSpan *>> by_priority;
        for (const JobSpan &span : data.spans) {
            if (span.attempts.empty()) {
                ++report.critical_path.shed;
                continue;
            }
            ++report.critical_path.jobs;
            by_priority[span.priority].push_back(&span);
        }
        for (const auto &[priority, spans] : by_priority) {
            CriticalPathClass cls;
            cls.priority = priority;
            cls.jobs = static_cast<long>(spans.size());
            std::vector<double> responses;
            responses.reserve(spans.size());
            for (const JobSpan *span : spans) {
                const CriticalPath &cp = span->critical_path;
                responses.push_back(cp.response);
                cls.admission += cp.admission;
                cls.queue_wait += cp.queue_wait;
                cls.compute += cp.compute;
                cls.mem_stall += cp.mem_stall;
                cls.retry_backoff += cp.retry_backoff;
            }
            const double n = static_cast<double>(spans.size());
            cls.admission /= n;
            cls.queue_wait /= n;
            cls.compute /= n;
            cls.mem_stall /= n;
            cls.retry_backoff /= n;
            cls.response = summarize(std::move(responses));
            report.critical_path.classes.push_back(std::move(cls));
        }
    }

    // Health-alert summary: aggregate the edge stream per detector in
    // first-appearance order, so the rule list is deterministic for a
    // deterministic alert sequence. A rule with more fires than
    // clears was still active when the run drained.
    if (data.health_enabled) {
        report.health.valid = true;
        report.health.alerts =
            static_cast<std::uint64_t>(data.alerts.size());
        report.health.alerts_dropped = data.alerts_dropped;
        for (const AlertEvent &alert : data.alerts) {
            HealthRuleSummary *summary = nullptr;
            for (HealthRuleSummary &r : report.health.rules)
                if (r.rule == alert.rule) {
                    summary = &r;
                    break;
                }
            if (summary == nullptr) {
                report.health.rules.push_back(
                    {alert.rule, alertSeverityName(alert.severity), 0,
                     0, false});
                summary = &report.health.rules.back();
            }
            if (alert.edge == AlertEdge::Fired) {
                ++summary->fired;
                if (alert.severity == AlertSeverity::Critical)
                    ++report.health.critical_fired;
            } else {
                ++summary->cleared;
            }
        }
        for (HealthRuleSummary &r : report.health.rules) {
            r.active = r.fired > r.cleared;
            if (r.active && r.severity ==
                                alertSeverityName(
                                    AlertSeverity::Critical))
                report.health.critical_active = true;
        }
    }
    return report;
}

// ---- JSON rendering ------------------------------------------------

namespace {

std::string
jsonNum(double value)
{
    if (!std::isfinite(value))
        return "0";
    std::ostringstream os;
    os << std::setprecision(12) << value;
    return os.str();
}

std::string
jsonStr(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

void
writeDist(const DistSummary &d, std::ostream &os)
{
    os << "{\"count\": " << d.count << ", \"mean\": " << jsonNum(d.mean)
       << ", \"p50\": " << jsonNum(d.p50)
       << ", \"p95\": " << jsonNum(d.p95)
       << ", \"p99\": " << jsonNum(d.p99)
       << ", \"min\": " << jsonNum(d.min)
       << ", \"max\": " << jsonNum(d.max) << "}";
}

void
writeCounters(const CounterStats &c, std::ostream &os)
{
    os << "{\"llc_misses\": " << c.llc_misses
       << ", \"cycles\": " << c.cycles
       << ", \"stalled_cycles\": " << c.stalled_cycles
       << ", \"instructions\": " << c.instructions
       << ", \"mpki\": " << jsonNum(c.mpki)
       << ", \"stall_share\": " << jsonNum(c.stall_share)
       << ", \"stalls_per_miss\": " << jsonNum(c.stalls_per_miss)
       << ", \"achieved_mlp\": " << jsonNum(c.achieved_mlp) << "}";
}

void
writeDecision(const core::MtlDecision &d, std::ostream &os)
{
    os << "{\"time\": " << jsonNum(d.time)
       << ", \"reason\": " << jsonStr(decisionReasonName(d.reason))
       << ", \"from_mtl\": " << d.from_mtl
       << ", \"to_mtl\": " << d.to_mtl
       << ", \"window_tm\": " << jsonNum(d.window_tm)
       << ", \"window_tc\": " << jsonNum(d.window_tc)
       << ", \"idle_bound\": " << d.idle_bound
       << ", \"mtl_no_idle\": " << d.mtl_no_idle
       << ", \"mtl_idle\": " << d.mtl_idle
       << ", \"rank_no_idle\": " << jsonNum(d.rank_no_idle)
       << ", \"rank_idle\": " << jsonNum(d.rank_idle)
       << ", \"predicted_speedup\": " << jsonNum(d.predicted_speedup)
       << ", \"probes_used\": " << d.probes_used
       << ", \"probed_mtls\": [";
    for (std::size_t i = 0; i < d.probed_mtls.size(); ++i)
        os << (i > 0 ? ", " : "") << d.probed_mtls[i];
    os << "], \"degraded\": " << (d.degraded ? "true" : "false")
       << "}";
}

} // namespace

void
writeReportJson(const Report &report, std::ostream &os)
{
    os << "{\n  \"policy\": " << jsonStr(report.policy)
       << ",\n  \"cores\": " << report.cores
       << ",\n  \"makespan\": " << jsonNum(report.makespan)
       << ",\n  \"trace\": {\"events\": " << report.trace_events
       << ", \"dropped\": " << report.trace_dropped << "}";

    // Counter sections appear only on runs that carried counters, so
    // reports written before this schema existed (or without a
    // provider) stay byte-compatible -- diffReports() tolerates the
    // absence on either side.
    if (report.has_counters) {
        os << ",\n  \"counters\": ";
        writeCounters(report.counters, os);
    }

    // The SLO section exists only for open-loop sweeps, with the same
    // both-sides-or-skip diff contract as the counters section.
    if (report.slo.valid) {
        const SloReport &s = report.slo;
        os << ",\n  \"slo\": {\"slo_seconds\": "
           << jsonNum(s.slo_seconds)
           << ", \"knee_rate\": " << jsonNum(s.knee_rate)
           << ", \"points\": [";
        for (std::size_t i = 0; i < s.points.size(); ++i) {
            const SloPoint &p = s.points[i];
            os << (i > 0 ? ",\n    " : "\n    ");
            os << "{\"offered_rate\": " << jsonNum(p.offered_rate)
               << ", \"offered\": " << p.offered
               << ", \"admitted\": " << p.admitted
               << ", \"shed\": " << p.shed
               << ", \"missed\": " << p.missed
               << ", \"shed_rate\": " << jsonNum(p.shed_rate)
               << ", \"p50\": " << jsonNum(p.p50)
               << ", \"p95\": " << jsonNum(p.p95)
               << ", \"p99\": " << jsonNum(p.p99)
               << ", \"attainment\": " << jsonNum(p.attainment)
               << "}";
        }
        os << (s.points.empty() ? "]" : "\n  ]") << "}";
    }

    // Critical-path attribution exists only on traces that carried
    // job spans, with the same both-sides-or-skip diff contract.
    if (report.critical_path.valid) {
        const CriticalPathReport &cp = report.critical_path;
        os << ",\n  \"critical_path\": {\"jobs\": " << cp.jobs
           << ", \"shed\": " << cp.shed << ", \"classes\": [";
        for (std::size_t i = 0; i < cp.classes.size(); ++i) {
            const CriticalPathClass &c = cp.classes[i];
            os << (i > 0 ? ",\n    " : "\n    ");
            os << "{\"priority\": " << c.priority
               << ", \"jobs\": " << c.jobs << ", \"response\": ";
            writeDist(c.response, os);
            os << ", \"admission\": " << jsonNum(c.admission)
               << ", \"queue_wait\": " << jsonNum(c.queue_wait)
               << ", \"compute\": " << jsonNum(c.compute)
               << ", \"mem_stall\": " << jsonNum(c.mem_stall)
               << ", \"retry_backoff\": " << jsonNum(c.retry_backoff)
               << "}";
        }
        os << (cp.classes.empty() ? "]" : "\n  ]") << "}";
    }

    // The health section exists only on runs that evaluated the
    // streaming detectors, with the same both-sides-or-skip contract.
    if (report.health.valid) {
        const HealthReport &h = report.health;
        os << ",\n  \"health\": {\"alerts\": " << h.alerts
           << ", \"alerts_dropped\": " << h.alerts_dropped
           << ", \"critical_fired\": " << h.critical_fired
           << ", \"critical_active\": "
           << (h.critical_active ? "true" : "false")
           << ", \"rules\": [";
        for (std::size_t i = 0; i < h.rules.size(); ++i) {
            const HealthRuleSummary &r = h.rules[i];
            os << (i > 0 ? ",\n    " : "\n    ");
            os << "{\"rule\": " << jsonStr(r.rule)
               << ", \"severity\": " << jsonStr(r.severity)
               << ", \"fired\": " << r.fired
               << ", \"cleared\": " << r.cleared << ", \"active\": "
               << (r.active ? "true" : "false") << "}";
        }
        os << (h.rules.empty() ? "]" : "\n  ]") << "}";
    }

    os << ",\n  \"phases\": [";
    for (std::size_t i = 0; i < report.phases.size(); ++i) {
        const PhaseReport &p = report.phases[i];
        os << (i > 0 ? ",\n    " : "\n    ");
        os << "{\"phase\": " << p.phase
           << ", \"name\": " << jsonStr(p.name)
           << ", \"start\": " << jsonNum(p.start)
           << ", \"end\": " << jsonNum(p.end)
           << ", \"duration\": " << jsonNum(p.end - p.start)
           << ", \"pairs\": " << p.pairs << ",\n     \"tm\": ";
        writeDist(p.tm, os);
        os << ",\n     \"tc\": ";
        writeDist(p.tc, os);
        os << ",\n     \"by_mtl\": [";
        for (std::size_t j = 0; j < p.by_mtl.size(); ++j) {
            const MtlAttribution &a = p.by_mtl[j];
            os << (j > 0 ? ",\n       " : "\n       ");
            os << "{\"mtl\": " << a.mtl << ", \"wall_seconds\": "
               << jsonNum(a.wall_seconds)
               << ", \"pairs\": " << a.pairs << ", \"tm\": ";
            writeDist(a.tm, os);
            os << ", \"tc\": ";
            writeDist(a.tc, os);
            if (a.counters.present) {
                os << ", \"counters\": ";
                writeCounters(a.counters, os);
            }
            os << "}";
        }
        os << (p.by_mtl.empty() ? "]" : "\n     ]");
        const QueueFit &f = p.queue_fit;
        os << ",\n     \"queue_fit\": {\"valid\": "
           << (f.valid ? "true" : "false")
           << ", \"tml\": " << jsonNum(f.tml)
           << ", \"tql\": " << jsonNum(f.tql)
           << ", \"mean_b\": " << jsonNum(f.mean_b)
           << ", \"samples\": " << f.samples << "}";
        const ModelValidation &v = p.validation;
        os << ",\n     \"validation\": {\"valid\": "
           << (v.valid ? "true" : "false") << ", \"mtl\": " << v.mtl
           << ", \"tm_k\": " << jsonNum(v.tm_k)
           << ", \"tm_n\": " << jsonNum(v.tm_n)
           << ", \"tm_n_measured\": "
           << (v.tm_n_measured ? "true" : "false")
           << ", \"tc\": " << jsonNum(v.tc)
           << ", \"predicted_speedup\": "
           << jsonNum(v.predicted_speedup)
           << ", \"measured_speedup\": "
           << jsonNum(v.measured_speedup)
           << ", \"abs_error\": " << jsonNum(v.abs_error) << "}";
        if (p.counters.present) {
            os << ",\n     \"counters\": ";
            writeCounters(p.counters, os);
        }
        os << "}";
    }
    os << (report.phases.empty() ? "]" : "\n  ]");

    os << ",\n  \"workers\": [";
    for (std::size_t i = 0; i < report.workers.size(); ++i) {
        const WorkerReport &w = report.workers[i];
        os << (i > 0 ? ",\n    " : "\n    ");
        os << "{\"worker\": " << w.worker
           << ", \"events\": " << w.events
           << ", \"busy\": " << jsonNum(w.busy)
           << ", \"stall\": " << jsonNum(w.stall)
           << ", \"idle\": " << jsonNum(w.idle) << "}";
    }
    os << (report.workers.empty() ? "]" : "\n  ]");

    const OverheadReport &o = report.overhead;
    os << ",\n  \"overhead\": {\"pairs_observed\": " << o.pairs_observed
       << ", \"probe_pairs\": " << o.probe_pairs
       << ", \"stale_pairs\": " << o.stale_pairs
       << ", \"probe_fraction\": " << jsonNum(o.probe_fraction)
       << ", \"stale_fraction\": " << jsonNum(o.stale_fraction)
       << ", \"decisions\": " << o.decisions
       << ", \"fallbacks\": " << o.fallbacks << "}";

    os << ",\n  \"decisions\": [";
    for (std::size_t i = 0; i < report.decisions.size(); ++i) {
        os << (i > 0 ? ",\n    " : "\n    ");
        writeDecision(report.decisions[i], os);
    }
    os << (report.decisions.empty() ? "]" : "\n  ]") << "\n}\n";
}

// ---- table rendering -----------------------------------------------

namespace {

/** Microseconds with 3 decimals -- the natural unit for task times. */
std::string
us(double seconds)
{
    return TablePrinter::num(seconds * 1e6, 3);
}

} // namespace

std::string
reportTable(const Report &report)
{
    std::ostringstream os;
    os << "run: policy " << report.policy << ", cores " << report.cores
       << ", makespan " << TablePrinter::num(report.makespan * 1e3, 3)
       << " ms, trace events " << report.trace_events << " ("
       << report.trace_dropped << " dropped)\n";

    os << "\nphase attribution (times in us)\n";
    TablePrinter attribution({"phase", "mtl", "wall%", "pairs",
                              "tm.mean", "tm.p50", "tm.p95", "tm.p99",
                              "tc.mean", "tc.p95"});
    for (const PhaseReport &p : report.phases) {
        const double duration = p.end - p.start;
        attribution.addRow(
            {p.name, "all", "100.00%", std::to_string(p.pairs),
             us(p.tm.mean), us(p.tm.p50), us(p.tm.p95), us(p.tm.p99),
             us(p.tc.mean), us(p.tc.p95)});
        for (const MtlAttribution &a : p.by_mtl)
            attribution.addRow(
                {p.name, std::to_string(a.mtl),
                 duration > 0.0
                     ? TablePrinter::pct(a.wall_seconds / duration)
                     : "-",
                 std::to_string(a.pairs), us(a.tm.mean), us(a.tm.p50),
                 us(a.tm.p95), us(a.tm.p99), us(a.tc.mean),
                 us(a.tc.p95)});
    }
    attribution.print(os);

    if (report.has_counters) {
        os << "\nmemory interference by (phase, mtl) -- source: "
              "hardware counters\n";
        TablePrinter interference(
            {"phase", "mtl", "llc_misses", "mpki", "stall%",
             "stalls/miss", "mlp"});
        auto counterRow = [&](const std::string &phase,
                              const std::string &mtl,
                              const CounterStats &c) {
            interference.addRow(
                {phase, mtl, std::to_string(c.llc_misses),
                 TablePrinter::num(c.mpki, 2),
                 TablePrinter::pct(c.stall_share),
                 TablePrinter::num(c.stalls_per_miss, 1),
                 TablePrinter::num(c.achieved_mlp, 2)});
        };
        for (const PhaseReport &p : report.phases) {
            if (!p.counters.present)
                continue;
            counterRow(p.name, "all", p.counters);
            for (const MtlAttribution &a : p.by_mtl)
                if (a.counters.present)
                    counterRow(p.name, std::to_string(a.mtl),
                               a.counters);
        }
        interference.print(os);
        const CounterStats &c = report.counters;
        os << "run totals: " << c.llc_misses << " LLC misses, "
           << TablePrinter::pct(c.stall_share) << " of "
           << c.cycles << " cycles stalled, "
           << TablePrinter::num(c.stalls_per_miss, 1)
           << " stalls/miss, achieved MLP "
           << TablePrinter::num(c.achieved_mlp, 2) << "\n";
    }

    os << "\nqueueing decomposition T_mb = T_ml + b*T_ql (us)\n";
    TablePrinter queue({"phase", "T_ml", "T_ql", "mean b", "samples",
                        "fit"});
    for (const PhaseReport &p : report.phases)
        queue.addRow({p.name, us(p.queue_fit.tml), us(p.queue_fit.tql),
                      TablePrinter::num(p.queue_fit.mean_b, 2),
                      std::to_string(p.queue_fit.samples),
                      p.queue_fit.valid ? "ok" : "degenerate"});
    queue.print(os);

    os << "\nmodel validation (speedup of run MTL vs MTL=n)\n";
    TablePrinter validation({"phase", "mtl", "T_mk(us)", "T_mn(us)",
                             "T_mn src", "T_c(us)", "predicted",
                             "measured", "abs err"});
    for (const PhaseReport &p : report.phases) {
        const ModelValidation &v = p.validation;
        if (!v.valid) {
            validation.addRow({p.name, "-", "-", "-", "-", "-", "-",
                               "-", "-"});
            continue;
        }
        validation.addRow(
            {p.name, std::to_string(v.mtl), us(v.tm_k), us(v.tm_n),
             v.tm_n_measured ? "measured" : "queue-fit", us(v.tc),
             TablePrinter::num(v.predicted_speedup, 3),
             TablePrinter::num(v.measured_speedup, 3),
             TablePrinter::num(v.abs_error, 3)});
    }
    validation.print(os);

    os << "\nworker accounting (fractions of makespan)\n";
    TablePrinter workers({"worker", "events", "busy", "stall", "idle"});
    for (const WorkerReport &w : report.workers) {
        const double span = report.makespan > 0.0 ? report.makespan
                                                  : 1.0;
        workers.addRow({std::to_string(w.worker),
                        std::to_string(w.events),
                        TablePrinter::pct(w.busy / span),
                        TablePrinter::pct(w.stall / span),
                        TablePrinter::pct(w.idle / span)});
    }
    workers.print(os);

    const OverheadReport &o = report.overhead;
    os << "\nmonitoring overhead: " << o.pairs_observed
       << " pairs observed, " << o.probe_pairs << " probe ("
       << TablePrinter::pct(o.probe_fraction) << "), " << o.stale_pairs
       << " stale (" << TablePrinter::pct(o.stale_fraction) << "), "
       << o.decisions << " decisions, " << o.fallbacks
       << " fallbacks\n";

    if (report.slo.valid) {
        const SloReport &s = report.slo;
        os << "\nSLO attainment vs offered load (SLO "
           << us(s.slo_seconds) << " us)\n";
        TablePrinter slo({"rate(/s)", "offered", "admitted", "shed",
                          "missed", "shed%", "p50(us)", "p95(us)",
                          "p99(us)", "attainment"});
        for (const SloPoint &p : s.points)
            slo.addRow({TablePrinter::num(p.offered_rate, 1),
                        std::to_string(p.offered),
                        std::to_string(p.admitted),
                        std::to_string(p.shed),
                        std::to_string(p.missed),
                        TablePrinter::pct(p.shed_rate), us(p.p50),
                        us(p.p95), us(p.p99),
                        TablePrinter::pct(p.attainment)});
        slo.print(os);
        if (s.knee_rate > 0.0)
            os << "knee: attainment first degrades at ~"
               << TablePrinter::num(s.knee_rate, 1)
               << " jobs/s offered\n";
        else
            os << "knee: not reached within the swept rates\n";
    }

    if (report.critical_path.valid) {
        const CriticalPathReport &cp = report.critical_path;
        os << "\ncritical path by priority class (" << cp.jobs
           << " jobs, " << cp.shed << " shed; mean us per "
           << "component)\n";
        TablePrinter critical({"priority", "jobs", "resp.p50",
                               "resp.p95", "resp.p99", "queue_wait",
                               "compute", "mem_stall", "retry"});
        for (const CriticalPathClass &c : cp.classes)
            critical.addRow({std::to_string(c.priority),
                             std::to_string(c.jobs),
                             us(c.response.p50), us(c.response.p95),
                             us(c.response.p99), us(c.queue_wait),
                             us(c.compute), us(c.mem_stall),
                             us(c.retry_backoff)});
        critical.print(os);
    }

    if (report.health.valid) {
        const HealthReport &h = report.health;
        if (h.rules.empty()) {
            os << "\nhealth: all detectors quiet (0 alerts)\n";
        } else {
            os << "\nhealth alerts (" << h.alerts << " edges, "
               << h.critical_fired << " critical fires";
            if (h.alerts_dropped > 0)
                os << ", " << h.alerts_dropped << " dropped";
            os << ")\n";
            TablePrinter health({"rule", "severity", "fired",
                                 "cleared", "at end"});
            for (const HealthRuleSummary &r : h.rules)
                health.addRow({r.rule, r.severity,
                               std::to_string(r.fired),
                               std::to_string(r.cleared),
                               r.active ? "ACTIVE" : "clear"});
            health.print(os);
            if (h.critical_active)
                os << "critical alert still active at drain\n";
        }
    }

    os << "\npolicy decision audit\n";
    TablePrinter audit({"t(ms)", "reason", "mtl", "tm(us)", "tc(us)",
                        "IdleBound", "no-idle", "idle", "pred speedup",
                        "probes", "degraded"});
    for (const core::MtlDecision &d : report.decisions)
        audit.addRow(
            {TablePrinter::num(d.time * 1e3, 3),
             decisionReasonName(d.reason),
             std::to_string(d.from_mtl) + "->" +
                 std::to_string(d.to_mtl),
             us(d.window_tm), us(d.window_tc),
             std::to_string(d.idle_bound),
             std::to_string(d.mtl_no_idle),
             std::to_string(d.mtl_idle),
             d.predicted_speedup > 0.0
                 ? TablePrinter::num(d.predicted_speedup, 3)
                 : "-",
             std::to_string(d.probes_used), d.degraded ? "yes" : "no"});
    audit.print(os);
    return os.str();
}

// ---- report diffing ------------------------------------------------

namespace {

/** Flag a regression when `candidate` worsens past the threshold. */
void
compareMetric(const std::string &metric, double baseline,
              double candidate, double threshold, DiffResult &out)
{
    if (baseline <= 0.0)
        return; // no meaningful relative comparison
    const double change = (candidate - baseline) / baseline;
    if (change > threshold)
        out.regressions.push_back(
            {metric, baseline, candidate, change});
}

const json::Value *
findPhase(const json::Value &report, const std::string &name)
{
    const json::Value *phases = report.find("phases");
    if (phases == nullptr || !phases->isArray())
        return nullptr;
    for (const json::Value &phase : phases->array)
        if (phase.stringAt("name") == name)
            return &phase;
    return nullptr;
}

} // namespace

DiffResult
diffReports(const json::Value &baseline, const json::Value &candidate,
            double threshold)
{
    DiffResult out;
    if (!baseline.isObject() || !candidate.isObject()) {
        out.notes.push_back("input is not a report object");
        return out;
    }
    compareMetric("makespan", baseline.numberAt("makespan"),
                  candidate.numberAt("makespan"), threshold, out);

    // The counters section only exists on runs that carried hardware
    // counters; an old baseline (or a null-provider run) simply lacks
    // it, which must not fail the diff -- compare only when both
    // sides have it.
    const json::Value *base_counters = baseline.find("counters");
    const json::Value *cand_counters = candidate.find("counters");
    if (base_counters != nullptr && cand_counters != nullptr) {
        compareMetric("counters.stalls_per_miss",
                      base_counters->numberAt("stalls_per_miss"),
                      cand_counters->numberAt("stalls_per_miss"),
                      threshold, out);
        compareMetric("counters.stall_share",
                      base_counters->numberAt("stall_share"),
                      cand_counters->numberAt("stall_share"),
                      threshold, out);
    }

    // Same contract for the SLO section: only open-loop reports have
    // one, and a baseline predating the schema (or a closed-loop run
    // on either side) must diff cleanly in both directions.
    const json::Value *base_slo = baseline.find("slo");
    const json::Value *cand_slo = candidate.find("slo");
    if (base_slo != nullptr && cand_slo != nullptr) {
        // knee_rate 0 means "attainment never degraded in the sweep"
        // (the best outcome), so compare inverted capacities only
        // when both sides found a knee, and flag a knee newly
        // appearing where the baseline had none.
        const double base_knee = base_slo->numberAt("knee_rate");
        const double cand_knee = cand_slo->numberAt("knee_rate");
        if (base_knee > 0.0 && cand_knee > 0.0)
            compareMetric("slo.knee_rate (inverse capacity)",
                          1.0 / base_knee, 1.0 / cand_knee, threshold,
                          out);
        else if (base_knee <= 0.0 && cand_knee > 0.0)
            out.regressions.push_back(
                {"slo.knee_rate (knee newly present)", base_knee,
                 cand_knee, 1.0});
        const json::Value *base_pts = base_slo->find("points");
        const json::Value *cand_pts = cand_slo->find("points");
        if (base_pts != nullptr && base_pts->isArray() &&
            cand_pts != nullptr && cand_pts->isArray()) {
            for (const json::Value &bp : base_pts->array) {
                const double rate = bp.numberAt("offered_rate");
                const json::Value *match = nullptr;
                for (const json::Value &cp : cand_pts->array)
                    if (std::fabs(cp.numberAt("offered_rate") - rate) <=
                        1e-9 * std::max(1.0, std::fabs(rate))) {
                        match = &cp;
                        break;
                    }
                if (match == nullptr) {
                    out.notes.push_back(
                        "slo point missing from candidate: rate " +
                        std::to_string(rate));
                    continue;
                }
                const std::string tag =
                    "slo rate " + std::to_string(rate);
                compareMetric(tag + " p99", bp.numberAt("p99"),
                              match->numberAt("p99"), threshold, out);
                compareMetric(tag + " shed_rate",
                              bp.numberAt("shed_rate"),
                              match->numberAt("shed_rate"), threshold,
                              out);
            }
        }
    }

    // Critical-path sections exist only on span-carrying reports;
    // match classes by priority and compare tail response plus the
    // two components throttling is meant to move (queueing and
    // memory stall). Absence on either side skips the comparison.
    const json::Value *base_cp = baseline.find("critical_path");
    const json::Value *cand_cp = candidate.find("critical_path");
    if (base_cp != nullptr && cand_cp != nullptr) {
        const json::Value *base_cls = base_cp->find("classes");
        const json::Value *cand_cls = cand_cp->find("classes");
        if (base_cls != nullptr && base_cls->isArray() &&
            cand_cls != nullptr && cand_cls->isArray()) {
            for (const json::Value &bc : base_cls->array) {
                const double priority = bc.numberAt("priority");
                const json::Value *match = nullptr;
                for (const json::Value &cc : cand_cls->array)
                    if (cc.numberAt("priority") == priority) {
                        match = &cc;
                        break;
                    }
                if (match == nullptr) {
                    out.notes.push_back(
                        "critical-path class missing from candidate: "
                        "priority " +
                        std::to_string(static_cast<long>(priority)));
                    continue;
                }
                const std::string tag =
                    "critical_path priority " +
                    std::to_string(static_cast<long>(priority));
                const json::Value *base_resp = bc.find("response");
                const json::Value *cand_resp = match->find("response");
                if (base_resp != nullptr && cand_resp != nullptr)
                    compareMetric(tag + " response.p99",
                                  base_resp->numberAt("p99"),
                                  cand_resp->numberAt("p99"),
                                  threshold, out);
                compareMetric(tag + " queue_wait",
                              bc.numberAt("queue_wait"),
                              match->numberAt("queue_wait"), threshold,
                              out);
                compareMetric(tag + " mem_stall",
                              bc.numberAt("mem_stall"),
                              match->numberAt("mem_stall"), threshold,
                              out);
            }
        }
    }

    // Health sections exist only on detector-enabled runs. Alert
    // *counts* are load-dependent, so the diff gates on qualitative
    // degradation only: a critical detector firing where the baseline
    // had none, and a critical alert still active when the candidate
    // drained.
    const json::Value *base_health = baseline.find("health");
    const json::Value *cand_health = candidate.find("health");
    if (base_health != nullptr && cand_health != nullptr) {
        const double base_crit =
            base_health->numberAt("critical_fired");
        const double cand_crit =
            cand_health->numberAt("critical_fired");
        if (base_crit <= 0.0 && cand_crit > 0.0)
            out.regressions.push_back(
                {"health.critical_fired (newly present)", base_crit,
                 cand_crit, 1.0});
        const json::Value *base_active =
            base_health->find("critical_active");
        const json::Value *cand_active =
            cand_health->find("critical_active");
        const bool base_crit_active =
            base_active != nullptr && base_active->boolean;
        const bool cand_crit_active =
            cand_active != nullptr && cand_active->boolean;
        if (!base_crit_active && cand_crit_active)
            out.regressions.push_back(
                {"health.critical_active (alert active at drain)",
                 0.0, 1.0, 1.0});
        const json::Value *base_rules = base_health->find("rules");
        const json::Value *cand_rules = cand_health->find("rules");
        if (base_rules != nullptr && base_rules->isArray() &&
            cand_rules != nullptr && cand_rules->isArray()) {
            for (const json::Value &cr : cand_rules->array) {
                if (cr.stringAt("severity") != "critical" ||
                    cr.numberAt("fired") <= 0.0)
                    continue;
                const std::string rule = cr.stringAt("rule");
                bool fired_in_baseline = false;
                for (const json::Value &br : base_rules->array)
                    if (br.stringAt("rule") == rule &&
                        br.numberAt("fired") > 0.0) {
                        fired_in_baseline = true;
                        break;
                    }
                if (!fired_in_baseline)
                    out.regressions.push_back(
                        {"health rule " + rule +
                             " (critical, newly firing)",
                         0.0, cr.numberAt("fired"), 1.0});
            }
        }
    }

    const json::Value *base_overhead = baseline.find("overhead");
    const json::Value *cand_overhead = candidate.find("overhead");
    if (base_overhead != nullptr && cand_overhead != nullptr)
        compareMetric("overhead.probe_fraction",
                      base_overhead->numberAt("probe_fraction"),
                      cand_overhead->numberAt("probe_fraction"),
                      threshold, out);

    const json::Value *base_phases = baseline.find("phases");
    if (base_phases != nullptr && base_phases->isArray()) {
        for (const json::Value &phase : base_phases->array) {
            const std::string name = phase.stringAt("name");
            const json::Value *other = findPhase(candidate, name);
            if (other == nullptr) {
                out.notes.push_back("phase missing from candidate: " +
                                    name);
                continue;
            }
            compareMetric("phase " + name + " duration",
                          phase.numberAt("duration"),
                          other->numberAt("duration"), threshold, out);
            const json::Value *base_tm = phase.find("tm");
            const json::Value *cand_tm = other->find("tm");
            if (base_tm != nullptr && cand_tm != nullptr) {
                compareMetric("phase " + name + " tm.mean",
                              base_tm->numberAt("mean"),
                              cand_tm->numberAt("mean"), threshold,
                              out);
                compareMetric("phase " + name + " tm.p95",
                              base_tm->numberAt("p95"),
                              cand_tm->numberAt("p95"), threshold,
                              out);
            }
            const json::Value *base_pc = phase.find("counters");
            const json::Value *cand_pc = other->find("counters");
            if (base_pc != nullptr && cand_pc != nullptr)
                compareMetric(
                    "phase " + name + " counters.stalls_per_miss",
                    base_pc->numberAt("stalls_per_miss"),
                    cand_pc->numberAt("stalls_per_miss"), threshold,
                    out);
        }
    }
    const json::Value *cand_phases = candidate.find("phases");
    if (cand_phases != nullptr && cand_phases->isArray())
        for (const json::Value &phase : cand_phases->array)
            if (findPhase(baseline, phase.stringAt("name")) == nullptr)
                out.notes.push_back("phase new in candidate: " +
                                    phase.stringAt("name"));
    return out;
}

} // namespace tt::obs
