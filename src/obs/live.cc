#include "obs/live.hh"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/logging.hh"
#include "util/stats.hh"

namespace tt::obs {

namespace {

std::uint64_t
wallNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
writeQuantile(std::ostream &os, const std::string &name, double q,
              double value)
{
    os << name << "{quantile=\"" << q << "\"} " << value << "\n";
}

} // namespace

std::string
openMetricsName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty())
        out = "_";
    if (std::isdigit(static_cast<unsigned char>(out.front())))
        out.insert(out.begin(), '_');
    return out;
}

void
writeOpenMetrics(const MetricsRegistry &metrics, std::ostream &os,
                 double snapshot_seconds)
{
    // Each accessor takes the registry mutex briefly; nothing holds
    // it across the stream writes, so a live run is never stalled
    // behind a slow reader.
    for (const std::string &raw : metrics.counterNames()) {
        const std::string name = openMetricsName(raw);
        os << "# TYPE " << name << " counter\n";
        os << name << "_total " << metrics.counter(raw) << "\n";
    }
    for (const std::string &raw : metrics.gaugeNames()) {
        const std::string name = openMetricsName(raw);
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << metrics.gauge(raw) << "\n";
    }
    for (const std::string &raw : metrics.histogramNames()) {
        const std::string name = openMetricsName(raw);
        const Histogram h = metrics.histogram(raw);
        os << "# TYPE " << name << " summary\n";
        writeQuantile(os, name, 0.5, h.p50());
        writeQuantile(os, name, 0.9, h.p90());
        writeQuantile(os, name, 0.95, h.p95());
        writeQuantile(os, name, 0.99, h.p99());
        os << name << "_sum " << h.sum() << "\n";
        os << name << "_count " << h.count() << "\n";
    }
    if (snapshot_seconds >= 0.0) {
        os << "# TYPE obs_snapshot_time_seconds gauge\n";
        os << "obs_snapshot_time_seconds " << snapshot_seconds << "\n";
    }
    os << "# EOF\n";
}

std::string
openMetricsText(const MetricsRegistry &metrics, double snapshot_seconds)
{
    std::ostringstream os;
    writeOpenMetrics(metrics, os, snapshot_seconds);
    return os.str();
}

LiveFileSink::LiveFileSink(std::string path, MetricsRegistry &metrics)
    : path_(std::move(path)), metrics_(metrics)
{
}

void
LiveFileSink::snapshot(double now_seconds)
{
    const std::uint64_t t0 = wallNanos();
    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (os)
            writeOpenMetrics(metrics_, os, now_seconds);
        if (!os) {
            if (ok_)
                tt_warn("live-metrics snapshot to '", tmp,
                        "' failed; disabling further snapshots");
            ok_ = false;
            return;
        }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        if (ok_)
            tt_warn("live-metrics rename to '", path_,
                    "' failed; disabling further snapshots");
        ok_ = false;
        return;
    }
    ++snapshots_;
    metrics_.add("obs.overhead.live_export_ns",
                 static_cast<std::int64_t>(wallNanos() - t0));
}

LiveMetricsServer::LiveMetricsServer(std::string path,
                                     MetricsRegistry &metrics)
    : path_(std::move(path)), metrics_(metrics)
{
}

LiveMetricsServer::~LiveMetricsServer()
{
    stop();
}

bool
LiveMetricsServer::start()
{
    sockaddr_un addr{};
    if (path_.size() >= sizeof addr.sun_path) {
        error_ = "socket path too long: " + path_;
        return false;
    }
    addr.sun_family = AF_UNIX;
    path_.copy(addr.sun_path, sizeof addr.sun_path - 1);

    ::unlink(path_.c_str()); // stale socket from a previous run
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) {
        error_ = "socket() failed for " + path_;
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
        error_ = "cannot bind/listen on " + path_;
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
LiveMetricsServer::stop()
{
    if (listen_fd_ < 0)
        return;
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable())
        thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
}

void
LiveMetricsServer::serveLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0 || (pfd.revents & POLLIN) == 0)
            continue; // timeout: re-check the stop flag
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0)
            continue;
        const std::uint64_t t0 = wallNanos();
        const std::string text = openMetricsText(metrics_);
        std::size_t sent = 0;
        while (sent < text.size()) {
            const ssize_t n = ::send(client, text.data() + sent,
                                     text.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
                break; // reader went away mid-snapshot
            sent += static_cast<std::size_t>(n);
        }
        ::close(client);
        served_.fetch_add(1, std::memory_order_relaxed);
        metrics_.add("obs.overhead.live_export_ns",
                     static_cast<std::int64_t>(wallNanos() - t0));
    }
}

} // namespace tt::obs
