/**
 * @file
 * Low-overhead event tracing shared by the real-thread runtime and
 * the simulator.
 *
 * Each worker (a host thread in tt_runtime, a hardware context in
 * tt_simrt) records TaskEvents into its own fixed-capacity TraceRing:
 * no locks and no allocation on the hot path after construction, so
 * tracing stays cheap enough to leave on. When a run drains, the
 * owning runtime calls Tracer::merged() -- strictly after joining its
 * workers -- to collate every ring into one start-time-ordered event
 * stream. TraceData couples that stream with the policy's MTL
 * transition log and the graph's phase names; chrome_trace.hh renders
 * it in the Chrome trace-event format for chrome://tracing/Perfetto.
 */

#ifndef TT_OBS_TRACE_HH
#define TT_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/audit.hh"
#include "obs/health.hh"
#include "obs/perf/counters.hh"
#include "obs/span.hh"

namespace tt::obs {

/** One executed task, as recorded by the worker that ran it. */
struct TaskEvent
{
    std::int32_t task = -1;  ///< task id within the graph
    std::int32_t pair = -1;  ///< memory-compute pair id
    std::int32_t phase = -1; ///< phase id (index into phase names)
    bool is_memory = false;  ///< memory task (true) or compute task
    int worker = -1;         ///< worker thread / hardware context
    double start = 0.0;      ///< dispatch time, seconds from run start
    double end = 0.0;        ///< completion time, seconds
    int mtl = 0;             ///< MTL the policy had published at dispatch
    int attempt = 0;         ///< attempt that succeeded (0 = first)

    /** True when `counters` holds this attempt's hardware-counter
     *  delta (the final attempt only -- retries are separate). */
    bool has_counters = false;
    perf::CounterSet counters;
};

/**
 * Fixed-capacity event ring owned by exactly one worker. The owner
 * records; the event payloads may only be read after the worker has
 * stopped, but the recorded()/dropped() *counters* are safe to read
 * live from any thread (relaxed atomics -- the health tick samples
 * the drop rate mid-run). When full, the oldest events are
 * overwritten and counted in dropped().
 */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity);

    /** Vector-relocation support for Tracer construction only -- the
     *  atomic counter makes the default move deleted. Never valid
     *  once the owning worker records concurrently. */
    TraceRing(TraceRing &&other) noexcept
        : capacity_(other.capacity_),
          recorded_(other.recorded_.load(std::memory_order_relaxed)),
          data_(std::move(other.data_))
    {
    }

    /** Append one event, overwriting the oldest when full. */
    void record(const TaskEvent &event);

    std::size_t capacity() const { return capacity_; }

    /** Events currently held (<= capacity). */
    std::size_t size() const;

    /** Total events recorded, including overwritten ones. */
    std::uint64_t recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }

    /** Events lost to overwriting. */
    std::uint64_t dropped() const;

    /** Held events, oldest first. */
    std::vector<TaskEvent> events() const;

  private:
    std::size_t capacity_;
    /** Single writer; atomic so mid-run counter reads are clean. */
    std::atomic<std::uint64_t> recorded_{0};
    std::vector<TaskEvent> data_; ///< ring storage, slot = recorded % capacity
};

/**
 * Per-worker ring registry. Worker i writes only through ring(i), so
 * recording needs no synchronisation; merged() must only be called
 * once the workers are quiescent (the runtimes call it after join).
 */
class Tracer
{
  public:
    Tracer(int workers, std::size_t capacity_per_worker);

    int workers() const { return static_cast<int>(rings_.size()); }

    TraceRing &ring(int worker);
    const TraceRing &ring(int worker) const;

    /** All rings' events collated and sorted by (start, end, task). */
    std::vector<TaskEvent> merged() const;

    /** Total events recorded across all rings. */
    std::uint64_t recorded() const;

    /** Total events lost to ring overwrites across all rings. */
    std::uint64_t dropped() const;

  private:
    std::vector<TraceRing> rings_;
};

/**
 * Everything the exporter needs, decoupled from which runtime
 * produced it: the merged event stream, the policy's (time, MTL)
 * transition log, its decision audit records, and the graph's phase
 * names (indexed by TaskEvent::phase).
 */
struct TraceData
{
    std::vector<TaskEvent> events;
    std::vector<std::pair<double, int>> mtl_trace;
    std::vector<std::string> phase_names;
    std::vector<core::MtlDecision> decisions;

    /** Per-job causal spans (see span.hh); empty on old traces. */
    std::vector<JobSpan> spans;

    /** Health-alert edges (see health.hh); rendered as instant
     *  events. Empty when the run had no health engine. */
    std::vector<AlertEvent> alerts;

    /** Alert edges the engine's bounded ring had to evict. */
    std::uint64_t alerts_dropped = 0;

    /** True when the run evaluated the health detectors (so an
     *  empty `alerts` means "healthy", not "not watched"). */
    bool health_enabled = false;
};

} // namespace tt::obs

#endif // TT_OBS_TRACE_HH
