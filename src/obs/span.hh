/**
 * @file
 * Per-job causal spans: the live-telemetry record of one job (one
 * memory/compute pair) from arrival to its terminal state.
 *
 * The trace ring (trace.hh) answers "what ran where"; a JobSpan
 * answers "where did *this job's* response time go". exec::Engine
 * assembles one span per pair from its existing JobRecord/TaskEvent
 * plumbing -- arrival, admission verdict, every dispatch attempt
 * (including failed attempts and the retry backoff each was granted)
 * and the terminal outcome -- then finalizes it with an additive
 * CriticalPath decomposition:
 *
 *   response = admission + queue_wait + compute + mem_stall
 *            + retry_backoff
 *
 * The identity holds by construction (queue_wait is defined as the
 * non-executing remainder), so per-job components always sum to the
 * measured response. Spans land in a bounded SpanBuffer mirroring
 * TraceRing: the oldest spans are overwritten when full and counted
 * in dropped() (published as `obs.spans_dropped`). chrome_trace.hh
 * renders spans as flow events linking the arrival instant to the
 * completing worker slice; analyzer.hh aggregates the critical-path
 * components per priority class.
 */

#ifndef TT_OBS_SPAN_HH
#define TT_OBS_SPAN_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "load/admission.hh"
#include "obs/perf/counters.hh"
#include "util/concurrency/epoch.hh"

namespace tt::obs {

/** One dispatch attempt of one of the span's two tasks, in
 *  completion order (failed attempts included). */
struct SpanAttempt
{
    std::int32_t task = -1; ///< task id within the graph
    bool is_memory = false; ///< memory task (true) or compute task
    int attempt = 0;        ///< 0 = first execution
    int worker = -1;        ///< context the attempt ran on
    double start = 0.0;     ///< body start, engine-clock seconds
    double end = 0.0;       ///< body end (incl. fault penalties)
    bool failed = false;    ///< attempt threw / injected failure

    /** Retry backoff granted after this (failed) attempt, seconds. */
    double backoff_seconds = 0.0;

    /** True when `counters` holds this attempt's hw-counter delta. */
    bool has_counters = false;
    perf::CounterSet counters;
};

/** Terminal state of a job span. */
enum class SpanOutcome
{
    Completed,    ///< pair finished (within SLO when one was set)
    DeadlineMiss, ///< pair finished but past its relative SLO
    Shed,         ///< rejected at admission; never executed
    Failed,       ///< a task exhausted its retries; run aborted
};

/** Stable lower-case name ("completed"/"deadline_miss"/...). */
const char *spanOutcomeName(SpanOutcome outcome);

/**
 * Additive decomposition of one job's response time, seconds. All
 * components are >= 0 and sum to `response` exactly (modulo clamping
 * of sub-nanosecond clock jitter on the host backend):
 *  - admission: time spent held at the admission gate (0 today --
 *    verdicts are instantaneous -- kept for the ttserved daemon);
 *  - queue_wait: time the job was runnable but not executing (ready-
 *    queue wait before first dispatch plus inter-task dispatch gaps);
 *  - compute: executing and not stalled on memory;
 *  - mem_stall: executing but stalled on memory, attributed via the
 *    hw-counter stall share of the successful attempts (0 when the
 *    run carried no counters);
 *  - retry_backoff: failed attempt bodies plus granted backoff
 *    sleeps.
 */
struct CriticalPath
{
    double admission = 0.0;
    double queue_wait = 0.0;
    double compute = 0.0;
    double mem_stall = 0.0;
    double retry_backoff = 0.0;
    double response = 0.0; ///< end - arrival (ground truth)

    double
    sum() const
    {
        return admission + queue_wait + compute + mem_stall +
               retry_backoff;
    }
};

/** Causal record of one job (pair) from arrival to terminal state. */
struct JobSpan
{
    std::int32_t pair = -1;
    int priority = 0;      ///< arrival-plan priority (0 closed-loop)
    bool open_loop = false; ///< offered by an arrival plan

    /**
     * Engine-clock arrival: the admission stamp on open-loop runs,
     * the instant the pair's memory task became ready (phase
     * activation / dependency unlock) on closed-loop runs -- so
     * closed-loop spans decompose the same way.
     */
    double arrival = 0.0;
    double end = 0.0; ///< terminal time (== arrival for shed jobs)

    load::AdmissionDecision decision = load::AdmissionDecision::Accept;
    load::ShedReason shed_reason = load::ShedReason::None;
    SpanOutcome outcome = SpanOutcome::Completed;

    /** Every dispatch attempt, in completion order. */
    std::vector<SpanAttempt> attempts;

    CriticalPath critical_path;
};

/**
 * Decompose a finalized span (terminal `end` set, attempts
 * complete). Pure accounting over the span's own records; the engine
 * calls it once per span at the terminal event.
 */
CriticalPath computeCriticalPath(const JobSpan &span);

/**
 * Bounded span store, concurrent-writer safe. record() claims a
 * global sequence number with one fetch_add and publishes the span
 * into a slot of a segmented log; the logical window is the last
 * `capacity` sequences, so the observable contract matches the old
 * locked ring exactly — the oldest span falls out when full and the
 * loss shows up in dropped().
 *
 * Storage is a linked list of fixed-size segments rather than one
 * ring: slots are written once, never recycled, so writers never
 * race a reader over a wrapping slot. A segment wholly below the
 * window is unlinked (rare, under a small mutex) and handed to an
 * EpochReclaimer; readers traverse under an epoch guard, so the
 * segment is freed only after every reader that could still hold a
 * pointer into it has left. Slot publication is a release store of
 * the slot's ready flag, matched by acquire loads in spans().
 *
 * Engine push mode still writes from one thread at a time; the host
 * pull path records spans from whichever worker completes the pair.
 */
class SpanBuffer
{
  public:
    explicit SpanBuffer(std::size_t capacity);
    ~SpanBuffer();

    SpanBuffer(const SpanBuffer &) = delete;
    SpanBuffer &operator=(const SpanBuffer &) = delete;

    /** Append one finalized span, overwriting the oldest when full. */
    void record(JobSpan span);

    std::size_t capacity() const { return capacity_; }

    /** Spans currently held (<= capacity). */
    std::size_t size() const;

    /** Total spans recorded, including overwritten ones. */
    std::uint64_t recorded() const;

    /** Spans lost to the window sliding past them. */
    std::uint64_t dropped() const;

    /**
     * Spans in the window, oldest first. Safe concurrently with
     * writers: slots still being filled at the call instant are
     * skipped (quiesced callers — drain, tests — see every slot).
     */
    std::vector<JobSpan> spans() const;

    /** Reclamation telemetry, forwarded from the embedded EBR
     *  instance (obs.ebr.* metrics / the ebr_lag detector). */
    std::uint64_t epochAdvances() const { return epoch_.advances(); }
    std::uint64_t epochStalls() const
    {
        return epoch_.advanceStalls();
    }
    std::uint64_t epochPending() const { return epoch_.pending(); }

  private:
    /** Spans per segment; segment turnover (and hence every locked
     *  or epoch-managed operation) happens once per this many
     *  records. */
    static constexpr std::size_t kSegmentSpans = 256;

    struct Slot
    {
        std::atomic<std::uint32_t> ready{0};
        JobSpan span;
    };

    struct Segment
    {
        explicit Segment(std::uint64_t base_seq) : base(base_seq) {}
        const std::uint64_t base; ///< sequence of slots[0]
        std::vector<Slot> slots{kSegmentSpans};
        std::atomic<Segment *> next{nullptr};
    };

    /** Segment covering `seq`, installing it if needed. Must be
     *  called under an epoch guard. */
    Segment *segmentFor(std::uint64_t seq);

    /** Unlink and retire segments wholly below the window. */
    void reclaim(std::uint64_t window_start);

    std::size_t capacity_;
    alignas(64) std::atomic<std::uint64_t> next_seq_{0};
    std::atomic<Segment *> head_; ///< oldest live segment
    std::atomic<Segment *> tail_; ///< newest segment (install hint)
    std::mutex install_mutex_;    ///< guards head_/tail_ updates
    mutable util::EpochReclaimer epoch_{16};
};

} // namespace tt::obs

#endif // TT_OBS_SPAN_HH
