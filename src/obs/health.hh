/**
 * @file
 * Streaming health engine: deterministic online detectors over the
 * run's own telemetry, emitting a severity-tagged alert stream.
 *
 * The engine consumes two window streams and keeps no other state:
 *
 *  - *Job windows* close every `window_jobs` offered jobs and carry
 *    only admission-model inputs (sheds, predicted-late admits,
 *    model backlog). Arrival order is plan order on both backends
 *    and the admission verdicts are functions of the plan alone, so
 *    the detectors fed from job windows — `slo_burn` and
 *    `queue_growth` — produce the identical (rule, edge, window)
 *    sequence on host and sim. This is the cross-backend-tested
 *    half of the alert stream.
 *  - *Tick windows* close on the health timer (sim-time on the
 *    simulator) and carry hot-path counter deltas: sharded-gate
 *    admit failures, trace/span drops, EBR reclamation lag, and the
 *    measured-vs-model memory-time sums. These feed
 *    `gate_saturation`, `drop_rate`, `ebr_lag` and `model_bound`.
 *    They are deterministic under sim time and best-effort live
 *    signals on the host, where the hot path runs free of the
 *    engine clock.
 *
 * Every detector runs through the same hysteresis: a rule fires
 * after `fire_windows` consecutive breaching windows and clears
 * after `clear_windows` consecutive healthy ones, so a single noisy
 * window can neither raise nor drop an alert — alerts cannot flap.
 * Fired/cleared edges land in a bounded ring (oldest evicted,
 * counted in alertsDropped()) that the engine exports as
 * Chrome-trace instant events, OpenMetrics gauges/counters
 * (`obs.alerts_active.<rule>`, `obs.alerts_fired.<rule>`), the
 * `ttstat --alerts` view and the `ttreport` health section.
 *
 * The class is not thread-safe; exec::Engine drives it under its
 * run mutex, off the lock-free fast path.
 */

#ifndef TT_OBS_HEALTH_HH
#define TT_OBS_HEALTH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tt::obs {

/** Alert severity; the numeric value is the wire encoding of the
 *  `obs.alerts_active.<rule>` gauge (0 = inactive). */
enum class AlertSeverity
{
    Warning = 1,
    Critical = 2,
};

/** Which edge of an alert an event records. */
enum class AlertEdge
{
    Fired,
    Cleared,
};

/** Stable lower-case name ("warning"/"critical"). */
const char *alertSeverityName(AlertSeverity severity);

/** Stable lower-case name ("fired"/"cleared"). */
const char *alertEdgeName(AlertEdge edge);

/** One fired/cleared edge of one detector rule. */
struct AlertEvent
{
    std::string rule; ///< stable rule id ("slo_burn", ...)
    AlertSeverity severity = AlertSeverity::Warning;
    AlertEdge edge = AlertEdge::Fired;

    /** Index of the window that completed the hysteresis streak,
     *  within the rule's own window domain (job or tick). */
    std::uint64_t window = 0;

    double observed = 0.0;  ///< detector signal at the edge window
    double threshold = 0.0; ///< configured trip level
    double time = 0.0;      ///< engine-clock seconds of the edge
};

/**
 * Detector configuration. Defaults are conservative enough that a
 * healthy closed-loop run emits no alerts; overload runs (deadline
 * storms, arrival bursts against a configured admission fit) trip
 * `slo_burn` within a few windows.
 */
struct HealthConfig
{
    bool enabled = false;

    /** Jobs per deterministic job window. */
    int window_jobs = 16;

    /** Seconds per hot-path tick window (sim-time on sim). */
    double tick_seconds = 0.01;

    /** Consecutive breaching windows before a rule fires. */
    int fire_windows = 2;

    /** Consecutive healthy windows before an active rule clears. */
    int clear_windows = 2;

    /** Fired/cleared edges retained; oldest evicted beyond this. */
    std::size_t alert_capacity = 1024;

    // -- slo_burn (job windows, critical) --------------------------
    bool slo_burn_enabled = true;
    /** SLO attainment target; the miss budget is 1 - target. */
    double attainment_target = 0.95;
    /** EWMA smoothing of the per-window burn rate. */
    double burn_fast_alpha = 0.5;
    double burn_slow_alpha = 0.1;
    /** Burn-rate trip levels (multiples of the miss budget); both
     *  windows must breach, page-style multiwindow burn alerting. */
    double burn_fast_threshold = 2.0;
    double burn_slow_threshold = 1.0;

    // -- queue_growth (job windows, warning) -----------------------
    bool queue_growth_enabled = true;
    /** Backlog must exceed this for growth to count. */
    long queue_growth_floor = 4;

    // -- gate_saturation (tick windows, warning) -------------------
    bool gate_saturation_enabled = true;
    /** Admit-failure share of gate folds that counts as saturated. */
    double gate_failure_ratio = 0.5;
    /** Ignore windows with fewer gate folds than this. */
    long gate_min_folds = 16;

    // -- drop_rate (tick windows, warning) -------------------------
    bool drop_rate_enabled = true;
    /** Dropped share of (records + drops) that breaches. */
    double drop_rate_threshold = 0.01;

    // -- ebr_lag (tick windows, warning) ---------------------------
    bool ebr_lag_enabled = true;
    /** Limbo depth that must persist with no epoch advance. */
    std::uint64_t ebr_pending_floor = 1;

    // -- model_bound (tick windows, critical) ----------------------
    bool model_bound_enabled = true;
    /** Measured memory time may exceed the Sec. IV-C prediction by
     *  this factor before the window breaches. */
    double model_bound_factor = 2.0;
    /** Fitted per-task memory service times (seconds). Zero tml
     *  disables the detector; the engine defaults these from the
     *  admission fit when one is configured. */
    double model_tml = 0.0;
    double model_tql = 0.0;
};

/** Deterministic admission-side window: every field is a function
 *  of the arrival plan and the admission model alone. */
struct JobWindowSample
{
    std::uint64_t window = 0; ///< job-window index (0-based)
    double time = 0.0;        ///< engine clock at window close
    int offered = 0;          ///< jobs offered in the window
    int shed = 0;             ///< jobs shed at admission
    int predicted_late = 0;   ///< admits with predicted miss
    long backlog = 0;         ///< model backlog at window close
};

/** Hot-path counter deltas for one tick window. */
struct TickWindowSample
{
    std::uint64_t window = 0; ///< tick-window index (0-based)
    double time = 0.0;        ///< engine clock at window close

    long gate_failures = 0; ///< sharded-gate rejects this window
    long gate_folds = 0;    ///< sharded-gate folds this window

    long trace_dropped = 0; ///< trace-ring drops this window
    long span_dropped = 0;  ///< span-buffer drops this window
    long records = 0;       ///< trace + span records this window

    std::uint64_t ebr_pending = 0;  ///< limbo depth at window close
    std::uint64_t ebr_advances = 0; ///< epoch advances this window

    int pair_samples = 0;    ///< completed pairs this window
    double sum_tm = 0.0;     ///< measured memory seconds
    double sum_bound = 0.0;  ///< model-predicted memory seconds
};

/**
 * The streaming detector set. Feed windows in order; read the edge
 * ring and per-rule states whenever convenient.
 */
class HealthEngine
{
  public:
    explicit HealthEngine(const HealthConfig &config);

    /** Evaluate the deterministic job-window detectors. */
    void onJobWindow(const JobWindowSample &sample);

    /** Evaluate the hot-path tick-window detectors. */
    void onTickWindow(const TickWindowSample &sample);

    /** Fired/cleared edges, oldest first (bounded ring). */
    const std::vector<AlertEvent> &alerts() const { return alerts_; }

    /** Edges evicted from the ring. */
    std::uint64_t alertsDropped() const { return alerts_dropped_; }

    /** True while any critical-severity rule is active. */
    bool criticalActive() const;

    /** Export view of one rule for metric publication. */
    struct RuleState
    {
        const char *rule = "";
        AlertSeverity severity = AlertSeverity::Warning;
        bool enabled = false;
        bool active = false;
        std::uint64_t fired = 0;
        std::uint64_t cleared = 0;
    };

    /** All rules, in a fixed order (disabled ones included so the
     *  metric schema is stable across configurations). */
    std::vector<RuleState> ruleStates() const;

    const HealthConfig &config() const { return config_; }

  private:
    struct Rule
    {
        const char *id = "";
        AlertSeverity severity = AlertSeverity::Warning;
        bool enabled = false;
        bool active = false;
        int breach_streak = 0;
        int healthy_streak = 0;
        std::uint64_t fired = 0;
        std::uint64_t cleared = 0;
    };

    /** Run one window through a rule's hysteresis, appending a
     *  fired/cleared edge when a streak completes. */
    void evaluate(Rule &rule, bool breach, std::uint64_t window,
                  double observed, double threshold, double time);

    void append(AlertEvent event);

    HealthConfig config_;

    Rule slo_burn_;
    Rule queue_growth_;
    Rule gate_saturation_;
    Rule drop_rate_;
    Rule ebr_lag_;
    Rule model_bound_;

    // slo_burn EWMA state
    double burn_fast_ = 0.0;
    double burn_slow_ = 0.0;
    bool burn_primed_ = false;

    // queue_growth state
    long prev_backlog_ = 0;
    bool have_prev_backlog_ = false;

    std::vector<AlertEvent> alerts_;
    std::uint64_t alerts_dropped_ = 0;
};

} // namespace tt::obs

#endif // TT_OBS_HEALTH_HH
