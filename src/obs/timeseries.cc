#include "obs/timeseries.hh"

#include <iomanip>

namespace tt::obs {

void
writeTimeseriesRow(const TimeseriesSample &sample, std::ostream &os)
{
    const auto flags = os.flags();
    os << std::setprecision(9) << std::fixed;
    os << "{\"t\":" << sample.time << ",\"mtl\":" << sample.mtl
       << ",\"mem_in_flight\":" << sample.mem_in_flight
       << ",\"tasks_done\":" << sample.tasks_done
       << ",\"pairs_done\":" << sample.pairs_done
       << ",\"ready_memory\":" << sample.ready_memory
       << ",\"ready_compute\":" << sample.ready_compute
       << ",\"selections\":" << sample.selections
       << ",\"degraded\":" << (sample.degraded ? "true" : "false")
       << ",\"queue_depth\":" << sample.queue_depth
       << ",\"backpressure\":" << sample.backpressure
       << "}\n";
    os.flags(flags);
}

} // namespace tt::obs
