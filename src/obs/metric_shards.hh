/**
 * @file
 * Per-worker shards of the hot-path runtime metrics.
 *
 * Every attempt completion publishes a handful of counters and
 * histogram observations (runtime.tm_seconds.*, response-time and
 * ready-depth distributions, ...). Routing those straight into the
 * shared MetricsRegistry serializes all workers on its one mutex —
 * exactly the convoy the lock-free engine fast path removes
 * elsewhere. ShardedMetrics gives each worker its own shard:
 * publications touch only worker-local state, and the shards are
 * folded into the registry at the window boundaries that already
 * exist (timeseries tick, live snapshot, drain).
 *
 * Each shard carries its own small mutex rather than per-name
 * atomics: the hot path is the *only* writer of its shard, so that
 * mutex is uncontended (an uncontended lock is one CAS — no convoy),
 * while still making the fold linearizable against a concurrent
 * sampler. Names stay dynamic (`runtime.tm_seconds.mtl=K` keys vary
 * with the MTL in effect), which per-name atomics cannot express.
 *
 * Folding is exact, not approximate: counters add, histograms merge
 * bucket-by-bucket (same geometry), so after any fold the registry
 * holds precisely the values it would have held had every
 * publication gone to it directly. Between folds the registry lags
 * by whatever the shards hold — the same staleness the timeseries
 * sampler already tolerates.
 */

#ifndef TT_OBS_METRIC_SHARDS_HH
#define TT_OBS_METRIC_SHARDS_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hh"

namespace tt::obs {

class ShardedMetrics
{
  public:
    /**
     * `shards` worker-local shards (clamped to >= 1) folding into
     * `sink`. The sink must outlive this object.
     */
    ShardedMetrics(MetricsRegistry &sink, std::size_t shards);

    ShardedMetrics(const ShardedMetrics &) = delete;
    ShardedMetrics &operator=(const ShardedMetrics &) = delete;

    /** Add `delta` to a counter in shard `shard`. */
    void add(std::size_t shard, const std::string &name,
             std::int64_t delta = 1);

    /** Record one histogram observation (default geometry). */
    void observe(std::size_t shard, const std::string &name,
                 double value);

    /** As observe(), with explicit geometry on first use. */
    void observe(std::size_t shard, const std::string &name,
                 double value, const Histogram::Options &options);

    /**
     * Fold every shard into the sink and reset the shards. Safe
     * concurrently with publications (each shard is swapped out
     * under its own mutex); call at window boundaries and drain.
     */
    void fold();

    std::size_t shards() const { return shards_.size(); }

  private:
    struct alignas(64) Shard
    {
        std::mutex mutex;
        std::map<std::string, std::int64_t> counters;
        std::map<std::string, Histogram> histograms;
    };

    MetricsRegistry &sink_;
    std::vector<Shard> shards_;
};

} // namespace tt::obs

#endif // TT_OBS_METRIC_SHARDS_HH
