/**
 * @file
 * Seeded open-loop arrival generation.
 *
 * Closed-loop runs execute a fixed task graph to completion; an
 * open-loop run instead offers work at a rate the system does not
 * control, which is where overload behavior lives. buildArrivalPlan()
 * expands an ArrivalConfig into an explicit, fully materialized list
 * of jobs -- arrival offset, relative deadline (SLO) and priority per
 * job -- so the exact same offered load can be replayed against the
 * host backend (wall-clock timers) and the sim backend (event-queue
 * timers). Determinism lives in the plan, not in the clock that
 * replays it.
 *
 * The fault plan can perturb a materialized plan deterministically:
 * an arrival-burst fault compresses inter-arrival gaps (a traffic
 * spike), a deadline-storm fault slashes SLOs (a latency-sensitive
 * tenant showing up mid-run). Both key off job index and seed, like
 * every other injected fault.
 */

#ifndef TT_LOAD_ARRIVAL_HH
#define TT_LOAD_ARRIVAL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tt::fault {
class FaultPlan;
}

namespace tt::load {

/** Shape of the offered-load process. */
enum class ArrivalProcess
{
    Poisson, ///< memoryless exponential inter-arrivals at `rate`
    Bursty,  ///< on/off modulated Poisson (spikes + quiet valleys)
    Diurnal, ///< rate replayed from a repeating relative profile
};

/** Stable lower-case name ("poisson"/"bursty"/"diurnal"). */
const char *arrivalProcessName(ArrivalProcess process);

/** Parse a process name; returns false on an unknown spelling. */
bool parseArrivalProcess(const char *name, ArrivalProcess &out);

/** Knobs for buildArrivalPlan(). */
struct ArrivalConfig
{
    std::uint64_t seed = 1;
    ArrivalProcess process = ArrivalProcess::Poisson;
    double rate = 1000.0; ///< mean offered load, jobs/second

    /// Bursty: the on fraction of each period runs at rate *
    /// burst_rate_factor, the rest at the complementary rate keeping
    /// the long-run mean at `rate`.
    double burst_period_seconds = 20e-3;
    double burst_fraction = 0.25;
    double burst_rate_factor = 3.0;

    /// Diurnal: relative rate multipliers replayed cyclically over
    /// diurnal_period_seconds (empty -> a default day-like profile).
    std::vector<double> diurnal_profile;
    double diurnal_period_seconds = 60e-3;

    double slo_seconds = 0.0; ///< relative deadline per job (0 = none)
    int priority_levels = 1;  ///< priorities drawn from [0, levels)
};

/** One offered job: pair `pair` of the program, arriving at a fixed
 *  offset from run start with a relative deadline. Higher priority
 *  values are more important (shed last). */
struct JobSpec
{
    int pair = 0;
    double arrival_seconds = 0.0;
    double slo_seconds = 0.0;
    int priority = 0;
};

/** Materialized offered load: one job per pair, ascending arrivals. */
struct ArrivalPlan
{
    ArrivalConfig config;
    std::vector<JobSpec> jobs;

    bool empty() const { return jobs.empty(); }
    std::size_t size() const { return jobs.size(); }
};

/**
 * Expand `config` into `pair_count` jobs (job k drives pair k).
 * Applying `faults` (optional) perturbs the plan deterministically:
 * burst-faulted jobs arrive with their inter-arrival gap divided by
 * the configured compression, storm-faulted jobs get their SLO
 * multiplied by the configured slash factor.
 */
ArrivalPlan buildArrivalPlan(const ArrivalConfig &config,
                             int pair_count,
                             const fault::FaultPlan *faults = nullptr);

} // namespace tt::load

#endif // TT_LOAD_ARRIVAL_HH
