#include "load/arrival.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "fault/fault_plan.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace tt::load {

namespace {

/** Instantaneous rate multiplier of the process at time `t`. */
double
rateMultiplier(const ArrivalConfig &config,
               const std::vector<double> &profile, double t)
{
    switch (config.process) {
      case ArrivalProcess::Poisson:
        return 1.0;
      case ArrivalProcess::Bursty: {
        const double period = config.burst_period_seconds;
        const double phase = t - std::floor(t / period) * period;
        const double on = config.burst_fraction;
        if (phase < on * period)
            return config.burst_rate_factor;
        // Complementary valley rate keeps the long-run mean at 1x
        // (clamped away from zero so arrivals never stall forever).
        const double valley =
            (1.0 - on * config.burst_rate_factor) / (1.0 - on);
        return std::max(valley, 0.05);
      }
      case ArrivalProcess::Diurnal: {
        const double period = config.diurnal_period_seconds;
        const double phase = t - std::floor(t / period) * period;
        const auto n = profile.size();
        const auto slot = std::min(
            n - 1, static_cast<std::size_t>(phase / period *
                                            static_cast<double>(n)));
        return profile[slot];
      }
    }
    return 1.0;
}

} // namespace

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson:
        return "poisson";
      case ArrivalProcess::Bursty:
        return "bursty";
      case ArrivalProcess::Diurnal:
        return "diurnal";
    }
    return "?";
}

bool
parseArrivalProcess(const char *name, ArrivalProcess &out)
{
    if (std::strcmp(name, "poisson") == 0)
        out = ArrivalProcess::Poisson;
    else if (std::strcmp(name, "bursty") == 0)
        out = ArrivalProcess::Bursty;
    else if (std::strcmp(name, "diurnal") == 0)
        out = ArrivalProcess::Diurnal;
    else
        return false;
    return true;
}

ArrivalPlan
buildArrivalPlan(const ArrivalConfig &config, int pair_count,
                 const fault::FaultPlan *faults)
{
    tt_assert(config.rate > 0.0, "arrival rate must be positive");
    tt_assert(pair_count >= 0, "negative pair count");
    tt_assert(config.priority_levels >= 1,
              "need at least one priority level");

    // Day-like default: quiet, ramp, peak, ramp-down.
    std::vector<double> profile = config.diurnal_profile;
    if (profile.empty())
        profile = {0.25, 0.5, 1.0, 2.0, 1.5, 0.75};
    for (const double m : profile)
        tt_assert(m > 0.0, "diurnal multipliers must be positive");

    ArrivalPlan plan;
    plan.config = config;
    plan.jobs.reserve(static_cast<std::size_t>(pair_count));

    Rng rng(config.seed);
    double t = 0.0;
    for (int k = 0; k < pair_count; ++k) {
        // Non-homogeneous Poisson via per-step local rate: sample an
        // exponential gap at the rate in force when the step begins.
        // Exact for Poisson; a close, fully deterministic
        // approximation for the modulated processes.
        const double local_rate =
            config.rate * rateMultiplier(config, profile, t);
        const double u = rng.nextDouble();
        double gap = -std::log(1.0 - u) / local_rate;

        JobSpec job;
        job.pair = k;
        job.slo_seconds = config.slo_seconds;
        job.priority =
            config.priority_levels > 1
                ? static_cast<int>(rng.nextBounded(
                      static_cast<std::uint64_t>(
                          config.priority_levels)))
                : 0;

        if (faults != nullptr) {
            const fault::JobFaults jf = faults->forJob(k);
            if (jf.burst)
                gap /= jf.burst_compression;
            if (jf.deadline_storm)
                job.slo_seconds *= jf.storm_slash;
        }

        t += gap;
        job.arrival_seconds = t;
        plan.jobs.push_back(job);
    }
    return plan;
}

} // namespace tt::load
