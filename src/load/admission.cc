#include "load/admission.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tt::load {

const char *
admissionDecisionName(AdmissionDecision decision)
{
    switch (decision) {
      case AdmissionDecision::Accept:
        return "accept";
      case AdmissionDecision::Delay:
        return "delay";
      case AdmissionDecision::Shed:
        return "shed";
    }
    return "?";
}

const char *
shedReasonName(ShedReason reason)
{
    switch (reason) {
      case ShedReason::None:
        return "none";
      case ShedReason::QueueFull:
        return "queue-full";
      case ShedReason::PredictedLate:
        return "predicted-late";
      case ShedReason::LowPriority:
        return "low-priority";
    }
    return "?";
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         int contexts)
    : config_(config)
{
    tt_assert(contexts >= 1, "need at least one context");
    if (config_.queue_cap <= 0)
        config_.queue_cap = 64;
    if (config_.delay_watermark <= 0)
        config_.delay_watermark = std::max(1, config_.queue_cap / 2);
    if (config_.accept_watermark <= 0)
        config_.accept_watermark = config_.queue_cap / 4;
    if (config_.hysteresis < 1)
        config_.hysteresis = 1;
    if (config_.servers <= 0)
        config_.servers = contexts;
    config_.shed_priority_floor =
        std::max(0, config_.shed_priority_floor);
    tt_assert(config_.accept_watermark <= config_.delay_watermark &&
                  config_.delay_watermark <= config_.queue_cap,
              "watermarks must satisfy accept <= delay <= cap");
    server_free_.assign(static_cast<std::size_t>(config_.servers),
                        0.0);
}

double
AdmissionController::predictedService(int backlog) const
{
    const int b = std::min(backlog + 1, config_.servers);
    return config_.service_tml +
           static_cast<double>(b) * config_.service_tql +
           config_.service_tc;
}

AdmissionOutcome
AdmissionController::onArrival(const JobSpec &job)
{
    const double t = job.arrival_seconds;
    while (!in_system_.empty() && in_system_.top() <= t)
        in_system_.pop();
    const int backlog = static_cast<int>(in_system_.size());

    // Hypothetical placement on the earliest-free virtual server.
    const auto free_slot =
        std::min_element(server_free_.begin(), server_free_.end());
    const double start = std::max(t, *free_slot);

    AdmissionOutcome out;
    out.backlog = backlog;
    out.predicted_response = start + predictedService(backlog) - t;

    // Recovery first: a calm arrival advances the hysteresis streak
    // even when the job itself is about to be priority-shed, so an
    // all-low-priority stream can still leave SHED once drained.
    if (state_ == BackpressureState::Shed) {
        if (backlog <= config_.accept_watermark) {
            if (++calm_streak_ >= config_.hysteresis) {
                state_ = BackpressureState::Accept;
                calm_streak_ = 0;
            }
        } else {
            calm_streak_ = 0;
        }
    }

    ShedReason shed = ShedReason::None;
    if (backlog >= config_.queue_cap)
        shed = ShedReason::QueueFull;
    else if (job.slo_seconds > 0.0 &&
             out.predicted_response > job.slo_seconds)
        shed = ShedReason::PredictedLate;
    else if (state_ == BackpressureState::Shed &&
             job.priority < config_.shed_priority_floor)
        shed = ShedReason::LowPriority;

    if (shed != ShedReason::None) {
        out.decision = AdmissionDecision::Shed;
        out.shed_reason = shed;
        // Queue overflow always declares overload; a predicted-late
        // shed does so only when the queue is already congested, so
        // one isolated tight-deadline job cannot flip the state.
        if (shed == ShedReason::QueueFull ||
            (shed == ShedReason::PredictedLate &&
             backlog >= config_.delay_watermark)) {
            state_ = BackpressureState::Shed;
            calm_streak_ = 0;
        }
        out.state = state_;
        return out;
    }

    // Admit: commit the placement to the virtual clock.
    const double finish = start + predictedService(backlog);
    *free_slot = finish;
    in_system_.push(finish);
    out.decision = backlog >= config_.delay_watermark
                       ? AdmissionDecision::Delay
                       : AdmissionDecision::Accept;
    if (state_ != BackpressureState::Shed)
        state_ = backlog >= config_.delay_watermark
                     ? BackpressureState::Delay
                     : BackpressureState::Accept;
    out.state = state_;
    return out;
}

} // namespace tt::load
