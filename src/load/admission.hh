/**
 * @file
 * Deterministic model-driven admission control.
 *
 * The controller decides, per arriving job, whether to ACCEPT it,
 * accept it with a DELAY warning, or SHED it. Crucially, decisions
 * are computed against a *virtual* finish clock -- a small queuing
 * model fed only by the arrival plan and the fitted service estimates
 * (the paper's T_mb = T_ml + b*T_ql decomposition, Sec. IV-C) --
 * never against live execution state. Real completions race with
 * arrivals differently on host wall-clock and sim time; the virtual
 * clock sees the same sequence on both, so a seeded overload scenario
 * sheds the exact same jobs on either backend.
 *
 * The model: `servers` parallel service slots (the expected MTL --
 * jobs beyond it queue), per-job service time tml + b*tql + tc where
 * b is the concurrency the job will run at. A job whose predicted
 * response exceeds its SLO is shed *early*, at admission, rather than
 * timing out after consuming resources ("predicted completion past
 * deadline => shed" from the issue; grounded in the slowdown
 * estimation of Subramanian et al.).
 *
 * Degraded mode: the state machine enters SHED on queue overflow or
 * a congested predicted-late shed and then admits only jobs at or
 * above `shed_priority_floor` (shed lowest-priority first). It exits
 * back to ACCEPT only after `hysteresis` consecutive arrivals observe
 * a calm backlog -- one quiet gap does not end an overload episode,
 * so the state cannot flap.
 */

#ifndef TT_LOAD_ADMISSION_HH
#define TT_LOAD_ADMISSION_HH

#include <queue>
#include <vector>

#include "core/audit.hh"
#include "load/arrival.hh"

namespace tt::load {

using core::BackpressureState;

/** Per-job verdict. Delay is an admit (the job runs) with the queue
 *  already past the delay watermark -- open-loop arrivals cannot be
 *  slowed down, so DELAY is a recorded warning, not a pause. */
enum class AdmissionDecision
{
    Accept,
    Delay,
    Shed,
};

/** Stable lower-case name ("accept"/"delay"/"shed"). */
const char *admissionDecisionName(AdmissionDecision decision);

/** Why a job was shed (None for admitted jobs). */
enum class ShedReason
{
    None,
    QueueFull,     ///< virtual backlog at queue_cap
    PredictedLate, ///< model predicts completion past the deadline
    LowPriority,   ///< SHED state and priority below the floor
};

/** Stable lower-case name for reports. */
const char *shedReasonName(ShedReason reason);

/** One admission verdict with the model inputs that drove it. */
struct AdmissionOutcome
{
    AdmissionDecision decision = AdmissionDecision::Accept;
    ShedReason shed_reason = ShedReason::None;
    BackpressureState state = BackpressureState::Accept; ///< after
    int backlog = 0; ///< virtual jobs in system at arrival (excl. this)
    double predicted_response = 0.0; ///< model response time, seconds
};

/** Admission knobs; non-positive fields resolve to defaults. */
struct AdmissionConfig
{
    int queue_cap = 64;       ///< virtual backlog bound; at cap -> shed
    int delay_watermark = 0;  ///< admit-as-DELAY above; default cap/2
    int accept_watermark = 0; ///< calm threshold; default cap/4
    int hysteresis = 4;       ///< calm arrivals required to leave SHED
    int servers = 0;          ///< model service slots; default contexts
    int shed_priority_floor = 1; ///< SHED admits priority >= floor

    /// Fitted per-job service estimates (seconds): memory latency
    /// alone, queuing increment per concurrent job, compute tail.
    /// All zero disables the predicted-late criterion; queue-cap and
    /// watermark backpressure still apply.
    double service_tml = 0.0;
    double service_tql = 0.0;
    double service_tc = 0.0;
};

/** Sequential, deterministic admission state machine. Feed it the
 *  jobs of one ArrivalPlan in arrival order. */
class AdmissionController
{
  public:
    /** `contexts` resolves the default server count. */
    AdmissionController(AdmissionConfig config, int contexts);

    /** Decide one arrival and advance the virtual clock. */
    AdmissionOutcome onArrival(const JobSpec &job);

    BackpressureState state() const { return state_; }
    const AdmissionConfig &config() const { return config_; }

    /** Model service time at concurrency min(backlog+1, servers). */
    double predictedService(int backlog) const;

  private:
    AdmissionConfig config_;
    BackpressureState state_ = BackpressureState::Accept;
    int calm_streak_ = 0;

    /// Virtual finish time of every job still in the model's system,
    /// as a min-heap so arrivals prune the departed cheaply.
    std::priority_queue<double, std::vector<double>,
                        std::greater<double>>
        in_system_;
    std::vector<double> server_free_; ///< per-slot next-free times
};

} // namespace tt::load

#endif // TT_LOAD_ADMISSION_HH
