#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace tt::sim {

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    tt_assert(when >= now_, "cannot schedule into the past (when=",
              when, ", now=", now_, ")");
    tt_assert(cb, "scheduling an empty callback");
    const EventId id = next_id_++;
    heap_.push(Entry{when, id, std::move(cb)});
    return id;
}

EventId
EventQueue::scheduleIn(Tick delta, Callback cb)
{
    return schedule(now_ + delta, std::move(cb));
}

void
EventQueue::deschedule(EventId id)
{
    cancelled_.insert(id);
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        Entry entry = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        auto cancelled = cancelled_.find(entry.id);
        if (cancelled != cancelled_.end()) {
            cancelled_.erase(cancelled);
            continue;
        }
        now_ = entry.when;
        ++executed_;
        entry.fn();
        return true;
    }
    return false;
}

void
EventQueue::run(std::uint64_t max_events)
{
    const std::uint64_t start = executed_;
    while (runOne()) {
        if (executed_ - start > max_events)
            tt_panic("event budget exhausted: simulation does not "
                     "terminate");
    }
}

} // namespace tt::sim
