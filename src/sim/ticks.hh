/**
 * @file
 * Simulated time base.
 *
 * Ticks are picoseconds, held in 64 bits: 2^64 ps is ~213 days of
 * simulated time, far beyond any run in this project, while still
 * resolving a 2.8 GHz core cycle (357 ps) exactly enough for the
 * timing models here.
 */

#ifndef TT_SIM_TICKS_HH
#define TT_SIM_TICKS_HH

#include <cstdint>

namespace tt::sim {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

inline constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;
inline constexpr Tick kTicksPerNs = 1'000ULL;

/** Convert ticks to (simulated) seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/** Convert nanoseconds to ticks (rounding to nearest). */
constexpr Tick
fromNs(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kTicksPerNs) + 0.5);
}

/** Ticks of one cycle of a clock at `ghz` gigahertz. */
constexpr Tick
cyclePeriod(double ghz)
{
    return static_cast<Tick>(1000.0 / ghz + 0.5); // ps per cycle
}

} // namespace tt::sim

#endif // TT_SIM_TICKS_HH
