/**
 * @file
 * Deterministic discrete-event queue.
 *
 * Events at the same tick execute in scheduling (FIFO) order, so a
 * simulation is exactly reproducible run to run. Cancellation is
 * lazy: descheduled events stay in the heap but are skipped when
 * popped.
 */

#ifndef TT_SIM_EVENT_QUEUE_HH
#define TT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/ticks.hh"

namespace tt::sim {

/** Handle to a scheduled event; usable for descheduling. */
using EventId = std::uint64_t;

/** Min-heap event queue driving the simulated machine. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule `cb` at absolute tick `when` (>= now). */
    EventId schedule(Tick when, Callback cb);

    /** Schedule `cb` `delta` ticks from now. */
    EventId scheduleIn(Tick delta, Callback cb);

    /** Cancel a pending event; no-op if already executed. */
    void deschedule(EventId id);

    /** True when no live events remain. */
    bool
    empty() const
    {
        return heap_.empty();
    }

    /**
     * Execute the earliest pending event; returns false when the
     * queue is empty.
     */
    bool runOne();

    /**
     * Run until the queue drains. `max_events` bounds runaway
     * simulations; exceeding it is a panic (a model bug, since all
     * models here terminate).
     */
    void run(std::uint64_t max_events = kDefaultEventBudget);

    /** Events executed so far. */
    std::uint64_t executed() const { return executed_; }

    static constexpr std::uint64_t kDefaultEventBudget =
        50'000'000'000ULL;

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        // Shared so heap swaps move a refcount, not the closure.
        mutable Callback fn;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return id > other.id; // FIFO among equal ticks
        }
    };

    Tick now_ = 0;
    EventId next_id_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap_;
    std::unordered_set<EventId> cancelled_;
};

} // namespace tt::sim

#endif // TT_SIM_EVENT_QUEUE_HH
