/**
 * @file
 * ttsim: command-line driver for the thread-throttling simulator.
 *
 * Runs one workload under one scheduling policy on one machine
 * configuration and prints the measurements; the one-stop tool for
 * exploring the design space outside the canned benches.
 *
 *   ttsim --workload synthetic --ratio 0.5 --policy dynamic
 *   ttsim --workload streamcluster --dim 36 --policy offline
 *   ttsim --workload sift --machine 2dimm-smt --policy static --mtl 2
 *   ttsim --workload dft --policy online --window 8 --trace
 *
 * Flags:
 *   --workload   synthetic | dft | streamcluster | sift |
 *                stencil | histogram                    [synthetic]
 *   --machine    1dimm | 2dimm | 2dimm-smt | power7       [1dimm]
 *   --policy     conventional | static | dynamic | online |
 *                offline                                  [dynamic]
 *   --mtl        static MTL value                         [1]
 *   --window     monitoring window W                      [16]
 *   --hysteresis IdleBound hysteresis (dynamic)           [0]
 *   --ratio      synthetic T_m1/T_c                       [0.5]
 *   --footprint-kb  synthetic per-task footprint          [512]
 *   --pairs      synthetic pair count                     [128]
 *   --dim        streamcluster input dimension            [128]
 *   --trace      print the full schedule trace
 *   --chrome-trace FILE  write the schedule as Chrome trace events
 *                        (load in chrome://tracing or Perfetto)
 *   --quiet      suppress the header
 */

#include <cstdio>
#include <string>

#include <fstream>

#include "core/dynamic_policy.hh"
#include "core/online_exhaustive_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "simrt/sim_runtime.hh"
#include "simrt/trace_export.hh"
#include "util/flags.hh"
#include "workloads/dft.hh"
#include "workloads/histogram.hh"
#include "workloads/sift.hh"
#include "workloads/stencil.hh"
#include "workloads/streamcluster.hh"
#include "workloads/synthetic.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workload synthetic|dft|streamcluster|sift|"
        "stencil|histogram]\n"
        "          [--machine 1dimm|2dimm|2dimm-smt|power7]\n"
        "          [--policy conventional|static|dynamic|online|"
        "offline]\n"
        "          [--mtl K] [--window W] [--hysteresis H]\n"
        "          [--ratio R] [--footprint-kb KB] [--pairs N]\n"
        "          [--dim D] [--trace] [--quiet]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    tt::Flags flags;
    if (!flags.parse(argc, argv) || flags.has("help")) {
        if (!flags.error().empty())
            std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    // Machine.
    const std::string machine_name =
        flags.getString("machine", "1dimm");
    tt::cpu::MachineConfig machine;
    if (machine_name == "1dimm") {
        machine = tt::cpu::MachineConfig::i7_860_1dimm();
    } else if (machine_name == "2dimm") {
        machine = tt::cpu::MachineConfig::i7_860_2dimm();
    } else if (machine_name == "2dimm-smt") {
        machine = tt::cpu::MachineConfig::i7_860_2dimm_smt();
    } else if (machine_name == "power7") {
        machine = tt::cpu::MachineConfig::power7();
    } else {
        std::fprintf(stderr, "unknown machine '%s'\n",
                     machine_name.c_str());
        return usage(argv[0]);
    }
    const int n = machine.contexts();

    // Workload.
    const std::string workload = flags.getString("workload", "synthetic");
    tt::stream::TaskGraph graph;
    if (workload == "synthetic") {
        tt::workloads::SyntheticParams params;
        params.tm1_over_tc = flags.getDouble("ratio", 0.5);
        params.footprint_bytes =
            static_cast<std::uint64_t>(
                flags.getInt("footprint-kb", 512)) *
            1024;
        params.pairs = static_cast<int>(flags.getInt("pairs", 128));
        graph = tt::workloads::buildSyntheticSim(machine, params);
    } else if (workload == "dft") {
        graph = tt::workloads::dftSim(machine);
    } else if (workload == "streamcluster") {
        graph = tt::workloads::streamclusterSim(
            machine, static_cast<int>(flags.getInt("dim", 128)));
    } else if (workload == "sift") {
        graph = tt::workloads::siftSim(machine);
    } else if (workload == "stencil") {
        tt::workloads::StencilParams params;
        graph = tt::workloads::stencilSim(machine, params);
    } else if (workload == "histogram") {
        tt::workloads::HistogramParams params;
        params.pairs = static_cast<int>(flags.getInt("pairs", 128));
        graph = tt::workloads::histogramSim(machine, params);
    } else {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload.c_str());
        return usage(argv[0]);
    }
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    // Policy.
    const std::string policy_name = flags.getString("policy", "dynamic");
    const int window = static_cast<int>(flags.getInt("window", 16));

    if (!flags.getBool("quiet")) {
        std::printf("machine %s (%d contexts, %d channel(s)), "
                    "workload %s (%d pairs, %d phase(s)), policy %s\n",
                    machine_name.c_str(), n, machine.mem.channels,
                    workload.c_str(), graph.pairCount(),
                    graph.phaseCount(), policy_name.c_str());
    }

    if (policy_name == "offline") {
        const auto search =
            tt::simrt::offlineExhaustiveSearch(machine, graph);
        for (std::size_t k = 0; k < search.seconds_per_mtl.size(); ++k)
            std::printf("MTL=%-2zu %10.3f ms%s\n", k + 1,
                        search.seconds_per_mtl[k] * 1e3,
                        static_cast<int>(k) + 1 == search.best_mtl
                            ? "  <-- best"
                            : "");
        return 0;
    }

    std::unique_ptr<tt::core::SchedulingPolicy> policy;
    if (policy_name == "conventional") {
        policy = std::make_unique<tt::core::ConventionalPolicy>(n);
    } else if (policy_name == "static") {
        policy = std::make_unique<tt::core::StaticMtlPolicy>(
            static_cast<int>(flags.getInt("mtl", 1)), n);
    } else if (policy_name == "dynamic") {
        auto dynamic =
            std::make_unique<tt::core::DynamicThrottlePolicy>(n, window);
        dynamic->setIdleBoundHysteresis(
            static_cast<int>(flags.getInt("hysteresis", 0)));
        policy = std::move(dynamic);
    } else if (policy_name == "online") {
        policy = std::make_unique<tt::core::OnlineExhaustivePolicy>(
            n, window);
    } else {
        std::fprintf(stderr, "unknown policy '%s'\n",
                     policy_name.c_str());
        return usage(argv[0]);
    }
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    const auto result = tt::simrt::runOnce(machine, graph, *policy);

    std::printf("makespan        %10.3f ms\n", result.seconds * 1e3);
    std::printf("avg T_m / T_c   %10.1f / %.1f us  (ratio %.2f%%)\n",
                result.avg_tm * 1e6, result.avg_tc * 1e6,
                100.0 * result.avg_tm / result.avg_tc);
    std::printf("DRAM accesses   %10llu  (bus utilisation %.1f%%)\n",
                static_cast<unsigned long long>(result.dram_accesses),
                result.bus_utilisation * 100.0);
    std::printf("peak mem tasks  %10d\n", result.peak_mem_in_flight);
    const int final_mtl =
        result.mtl_trace.empty() ? n : result.mtl_trace.back().second;
    std::printf("final MTL       %10d  (%ld selections, probe "
                "fraction %.2f%%)\n",
                final_mtl, result.policy_stats.selections,
                result.monitor_overhead * 100.0);

    const std::string chrome_path = flags.getString("chrome-trace", "");
    if (!chrome_path.empty()) {
        std::ofstream out(chrome_path);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         chrome_path.c_str());
            return 1;
        }
        tt::simrt::writeChromeTrace(graph, result, out);
        std::printf("chrome trace    %10s\n", chrome_path.c_str());
    }

    if (flags.getBool("trace")) {
        std::printf("\nschedule trace (task kind pair phase context "
                    "start_us end_us mtl):\n");
        for (const auto &entry : result.trace) {
            std::printf("%5d %s %5d %3d %3d %12.2f %12.2f %3d\n",
                        entry.task, entry.is_memory ? "M" : "C",
                        entry.pair, entry.phase, entry.context,
                        entry.start * 1e6, entry.end * 1e6,
                        entry.mtl_at_dispatch);
        }
    }
    return 0;
}
