/**
 * @file
 * ttsim: command-line driver for the thread-throttling simulator
 * and the real-thread host runtime.
 *
 * Runs one workload under one scheduling policy -- on a simulated
 * machine configuration, or with --host on a real std::thread worker
 * pool -- and prints the measurements; the one-stop tool for
 * exploring the design space outside the canned benches.
 *
 *   ttsim --workload synthetic --ratio 0.5 --policy dynamic
 *   ttsim --workload streamcluster --dim 36 --policy offline
 *   ttsim --workload sift --machine 2dimm-smt --policy static --mtl 2
 *   ttsim --workload dft --policy online --window 8 --trace
 *   ttsim --host --threads 4 --policy dynamic \
 *         --trace-out trace.json --metrics-out metrics.json
 *
 * Flags:
 *   --workload   synthetic | dft | streamcluster | sift |
 *                stencil | histogram                    [synthetic]
 *   --machine    1dimm | 2dimm | 2dimm-smt | power7       [1dimm]
 *   --policy     conventional | static | dynamic | online |
 *                offline                                  [dynamic]
 *   --mtl        static MTL value                         [1]
 *   --window     monitoring window W                      [16]
 *   --hysteresis IdleBound hysteresis (dynamic)           [0]
 *   --ratio      synthetic T_m1/T_c                       [0.5]
 *   --footprint-kb  synthetic per-task footprint          [512]
 *   --pairs      synthetic pair count                     [128]
 *   --dim        streamcluster input dimension            [128]
 *   --host       run on real threads (synthetic workload only)
 *   --threads    host worker threads                      [4]
 *   --count      host compute-loop repetitions per task   [8]
 *   --no-pin     host mode: skip CPU-affinity pinning
 *   --trace      print the full schedule trace (sim only)
 *   --trace-out FILE    write the schedule as Chrome trace events
 *                       (load in chrome://tracing or Perfetto);
 *                       --chrome-trace is an alias
 *   --metrics-out FILE  write the run's metrics registry as JSON
 *   --metrics-summary   print the metrics registry as a table
 *   --health            enable the streaming health detectors
 *                       (obs/health.hh): alert edges land in the
 *                       Chrome trace and obs.alerts_* metrics, and
 *                       a one-line summary prints after the run
 *   --perf-counters     attach hardware counters to every task
 *                       attempt (perf_event_open with --host,
 *                       synthesized from the memory model otherwise)
 *                       and print the run aggregates; if the host
 *                       denies perf access the run degrades to the
 *                       null provider, sets runtime.perf_unavailable
 *                       and still exits 0
 *   --timeseries-out FILE     write periodic run snapshots as JSONL
 *                             (one row per sampling interval; sim
 *                             time in the simulator, wall time with
 *                             --host -- see obs/timeseries.hh)
 *   --timeseries-interval-us US  sampling interval           [100]
 *   --live-metrics PATH  expose the metrics registry live, in
 *                        OpenMetrics text format, while the run is
 *                        in flight: with --host a Unix-domain socket
 *                        at PATH served by a background thread (each
 *                        connection gets one snapshot); on the
 *                        simulator a file at PATH rewritten at each
 *                        simulated interval. Poll either with ttstat.
 *   --live-interval-us US  sim snapshot interval          [100000]
 *   --quiet      suppress the header
 *
 * Open-loop arrivals (robustness extension; see load/arrival.hh and
 * docs/robustness.md). With --arrival-rate the run becomes open-loop:
 * a seeded generator injects the workload's job pairs at its own pace
 * -- deterministic simulated offsets in the simulator, wall-clock
 * timers with --host -- through bounded admission with
 * ACCEPT/DELAY/SHED backpressure. Requires a single-phase workload.
 *   --arrival-rate R      mean offered load, jobs/second       [off]
 *   --arrival-process     poisson | bursty | diurnal       [poisson]
 *   --arrival-seed S      arrival generator seed                 [1]
 *   --slo-us US           per-job relative deadline, 0 = none    [0]
 *   --queue-cap N         admission backlog bound               [64]
 *   --priority-levels L   job priority classes (SHED keeps the
 *                         highest class only)                    [1]
 *   --service-us US       fitted T_ml for the admission
 *                         predictor T = T_ml + b*T_ql (take both
 *                         from a ttreport queue fit); 0 disables
 *                         predicted-late shedding                [0]
 *   --service-tql-us US   fitted T_ql                            [0]
 *   --slo-fail-threshold F  exit 5 when the run completes but
 *                         SLO attainment lands below F         [off]
 *
 * Fault injection (see fault/fault_plan.hh; applies to --host and
 * the simulator alike, with identical seeded decisions):
 *   --inject-seed S       fault plan seed                    [0]
 *   --inject-fail-p P     task-body exception probability    [0]
 *   --inject-straggler P  straggler probability              [0]
 *   --inject-straggler-x F  straggler latency multiplier     [4]
 *   --inject-corrupt-p P  sample-corruption probability      [0]
 *   --inject-stall-p P    worker-stall probability           [0]
 *   --inject-stall-ms MS  stall duration                     [50]
 *   --inject-arrival-burst P   probability a job's arrival gap is
 *                              compressed 8x (open-loop only) [0]
 *   --inject-deadline-storm P  probability a job's SLO is
 *                              slashed to 25% (open-loop)     [0]
 *   --max-retries N       attempts beyond the first          [3]
 *   --watchdog-ms MS      run deadline, 0 = off (wall time with
 *                         --host; simulated time otherwise)  [0]
 *
 * Exit codes: 0 success; 1 output file could not be written;
 * 2 usage error; 3 watchdog deadline exceeded (run wedged);
 * 4 a task failed after exhausting its retries; 5 the run completed
 * but SLO attainment fell below --slo-fail-threshold.
 */

#include <cstdio>
#include <string>

#include <fstream>
#include <memory>
#include <optional>

#include "core/dynamic_policy.hh"
#include "fault/fault_plan.hh"
#include "load/arrival.hh"
#include "core/online_exhaustive_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "obs/analyzer.hh"
#include "obs/chrome_trace.hh"
#include "obs/live.hh"
#include "obs/perf/counters.hh"
#include "obs/perf/perf_event_provider.hh"
#include "obs/perf/sim_counter_provider.hh"
#include "runtime/runtime.hh"
#include "simrt/sim_runtime.hh"
#include "util/flags.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "workloads/dft.hh"
#include "workloads/histogram.hh"
#include "workloads/sift.hh"
#include "workloads/stencil.hh"
#include "workloads/streamcluster.hh"
#include "workloads/synthetic.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workload synthetic|dft|streamcluster|sift|"
        "stencil|histogram]\n"
        "          [--machine 1dimm|2dimm|2dimm-smt|power7]\n"
        "          [--policy conventional|static|dynamic|online|"
        "offline]\n"
        "          [--mtl K] [--window W] [--hysteresis H]\n"
        "          [--ratio R] [--footprint-kb KB] [--pairs N]\n"
        "          [--dim D] [--host] [--threads T] [--count C]\n"
        "          [--no-pin] [--trace] [--trace-out FILE]\n"
        "          [--metrics-out FILE] [--metrics-summary]\n"
        "          [--health]\n"
        "          [--perf-counters] [--quiet]\n"
        "          [--timeseries-out FILE] "
        "[--timeseries-interval-us US]\n"
        "          [--live-metrics PATH] [--live-interval-us US]\n"
        "          [--arrival-rate R] "
        "[--arrival-process poisson|bursty|diurnal]\n"
        "          [--arrival-seed S] [--slo-us US] [--queue-cap N]\n"
        "          [--priority-levels L] [--service-us US]\n"
        "          [--service-tql-us US] [--slo-fail-threshold F]\n"
        "          [--inject-seed S] [--inject-fail-p P]\n"
        "          [--inject-straggler P] [--inject-straggler-x F]\n"
        "          [--inject-corrupt-p P] [--inject-stall-p P]\n"
        "          [--inject-stall-ms MS] [--inject-arrival-burst P]\n"
        "          [--inject-deadline-storm P] [--max-retries N]\n"
        "          [--watchdog-ms MS]\n"
        "exit codes: 0 ok, 1 output write failed, 2 usage,\n"
        "            3 watchdog fired, 4 task failed after retries,\n"
        "            5 SLO attainment below --slo-fail-threshold\n",
        argv0);
    return 2;
}

/** Write the trace JSON; returns false (with a message) on failure. */
bool
writeTraceFile(const std::string &path, const tt::obs::TraceData &data)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     path.c_str());
        return false;
    }
    tt::obs::writeChromeTrace(data, out);
    // Write errors (full disk, dead pipe, revoked permissions) only
    // surface on the stream state, not the open -- check after the
    // flush or the file is silently truncated.
    out.flush();
    if (!out) {
        std::fprintf(stderr, "writing '%s' failed (disk full?)\n",
                     path.c_str());
        return false;
    }
    std::printf("chrome trace    %10s\n", path.c_str());
    return true;
}

bool
writeMetricsFile(const std::string &path,
                 const tt::MetricsRegistry &metrics)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n",
                     path.c_str());
        return false;
    }
    metrics.writeJson(out);
    out.flush();
    if (!out) {
        std::fprintf(stderr, "writing '%s' failed (disk full?)\n",
                     path.c_str());
        return false;
    }
    std::printf("metrics json    %10s\n", path.c_str());
    return true;
}

/** Print the run's aggregate hardware-counter line(s). */
void
printCounterSummary(const tt::exec::RunResult &result)
{
    if (!result.has_counters) {
        std::printf("hw counters     unavailable (ran with the null "
                    "provider; see runtime.perf_unavailable)\n");
        return;
    }
    const auto &c = result.counters;
    std::printf("llc misses      %10llu  (%.2f MPKI)\n",
                static_cast<unsigned long long>(c.llc_misses),
                c.instructions > 0
                    ? 1e3 * static_cast<double>(c.llc_misses) /
                          static_cast<double>(c.instructions)
                    : 0.0);
    std::printf("stalled cycles  %10llu  (%.1f%% of %llu cycles, "
                "%.1f stalls/miss)\n",
                static_cast<unsigned long long>(c.stalled_cycles),
                c.cycles > 0 ? 100.0 *
                                   static_cast<double>(c.stalled_cycles) /
                                   static_cast<double>(c.cycles)
                             : 0.0,
                static_cast<unsigned long long>(c.cycles),
                c.llc_misses > 0
                    ? static_cast<double>(c.stalled_cycles) /
                          static_cast<double>(c.llc_misses)
                    : 0.0);
}

/** True when `p` is a probability; complains otherwise. */
bool
checkProbability(const char *flag, double p)
{
    if (p >= 0.0 && p <= 1.0)
        return true;
    std::fprintf(stderr, "--%s must be in [0, 1], got %g\n", flag, p);
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    tt::Flags flags;
    static const std::vector<std::string> known_flags = {
        "help",           "workload",       "machine",
        "policy",         "mtl",            "window",
        "hysteresis",     "ratio",          "footprint-kb",
        "pairs",          "dim",            "host",
        "threads",        "count",          "no-pin",
        "trace",          "trace-out",      "chrome-trace",
        "metrics-out",    "metrics-summary", "perf-counters",
        "quiet",          "health",
        "timeseries-out", "timeseries-interval-us",
        "live-metrics",   "live-interval-us",
        "inject-seed",    "inject-fail-p",  "inject-straggler",
        "inject-straggler-x", "inject-corrupt-p", "inject-stall-p",
        "inject-stall-ms", "max-retries",   "watchdog-ms",
        "arrival-rate",   "arrival-process", "arrival-seed",
        "slo-us",         "queue-cap",      "priority-levels",
        "service-us",     "service-tql-us", "slo-fail-threshold",
        "inject-arrival-burst", "inject-deadline-storm",
    };
    if (!flags.parse(argc, argv) || !flags.allowOnly(known_flags) ||
        flags.has("help")) {
        if (!flags.error().empty())
            std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    const bool host_mode = flags.getBool("host");

    // Machine (ignored in --host mode, where the host's threads are
    // the hardware contexts).
    const std::string machine_name =
        flags.getString("machine", "1dimm");
    tt::cpu::MachineConfig machine;
    if (machine_name == "1dimm") {
        machine = tt::cpu::MachineConfig::i7_860_1dimm();
    } else if (machine_name == "2dimm") {
        machine = tt::cpu::MachineConfig::i7_860_2dimm();
    } else if (machine_name == "2dimm-smt") {
        machine = tt::cpu::MachineConfig::i7_860_2dimm_smt();
    } else if (machine_name == "power7") {
        machine = tt::cpu::MachineConfig::power7();
    } else {
        std::fprintf(stderr, "unknown machine '%s'\n",
                     machine_name.c_str());
        return usage(argv[0]);
    }
    const int threads = static_cast<int>(flags.getInt("threads", 4));
    if (host_mode && threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return usage(argv[0]);
    }
    const int n = host_mode ? threads : machine.contexts();

    // Workload.
    const std::string workload = flags.getString("workload", "synthetic");
    tt::stream::TaskGraph graph;
    tt::workloads::HostSynthetic host_workload; // owns host arrays
    if (workload == "synthetic") {
        tt::workloads::SyntheticParams params;
        params.tm1_over_tc = flags.getDouble("ratio", 0.5);
        params.footprint_bytes =
            static_cast<std::uint64_t>(
                flags.getInt("footprint-kb", 512)) *
            1024;
        params.pairs = static_cast<int>(flags.getInt("pairs", 128));
        if (host_mode) {
            host_workload = tt::workloads::buildSyntheticHost(
                params, static_cast<int>(flags.getInt("count", 8)));
            graph = host_workload.graph;
        } else {
            graph = tt::workloads::buildSyntheticSim(machine, params);
        }
    } else if (host_mode) {
        std::fprintf(stderr,
                     "--host supports only the synthetic workload "
                     "(the others carry sim descriptors only)\n");
        return usage(argv[0]);
    } else if (workload == "dft") {
        graph = tt::workloads::dftSim(machine);
    } else if (workload == "streamcluster") {
        graph = tt::workloads::streamclusterSim(
            machine, static_cast<int>(flags.getInt("dim", 128)));
    } else if (workload == "sift") {
        graph = tt::workloads::siftSim(machine);
    } else if (workload == "stencil") {
        tt::workloads::StencilParams params;
        graph = tt::workloads::stencilSim(machine, params);
    } else if (workload == "histogram") {
        tt::workloads::HistogramParams params;
        params.pairs = static_cast<int>(flags.getInt("pairs", 128));
        graph = tt::workloads::histogramSim(machine, params);
    } else {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload.c_str());
        return usage(argv[0]);
    }
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    // Policy.
    const std::string policy_name = flags.getString("policy", "dynamic");
    const int window = static_cast<int>(flags.getInt("window", 16));

    if (!flags.getBool("quiet")) {
        if (host_mode) {
            std::printf("host threads %d, workload %s (%d pairs, "
                        "%d phase(s)), policy %s\n",
                        n, workload.c_str(), graph.pairCount(),
                        graph.phaseCount(), policy_name.c_str());
        } else {
            std::printf("machine %s (%d contexts, %d channel(s)), "
                        "workload %s (%d pairs, %d phase(s)), "
                        "policy %s\n",
                        machine_name.c_str(), n, machine.mem.channels,
                        workload.c_str(), graph.pairCount(),
                        graph.phaseCount(), policy_name.c_str());
        }
    }

    if (policy_name == "offline") {
        if (host_mode) {
            std::fprintf(stderr,
                         "--policy offline is simulator-only\n");
            return usage(argv[0]);
        }
        const auto search =
            tt::simrt::offlineExhaustiveSearch(machine, graph);
        for (std::size_t k = 0; k < search.seconds_per_mtl.size(); ++k)
            std::printf("MTL=%-2zu %10.3f ms%s\n", k + 1,
                        search.seconds_per_mtl[k] * 1e3,
                        static_cast<int>(k) + 1 == search.best_mtl
                            ? "  <-- best"
                            : "");
        return 0;
    }

    std::unique_ptr<tt::core::SchedulingPolicy> policy;
    tt::core::DynamicThrottlePolicy *dynamic_policy = nullptr;
    if (policy_name == "conventional") {
        policy = std::make_unique<tt::core::ConventionalPolicy>(n);
    } else if (policy_name == "static") {
        policy = std::make_unique<tt::core::StaticMtlPolicy>(
            static_cast<int>(flags.getInt("mtl", 1)), n);
    } else if (policy_name == "dynamic") {
        auto dynamic =
            std::make_unique<tt::core::DynamicThrottlePolicy>(n, window);
        dynamic->setIdleBoundHysteresis(
            static_cast<int>(flags.getInt("hysteresis", 0)));
        dynamic_policy = dynamic.get();
        policy = std::move(dynamic);
    } else if (policy_name == "online") {
        policy = std::make_unique<tt::core::OnlineExhaustivePolicy>(
            n, window);
    } else {
        std::fprintf(stderr, "unknown policy '%s'\n",
                     policy_name.c_str());
        return usage(argv[0]);
    }
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    // Fault injection.
    tt::fault::FaultConfig fault_config;
    fault_config.seed =
        static_cast<std::uint64_t>(flags.getInt("inject-seed", 0));
    fault_config.fail_p = flags.getDouble("inject-fail-p", 0.0);
    fault_config.straggler_p = flags.getDouble("inject-straggler", 0.0);
    fault_config.straggler_factor =
        flags.getDouble("inject-straggler-x", 4.0);
    fault_config.corrupt_p = flags.getDouble("inject-corrupt-p", 0.0);
    fault_config.stall_p = flags.getDouble("inject-stall-p", 0.0);
    fault_config.stall_seconds =
        flags.getDouble("inject-stall-ms", 50.0) * 1e-3;
    fault_config.arrival_burst_p =
        flags.getDouble("inject-arrival-burst", 0.0);
    fault_config.deadline_storm_p =
        flags.getDouble("inject-deadline-storm", 0.0);
    const int max_retries =
        static_cast<int>(flags.getInt("max-retries", 3));
    const double watchdog_seconds =
        flags.getDouble("watchdog-ms", 0.0) * 1e-3;
    if (!checkProbability("inject-fail-p", fault_config.fail_p) ||
        !checkProbability("inject-straggler",
                          fault_config.straggler_p) ||
        !checkProbability("inject-corrupt-p", fault_config.corrupt_p) ||
        !checkProbability("inject-stall-p", fault_config.stall_p) ||
        !checkProbability("inject-arrival-burst",
                          fault_config.arrival_burst_p) ||
        !checkProbability("inject-deadline-storm",
                          fault_config.deadline_storm_p))
        return 2;
    if (fault_config.straggler_factor < 1.0 ||
        fault_config.stall_seconds < 0.0 || max_retries < 0 ||
        watchdog_seconds < 0.0) {
        std::fprintf(stderr, "fault/watchdog parameters out of range\n");
        return 2;
    }
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }
    std::optional<tt::fault::FaultPlan> fault_plan;
    if (fault_config.enabled() || fault_config.jobFaultsEnabled()) {
        fault_plan.emplace(fault_config);
        if (!flags.getBool("quiet"))
            std::printf("injecting: seed %llu, fail %.3f, straggler "
                        "%.3f x%.1f, corrupt %.3f, stall %.3f "
                        "(%.0f ms)\n",
                        static_cast<unsigned long long>(
                            fault_config.seed),
                        fault_config.fail_p, fault_config.straggler_p,
                        fault_config.straggler_factor,
                        fault_config.corrupt_p, fault_config.stall_p,
                        fault_config.stall_seconds * 1e3);
    }

    // Open-loop arrivals + bounded admission.
    const double arrival_rate = flags.getDouble("arrival-rate", 0.0);
    const double slo_fail_threshold =
        flags.getDouble("slo-fail-threshold", -1.0);
    std::optional<tt::load::ArrivalPlan> arrival_plan;
    tt::load::AdmissionConfig admission;
    if (arrival_rate < 0.0) {
        std::fprintf(stderr, "--arrival-rate must be > 0\n");
        return 2;
    }
    if (slo_fail_threshold > 1.0) {
        std::fprintf(stderr,
                     "--slo-fail-threshold must be in [0, 1]\n");
        return 2;
    }
    if (arrival_rate > 0.0) {
        if (graph.phaseCount() != 1) {
            std::fprintf(stderr,
                         "open-loop arrivals require a single-phase "
                         "workload (got %d phases)\n",
                         graph.phaseCount());
            return 2;
        }
        tt::load::ArrivalConfig arrivals;
        arrivals.seed = static_cast<std::uint64_t>(
            flags.getInt("arrival-seed", 1));
        arrivals.rate = arrival_rate;
        const std::string process_name =
            flags.getString("arrival-process", "poisson");
        if (!tt::load::parseArrivalProcess(process_name.c_str(),
                                           arrivals.process)) {
            std::fprintf(stderr, "unknown arrival process '%s'\n",
                         process_name.c_str());
            return usage(argv[0]);
        }
        arrivals.slo_seconds = flags.getDouble("slo-us", 0.0) * 1e-6;
        arrivals.priority_levels =
            static_cast<int>(flags.getInt("priority-levels", 1));
        admission.queue_cap =
            static_cast<int>(flags.getInt("queue-cap", 64));
        admission.service_tml =
            flags.getDouble("service-us", 0.0) * 1e-6;
        admission.service_tql =
            flags.getDouble("service-tql-us", 0.0) * 1e-6;
        if (!flags.error().empty()) {
            std::fprintf(stderr, "error: %s\n",
                         flags.error().c_str());
            return usage(argv[0]);
        }
        if (arrivals.slo_seconds < 0.0 ||
            arrivals.priority_levels < 1 || admission.queue_cap < 1 ||
            admission.service_tml < 0.0 ||
            admission.service_tql < 0.0) {
            std::fprintf(stderr,
                         "open-loop parameters out of range\n");
            return 2;
        }
        arrival_plan.emplace(tt::load::buildArrivalPlan(
            arrivals, graph.pairCount(),
            fault_plan ? &*fault_plan : nullptr));
        // Under backpressure the dynamic policy pins the last
        // selected MTL instead of probing through the overload.
        if (dynamic_policy != nullptr)
            dynamic_policy->setSloAware();
        if (!flags.getBool("quiet"))
            std::printf("open loop: %s arrivals at %.0f jobs/s, "
                        "SLO %.0f us, queue cap %d\n",
                        tt::load::arrivalProcessName(arrivals.process),
                        arrivals.rate, arrivals.slo_seconds * 1e6,
                        admission.queue_cap);
    }

    tt::MetricsRegistry metrics;
    policy->bindMetrics(&metrics);

    const std::string trace_path = flags.getString(
        "trace-out", flags.getString("chrome-trace", ""));
    const std::string metrics_path = flags.getString("metrics-out", "");
    const std::string timeseries_path =
        flags.getString("timeseries-out", "");
    const double timeseries_interval =
        flags.getDouble("timeseries-interval-us", 100.0) * 1e-6;
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }
    if (!timeseries_path.empty() && timeseries_interval <= 0.0) {
        std::fprintf(stderr,
                     "--timeseries-interval-us must be > 0\n");
        return 2;
    }
    const std::string live_path = flags.getString("live-metrics", "");
    const double live_interval =
        flags.getDouble("live-interval-us", 100000.0) * 1e-6;
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }
    if (!live_path.empty() && live_interval <= 0.0) {
        std::fprintf(stderr, "--live-interval-us must be > 0\n");
        return 2;
    }
    std::ofstream timeseries_out;
    if (!timeseries_path.empty()) {
        timeseries_out.open(timeseries_path);
        if (!timeseries_out) {
            std::fprintf(stderr, "cannot open '%s' for writing\n",
                         timeseries_path.c_str());
            return 1;
        }
    }
    // Flush + error-check the JSONL stream once the run is over.
    const auto finishTimeseries = [&]() -> bool {
        if (timeseries_path.empty())
            return true;
        timeseries_out.flush();
        if (!timeseries_out) {
            std::fprintf(stderr, "writing '%s' failed (disk full?)\n",
                         timeseries_path.c_str());
            return false;
        }
        std::printf("timeseries      %10s\n", timeseries_path.c_str());
        return true;
    };

    // Open-loop admission/SLO summary, shared by both backends.
    const auto printOpenLoopSummary =
        [&](const tt::exec::RunResult &result) {
            if (!arrival_plan)
                return;
            std::printf("jobs offered    %10ld  (admitted %ld, "
                        "delayed %ld, shed %ld, missed %ld)\n",
                        result.jobs_offered, result.jobs_admitted,
                        result.jobs_delayed, result.jobs_shed,
                        result.jobs_deadline_missed);
            const tt::obs::DistSummary response =
                tt::obs::summarize(result.response_seconds);
            std::printf("response time   %10.1f us p50  (p95 %.1f, "
                        "p99 %.1f)\n",
                        response.p50 * 1e6, response.p95 * 1e6,
                        response.p99 * 1e6);
            std::printf("slo attainment  %9.1f%%\n",
                        result.slo_attainment * 100.0);
        };
    // Health-alert summary, shared by both backends.
    const auto printHealthSummary =
        [&](const tt::exec::RunResult &result) {
            if (!result.health_enabled)
                return;
            std::uint64_t fired = 0;
            std::uint64_t critical = 0;
            for (const tt::obs::AlertEvent &alert : result.alerts)
                if (alert.edge == tt::obs::AlertEdge::Fired) {
                    ++fired;
                    if (alert.severity ==
                        tt::obs::AlertSeverity::Critical)
                        ++critical;
                }
            std::printf("health alerts   %10llu  (%llu critical, "
                        "%llu dropped)\n",
                        static_cast<unsigned long long>(fired),
                        static_cast<unsigned long long>(critical),
                        static_cast<unsigned long long>(
                            result.alerts_dropped));
            if (result.critical_alert_active)
                std::fprintf(stderr,
                             "warning: a critical health alert was "
                             "still active when the run drained; see "
                             "obs.alerts_active.* in the metrics\n");
        };

    // Exit-5 gate: completed, but attainment under the threshold.
    const auto sloFailed = [&](const tt::exec::RunResult &result) {
        if (!arrival_plan || slo_fail_threshold < 0.0 ||
            result.slo_attainment >= slo_fail_threshold)
            return false;
        std::fprintf(stderr,
                     "SLO attainment %.3f below threshold %.3f\n",
                     result.slo_attainment, slo_fail_threshold);
        return true;
    };

    // On abnormal termination (watchdog, tt_assert) still leave the
    // metrics JSON behind for post-mortems; the hooks run before the
    // process exits.
    int metrics_hook = -1;
    if (!metrics_path.empty())
        metrics_hook = tt::registerCrashDumpHook([&metrics,
                                                  metrics_path] {
            std::ofstream out(metrics_path);
            if (out)
                metrics.writeJson(out);
        });
    (void)metrics_hook;

    const bool perf_counters = flags.getBool("perf-counters");

    if (host_mode) {
        tt::runtime::RuntimeOptions options;
        options.threads = n;
        options.pin_affinity = !flags.getBool("no-pin");
        options.metrics = &metrics;
        // Falls back to the null provider (with one warning) when the
        // kernel denies perf access; the run itself is unaffected.
        std::unique_ptr<tt::obs::perf::CounterProvider> host_counters;
        if (perf_counters) {
            host_counters = tt::obs::perf::makeHostCounterProvider();
            options.counters = host_counters.get();
        }
        options.fault_plan = fault_plan ? &*fault_plan : nullptr;
        options.arrival_plan = arrival_plan ? &*arrival_plan : nullptr;
        options.admission = admission;
        options.max_task_retries = max_retries;
        options.watchdog_seconds = watchdog_seconds;
        options.health.enabled = flags.getBool("health");
        if (!timeseries_path.empty()) {
            options.timeseries_out = &timeseries_out;
            options.timeseries_interval_seconds = timeseries_interval;
        }
        // Live OpenMetrics endpoint: a background thread serving one
        // snapshot per connection while the workers run. Losing the
        // endpoint is an observability degradation, not a run
        // failure.
        std::optional<tt::obs::LiveMetricsServer> live_server;
        if (!live_path.empty()) {
            live_server.emplace(live_path, metrics);
            if (!live_server->start()) {
                std::fprintf(stderr,
                             "warning: live metrics endpoint '%s' "
                             "unavailable: %s\n",
                             live_path.c_str(),
                             live_server->error().c_str());
                live_server.reset();
            } else if (!flags.getBool("quiet")) {
                std::printf("live metrics: unix socket %s (poll with "
                            "ttstat)\n",
                            live_path.c_str());
            }
        }
        tt::runtime::Runtime runtime(graph, *policy, options);
        const auto result = runtime.run();
        if (live_server)
            live_server->stop();

        if (result.task_retries > 0 || result.task_failures > 0)
            std::printf("task retries    %10ld  (%ld gave up)\n",
                        result.task_retries, result.task_failures);
        if (result.failed) {
            std::fprintf(stderr, "run failed: %s\n",
                         result.failure_reason.c_str());
            if (!metrics_path.empty())
                writeMetricsFile(metrics_path, metrics);
            return 4;
        }

        std::printf("makespan        %10.3f ms\n",
                    result.seconds * 1e3);
        std::printf("avg T_m / T_c   %10.1f / %.1f us\n",
                    result.avg_tm * 1e6, result.avg_tc * 1e6);
        std::printf("peak mem tasks  %10d\n",
                    result.peak_mem_in_flight);
        if (perf_counters)
            printCounterSummary(result);
        if (result.pin_failures > 0)
            std::printf("pin failures    %10ld  (workers ran "
                        "unpinned)\n",
                        result.pin_failures);
        const int final_mtl = result.mtl_trace.empty()
                                  ? n
                                  : result.mtl_trace.back().second;
        std::printf("final MTL       %10d  (%ld selections, probe "
                    "fraction %.2f%%, %ld stale pairs)\n",
                    final_mtl, result.policy_stats.selections,
                    result.monitor_overhead * 100.0,
                    result.policy_stats.stale_pairs);
        std::printf("trace events    %10zu  (%llu dropped)\n",
                    result.trace.size(),
                    static_cast<unsigned long long>(
                        result.trace_dropped));
        if (result.trace_dropped > 0)
            std::fprintf(stderr,
                         "warning: %llu trace events dropped (ring "
                         "full) -- attribution reports will be "
                         "incomplete; see trace.events_dropped\n",
                         static_cast<unsigned long long>(
                             result.trace_dropped));
        if (result.spans_dropped > 0)
            std::fprintf(stderr,
                         "warning: %llu job spans dropped (span "
                         "buffer full) -- critical-path attribution "
                         "will be incomplete; see obs.spans_dropped\n",
                         static_cast<unsigned long long>(
                             result.spans_dropped));
        if (result.timeseries_skipped > 0)
            std::fprintf(stderr,
                         "warning: %lld time-series rows skipped "
                         "(sampler found the scheduler busy) -- the "
                         "series has gaps; see "
                         "obs.timeseries_skipped\n",
                         static_cast<long long>(
                             result.timeseries_skipped));

        printOpenLoopSummary(result);
        printHealthSummary(result);

        if (!trace_path.empty() &&
            !writeTraceFile(trace_path,
                            tt::runtime::toTraceData(graph, result)))
            return 1;
        if (!metrics_path.empty() &&
            !writeMetricsFile(metrics_path, metrics))
            return 1;
        if (!finishTimeseries())
            return 1;
        if (flags.getBool("metrics-summary"))
            std::printf("\n%s", metrics.summaryTable().c_str());
        return sloFailed(result) ? 5 : 0;
    }

    // Simulated runs share the host options; the watchdog deadline
    // counts *simulated* seconds and fails the run in-band (the event
    // queue's budget still bounds a runaway simulation).
    tt::cpu::SimMachine sim_machine(machine);
    tt::exec::EngineOptions sim_options;
    sim_options.metrics = &metrics;
    // Simulated runs synthesize the same counter schema from the LLC
    // and DRAM models -- always "available", no kernel involved.
    tt::obs::perf::SimCounterProvider sim_counters;
    if (perf_counters)
        sim_options.counters = &sim_counters;
    sim_options.fault_plan = fault_plan ? &*fault_plan : nullptr;
    sim_options.arrival_plan = arrival_plan ? &*arrival_plan : nullptr;
    sim_options.admission = admission;
    sim_options.max_task_retries = max_retries;
    sim_options.watchdog_seconds = watchdog_seconds;
    sim_options.health.enabled = flags.getBool("health");
    if (!timeseries_path.empty()) {
        sim_options.timeseries_out = &timeseries_out;
        sim_options.timeseries_interval_seconds = timeseries_interval;
    }
    // Live metrics on the simulator: the engine rewrites a snapshot
    // file at each simulated interval (there is no wall-clock to
    // serve a socket against).
    std::optional<tt::obs::LiveFileSink> live_sink;
    if (!live_path.empty()) {
        live_sink.emplace(live_path, metrics);
        sim_options.live_sink = &*live_sink;
        sim_options.live_interval_seconds = live_interval;
        if (!flags.getBool("quiet"))
            std::printf("live metrics: snapshot file %s every %.0f us "
                        "simulated (poll with ttstat)\n",
                        live_path.c_str(), live_interval * 1e6);
    }
    tt::simrt::SimRuntime sim_runtime(sim_machine, graph, *policy,
                                      sim_options);
    const auto result = sim_runtime.run();
    // One more snapshot so the file carries the backend-finalized
    // end-of-run registry (sim.* gauges land after the drain).
    if (live_sink) {
        live_sink->snapshot(result.seconds);
        if (!live_sink->ok())
            return 1;
    }

    if (result.task_retries > 0 || result.task_failures > 0)
        std::printf("task retries    %10ld  (%ld gave up)\n",
                    result.task_retries, result.task_failures);
    if (result.failed) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.failure_reason.c_str());
        if (!metrics_path.empty())
            writeMetricsFile(metrics_path, metrics);
        return result.watchdog_fired ? 3 : 4;
    }

    std::printf("makespan        %10.3f ms\n", result.seconds * 1e3);
    std::printf("avg T_m / T_c   %10.1f / %.1f us  (ratio %.2f%%)\n",
                result.avg_tm * 1e6, result.avg_tc * 1e6,
                100.0 * result.avg_tm / result.avg_tc);
    std::printf("DRAM accesses   %10llu  (bus utilisation %.1f%%)\n",
                static_cast<unsigned long long>(result.dram_accesses),
                result.bus_utilisation * 100.0);
    std::printf("peak mem tasks  %10d\n", result.peak_mem_in_flight);
    if (perf_counters)
        printCounterSummary(result);
    const int final_mtl =
        result.mtl_trace.empty() ? n : result.mtl_trace.back().second;
    std::printf("final MTL       %10d  (%ld selections, probe "
                "fraction %.2f%%, %ld stale pairs)\n",
                final_mtl, result.policy_stats.selections,
                result.monitor_overhead * 100.0,
                result.policy_stats.stale_pairs);
    if (result.spans_dropped > 0)
        std::fprintf(stderr,
                     "warning: %llu job spans dropped (span buffer "
                     "full) -- critical-path attribution will be "
                     "incomplete; see obs.spans_dropped\n",
                     static_cast<unsigned long long>(
                         result.spans_dropped));
    if (result.timeseries_skipped > 0)
        std::fprintf(stderr,
                     "warning: %lld time-series rows skipped (sampler "
                     "found the scheduler busy) -- the series has "
                     "gaps; see obs.timeseries_skipped\n",
                     static_cast<long long>(result.timeseries_skipped));
    printOpenLoopSummary(result);
    printHealthSummary(result);

    if (!trace_path.empty() &&
        !writeTraceFile(trace_path,
                        tt::simrt::toTraceData(graph, result)))
        return 1;
    if (!metrics_path.empty() &&
        !writeMetricsFile(metrics_path, metrics))
        return 1;
    if (!finishTimeseries())
        return 1;
    if (flags.getBool("metrics-summary"))
        std::printf("\n%s", metrics.summaryTable().c_str());

    if (flags.getBool("trace")) {
        std::printf("\nschedule trace (task kind pair phase context "
                    "start_us end_us mtl):\n");
        for (const auto &entry : result.trace) {
            std::printf("%5d %s %5d %3d %3d %12.2f %12.2f %3d\n",
                        entry.task, entry.is_memory ? "M" : "C",
                        entry.pair, entry.phase, entry.worker,
                        entry.start * 1e6, entry.end * 1e6,
                        entry.mtl);
        }
    }
    return sloFailed(result) ? 5 : 0;
}
