/**
 * @file
 * ttsim: command-line driver for the thread-throttling simulator
 * and the real-thread host runtime.
 *
 * Runs one workload under one scheduling policy -- on a simulated
 * machine configuration, or with --host on a real std::thread worker
 * pool -- and prints the measurements; the one-stop tool for
 * exploring the design space outside the canned benches.
 *
 *   ttsim --workload synthetic --ratio 0.5 --policy dynamic
 *   ttsim --workload streamcluster --dim 36 --policy offline
 *   ttsim --workload sift --machine 2dimm-smt --policy static --mtl 2
 *   ttsim --workload dft --policy online --window 8 --trace
 *   ttsim --host --threads 4 --policy dynamic \
 *         --trace-out trace.json --metrics-out metrics.json
 *
 * Flags:
 *   --workload   synthetic | dft | streamcluster | sift |
 *                stencil | histogram                    [synthetic]
 *   --machine    1dimm | 2dimm | 2dimm-smt | power7       [1dimm]
 *   --policy     conventional | static | dynamic | online |
 *                offline                                  [dynamic]
 *   --mtl        static MTL value                         [1]
 *   --window     monitoring window W                      [16]
 *   --hysteresis IdleBound hysteresis (dynamic)           [0]
 *   --ratio      synthetic T_m1/T_c                       [0.5]
 *   --footprint-kb  synthetic per-task footprint          [512]
 *   --pairs      synthetic pair count                     [128]
 *   --dim        streamcluster input dimension            [128]
 *   --host       run on real threads (synthetic workload only)
 *   --threads    host worker threads                      [4]
 *   --count      host compute-loop repetitions per task   [8]
 *   --no-pin     host mode: skip CPU-affinity pinning
 *   --trace      print the full schedule trace (sim only)
 *   --trace-out FILE    write the schedule as Chrome trace events
 *                       (load in chrome://tracing or Perfetto);
 *                       --chrome-trace is an alias
 *   --metrics-out FILE  write the run's metrics registry as JSON
 *   --metrics-summary   print the metrics registry as a table
 *   --quiet      suppress the header
 */

#include <cstdio>
#include <string>

#include <fstream>

#include "core/dynamic_policy.hh"
#include "core/online_exhaustive_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "obs/chrome_trace.hh"
#include "runtime/runtime.hh"
#include "simrt/sim_runtime.hh"
#include "simrt/trace_export.hh"
#include "util/flags.hh"
#include "util/stats.hh"
#include "workloads/dft.hh"
#include "workloads/histogram.hh"
#include "workloads/sift.hh"
#include "workloads/stencil.hh"
#include "workloads/streamcluster.hh"
#include "workloads/synthetic.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workload synthetic|dft|streamcluster|sift|"
        "stencil|histogram]\n"
        "          [--machine 1dimm|2dimm|2dimm-smt|power7]\n"
        "          [--policy conventional|static|dynamic|online|"
        "offline]\n"
        "          [--mtl K] [--window W] [--hysteresis H]\n"
        "          [--ratio R] [--footprint-kb KB] [--pairs N]\n"
        "          [--dim D] [--host] [--threads T] [--count C]\n"
        "          [--no-pin] [--trace] [--trace-out FILE]\n"
        "          [--metrics-out FILE] [--metrics-summary] [--quiet]\n",
        argv0);
    return 2;
}

/** Write the trace JSON; returns false (with a message) on failure. */
bool
writeTraceFile(const std::string &path, const tt::obs::TraceData &data)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return false;
    }
    tt::obs::writeChromeTrace(data, out);
    std::printf("chrome trace    %10s\n", path.c_str());
    return true;
}

bool
writeMetricsFile(const std::string &path,
                 const tt::MetricsRegistry &metrics)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return false;
    }
    metrics.writeJson(out);
    std::printf("metrics json    %10s\n", path.c_str());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    tt::Flags flags;
    if (!flags.parse(argc, argv) || flags.has("help")) {
        if (!flags.error().empty())
            std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    const bool host_mode = flags.getBool("host");

    // Machine (ignored in --host mode, where the host's threads are
    // the hardware contexts).
    const std::string machine_name =
        flags.getString("machine", "1dimm");
    tt::cpu::MachineConfig machine;
    if (machine_name == "1dimm") {
        machine = tt::cpu::MachineConfig::i7_860_1dimm();
    } else if (machine_name == "2dimm") {
        machine = tt::cpu::MachineConfig::i7_860_2dimm();
    } else if (machine_name == "2dimm-smt") {
        machine = tt::cpu::MachineConfig::i7_860_2dimm_smt();
    } else if (machine_name == "power7") {
        machine = tt::cpu::MachineConfig::power7();
    } else {
        std::fprintf(stderr, "unknown machine '%s'\n",
                     machine_name.c_str());
        return usage(argv[0]);
    }
    const int threads = static_cast<int>(flags.getInt("threads", 4));
    if (host_mode && threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return usage(argv[0]);
    }
    const int n = host_mode ? threads : machine.contexts();

    // Workload.
    const std::string workload = flags.getString("workload", "synthetic");
    tt::stream::TaskGraph graph;
    tt::workloads::HostSynthetic host_workload; // owns host arrays
    if (workload == "synthetic") {
        tt::workloads::SyntheticParams params;
        params.tm1_over_tc = flags.getDouble("ratio", 0.5);
        params.footprint_bytes =
            static_cast<std::uint64_t>(
                flags.getInt("footprint-kb", 512)) *
            1024;
        params.pairs = static_cast<int>(flags.getInt("pairs", 128));
        if (host_mode) {
            host_workload = tt::workloads::buildSyntheticHost(
                params, static_cast<int>(flags.getInt("count", 8)));
            graph = host_workload.graph;
        } else {
            graph = tt::workloads::buildSyntheticSim(machine, params);
        }
    } else if (host_mode) {
        std::fprintf(stderr,
                     "--host supports only the synthetic workload "
                     "(the others carry sim descriptors only)\n");
        return usage(argv[0]);
    } else if (workload == "dft") {
        graph = tt::workloads::dftSim(machine);
    } else if (workload == "streamcluster") {
        graph = tt::workloads::streamclusterSim(
            machine, static_cast<int>(flags.getInt("dim", 128)));
    } else if (workload == "sift") {
        graph = tt::workloads::siftSim(machine);
    } else if (workload == "stencil") {
        tt::workloads::StencilParams params;
        graph = tt::workloads::stencilSim(machine, params);
    } else if (workload == "histogram") {
        tt::workloads::HistogramParams params;
        params.pairs = static_cast<int>(flags.getInt("pairs", 128));
        graph = tt::workloads::histogramSim(machine, params);
    } else {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload.c_str());
        return usage(argv[0]);
    }
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    // Policy.
    const std::string policy_name = flags.getString("policy", "dynamic");
    const int window = static_cast<int>(flags.getInt("window", 16));

    if (!flags.getBool("quiet")) {
        if (host_mode) {
            std::printf("host threads %d, workload %s (%d pairs, "
                        "%d phase(s)), policy %s\n",
                        n, workload.c_str(), graph.pairCount(),
                        graph.phaseCount(), policy_name.c_str());
        } else {
            std::printf("machine %s (%d contexts, %d channel(s)), "
                        "workload %s (%d pairs, %d phase(s)), "
                        "policy %s\n",
                        machine_name.c_str(), n, machine.mem.channels,
                        workload.c_str(), graph.pairCount(),
                        graph.phaseCount(), policy_name.c_str());
        }
    }

    if (policy_name == "offline") {
        if (host_mode) {
            std::fprintf(stderr,
                         "--policy offline is simulator-only\n");
            return usage(argv[0]);
        }
        const auto search =
            tt::simrt::offlineExhaustiveSearch(machine, graph);
        for (std::size_t k = 0; k < search.seconds_per_mtl.size(); ++k)
            std::printf("MTL=%-2zu %10.3f ms%s\n", k + 1,
                        search.seconds_per_mtl[k] * 1e3,
                        static_cast<int>(k) + 1 == search.best_mtl
                            ? "  <-- best"
                            : "");
        return 0;
    }

    std::unique_ptr<tt::core::SchedulingPolicy> policy;
    if (policy_name == "conventional") {
        policy = std::make_unique<tt::core::ConventionalPolicy>(n);
    } else if (policy_name == "static") {
        policy = std::make_unique<tt::core::StaticMtlPolicy>(
            static_cast<int>(flags.getInt("mtl", 1)), n);
    } else if (policy_name == "dynamic") {
        auto dynamic =
            std::make_unique<tt::core::DynamicThrottlePolicy>(n, window);
        dynamic->setIdleBoundHysteresis(
            static_cast<int>(flags.getInt("hysteresis", 0)));
        policy = std::move(dynamic);
    } else if (policy_name == "online") {
        policy = std::make_unique<tt::core::OnlineExhaustivePolicy>(
            n, window);
    } else {
        std::fprintf(stderr, "unknown policy '%s'\n",
                     policy_name.c_str());
        return usage(argv[0]);
    }
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    tt::MetricsRegistry metrics;
    policy->bindMetrics(&metrics);

    const std::string trace_path = flags.getString(
        "trace-out", flags.getString("chrome-trace", ""));
    const std::string metrics_path = flags.getString("metrics-out", "");

    if (host_mode) {
        tt::runtime::RuntimeOptions options;
        options.threads = n;
        options.pin_affinity = !flags.getBool("no-pin");
        options.metrics = &metrics;
        tt::runtime::Runtime runtime(graph, *policy, options);
        const auto result = runtime.run();

        std::printf("makespan        %10.3f ms\n",
                    result.seconds * 1e3);
        std::printf("avg T_m / T_c   %10.1f / %.1f us\n",
                    result.avg_tm * 1e6, result.avg_tc * 1e6);
        std::printf("peak mem tasks  %10d\n",
                    result.peak_mem_in_flight);
        if (result.pin_failures > 0)
            std::printf("pin failures    %10ld  (workers ran "
                        "unpinned)\n",
                        result.pin_failures);
        const int final_mtl = result.mtl_trace.empty()
                                  ? n
                                  : result.mtl_trace.back().second;
        std::printf("final MTL       %10d  (%ld selections, probe "
                    "fraction %.2f%%, %ld stale pairs)\n",
                    final_mtl, result.policy_stats.selections,
                    result.monitor_overhead * 100.0,
                    result.policy_stats.stale_pairs);
        std::printf("trace events    %10zu  (%llu dropped)\n",
                    result.trace.size(),
                    static_cast<unsigned long long>(
                        result.trace_dropped));

        if (!trace_path.empty() &&
            !writeTraceFile(trace_path,
                            tt::runtime::toTraceData(graph, result)))
            return 1;
        if (!metrics_path.empty() &&
            !writeMetricsFile(metrics_path, metrics))
            return 1;
        if (flags.getBool("metrics-summary"))
            std::printf("\n%s", metrics.summaryTable().c_str());
        return 0;
    }

    const auto result =
        tt::simrt::runOnce(machine, graph, *policy, &metrics);

    std::printf("makespan        %10.3f ms\n", result.seconds * 1e3);
    std::printf("avg T_m / T_c   %10.1f / %.1f us  (ratio %.2f%%)\n",
                result.avg_tm * 1e6, result.avg_tc * 1e6,
                100.0 * result.avg_tm / result.avg_tc);
    std::printf("DRAM accesses   %10llu  (bus utilisation %.1f%%)\n",
                static_cast<unsigned long long>(result.dram_accesses),
                result.bus_utilisation * 100.0);
    std::printf("peak mem tasks  %10d\n", result.peak_mem_in_flight);
    const int final_mtl =
        result.mtl_trace.empty() ? n : result.mtl_trace.back().second;
    std::printf("final MTL       %10d  (%ld selections, probe "
                "fraction %.2f%%, %ld stale pairs)\n",
                final_mtl, result.policy_stats.selections,
                result.monitor_overhead * 100.0,
                result.policy_stats.stale_pairs);

    if (!trace_path.empty() &&
        !writeTraceFile(trace_path,
                        tt::simrt::toTraceData(graph, result)))
        return 1;
    if (!metrics_path.empty() &&
        !writeMetricsFile(metrics_path, metrics))
        return 1;
    if (flags.getBool("metrics-summary"))
        std::printf("\n%s", metrics.summaryTable().c_str());

    if (flags.getBool("trace")) {
        std::printf("\nschedule trace (task kind pair phase context "
                    "start_us end_us mtl):\n");
        for (const auto &entry : result.trace) {
            std::printf("%5d %s %5d %3d %3d %12.2f %12.2f %3d\n",
                        entry.task, entry.is_memory ? "M" : "C",
                        entry.pair, entry.phase, entry.context,
                        entry.start * 1e6, entry.end * 1e6,
                        entry.mtl_at_dispatch);
        }
    }
    return 0;
}
