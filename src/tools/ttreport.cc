/**
 * @file
 * ttreport: latency attribution and regression analysis for one run.
 *
 * Run mode executes a workload on the simulator (in process, like
 * ttsim) and renders the obs::analyze() report: per-phase T_m/T_c
 * distributions attributed to the MTL in force, the queuing
 * decomposition fit, predicted-vs-measured model validation,
 * per-worker busy/stall/idle accounting and the policy's decision
 * audit log.
 *
 *   ttreport --workload phased --policy dynamic
 *   ttreport --workload synthetic --ratio 1.2 --json > report.json
 *   ttreport --policy dynamic --out baseline.json
 *
 * Diff mode compares two saved reports and fails when the candidate
 * regresses past the threshold -- the CI gate:
 *
 *   ttreport --diff baseline.json candidate.json --threshold 5
 *
 * SLO sweep mode (robustness extension): with --arrival-rate the run
 * becomes open-loop and ttreport additionally sweeps offered load at
 * 0.25x/0.5x/1x/1.5x/2x the given rate -- each sweep point a fresh
 * simulated run with seeded arrivals through bounded admission (see
 * load/arrival.hh) -- and appends an SLO section: p50/p95/p99
 * response time and shed rate per rate, plus the knee estimate (the
 * lowest swept rate where attainment first drops below 95%). The
 * attribution tables still describe the 1x run. Requires a
 * single-phase workload. diffReports() compares the SLO sections
 * when both reports carry one.
 *
 *   ttreport --workload synthetic --arrival-rate 2000 --slo-us 4000 \
 *            --service-us 60 --service-tql-us 20 --json
 *
 * Flags (run mode mirrors ttsim's simulator subset):
 *   --workload   synthetic | dft | streamcluster | sift | stencil |
 *                histogram | phased                      [phased]
 *   --machine    1dimm | 2dimm | 2dimm-smt | power7       [1dimm]
 *   --policy     conventional | static | dynamic | online [dynamic]
 *   --mtl K --window W --hysteresis H --ratio R
 *   --footprint-kb KB --pairs N --dim D
 *   --arrival-rate R     enable the open-loop SLO sweep      [off]
 *   --arrival-process    poisson | bursty | diurnal     [poisson]
 *   --arrival-seed S     arrival generator seed              [1]
 *   --slo-us US          per-job relative deadline           [0]
 *   --queue-cap N        admission backlog bound            [64]
 *   --service-us US      admission predictor T_ml            [0]
 *   --service-tql-us US  admission predictor T_ql            [0]
 *   --health     enable the streaming health detectors; the report
 *                gains a "health" section (alert counts per rule),
 *                compared by --diff when both sides carry one
 *   --json       print the report as JSON instead of tables
 *   --out FILE   also write the JSON report to FILE
 *   --diff BASELINE.json CANDIDATE.json   compare two reports
 *   --threshold PCT   relative regression threshold, percent  [5]
 *
 * Exit codes: 0 success / no regression; 1 regression found, input
 * unreadable or output write failed; 2 usage error.
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/dynamic_policy.hh"
#include "core/online_exhaustive_policy.hh"
#include "core/policy.hh"
#include "cpu/machine_config.hh"
#include "load/arrival.hh"
#include "obs/analyzer.hh"
#include "obs/perf/sim_counter_provider.hh"
#include "simrt/sim_runtime.hh"
#include "util/flags.hh"
#include "util/json.hh"
#include "workloads/dft.hh"
#include "workloads/histogram.hh"
#include "workloads/phased.hh"
#include "workloads/sift.hh"
#include "workloads/stencil.hh"
#include "workloads/streamcluster.hh"
#include "workloads/synthetic.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--workload synthetic|dft|streamcluster|sift|"
        "stencil|histogram|phased]\n"
        "          [--machine 1dimm|2dimm|2dimm-smt|power7]\n"
        "          [--policy conventional|static|dynamic|online]\n"
        "          [--mtl K] [--window W] [--hysteresis H]\n"
        "          [--ratio R] [--footprint-kb KB] [--pairs N]\n"
        "          [--dim D] [--json] [--out FILE]\n"
        "          [--arrival-rate R] "
        "[--arrival-process poisson|bursty|diurnal]\n"
        "          [--arrival-seed S] [--slo-us US] [--queue-cap N]\n"
        "          [--service-us US] [--service-tql-us US]\n"
        "          [--health]\n"
        "       %s --diff BASELINE.json CANDIDATE.json "
        "[--threshold PCT]\n"
        "exit codes: 0 ok / no regression, 1 regression or I/O "
        "failure, 2 usage\n",
        argv0, argv0);
    return 2;
}

/** Read a whole file; false (with a message) when unreadable. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

int
runDiff(const std::string &baseline_path,
        const std::string &candidate_path, double threshold)
{
    std::string baseline_text;
    std::string candidate_text;
    if (!readFile(baseline_path, baseline_text) ||
        !readFile(candidate_path, candidate_text))
        return 1;
    std::string error;
    const auto baseline = tt::json::parse(baseline_text, &error);
    if (!baseline) {
        std::fprintf(stderr, "parse '%s': %s\n", baseline_path.c_str(),
                     error.c_str());
        return 1;
    }
    const auto candidate = tt::json::parse(candidate_text, &error);
    if (!candidate) {
        std::fprintf(stderr, "parse '%s': %s\n",
                     candidate_path.c_str(), error.c_str());
        return 1;
    }
    const tt::obs::DiffResult diff =
        tt::obs::diffReports(*baseline, *candidate, threshold);
    for (const std::string &note : diff.notes)
        std::printf("MISMATCH  %s\n", note.c_str());
    for (const tt::obs::DiffFinding &finding : diff.regressions)
        std::printf("REGRESSED %s: %.6g -> %.6g (%+.2f%%)\n",
                    finding.metric.c_str(), finding.baseline,
                    finding.candidate, finding.change * 100.0);
    if (!diff.regressed()) {
        std::printf("no regressions past %.2f%% (%s vs %s)\n",
                    threshold * 100.0, candidate_path.c_str(),
                    baseline_path.c_str());
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    tt::Flags flags;
    static const std::vector<std::string> known_flags = {
        "help",    "workload",     "machine", "policy",
        "mtl",     "window",       "hysteresis", "ratio",
        "footprint-kb", "pairs",   "dim",     "json",
        "out",     "diff",         "threshold",
        "arrival-rate", "arrival-process", "arrival-seed",
        "slo-us",  "queue-cap",    "service-us", "service-tql-us",
        "health",
    };
    if (!flags.parse(argc, argv) || !flags.allowOnly(known_flags) ||
        flags.has("help")) {
        if (!flags.error().empty())
            std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    const double threshold =
        flags.getDouble("threshold", 5.0) / 100.0;
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }
    if (threshold < 0.0) {
        std::fprintf(stderr, "--threshold must be >= 0\n");
        return 2;
    }

    if (flags.has("diff")) {
        const std::string baseline = flags.getString("diff", "");
        if (baseline.empty() || flags.positional().size() != 1) {
            std::fprintf(stderr,
                         "--diff needs BASELINE.json CANDIDATE.json\n");
            return usage(argv[0]);
        }
        return runDiff(baseline, flags.positional().front(),
                       threshold);
    }
    if (!flags.positional().empty()) {
        std::fprintf(stderr, "unexpected positional argument '%s'\n",
                     flags.positional().front().c_str());
        return usage(argv[0]);
    }

    // ---- run mode: one simulated run, analysed in process ----------
    const std::string machine_name =
        flags.getString("machine", "1dimm");
    tt::cpu::MachineConfig machine;
    if (machine_name == "1dimm") {
        machine = tt::cpu::MachineConfig::i7_860_1dimm();
    } else if (machine_name == "2dimm") {
        machine = tt::cpu::MachineConfig::i7_860_2dimm();
    } else if (machine_name == "2dimm-smt") {
        machine = tt::cpu::MachineConfig::i7_860_2dimm_smt();
    } else if (machine_name == "power7") {
        machine = tt::cpu::MachineConfig::power7();
    } else {
        std::fprintf(stderr, "unknown machine '%s'\n",
                     machine_name.c_str());
        return usage(argv[0]);
    }
    const int n = machine.contexts();

    const std::string workload =
        flags.getString("workload", "phased");
    const int pairs = static_cast<int>(flags.getInt("pairs", 128));
    tt::stream::TaskGraph graph;
    if (workload == "synthetic") {
        tt::workloads::SyntheticParams params;
        params.tm1_over_tc = flags.getDouble("ratio", 0.5);
        params.footprint_bytes =
            static_cast<std::uint64_t>(
                flags.getInt("footprint-kb", 512)) *
            1024;
        params.pairs = pairs;
        graph = tt::workloads::buildSyntheticSim(machine, params);
    } else if (workload == "phased") {
        // Three phases crossing the IdleBound in both directions, so
        // an adaptive policy has real transitions to audit.
        std::vector<tt::workloads::PhaseSpec> specs(3);
        specs[0].name = "low-intensity";
        specs[0].tm1_over_tc = 0.25;
        specs[0].pairs = pairs;
        specs[1].name = "high-intensity";
        specs[1].tm1_over_tc = 1.5;
        specs[1].pairs = pairs;
        specs[2].name = "mid-intensity";
        specs[2].tm1_over_tc = 0.6;
        specs[2].pairs = pairs;
        graph = tt::workloads::buildPhasedSim(machine, specs);
    } else if (workload == "dft") {
        graph = tt::workloads::dftSim(machine);
    } else if (workload == "streamcluster") {
        graph = tt::workloads::streamclusterSim(
            machine, static_cast<int>(flags.getInt("dim", 128)));
    } else if (workload == "sift") {
        graph = tt::workloads::siftSim(machine);
    } else if (workload == "stencil") {
        tt::workloads::StencilParams params;
        graph = tt::workloads::stencilSim(machine, params);
    } else if (workload == "histogram") {
        tt::workloads::HistogramParams params;
        params.pairs = pairs;
        graph = tt::workloads::histogramSim(machine, params);
    } else {
        std::fprintf(stderr, "unknown workload '%s'\n",
                     workload.c_str());
        return usage(argv[0]);
    }

    const std::string policy_name =
        flags.getString("policy", "dynamic");
    const int window = static_cast<int>(flags.getInt("window", 16));
    // Sweep mode runs the graph several times, and adaptive policies
    // carry state -- every run gets a freshly built policy.
    const auto makePolicy =
        [&](bool slo_aware)
        -> std::unique_ptr<tt::core::SchedulingPolicy> {
        if (policy_name == "conventional")
            return std::make_unique<tt::core::ConventionalPolicy>(n);
        if (policy_name == "static")
            return std::make_unique<tt::core::StaticMtlPolicy>(
                static_cast<int>(flags.getInt("mtl", 1)), n);
        if (policy_name == "dynamic") {
            auto dynamic =
                std::make_unique<tt::core::DynamicThrottlePolicy>(
                    n, window);
            dynamic->setIdleBoundHysteresis(
                static_cast<int>(flags.getInt("hysteresis", 0)));
            if (slo_aware)
                dynamic->setSloAware();
            return dynamic;
        }
        if (policy_name == "online")
            return std::make_unique<
                tt::core::OnlineExhaustivePolicy>(n, window);
        return nullptr;
    };
    if (makePolicy(false) == nullptr) {
        std::fprintf(stderr, "unknown policy '%s'\n",
                     policy_name.c_str());
        return usage(argv[0]);
    }
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }

    // Open-loop SLO sweep configuration.
    const double arrival_rate = flags.getDouble("arrival-rate", 0.0);
    tt::load::ArrivalConfig arrivals;
    tt::load::AdmissionConfig admission;
    if (arrival_rate < 0.0) {
        std::fprintf(stderr, "--arrival-rate must be > 0\n");
        return 2;
    }
    if (arrival_rate > 0.0) {
        if (graph.phaseCount() != 1) {
            std::fprintf(stderr,
                         "the SLO sweep requires a single-phase "
                         "workload (got %d phases)\n",
                         graph.phaseCount());
            return 2;
        }
        arrivals.seed = static_cast<std::uint64_t>(
            flags.getInt("arrival-seed", 1));
        const std::string process_name =
            flags.getString("arrival-process", "poisson");
        if (!tt::load::parseArrivalProcess(process_name.c_str(),
                                           arrivals.process)) {
            std::fprintf(stderr, "unknown arrival process '%s'\n",
                         process_name.c_str());
            return usage(argv[0]);
        }
        arrivals.slo_seconds = flags.getDouble("slo-us", 0.0) * 1e-6;
        admission.queue_cap =
            static_cast<int>(flags.getInt("queue-cap", 64));
        admission.service_tml =
            flags.getDouble("service-us", 0.0) * 1e-6;
        admission.service_tql =
            flags.getDouble("service-tql-us", 0.0) * 1e-6;
        if (!flags.error().empty()) {
            std::fprintf(stderr, "error: %s\n",
                         flags.error().c_str());
            return usage(argv[0]);
        }
        if (arrivals.slo_seconds < 0.0 || admission.queue_cap < 1 ||
            admission.service_tml < 0.0 ||
            admission.service_tql < 0.0) {
            std::fprintf(stderr, "SLO sweep parameters out of "
                                 "range\n");
            return 2;
        }
    }

    // One simulated run, optionally open-loop; fresh machine, policy
    // and counter provider each time so runs are independent.
    std::string policy_display;
    const auto runSim =
        [&](const tt::load::ArrivalPlan *plan)
        -> tt::simrt::RunResult {
        auto policy = makePolicy(plan != nullptr);
        policy_display = policy->name();
        tt::cpu::SimMachine sim_machine(machine);
        // Always attach the synthesized counter provider: the run is
        // deterministic either way, and the interference table turns
        // the report from "where did the time go" into "which MTL
        // let misses queue up".
        tt::obs::perf::SimCounterProvider sim_counters;
        tt::exec::EngineOptions engine_options;
        engine_options.counters = &sim_counters;
        engine_options.arrival_plan = plan;
        engine_options.admission = admission;
        engine_options.health.enabled = flags.getBool("health");
        tt::simrt::SimRuntime sim_runtime(sim_machine, graph, *policy,
                                          engine_options);
        return sim_runtime.run();
    };

    // The swept offered loads, as multiples of --arrival-rate; the
    // 1x run doubles as the attribution run the tables describe.
    static const double kSweepFactors[] = {0.25, 0.5, 1.0, 1.5, 2.0};
    // A rate "degrades" (and can be the knee) below this attainment.
    constexpr double kKneeAttainment = 0.95;

    tt::obs::SloReport slo;
    std::optional<tt::simrt::RunResult> main_result;
    if (arrival_rate > 0.0) {
        slo.valid = true;
        slo.slo_seconds = arrivals.slo_seconds;
        for (const double factor : kSweepFactors) {
            tt::load::ArrivalConfig point_config = arrivals;
            point_config.rate = arrival_rate * factor;
            const tt::load::ArrivalPlan plan =
                tt::load::buildArrivalPlan(point_config,
                                           graph.pairCount());
            tt::simrt::RunResult result = runSim(&plan);
            if (result.failed) {
                std::fprintf(stderr,
                             "sweep run at %.0f jobs/s failed: %s\n",
                             point_config.rate,
                             result.failure_reason.c_str());
                return 1;
            }
            tt::obs::SloPoint point;
            point.offered_rate = point_config.rate;
            point.offered = result.jobs_offered;
            point.admitted = result.jobs_admitted;
            point.shed = result.jobs_shed;
            point.missed = result.jobs_deadline_missed;
            point.shed_rate =
                result.jobs_offered > 0
                    ? static_cast<double>(result.jobs_shed) /
                          static_cast<double>(result.jobs_offered)
                    : 0.0;
            const tt::obs::DistSummary response =
                tt::obs::summarize(result.response_seconds);
            point.p50 = response.p50;
            point.p95 = response.p95;
            point.p99 = response.p99;
            point.attainment = result.slo_attainment;
            if (point.attainment < kKneeAttainment &&
                slo.knee_rate == 0.0)
                slo.knee_rate = point.offered_rate;
            slo.points.push_back(point);
            if (factor == 1.0)
                main_result = std::move(result);
        }
    } else {
        tt::simrt::RunResult result = runSim(nullptr);
        if (result.failed) {
            std::fprintf(stderr, "run failed: %s\n",
                         result.failure_reason.c_str());
            return 1;
        }
        main_result = std::move(result);
    }
    const tt::simrt::RunResult &result = *main_result;

    tt::obs::AnalyzeOptions options;
    options.policy = policy_display;
    options.cores = n;
    options.makespan = result.seconds;
    options.policy_stats = result.policy_stats;
    tt::obs::Report report =
        tt::obs::analyze(tt::simrt::toTraceData(graph, result),
                         options);
    report.slo = std::move(slo);

    const std::string out_path = flags.getString("out", "");
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (out)
            tt::obs::writeReportJson(report, out);
        out.flush();
        if (!out) {
            std::fprintf(stderr, "writing '%s' failed\n",
                         out_path.c_str());
            return 1;
        }
    }
    if (flags.getBool("json")) {
        std::ostringstream os;
        tt::obs::writeReportJson(report, os);
        std::fputs(os.str().c_str(), stdout);
    } else {
        std::fputs(tt::obs::reportTable(report).c_str(), stdout);
    }
    return 0;
}
