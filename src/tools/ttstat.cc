/**
 * @file
 * ttstat: poll a live ttsim metrics endpoint and print the
 * OpenMetrics exposition.
 *
 * The endpoint is whatever `ttsim --live-metrics PATH` created: a
 * Unix-domain socket on the host backend (each connection receives
 * one snapshot and is closed) or a plain file of periodic snapshots
 * on the simulator backend. ttstat stats the path and picks the
 * right transport automatically, so the same command line works
 * against either backend:
 *
 *   ttstat /tmp/tt.metrics                  # one snapshot
 *   ttstat --watch --interval-ms 500 PATH   # poll until killed
 *   ttstat --watch --count 10 PATH          # poll 10 times, exit
 *
 * Flags:
 *   --watch          poll repeatedly instead of once
 *   --interval-ms M  delay between polls                  [1000]
 *   --count N        stop --watch after N snapshots (0 = forever)
 *
 * Exit codes: 0 success, 1 endpoint unreachable or read failed,
 * 2 usage error.
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/flags.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--watch] [--interval-ms M] [--count N] "
                 "PATH\n"
                 "PATH is the --live-metrics endpoint of a ttsim run: "
                 "a unix socket\n(host backend) or a snapshot file "
                 "(sim backend).\n"
                 "exit codes: 0 ok, 1 endpoint unreachable, 2 usage\n",
                 argv0);
    return 2;
}

/** One snapshot over the socket: connect, read to EOF. */
bool
readSocket(const std::string &path, std::string &out)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "socket path too long: '%s'\n",
                     path.c_str());
        ::close(fd);
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::fprintf(stderr, "connect '%s': %s\n", path.c_str(),
                     std::strerror(errno));
        ::close(fd);
        return false;
    }
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buffer, sizeof(buffer));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "read '%s': %s\n", path.c_str(),
                         std::strerror(errno));
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

/** One snapshot from a sim-side file sink. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/** Fetch one snapshot, picking the transport from the path's type. */
bool
fetch(const std::string &path, std::string &out)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
        std::fprintf(stderr, "stat '%s': %s\n", path.c_str(),
                     std::strerror(errno));
        return false;
    }
    return S_ISSOCK(st.st_mode) ? readSocket(path, out)
                                : readFile(path, out);
}

} // namespace

int
main(int argc, char **argv)
{
    tt::Flags flags;
    static const std::vector<std::string> known_flags = {
        "help",
        "watch",
        "interval-ms",
        "count",
    };
    if (!flags.parse(argc, argv) || !flags.allowOnly(known_flags) ||
        flags.has("help")) {
        if (!flags.error().empty())
            std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }
    if (flags.positional().size() != 1)
        return usage(argv[0]);
    const std::string path = flags.positional().front();
    const bool watch = flags.getBool("watch");
    const long interval_ms = flags.getInt("interval-ms", 1000);
    const long count = flags.getInt("count", 0);
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }
    if (interval_ms < 1 || count < 0) {
        std::fprintf(stderr,
                     "--interval-ms must be >= 1, --count >= 0\n");
        return 2;
    }

    long taken = 0;
    for (;;) {
        std::string text;
        if (!fetch(path, text))
            return 1;
        std::fputs(text.c_str(), stdout);
        std::fflush(stdout);
        ++taken;
        if (!watch || (count > 0 && taken >= count))
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
    return 0;
}
