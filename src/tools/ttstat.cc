/**
 * @file
 * ttstat: poll a live ttsim metrics endpoint and print the
 * OpenMetrics exposition.
 *
 * The endpoint is whatever `ttsim --live-metrics PATH` created: a
 * Unix-domain socket on the host backend (each connection receives
 * one snapshot and is closed) or a plain file of periodic snapshots
 * on the simulator backend. ttstat stats the path and picks the
 * right transport automatically, so the same command line works
 * against either backend:
 *
 *   ttstat /tmp/tt.metrics                  # one snapshot
 *   ttstat --watch --interval-ms 500 PATH   # poll until killed
 *   ttstat --watch --count 10 PATH          # poll 10 times, exit
 *   ttstat --alerts PATH                    # health-alert table only
 *
 * Flags:
 *   --watch          poll repeatedly instead of once
 *   --interval-ms M  delay between polls                  [1000]
 *   --count N        stop --watch after N snapshots (0 = forever)
 *   --alerts         print only the health-alert table (from the
 *                    run's obs_alerts_* series; needs ttsim --health)
 *
 * Exit codes: 0 success, 1 endpoint unreachable or read failed,
 * 2 usage error, 3 a critical health alert was active in the last
 * snapshot (checked in every mode, so scripts can gate on it).
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/flags.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--watch] [--interval-ms M] [--count N] "
                 "[--alerts] PATH\n"
                 "PATH is the --live-metrics endpoint of a ttsim run: "
                 "a unix socket\n(host backend) or a snapshot file "
                 "(sim backend).\n"
                 "exit codes: 0 ok, 1 endpoint unreachable, 2 usage,\n"
                 "            3 critical health alert active\n",
                 argv0);
    return 2;
}

/** One snapshot over the socket: connect, read to EOF. */
bool
readSocket(const std::string &path, std::string &out)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        std::fprintf(stderr, "socket: %s\n", std::strerror(errno));
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        std::fprintf(stderr, "socket path too long: '%s'\n",
                     path.c_str());
        ::close(fd);
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        std::fprintf(stderr, "connect '%s': %s\n", path.c_str(),
                     std::strerror(errno));
        ::close(fd);
        return false;
    }
    char buffer[4096];
    for (;;) {
        const ssize_t n = ::read(fd, buffer, sizeof(buffer));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            std::fprintf(stderr, "read '%s': %s\n", path.c_str(),
                         std::strerror(errno));
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return true;
}

/** One snapshot from a sim-side file sink. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/** Fetch one snapshot, picking the transport from the path's type. */
bool
fetch(const std::string &path, std::string &out)
{
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
        std::fprintf(stderr, "stat '%s': %s\n", path.c_str(),
                     std::strerror(errno));
        return false;
    }
    return S_ISSOCK(st.st_mode) ? readSocket(path, out)
                                : readFile(path, out);
}

/** One detector's state scraped from an exposition snapshot. */
struct AlertRow
{
    std::string rule;
    double active = 0.0; ///< 0 quiet / 1 warning / 2 critical
    double fired = 0.0;
    double cleared = 0.0;
};

/**
 * Alert state scraped from one snapshot: the per-rule rows (present
 * only when the run exported obs_alerts_* series, i.e. ran with
 * --health) and the total edges the engine's alert ring evicted.
 */
struct AlertScrape
{
    bool present = false;
    double dropped = 0.0;
    std::vector<AlertRow> rows;

    bool criticalActive() const
    {
        for (const AlertRow &row : rows)
            if (row.active >= 2.0)
                return true;
        return false;
    }
};

/** Find-or-insert the row for `rule`, preserving exposition order. */
AlertRow &
alertRow(AlertScrape &scrape, const std::string &rule)
{
    for (AlertRow &row : scrape.rows)
        if (row.rule == rule)
            return row;
    scrape.rows.push_back({rule, 0.0, 0.0, 0.0});
    return scrape.rows.back();
}

/**
 * Scrape the obs_alerts_* series out of an OpenMetrics snapshot.
 * Sample lines are `name value`; the severity is encoded in the
 * active gauge's value (0 quiet, 1 warning, 2 critical).
 */
AlertScrape
scrapeAlerts(const std::string &text)
{
    static const std::string kActive = "obs_alerts_active_";
    static const std::string kFired = "obs_alerts_fired_";
    static const std::string kCleared = "obs_alerts_cleared_";
    static const std::string kDropped = "obs_alerts_dropped_total";
    static const std::string kTotal = "_total";
    AlertScrape scrape;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line.front() == '#')
            continue;
        const std::size_t space = line.find(' ');
        if (space == std::string::npos)
            continue;
        const std::string name = line.substr(0, space);
        const double value = std::strtod(line.c_str() + space + 1,
                                         nullptr);
        if (name.rfind(kActive, 0) == 0) {
            scrape.present = true;
            alertRow(scrape, name.substr(kActive.size())).active =
                value;
        } else if (name == kDropped) {
            scrape.present = true;
            scrape.dropped = value;
        } else if (name.rfind(kFired, 0) == 0 &&
                   name.size() > kFired.size() + kTotal.size() &&
                   name.compare(name.size() - kTotal.size(),
                                kTotal.size(), kTotal) == 0) {
            scrape.present = true;
            alertRow(scrape,
                     name.substr(kFired.size(),
                                 name.size() - kFired.size() -
                                     kTotal.size()))
                .fired = value;
        } else if (name.rfind(kCleared, 0) == 0 &&
                   name.size() > kCleared.size() + kTotal.size() &&
                   name.compare(name.size() - kTotal.size(),
                                kTotal.size(), kTotal) == 0) {
            scrape.present = true;
            alertRow(scrape,
                     name.substr(kCleared.size(),
                                 name.size() - kCleared.size() -
                                     kTotal.size()))
                .cleared = value;
        }
    }
    return scrape;
}

/** Render one scrape as the --alerts table. */
void
printAlerts(const AlertScrape &scrape)
{
    if (!scrape.present) {
        std::printf("no health data in snapshot (run ttsim with "
                    "--health)\n");
        return;
    }
    std::printf("%-18s %-9s %8s %8s\n", "rule", "state", "fired",
                "cleared");
    for (const AlertRow &row : scrape.rows) {
        const char *state = row.active >= 2.0   ? "CRITICAL"
                            : row.active >= 1.0 ? "warning"
                                                : "ok";
        std::printf("%-18s %-9s %8.0f %8.0f\n", row.rule.c_str(),
                    state, row.fired, row.cleared);
    }
    if (scrape.dropped > 0.0)
        std::printf("(%.0f alert edges dropped by the ring)\n",
                    scrape.dropped);
}

} // namespace

int
main(int argc, char **argv)
{
    tt::Flags flags;
    static const std::vector<std::string> known_flags = {
        "help", "watch", "interval-ms", "count", "alerts",
    };
    // The flag parser reads `--switch value` greedily, so a bare
    // switch directly before PATH (`ttstat --alerts /tmp/tt.sock`)
    // would swallow the endpoint. Pin the pure switches to `=1`.
    std::vector<std::string> arg_store(argv, argv + argc);
    std::vector<char *> arg_ptrs;
    for (std::string &arg : arg_store) {
        if (arg == "--help" || arg == "--watch" || arg == "--alerts")
            arg += "=1";
        arg_ptrs.push_back(arg.data());
    }
    argc = static_cast<int>(arg_ptrs.size());
    argv = arg_ptrs.data();
    if (!flags.parse(argc, argv) || !flags.allowOnly(known_flags) ||
        flags.has("help")) {
        if (!flags.error().empty())
            std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }
    if (flags.positional().size() != 1)
        return usage(argv[0]);
    const std::string path = flags.positional().front();
    const bool watch = flags.getBool("watch");
    const long interval_ms = flags.getInt("interval-ms", 1000);
    const long count = flags.getInt("count", 0);
    if (!flags.error().empty()) {
        std::fprintf(stderr, "error: %s\n", flags.error().c_str());
        return usage(argv[0]);
    }
    if (interval_ms < 1 || count < 0) {
        std::fprintf(stderr,
                     "--interval-ms must be >= 1, --count >= 0\n");
        return 2;
    }

    const bool alerts_only = flags.getBool("alerts");
    long taken = 0;
    bool critical_active = false;
    for (;;) {
        std::string text;
        if (!fetch(path, text))
            return 1;
        // The exit-3 gate reflects the *last* snapshot, so a --watch
        // session that saw an alert fire and clear still exits 0.
        const AlertScrape scrape = scrapeAlerts(text);
        critical_active = scrape.criticalActive();
        if (alerts_only)
            printAlerts(scrape);
        else
            std::fputs(text.c_str(), stdout);
        std::fflush(stdout);
        ++taken;
        if (!watch || (count > 0 && taken >= count))
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
    return critical_active ? 3 : 0;
}
