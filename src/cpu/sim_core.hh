/**
 * @file
 * SimCore: a simulated physical core with SMT hardware contexts.
 *
 * The core is a latency engine, not an ISA interpreter -- tasks carry
 * resource descriptors (stream/task.hh):
 *
 *  - a *memory task* streams `bytes/64` line accesses through the
 *    memory system with a bounded window of `mlp_per_context`
 *    outstanding fills (gather reads first, then the scatter-write
 *    tail), completing when the last access returns;
 *  - a *compute task* burns `compute_cycles` of pipeline time; when
 *    the LLC is oversubscribed a miss fraction of its footprint is
 *    first demand-fetched from DRAM (window `demand_mlp`), which both
 *    lengthens the task and interferes with concurrent memory tasks
 *    -- the Fig. 13(c) effect. If the sibling SMT context is busy at
 *    start, the cycle time is inflated by `smt_compute_slowdown`.
 */

#ifndef TT_CPU_SIM_CORE_HH
#define TT_CPU_SIM_CORE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/machine_config.hh"
#include "mem/mem_system.hh"
#include "sim/event_queue.hh"
#include "stream/task.hh"

namespace tt::cpu {

/** One simulated core with `smt_ways` contexts. */
class SimCore
{
  public:
    SimCore(sim::EventQueue &events, mem::MemorySystem &mem,
            const MachineConfig &config, int core_id);

    SimCore(const SimCore &) = delete;
    SimCore &operator=(const SimCore &) = delete;

    /**
     * Run `task` on hardware context `slot`.
     *
     * @param slot          0..smt_ways-1
     * @param task          the task to execute
     * @param miss_fraction fraction of a compute task's footprint
     *                      that must be demand-fetched (0 when the
     *                      LLC holds the working set)
     * @param done          invoked at completion time
     */
    void run(int slot, const stream::Task &task, double miss_fraction,
             std::function<void()> done);

    /** True while `slot` is executing a task. */
    bool busy(int slot) const;

    /** Number of hardware contexts. */
    int slots() const { return static_cast<int>(ctx_.size()); }

    int coreId() const { return core_id_; }

  private:
    struct Context
    {
        bool busy = false;
        std::uint64_t lines_total = 0;
        std::uint64_t lines_issued = 0;
        std::uint64_t lines_done = 0;
        std::uint64_t write_lines = 0; ///< scatter tail length
        std::uint64_t base_line = 0;
        std::uint64_t compute_cycles = 0;
        int window = 0;
        std::function<void()> done;
    };

    void runMemoryStream(int slot, std::uint64_t lines,
                         std::uint64_t write_lines,
                         std::uint64_t base_line, int window);
    void issueNext(int slot);
    void onLineDone(int slot);
    void startComputeBurn(int slot);
    void finish(int slot);

    /** Deterministic, row-aligned base address for a task. */
    std::uint64_t taskBaseLine(const stream::Task &task) const;

    sim::EventQueue &events_;
    mem::MemorySystem &mem_;
    const MachineConfig config_;
    int core_id_;
    std::vector<Context> ctx_;
};

} // namespace tt::cpu

#endif // TT_CPU_SIM_CORE_HH
