#include "cpu/sim_machine.hh"

#include "util/logging.hh"

namespace tt::cpu {

SimMachine::SimMachine(const MachineConfig &config)
    : config_(config)
{
    tt_assert(config_.cores >= 1, "machine needs at least one core");
    mem_ = std::make_unique<mem::MemorySystem>(events_, config_.mem);
    cores_.reserve(static_cast<std::size_t>(config_.cores));
    for (int c = 0; c < config_.cores; ++c)
        cores_.push_back(
            std::make_unique<SimCore>(events_, *mem_, config_, c));
}

SimCore &
SimMachine::coreOf(int context)
{
    tt_assert(context >= 0 && context < contexts(),
              "context out of range");
    // Contexts are interleaved core-major: context c lives on core
    // c % cores, slot c / cores -- so the first `cores` software
    // threads land on distinct physical cores, as the affinity
    // pinning in the paper's runtime does.
    return *cores_[static_cast<std::size_t>(context % config_.cores)];
}

int
SimMachine::slotOf(int context) const
{
    return context / config_.cores;
}

void
SimMachine::run(int context, const stream::Task &task,
                double miss_fraction, std::function<void()> done)
{
    coreOf(context).run(slotOf(context), task, miss_fraction,
                        std::move(done));
}

bool
SimMachine::busy(int context) const
{
    auto &self = const_cast<SimMachine &>(*this);
    return self.coreOf(context).busy(slotOf(context));
}

} // namespace tt::cpu
