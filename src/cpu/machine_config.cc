#include "cpu/machine_config.hh"

namespace tt::cpu {

MachineConfig
MachineConfig::i7_860_1dimm()
{
    MachineConfig config;
    config.cores = 4;
    config.smt_ways = 1;
    config.mem.channels = 1;
    return config;
}

MachineConfig
MachineConfig::i7_860_2dimm()
{
    MachineConfig config = i7_860_1dimm();
    config.mem.channels = 2;
    return config;
}

MachineConfig
MachineConfig::i7_860_2dimm_smt()
{
    MachineConfig config = i7_860_2dimm();
    config.smt_ways = 2;
    // Ten line-fill buffers per core are shared between the two
    // hardware threads; give each context a smaller stream window.
    config.mlp_per_context = 5;
    return config;
}

MachineConfig
MachineConfig::power7()
{
    MachineConfig config;
    config.cores = 8;
    config.smt_ways = 4;
    config.core_ghz = 3.55;
    // Four hardware threads share a core's load-miss queue entries
    // and pipelines.
    config.mlp_per_context = 3;
    config.smt_compute_slowdown = 1.8;
    config.mem.channels = 2;
    config.mem.dram = mem::DramConfig::ddr3_1333();
    config.mem.llc_bytes = 32ULL * 1024 * 1024; // eDRAM L3
    config.mem.llc_resident_bytes = 1024ULL * 1024;
    config.mem.frontend_latency = sim::fromNs(80.0); // deeper uncore
    return config;
}

} // namespace tt::cpu
