/**
 * @file
 * Simulated machine configurations.
 *
 * The presets model the paper's evaluation platforms (Sec. V / VI-E):
 * an Intel i7-860 "Nehalem" at 2.8 GHz with an 8 MB shared L3,
 * attached to DDR3-1066 over one channel (1-DIMM, 8.5 GB/s), two
 * channels (2-DIMM, 17 GB/s), and the 2-DIMM system with 2-way SMT
 * enabled (8 hardware contexts).
 *
 * Calibration notes (all first-order, documented in EXPERIMENTS.md):
 *  - `mlp_per_context` limits a single stream's outstanding line
 *    fills (Nehalem line-fill buffers, split across SMT threads).
 *    With the ~90 ns contention-free DDR3 round trip (60 ns uncore +
 *    controller front end plus DRAM timing), mlp=6 gives one stream
 *    ~4.2 GB/s, i.e. ~50% of a channel -- which bounds the
 *    T_m4/T_m1 inflation near 1.75x and puts the synthetic peak
 *    speedup at ~1.22x against the paper's measured 1.21x.
 *  - `smt_compute_slowdown` inflates a compute task's duration when
 *    both contexts of its core are busy, reflecting shared pipelines;
 *    the paper notes T_c stops being constant under SMT (Sec. VI-E).
 */

#ifndef TT_CPU_MACHINE_CONFIG_HH
#define TT_CPU_MACHINE_CONFIG_HH

#include "mem/mem_system.hh"

namespace tt::cpu {

/** Full description of a simulated machine. */
struct MachineConfig
{
    int cores = 4;      ///< physical cores
    int smt_ways = 1;   ///< hardware threads per core
    double core_ghz = 2.8;

    /** Outstanding line fills per hardware context (stream window). */
    int mlp_per_context = 6;

    /** Outstanding demand misses while a compute task spills. */
    int demand_mlp = 2;

    /** Compute duration multiplier when the sibling context is busy. */
    double smt_compute_slowdown = 1.4;

    mem::MemSystemConfig mem;

    /** Schedulable hardware contexts (the model's n). */
    int contexts() const { return cores * smt_ways; }

    /** Core cycle period in ticks. */
    sim::Tick cyclePeriod() const { return sim::cyclePeriod(core_ghz); }

    /** Paper's base platform: 4 cores, one DDR3-1066 channel. */
    static MachineConfig i7_860_1dimm();

    /** Fig. 18 left: two channels, SMT off (4 contexts). */
    static MachineConfig i7_860_2dimm();

    /** Fig. 18 right: two channels, SMT on (8 contexts). */
    static MachineConfig i7_860_2dimm_smt();

    /**
     * The paper's stated future work (Sec. VIII): an IBM POWER7-class
     * machine with "substantially more hardware threads" -- 8 cores x
     * 4-way SMT = 32 contexts at 3.55 GHz, a 32 MB L3 and two
     * DDR3-1333 channels. Used by bench_ext_power7.
     */
    static MachineConfig power7();
};

} // namespace tt::cpu

#endif // TT_CPU_MACHINE_CONFIG_HH
