#include "cpu/sim_core.hh"

#include <cmath>

#include "util/logging.hh"

namespace tt::cpu {

namespace {

/** SplitMix64 finaliser, used to scatter task base addresses. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Simulated physical address space: 2 GB, as on the paper's box. */
constexpr std::uint64_t kMemoryLines =
    2ULL * 1024 * 1024 * 1024 / mem::kLineBytes;

} // namespace

SimCore::SimCore(sim::EventQueue &events, mem::MemorySystem &mem,
                 const MachineConfig &config, int core_id)
    : events_(events), mem_(mem), config_(config), core_id_(core_id),
      ctx_(static_cast<std::size_t>(config.smt_ways))
{
    tt_assert(config_.smt_ways >= 1, "core needs at least one context");
    tt_assert(config_.mlp_per_context >= 1, "MLP window must be >= 1");
    tt_assert(config_.demand_mlp >= 1, "demand MLP must be >= 1");
}

bool
SimCore::busy(int slot) const
{
    tt_assert(slot >= 0 && slot < slots(), "slot out of range");
    return ctx_[static_cast<std::size_t>(slot)].busy;
}

std::uint64_t
SimCore::taskBaseLine(const stream::Task &task) const
{
    // Row-aligned pseudo-random placement: tasks stream disjoint
    // regions whose bank alignments collide occasionally, giving
    // realistic row-buffer interference between concurrent streams.
    const std::uint64_t lines_per_row = config_.mem.dram.linesPerRow();
    const std::uint64_t rows_total = kMemoryLines / lines_per_row;
    const std::uint64_t row =
        mix64(static_cast<std::uint64_t>(task.id) + 1) % rows_total;
    return row * lines_per_row;
}

void
SimCore::run(int slot, const stream::Task &task, double miss_fraction,
             std::function<void()> done)
{
    tt_assert(slot >= 0 && slot < slots(), "slot out of range");
    Context &c = ctx_[static_cast<std::size_t>(slot)];
    tt_assert(!c.busy, "context already running a task");
    tt_assert(miss_fraction >= 0.0 && miss_fraction <= 1.0,
              "miss fraction out of [0,1]");

    c.busy = true;
    c.done = std::move(done);
    c.lines_total = 0;
    c.lines_issued = 0;
    c.lines_done = 0;
    c.write_lines = 0;
    c.compute_cycles = 0;

    if (task.kind == stream::TaskKind::Memory) {
        const std::uint64_t lines =
            (task.sim_work.bytes + mem::kLineBytes - 1) / mem::kLineBytes;
        const auto writes = static_cast<std::uint64_t>(
            std::llround(task.sim_work.write_fraction *
                         static_cast<double>(lines)));
        runMemoryStream(slot, lines, writes, taskBaseLine(task),
                        config_.mlp_per_context);
        return;
    }

    // Compute task. If the sibling context is occupied the pipeline
    // is shared and the task slows down (sampled at start; see
    // machine_config.hh for the approximation note).
    bool sibling_busy = false;
    for (int s = 0; s < slots(); ++s)
        sibling_busy |= (s != slot && ctx_[static_cast<std::size_t>(s)].busy);
    const double factor = sibling_busy ? config_.smt_compute_slowdown : 1.0;
    c.compute_cycles = static_cast<std::uint64_t>(
        static_cast<double>(task.sim_work.compute_cycles) * factor);

    const std::uint64_t footprint_lines =
        task.sim_work.footprint_bytes / mem::kLineBytes;
    const auto miss_lines = static_cast<std::uint64_t>(
        miss_fraction * static_cast<double>(footprint_lines));
    if (miss_lines > 0) {
        // Demand-fetch the spilled fraction before computing.
        runMemoryStream(slot, miss_lines, 0, taskBaseLine(task),
                        config_.demand_mlp);
    } else {
        startComputeBurn(slot);
    }
}

void
SimCore::runMemoryStream(int slot, std::uint64_t lines,
                         std::uint64_t write_lines,
                         std::uint64_t base_line, int window)
{
    Context &c = ctx_[static_cast<std::size_t>(slot)];
    c.lines_total = lines;
    c.lines_issued = 0;
    c.lines_done = 0;
    c.write_lines = write_lines;
    c.base_line = base_line;
    c.window = window;
    if (lines == 0) {
        // Degenerate empty stream: complete asynchronously so the
        // caller never observes re-entrant completion.
        events_.scheduleIn(0, [this, slot] {
            if (ctx_[static_cast<std::size_t>(slot)].compute_cycles > 0)
                startComputeBurn(slot);
            else
                finish(slot);
        });
        return;
    }
    issueNext(slot);
}

void
SimCore::issueNext(int slot)
{
    Context &c = ctx_[static_cast<std::size_t>(slot)];
    while (c.lines_issued < c.lines_total &&
           c.lines_issued - c.lines_done <
               static_cast<std::uint64_t>(c.window)) {
        const bool is_write =
            c.lines_issued >= c.lines_total - c.write_lines;
        const std::uint64_t addr = c.base_line + c.lines_issued;
        ++c.lines_issued;
        mem_.access(addr, is_write, [this, slot] { onLineDone(slot); });
    }
}

void
SimCore::onLineDone(int slot)
{
    Context &c = ctx_[static_cast<std::size_t>(slot)];
    ++c.lines_done;
    if (c.lines_done == c.lines_total) {
        if (c.compute_cycles > 0)
            startComputeBurn(slot);
        else
            finish(slot);
        return;
    }
    issueNext(slot);
}

void
SimCore::startComputeBurn(int slot)
{
    Context &c = ctx_[static_cast<std::size_t>(slot)];
    const sim::Tick duration = c.compute_cycles * config_.cyclePeriod();
    c.compute_cycles = 0; // consumed; finish() path below
    events_.scheduleIn(duration, [this, slot] { finish(slot); });
}

void
SimCore::finish(int slot)
{
    Context &c = ctx_[static_cast<std::size_t>(slot)];
    tt_assert(c.busy, "finishing an idle context");
    c.busy = false;
    auto done = std::move(c.done);
    c.done = nullptr;
    if (done)
        done();
}

} // namespace tt::cpu
