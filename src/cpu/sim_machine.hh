/**
 * @file
 * SimMachine: event queue + memory system + cores, assembled from a
 * MachineConfig, with hardware contexts exposed as a flat id space
 * for the scheduler.
 */

#ifndef TT_CPU_SIM_MACHINE_HH
#define TT_CPU_SIM_MACHINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "cpu/machine_config.hh"
#include "cpu/sim_core.hh"
#include "mem/mem_system.hh"
#include "sim/event_queue.hh"

namespace tt::cpu {

/** A complete simulated multicore machine. */
class SimMachine
{
  public:
    explicit SimMachine(const MachineConfig &config);

    SimMachine(const SimMachine &) = delete;
    SimMachine &operator=(const SimMachine &) = delete;

    /** Run `task` on flat hardware context `context`. */
    void run(int context, const stream::Task &task, double miss_fraction,
             std::function<void()> done);

    bool busy(int context) const;

    int contexts() const { return config_.contexts(); }

    sim::EventQueue &events() { return events_; }
    mem::MemorySystem &mem() { return *mem_; }
    const mem::MemorySystem &mem() const { return *mem_; }
    const MachineConfig &config() const { return config_; }

    /** Current simulated time in seconds. */
    double nowSeconds() const { return sim::toSeconds(events_.now()); }

  private:
    SimCore &coreOf(int context);
    int slotOf(int context) const;

    MachineConfig config_;
    sim::EventQueue events_;
    std::unique_ptr<mem::MemorySystem> mem_;
    std::vector<std::unique_ptr<SimCore>> cores_;
};

} // namespace tt::cpu

#endif // TT_CPU_SIM_MACHINE_HH
