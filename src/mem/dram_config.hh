/**
 * @file
 * DDR3 channel geometry and timing parameters.
 *
 * Defaults model the paper's evaluation platform (Sec. V): a Dell
 * Vostro 430 with 2 GB DDR3-1066 on one 64-bit channel (8.5 GB/s),
 * two ranks of eight 1 Gb chips each. The 2-DIMM configuration of
 * Fig. 18 doubles the channels (17 GB/s total).
 *
 * The timing model is request-granular, not cycle-granular: each
 * 64-byte line transfer reserves the channel's data bus for tBURST
 * and pays row-buffer management latencies (tRCD / tRP) computed
 * from per-bank state. CAS latency is modelled as pure pipeline
 * latency appended after the data slot, so back-to-back row hits
 * stream at full bus bandwidth -- matching real controllers.
 * Second-order constraints are modelled as bus/bank gating:
 *  - tFAW / tRRD: rolling activation window per rank;
 *  - tWTR / tRTRS: write-to-read and rank-switch bus turnaround;
 *  - tREFI / tRFC: periodic all-bank refresh per rank.
 */

#ifndef TT_MEM_DRAM_CONFIG_HH
#define TT_MEM_DRAM_CONFIG_HH

#include <cstdint>

#include "sim/ticks.hh"

namespace tt::mem {

/** Bytes per transferred cache line. */
inline constexpr std::uint64_t kLineBytes = 64;

/** How line addresses map onto channel geometry. */
enum class AddressMapping
{
    /**
     * Page-interleaved: a stream walks a full row buffer, then the
     * next bank (RoBaRaCo-style). Long row-hit runs per stream;
     * inter-stream conflicts when two streams land in one bank.
     */
    kPageInterleave,

    /**
     * Line-interleaved across banks: consecutive lines hit
     * consecutive banks (RoCoRaBa-style). Maximises bank-level
     * parallelism of a single stream, destroys row locality.
     */
    kLineInterleave,
};

/** Row-buffer management policy of the controller. */
enum class PagePolicy
{
    /** Keep rows open until a conflict or refresh closes them. */
    kOpen,
    /**
     * Auto-precharge after every column access: each access pays
     * tRCD but conflicts never pay tRP. Favoured by low-locality
     * request streams; included for model ablations.
     */
    kClosed,
};

/** Timing and geometry of one DDR3 channel. */
struct DramConfig
{
    // Geometry.
    int ranks = 2;           ///< ranks on the channel
    int banks_per_rank = 8;  ///< DDR3 mandates 8
    std::uint64_t row_bytes = 8192; ///< row-buffer bytes per bank
    AddressMapping mapping = AddressMapping::kPageInterleave;
    PagePolicy page_policy = PagePolicy::kOpen;

    // Primary timings (DDR3-1066F: tCK = 1.875 ns, CL7-7-7).
    sim::Tick t_burst = sim::fromNs(7.5);  ///< BL8 data slot (4 tCK)
    sim::Tick t_cl = sim::fromNs(13.13);   ///< CAS latency (7 tCK)
    sim::Tick t_rcd = sim::fromNs(13.13);  ///< ACT -> CAS
    sim::Tick t_rp = sim::fromNs(13.13);   ///< PRE -> ACT
    sim::Tick t_wr = sim::fromNs(15.0);    ///< write recovery

    // Secondary timings.
    sim::Tick t_rrd = sim::fromNs(7.5);    ///< ACT -> ACT, same rank
    sim::Tick t_faw = sim::fromNs(37.5);   ///< four-activate window
    sim::Tick t_wtr = sim::fromNs(7.5);    ///< write -> read turnaround
    sim::Tick t_rtrs = sim::fromNs(1.875); ///< rank-to-rank switch
    sim::Tick t_refi = sim::fromNs(7800.0); ///< refresh interval
    sim::Tick t_rfc = sim::fromNs(110.0);  ///< refresh cycle (1 Gb)

    /** Set true to disable periodic refresh (model ablation). */
    bool disable_refresh = false;

    /**
     * Consecutive row hits one bank may stream while other requests
     * wait (FR-FCFS starvation cap, cf. gem5's max_accesses_per_row).
     */
    int max_row_hit_streak = 16;

    /** Lines per row buffer. */
    std::uint64_t linesPerRow() const { return row_bytes / kLineBytes; }

    /** Total banks on the channel. */
    int totalBanks() const { return ranks * banks_per_rank; }

    /** Peak data bandwidth in bytes/second. */
    double
    peakBandwidth() const
    {
        return static_cast<double>(kLineBytes) /
               sim::toSeconds(t_burst);
    }

    /** The paper's 1066 MT/s single-channel DIMM. */
    static DramConfig ddr3_1066() { return DramConfig{}; }

    /** DDR3-1333H (tCK = 1.5 ns, CL9), for the POWER7-class config. */
    static DramConfig ddr3_1333();
};

} // namespace tt::mem

#endif // TT_MEM_DRAM_CONFIG_HH
