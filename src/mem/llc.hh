/**
 * @file
 * Shared last-level cache occupancy model.
 *
 * The stream programming contract (paper Sec. II) is that a memory
 * task prefetches a pair's working set into the LLC so its compute
 * task runs miss-free. That contract only holds while the live
 * footprints of all in-flight pairs (plus resident code/metadata)
 * fit in the cache. This model tracks exactly that: registered
 * footprints versus capacity. When oversubscribed, a fraction of
 * each compute task's accesses spill to DRAM -- reproducing the
 * Fig. 13(c) anomaly where 2 MB-footprint workloads lose their
 * descending speedup slope because compute tasks start interfering
 * with memory tasks.
 */

#ifndef TT_MEM_LLC_HH
#define TT_MEM_LLC_HH

#include <cstdint>

namespace tt::mem {

/** Capacity/occupancy model of the shared LLC. */
class SharedLlc
{
  public:
    /**
     * @param capacity_bytes cache capacity (8 MB on the i7-860)
     * @param resident_bytes bytes permanently occupied by code,
     *        stacks and runtime metadata
     */
    explicit SharedLlc(std::uint64_t capacity_bytes,
                       std::uint64_t resident_bytes = 0);

    /** A pair's working set became live (its memory task started). */
    void install(std::uint64_t footprint_bytes);

    /** A pair's working set died (its compute task finished). */
    void release(std::uint64_t footprint_bytes);

    /**
     * Fraction of a compute task's accesses that miss, given current
     * occupancy: 0 while everything fits, otherwise the excess
     * fraction of the live working set.
     */
    double missFraction() const;

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t occupancy() const { return resident_ + live_; }
    std::uint64_t liveFootprint() const { return live_; }

    /** Largest occupancy observed so far. */
    std::uint64_t peakOccupancy() const { return peak_; }

  private:
    std::uint64_t capacity_;
    std::uint64_t resident_;
    std::uint64_t live_ = 0;
    std::uint64_t peak_ = 0;
};

} // namespace tt::mem

#endif // TT_MEM_LLC_HH
