#include "mem/llc.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tt::mem {

SharedLlc::SharedLlc(std::uint64_t capacity_bytes,
                     std::uint64_t resident_bytes)
    : capacity_(capacity_bytes), resident_(resident_bytes)
{
    tt_assert(capacity_ > 0, "LLC capacity must be positive");
    peak_ = resident_;
}

void
SharedLlc::install(std::uint64_t footprint_bytes)
{
    live_ += footprint_bytes;
    peak_ = std::max(peak_, occupancy());
}

void
SharedLlc::release(std::uint64_t footprint_bytes)
{
    tt_assert(footprint_bytes <= live_,
              "releasing more footprint than is live");
    live_ -= footprint_bytes;
}

double
SharedLlc::missFraction() const
{
    const std::uint64_t occ = occupancy();
    if (occ <= capacity_ || occ == 0)
        return 0.0;
    return static_cast<double>(occ - capacity_) /
           static_cast<double>(occ);
}

} // namespace tt::mem
